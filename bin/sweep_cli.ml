(* The 'sweep' command: SAT-sweep a circuit with the baseline or STP
   engine, print statistics, optionally verify with CEC and write the
   swept network back out as ASCII AIGER.

   Runs as a one-pass pipeline (plus a verify pass under --verify)
   through the same Pass.run_pipeline as bin/flow.exe, so budgets,
   degradation and certification behave identically across CLIs. *)

open Stp_sweep

(* Client ("sweepc") mode: same flags, but the pipeline runs inside a
   sweepd daemon reached over --connect SOCK, through the Svc.Client
   retry library: typed R_overloaded answers and refused connects are
   retried with jittered exponential backoff (--remote-retries), so a
   momentarily saturated daemon costs latency, not a failed run. The
   daemon's report is the authority — the verdict, the JSON and the
   swept AIG all come off the wire; exit codes mirror the local path
   (1 = CEC different, 2 = parse/IO, 3 = verification failed). *)
let run_remote sock remote_retries name net script timeout verify certify
    output json echo =
  let policy = { Svc.Client.default_policy with retries = remote_retries } in
  let client =
    match Svc.Client.connect ~policy sock with
    | Ok c -> c
    | Error e ->
      Printf.eprintf "sweep: %s\n" (Svc.Client.error_to_string e);
      exit 2
  in
  Fun.protect ~finally:(fun () -> Svc.Client.close client) @@ fun () ->
  match
    Svc.Client.request client
      {
        Svc.Proto.req_id = Unix.getpid ();
        script;
        aiger = Aig.Aiger.write net;
        req_timeout = timeout;
        req_verify = verify;
        req_certify = certify;
      }
  with
  | Error e ->
    Printf.eprintf "sweep: %s\n" (Svc.Client.error_to_string e);
    exit 2
  | Ok (Svc.Proto.R_error { kind; message; _ }) ->
    Printf.eprintf "sweep: server error (%s): %s\n" kind message;
    exit (if kind = "verification_failed" then 3 else 2)
  | Ok (Svc.Proto.R_overloaded _ | Svc.Proto.R_health _) ->
    (* The client library retries overloads internally and we sent a
       run request, so neither should surface here. *)
    prerr_endline "sweep: unexpected response from server";
    exit 2
  | Ok (Svc.Proto.R_ok { report; _ }) ->
    let open Obs.Json in
    let int_of name = match member name report with Some (Int i) -> Some i | _ -> None in
    (match (int_of "input_ands", int_of "result_ands") with
    | Some i, Some r ->
      echo (Printf.sprintf "%-14s server: %d -> %d ands\n" name i r)
    | _ -> ());
    (match member "cec" report with
    | Some (String v) -> echo (Printf.sprintf "cec: %s\n" v)
    | _ -> ());
    (match (output, member "result_aiger" report) with
    | Some path, Some (String aag) ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc aag);
      Printf.printf "wrote: %s\n" path
    | Some _, _ ->
      prerr_endline "sweep: server report carries no result_aiger";
      exit 2
    | None, _ -> ());
    (match json with
    | Some path ->
      to_file path report;
      Printf.printf "wrote: %s\n" path
    | None -> ());
    if member "cec" report = Some (String "different") then exit 1

let run circuit file engine timeout retries sat_domains self_verify verify
    certify output json trace connect remote_retries () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let name, net = Report.load_network ?circuit ?file () in
  let script =
    let b = Buffer.create 32 in
    Buffer.add_string b
      (match engine with `Stp -> "sweep -e stp" | `Fraig -> "sweep -e fraig");
    (match retries with
    | Some limits ->
      Buffer.add_string b
        (" --retry-schedule "
        ^ String.concat "," (List.map string_of_int limits))
    | None -> ());
    if sat_domains > 0 then
      Buffer.add_string b (Printf.sprintf " --sat-domains %d" sat_domains);
    if verify then Buffer.add_string b "; verify";
    Buffer.contents b
  in
  let echo s = print_string s; flush stdout in
  match connect with
  | Some sock ->
    run_remote sock remote_retries name net script timeout self_verify certify
      output json echo
  | None ->
  let ctx =
    Pass.create_ctx ?timeout ~verify:self_verify ~certify ~echo net
  in
  echo (Printf.sprintf "%-14s %s\n" name
          (Format.asprintf "%a" Aig.Network.pp_stats net));
  let swept, records = Pass.run_pipeline ctx (Script.compile script) net in
  (match output with
  | Some path ->
    Aig.Aiger.write_file path swept;
    Printf.printf "wrote: %s\n" path
  | None -> ());
  (match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    (* The sweep statistics live in the pass record
       (passes[0].stats), not in a duplicated top-level object —
       schema_version 2, documented in EXPERIMENTS.md. *)
    to_file path
      (Obj
         (Report.run_meta ~tool:"sweep"
         @ [
             ("circuit", String name);
             ("engine", String (match engine with `Stp -> "stp" | `Fraig -> "fraig"));
             ("input_ands", Int (Aig.Network.num_ands net));
             ("result_ands", Int (Aig.Network.num_ands swept));
             ("certify", Bool certify);
           ]
         @ Pass.summary_json ctx records));
    Printf.printf "wrote: %s\n" path);
  if Pass.any_different ctx then exit 1

open Cmdliner

let circuit =
  Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~doc:"Named generated benchmark.")

let file = Arg.(value & opt (some file) None & info [ "aig" ] ~doc:"ASCII AIGER file.")

let engine =
  Arg.(value & opt (enum [ ("stp", `Stp); ("fraig", `Fraig) ]) `Stp
       & info [ "engine"; "e" ] ~doc:"Sweeping engine.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the sweep. On exhaustion the engine stops \
           proving, translates the rest structurally and reports \
           budget_exhausted; the partial result is still equivalent to the \
           input.")

let retries =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "retry-schedule" ] ~docv:"N,N,..."
        ~doc:
          "Escalating conflict limits re-tried on SAT queries that come \
           back undetermined.")

let sat_domains =
  Arg.(
    value & opt int 0
    & info [ "sat-domains" ] ~docv:"N"
        ~doc:
          "Dispatch SAT queries to a pool of $(docv) solver domains (each \
           with its own incremental solver and, under --certify, its own \
           DRUP checker). 0 (default) keeps the inline sequential path; \
           the result is CEC-equivalent for every value.")

let self_verify =
  Arg.(
    value & flag
    & info [ "self-verify" ]
        ~doc:
          "Run the engine's post-sweep self-check (bitwise cross-simulation \
           + CEC); exits 3 if the result cannot be proven equivalent.")

let verify = Arg.(value & flag & info [ "verify" ] ~doc:"CEC-verify the result.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Certified sweeping: every UNSAT-driven merge must replay its \
           DRUP proof through the independent checker, every \
           counterexample must validate; rejected certificates degrade \
           their node and count into certificate_rejected.")

let output =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Write the swept AIG here.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream sweep progress to stderr (or STP_SWEEP_TRACE=1).")

let connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Run the pipeline inside a sweepd daemon listening on the \
           Unix-domain socket $(docv) instead of in-process; the swept \
           AIG, report and exit code come from the server's response.")

let remote_retries =
  Arg.(
    value & opt int 5
    & info [ "remote-retries" ] ~docv:"N"
        ~doc:
          "With --connect: retry up to $(docv) times (jittered \
           exponential backoff, honoring the server's retry_after hint) \
           when the daemon sheds the connection as overloaded or refuses \
           it. 0 fails fast.")

let cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"SAT-sweep a circuit")
    Term.(
      const (fun a b c d e f g h i j k l m n ->
          run a b c d e f g h i j k l m n ())
      $ circuit $ file $ engine $ timeout $ retries $ sat_domains
      $ self_verify $ verify $ certify $ output $ json $ trace $ connect
      $ remote_retries)

let () = exit (Cmd.eval cmd)
