(* The 'sweep' command: SAT-sweep a circuit with the baseline or STP
   engine, print statistics, optionally verify with CEC and write the
   swept network back out as ASCII AIGER. *)

open Stp_sweep

let load ~circuit ~file =
  match (circuit, file) with
  | Some name, None -> (
    (name, try Gen.Suites.hwmcc_by_name name
     with Not_found -> Gen.Suites.epfl_by_name name))
  | None, Some path -> (Filename.basename path, Aig.Aiger.read_file path)
  | _ ->
    prerr_endline "exactly one of --circuit or --aig is required";
    exit 2

let run circuit file engine timeout retries self_verify verify certify output
    json trace () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let name, net = load ~circuit ~file in
  Printf.printf "circuit %s: %s\n" name
    (Format.asprintf "%a" Aig.Network.pp_stats net);
  let swept, stats =
    match engine with
    | `Stp ->
      Sweep.Stp_sweep.sweep ?timeout ?retry_schedule:retries
        ~verify:self_verify ~certify net
    | `Fraig ->
      Sweep.Fraig.sweep ?timeout ?retry_schedule:retries ~verify:self_verify
        ~certify net
  in
  Printf.printf "swept:   %s\n" (Format.asprintf "%a" Aig.Network.pp_stats swept);
  Printf.printf "stats:   %s\n" (Format.asprintf "%a" Sweep.Stats.pp stats);
  (match stats.Sweep.Stats.budget_exhausted with
  | Some { Sweep.Stats.reason; phase } ->
    Printf.printf
      "budget:  exhausted (%s) during %s — partial sweep, every applied \
       merge is proven\n"
      reason phase
  | None -> ());
  if certify then
    Printf.printf "certs:   unsat=%d models=%d rejected=%d\n"
      stats.Sweep.Stats.certified_unsat stats.Sweep.Stats.certified_models
      stats.Sweep.Stats.certificate_rejected;
  let cec =
    if not verify then None
    else
      (* Like flow and Selfcheck, the CEC oracle judges the (possibly
         fault-degraded) sweep with injection suspended. *)
      match Obs.Fault.bypass (fun () -> Sweep.Cec.check net swept) with
      | Sweep.Cec.Equivalent ->
        print_endline "cec:     equivalent";
        Some "equivalent"
      | Sweep.Cec.Different { po; _ } ->
        Printf.printf "cec:     DIFFERENT at output %d\n" po;
        Some "different"
      | Sweep.Cec.Undetermined po ->
        Printf.printf "cec:     undetermined at output %d\n" po;
        Some "undetermined"
  in
  (match output with
  | Some path ->
    Aig.Aiger.write_file path swept;
    Printf.printf "wrote:   %s\n" path
  | None -> ());
  (match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"sweep"
         @ [
             ("circuit", String name);
             ("engine", String (match engine with `Stp -> "stp" | `Fraig -> "fraig"));
             ("input_ands", Int (Aig.Network.num_ands net));
             ("result_ands", Int (Aig.Network.num_ands swept));
             ("certify", Bool certify);
             ("sweep", Sweep.Stats.to_json stats);
             ("cec", match cec with Some s -> String s | None -> Null);
           ]));
    Printf.printf "wrote:   %s\n" path);
  if cec = Some "different" then exit 1

open Cmdliner

let circuit =
  Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~doc:"Named generated benchmark.")

let file = Arg.(value & opt (some file) None & info [ "aig" ] ~doc:"ASCII AIGER file.")

let engine =
  Arg.(value & opt (enum [ ("stp", `Stp); ("fraig", `Fraig) ]) `Stp
       & info [ "engine"; "e" ] ~doc:"Sweeping engine.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the sweep. On exhaustion the engine stops \
           proving, translates the rest structurally and reports \
           budget_exhausted; the partial result is still equivalent to the \
           input.")

let retries =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "retry-schedule" ] ~docv:"N,N,..."
        ~doc:
          "Escalating conflict limits re-tried on SAT queries that come \
           back undetermined.")

let self_verify =
  Arg.(
    value & flag
    & info [ "self-verify" ]
        ~doc:
          "Run the engine's post-sweep self-check (bitwise cross-simulation \
           + CEC); exits 3 if the result cannot be proven equivalent.")

let verify = Arg.(value & flag & info [ "verify" ] ~doc:"CEC-verify the result.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Certified sweeping: every UNSAT-driven merge must replay its \
           DRUP proof through the independent checker, every \
           counterexample must validate; rejected certificates degrade \
           their node and count into certificate_rejected.")

let output =
  Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Write the swept AIG here.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream sweep progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"SAT-sweep a circuit")
    Term.(
      const (fun a b c d e f g h i j k -> run a b c d e f g h i j k ())
      $ circuit $ file $ engine $ timeout $ retries $ self_verify $ verify
      $ certify $ output $ json $ trace)

let () = exit (Cmd.eval cmd)
