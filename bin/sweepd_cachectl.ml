(* sweepd-cachectl: offline maintenance for the sweepd equivalence
   cache.

   'stats' prints the store's resident size and counters as JSON;
   'compact' garbage-collects it — sweeps crash-leftover temp files,
   purges quarantined post-mortem files, and (with --max-bytes /
   --max-entries) evicts least-recently-used entries until the budget
   holds, through the same crash-safe rename discipline the daemon
   uses. Running it against a live daemon's directory is safe in the
   sense that every race degrades to a cache miss on one side or the
   other (rename is atomic; a vanished file reads as a miss), but the
   daemon's in-memory accounting won't see entries removed under it
   until its next restart — compact during quiet hours. *)

open Stp_sweep

let with_cache dir max_bytes max_entries f =
  match Svc.Cache.open_ ?max_bytes ?max_entries dir with
  | cache -> f cache
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "sweepd-cachectl: cannot open %s: %s\n" dir
      (Unix.error_message e);
    exit 2

let run_stats dir () =
  Report.cli_guard @@ fun () ->
  with_cache dir None None @@ fun cache ->
  print_endline (Obs.Json.to_string (Svc.Cache.counters_json cache))

let run_compact dir max_bytes max_entries dry_run () =
  Report.cli_guard @@ fun () ->
  with_cache dir None None @@ fun cache ->
  if dry_run then begin
    let bytes = Svc.Cache.bytes cache and entries = Svc.Cache.entries cache in
    let over_bytes =
      match max_bytes with Some b -> max 0 (bytes - b) | None -> 0
    in
    let over_entries =
      match max_entries with Some e -> max 0 (entries - e) | None -> 0
    in
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("dry_run", Obs.Json.Bool true);
              ("bytes", Obs.Json.Int bytes);
              ("entries", Obs.Json.Int entries);
              ("over_bytes", Obs.Json.Int over_bytes);
              ("over_entries", Obs.Json.Int over_entries);
            ]))
  end
  else begin
    let s = Svc.Cache.compact ?max_bytes ?max_entries cache in
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("tmp_swept", Obs.Json.Int s.Svc.Cache.k_tmp);
              ("quarantined_purged", Obs.Json.Int s.k_quarantined);
              ("evicted", Obs.Json.Int s.k_evicted);
              ("evicted_bytes", Obs.Json.Int s.k_evicted_bytes);
              ("bytes", Obs.Json.Int (Svc.Cache.bytes cache));
              ("entries", Obs.Json.Int (Svc.Cache.entries cache));
            ]))
  end

open Cmdliner

let dir =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Cache directory (sweepd --cache DIR).")

let max_bytes =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-bytes" ] ~docv:"BYTES"
        ~doc:"Evict least-recently-used entries until at most $(docv) remain.")

let max_entries =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-entries" ] ~docv:"N"
        ~doc:"Evict least-recently-used entries down to $(docv) entries.")

let dry_run =
  Arg.(
    value & flag
    & info [ "dry-run" ]
        ~doc:"Report what compaction would do without touching the store.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"print resident size and counters as JSON")
    Term.(const (fun d -> run_stats d ()) $ dir)

let compact_cmd =
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "sweep temp files, purge quarantined entries, evict LRU down to \
          the given budget")
    Term.(
      const (fun d b e n -> run_compact d b e n ())
      $ dir $ max_bytes $ max_entries $ dry_run)

let cmd =
  Cmd.group
    (Cmd.info "sweepd-cachectl" ~doc:"maintain a sweepd equivalence cache")
    [ stats_cmd; compact_cmd ]

let () = exit (Cmd.eval cmd)
