(* Combinational equivalence checking CLI (the role '&cec' plays in the
   paper's experimental validation).

     dune exec bin/cec_cli.exe -- a.aag b.aag
*)

open Stp_sweep

let run a b certify =
  Report.cli_guard @@ fun () ->
  let _, net_a = Report.load_network ~file:a () in
  let _, net_b = Report.load_network ~file:b () in
  Printf.printf "%s: %s\n" a (Format.asprintf "%a" Aig.Network.pp_stats net_a);
  Printf.printf "%s: %s\n" b (Format.asprintf "%a" Aig.Network.pp_stats net_b);
  match Sweep.Cec.check ~certify net_a net_b with
  | Sweep.Cec.Equivalent ->
    print_endline "equivalent";
    exit 0
  | Sweep.Cec.Different { po; counterexample } ->
    Printf.printf "DIFFERENT at output %d\n" po;
    print_string "counterexample:";
    Array.iter (fun bit -> print_string (if bit then " 1" else " 0")) counterexample;
    print_newline ();
    exit 1
  | Sweep.Cec.Undetermined po ->
    Printf.printf "undetermined at output %d\n" po;
    exit 2

open Cmdliner

let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A.aag")
let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B.aag")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Run the internal sweep and the output queries under the DRUP \
           proof checker; unreplayable certificates downgrade outputs to \
           undetermined.")

let cmd =
  Cmd.v (Cmd.info "cec" ~doc:"Combinational equivalence check of two AIGER files")
    Term.(const run $ file_a $ file_b $ certify)

let () = exit (Cmd.eval cmd)
