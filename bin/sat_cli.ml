(* DIMACS front-end for the CDCL solver, with DRUP proof logging and
   standalone proof checking.

     dune exec bin/sat_cli.exe -- problem.cnf
     dune exec bin/sat_cli.exe -- problem.cnf --proof problem.drup
     dune exec bin/sat_cli.exe -- problem.cnf --check-proof problem.drup
     dune exec bin/sat_cli.exe -- problem.cnf --certify

   Exit codes follow the SAT-competition convention (10 sat / 20 unsat /
   0 unknown); a failed certificate or proof replay exits 3, the same
   surface as the sweep CLIs' verification failures. *)

open Stp_sweep

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let proof_counters checker =
  let open Obs.Json in
  ( "proof",
    Obj
      [
        ("checked", Int (Sat.Drup.num_checked checker));
        ("rejected", Int (Sat.Drup.num_rejected checker));
        ("deleted", Int (Sat.Drup.num_deleted checker));
      ] )

let write_json json solver answer extra =
  match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"sat"
         @ [
             ("answer", String answer);
             ( "sat_solver",
               Obj
                 (List.map
                    (fun (k, v) -> (k, Int v))
                    (Sat.Solver.stats_assoc solver)) );
           ]
         @ extra))

(* Standalone replay: the CNF's clauses are axioms, every proof line
   must be RUP over the checker's own database, and the replayed proof
   must end in a refutation. Strict: the first unjustified addition
   fails the whole replay. *)
let run_check_proof cnf_path proof_path json =
  let checker = Sat.Drup.create () in
  let _nv, clauses = Sat.Dimacs.parse (read_file cnf_path) in
  List.iter (Sat.Drup.add_input checker) clauses;
  let steps = Sat.Dimacs.parse_proof (read_file proof_path) in
  let failure = ref None in
  List.iteri
    (fun i step ->
      if !failure = None then
        match step with
        | `Add lits -> (
          match Sat.Drup.add_derived checker lits with
          | Ok () -> ()
          | Error why -> failure := Some (Printf.sprintf "step %d: %s" (i + 1) why))
        | `Delete lits -> Sat.Drup.delete checker lits)
    steps;
  let failure =
    match !failure with
    | Some _ as f -> f
    | None -> (
      match Sat.Drup.certify_unsat checker ~assumptions:[] with
      | Ok () -> None
      | Error why -> Some why)
  in
  let report answer =
    match json with
    | None -> ()
    | Some path ->
      let open Obs.Json in
      to_file path
        (Obj
           (Report.run_meta ~tool:"sat"
           @ [
               ("answer", String answer);
               ("proof_file", String proof_path);
               proof_counters checker;
             ]))
  in
  match failure with
  | None ->
    Printf.printf "s VERIFIED\nc %d additions checked, %d deletions\n"
      (Sat.Drup.num_checked checker)
      (Sat.Drup.num_deleted checker);
    report "verified";
    exit 0
  | Some why ->
    Printf.printf "s NOT VERIFIED\nc %s\n" why;
    report "not-verified";
    exit 3

let run path conflict_limit timeout proof check_proof certify json =
  Report.cli_guard @@ fun () ->
  match check_proof with
  | Some proof_path -> run_check_proof path proof_path json
  | None ->
    let text = read_file path in
    let solver = Sat.Solver.create () in
    let checker =
      if certify then begin
        let c = Sat.Drup.create () in
        Some c
      end
      else None
    in
    let proof_oc = Option.map open_out proof in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr proof_oc)
    @@ fun () ->
    (* One logger tees the stream to the in-memory checker and/or the
       DRUP text file; installed before [load] so the checker sees the
       original clauses. *)
    (match (checker, proof_oc) with
    | None, None -> ()
    | _ ->
      Sat.Solver.set_proof_logger solver
        (Some
           (fun step ->
             Option.iter (fun c -> Sat.Drup.feed c step) checker;
             Option.iter
               (fun oc ->
                 Option.iter (output_string oc) (Sat.Dimacs.proof_line step))
               proof_oc)));
    Sat.Dimacs.load solver text;
    let deadline = Option.map (fun s -> Obs.Clock.now () +. s) timeout in
    let certificate_failed why =
      Printf.printf "c CERTIFICATE REJECTED: %s\n" why;
      write_json json solver "certificate-rejected"
        (match checker with Some c -> [ proof_counters c ] | None -> []);
      exit 3
    in
    let cert_extra certified =
      match checker with
      | None -> []
      | Some c -> [ ("certified", Obs.Json.Bool certified); proof_counters c ]
    in
    (match Sat.Solver.solve ?conflict_limit ?deadline solver with
    | Sat.Solver.Sat ->
      (match checker with
      | None -> ()
      | Some c -> (
        match
          Sat.Drup.certify_model c ~value:(Sat.Solver.value solver)
        with
        | Ok () -> print_endline "c certified: model satisfies every clause"
        | Error why -> certificate_failed why));
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      for v = 0 to Sat.Solver.num_vars solver - 1 do
        let value =
          match Sat.Solver.var_value solver v with
          | Some true -> v + 1
          | Some false | None -> -(v + 1)
        in
        Buffer.add_string buf (Printf.sprintf " %d" value)
      done;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf);
      Printf.printf "c %s\n" (Format.asprintf "%a" Sat.Solver.pp_stats solver);
      write_json json solver "sat" (cert_extra true);
      exit 10
    | Sat.Solver.Unsat ->
      (match checker with
      | None -> ()
      | Some c -> (
        match Sat.Drup.certify_unsat c ~assumptions:[] with
        | Ok () ->
          Printf.printf "c certified: proof replayed (%d additions checked)\n"
            (Sat.Drup.num_checked c)
        | Error why -> certificate_failed why));
      print_endline "s UNSATISFIABLE";
      Printf.printf "c %s\n" (Format.asprintf "%a" Sat.Solver.pp_stats solver);
      write_json json solver "unsat" (cert_extra true);
      exit 20
    | Sat.Solver.Unknown ->
      print_endline "s UNKNOWN";
      write_json json solver "unknown" (cert_extra false);
      exit 0)

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf")
let limit = Arg.(value & opt (some int) None & info [ "conflicts" ] ~doc:"Conflict budget.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:"Wall-clock budget; expiry yields UNKNOWN (exit 0).")

let proof =
  Arg.(
    value
    & opt (some string) None
    & info [ "proof" ] ~docv:"FILE"
        ~doc:
          "Stream a DRUP proof (zero-terminated clauses, d-prefixed \
           deletions) here while solving — the drat-trim text format.")

let check_proof =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-proof" ] ~docv:"FILE"
        ~doc:
          "Don't solve: replay this DRUP proof against the instance with \
           the standalone checker. Exit 0 iff it verifies, 3 otherwise.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Replay the proof stream in-memory while solving: UNSAT must \
           derive a checked refutation, SAT's model must satisfy every \
           clause. A failed certificate exits 3.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let cmd =
  Cmd.v (Cmd.info "sat" ~doc:"CDCL solver on a DIMACS file")
    Term.(const run $ file $ limit $ timeout $ proof $ check_proof $ certify $ json)

let () = exit (Cmd.eval cmd)
