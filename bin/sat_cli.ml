(* DIMACS front-end for the CDCL solver.

     dune exec bin/sat_cli.exe -- problem.cnf
*)

open Stp_sweep

let write_json json solver answer =
  match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"sat"
         @ [
             ("answer", String answer);
             ( "sat_solver",
               Obj
                 (List.map
                    (fun (k, v) -> (k, Int v))
                    (Sat.Solver.stats_assoc solver)) );
           ]))

let run path conflict_limit timeout json =
  Report.cli_guard @@ fun () ->
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let solver = Sat.Solver.create () in
  Sat.Dimacs.load solver text;
  let deadline = Option.map (fun s -> Obs.Clock.now () +. s) timeout in
  match Sat.Solver.solve ?conflict_limit ?deadline solver with
  | Sat.Solver.Sat ->
    print_endline "s SATISFIABLE";
    let buf = Buffer.create 256 in
    Buffer.add_string buf "v";
    for v = 0 to Sat.Solver.num_vars solver - 1 do
      let value =
        match Sat.Solver.var_value solver v with
        | Some true -> v + 1
        | Some false | None -> -(v + 1)
      in
      Buffer.add_string buf (Printf.sprintf " %d" value)
    done;
    Buffer.add_string buf " 0";
    print_endline (Buffer.contents buf);
    Printf.printf "c %s\n" (Format.asprintf "%a" Sat.Solver.pp_stats solver);
    write_json json solver "sat";
    exit 10
  | Sat.Solver.Unsat ->
    print_endline "s UNSATISFIABLE";
    Printf.printf "c %s\n" (Format.asprintf "%a" Sat.Solver.pp_stats solver);
    write_json json solver "unsat";
    exit 20
  | Sat.Solver.Unknown ->
    print_endline "s UNKNOWN";
    write_json json solver "unknown";
    exit 0

open Cmdliner

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf")
let limit = Arg.(value & opt (some int) None & info [ "conflicts" ] ~doc:"Conflict budget.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:"Wall-clock budget; expiry yields UNKNOWN (exit 0).")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let cmd =
  Cmd.v (Cmd.info "sat" ~doc:"CDCL solver on a DIMACS file")
    Term.(const run $ file $ limit $ timeout $ json)

let () = exit (Cmd.eval cmd)
