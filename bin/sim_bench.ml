(* Reproducible simulation-kernel bench harness.

     dune exec bin/sim_bench.exe -- --json BENCH_sim.json
     dune exec bin/sim_bench.exe -- --patterns 8192 --min-time 0.5

   One fixture (the EPFL "sin" benchmark, as AIG and as its 6-LUT
   mapping), every engine entry point, and the raw kernel plans they
   delegate to — each timed at 1/2/4 domains. Before any timing, every
   variant's signature table is compared word-for-word against the
   sequential bitwise reference: the harness exits 1 on the first
   mismatch, so a reported time always belongs to a bit-identical
   engine. The [plans] section prices plan compilation separately from
   execution — the cost the sweep engine amortizes by patching one
   long-lived plan instead of recompiling. The checked-in baseline
   lives at results/BENCH_sim.json. *)

open Stp_sweep

let domains_swept = [ 1; 2; 4 ]

type row = { name : string; domains : int; wall_s : float }

let row_json r =
  let open Obs.Json in
  Obj
    [
      ("name", String r.name);
      ("domains", Int r.domains);
      ("wall_s", Float r.wall_s);
    ]

let run patterns min_time json =
  Report.cli_guard @@ fun () ->
  let aig = Gen.Suites.epfl_by_name "sin" in
  let lut = Klut.Mapper.map ~k:6 aig in
  let pats =
    Sim.Patterns.random ~seed:0xBE7CL
      ~num_pis:(Aig.Network.num_pis aig)
      ~num_patterns:patterns
  in
  (* Long-lived plans, compiled once like the sweep engine does. *)
  let aig_plan = Sim.Kernel.compile_aig aig in
  let stp_plan = Sim.Kernel.compile_klut ~style:`Stp lut in
  let blast_plan = Sim.Kernel.compile_klut ~style:`Bitblast lut in
  let aig_ref = Sim.Bitwise.simulate_aig aig pats in
  let lut_ref = Sim.Bitwise.simulate_klut lut pats in
  (* name, reference table, simulate at [domains]. *)
  let engines =
    [
      ("aig-bitwise", aig_ref, fun d -> Sim.Bitwise.simulate_aig ~domains:d aig pats);
      ("aig-stp", aig_ref, fun d -> Sim.Stp_sim.simulate_aig ~domains:d aig pats);
      ( "aig-kernel-plan",
        aig_ref,
        fun d -> Sim.Kernel.execute ~domains:d aig_plan pats );
      ( "lut6-bitwise",
        lut_ref,
        fun d -> Sim.Bitwise.simulate_klut ~domains:d lut pats );
      ("lut6-stp", lut_ref, fun d -> Sim.Stp_sim.simulate_klut ~domains:d lut pats);
      ( "lut6-kernel-stp",
        lut_ref,
        fun d -> Sim.Kernel.execute ~domains:d stp_plan pats );
      ( "lut6-kernel-bitblast",
        lut_ref,
        fun d -> Sim.Kernel.execute ~domains:d blast_plan pats );
    ]
  in
  (* Identity gate first: a bench run never reports a speed for an
     engine that diverges from the reference. *)
  List.iter
    (fun (name, reference, simulate) ->
      List.iter
        (fun d ->
          if simulate d <> reference then begin
            Printf.eprintf "sim_bench: %s diverges at %d domain(s)\n" name d;
            exit 1
          end)
        domains_swept)
    engines;
  let rows =
    List.concat_map
      (fun (name, _, simulate) ->
        List.map
          (fun d ->
            let wall =
              Report.time_repeat ~min_time (fun () -> ignore (simulate d))
            in
            { name; domains = d; wall_s = wall })
          domains_swept)
      engines
  in
  let compile_rows =
    [
      ( "compile-aig",
        Report.time_repeat ~min_time (fun () ->
            ignore (Sim.Kernel.compile_aig aig)) );
      ( "compile-lut6-stp",
        (* A private cache so repeated compilations do real work rather
           than hitting the process-wide shared cache. *)
        Report.time_repeat ~min_time (fun () ->
            ignore
              (Sim.Kernel.compile_klut
                 ~cache:(Sim.Kernel.Cache.create ())
                 ~style:`Stp lut)) );
      ( "compile-lut6-bitblast",
        Report.time_repeat ~min_time (fun () ->
            ignore (Sim.Kernel.compile_klut ~style:`Bitblast lut)) );
    ]
  in
  (* Table on stdout, sequential columns plus the 4-domain speedup. *)
  let seq name =
    (List.find (fun r -> r.name = name && r.domains = 1) rows).wall_s
  in
  let par name =
    (List.find (fun r -> r.name = name && r.domains = 4) rows).wall_s
  in
  print_string
    (Report.render_table
       ~header:[ "engine"; "t(1d)"; "t(4d)"; "x4d" ]
       (List.map
          (fun (name, _, _) ->
            [
              name;
              Report.fmt_time (seq name);
              Report.fmt_time (par name);
              Report.fmt_ratio (seq name /. par name);
            ])
          engines));
  List.iter
    (fun (name, wall) -> Printf.printf "%s: %s\n" name (Report.fmt_time wall))
    compile_rows;
  (match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"sim_bench"
         @ [
             ("patterns", Int patterns);
             ("min_time_s", Float min_time);
             ("bit_identical", Bool true);
             ("engines", List (List.map row_json rows));
             ( "plans",
               Obj (List.map (fun (n, w) -> (n, Float w)) compile_rows) );
           ])));
  (* The headline acceptance ratio: the compiled STP engine must not be
     slower than the baseline bit-blast path sequentially. *)
  Printf.printf "stp-vs-bitblast (lut6, 1 domain): %s\n"
    (Report.fmt_ratio (seq "lut6-bitwise" /. seq "lut6-stp"))

open Cmdliner

let patterns =
  Arg.(
    value
    & opt int 2048
    & info [ "patterns" ] ~docv:"N" ~doc:"Simulation patterns per run.")

let min_time =
  Arg.(
    value
    & opt float 0.2
    & info [ "min-time" ] ~docv:"SEC"
        ~doc:"Repeat each measurement until this much cumulative wall time.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the machine-readable report here.")

let cmd =
  Cmd.v
    (Cmd.info "sim_bench"
       ~doc:
         "Bit-identity-gated simulation kernel benchmarks with JSON reports")
    Term.(const run $ patterns $ min_time $ json)

let () = exit (Cmd.eval cmd)
