(* Reproducible solver bench harness.

     dune exec bin/solver_bench.exe -- --json BENCH_solver.json
     dune exec bin/solver_bench.exe -- --suites php,xor --min-time 0.5

   Every suite is a deterministic workload (Gen.Cnf instances, an
   incremental assumption loop, or a full STP sweep), so two checkouts
   run the same search and their conflicts/sec compare directly. Small
   instances are repeated until a minimum cumulative wall time so the
   rate estimates are not noise. Known answers are asserted: a bench
   run that produces a wrong verdict exits 1 — the harness never
   reports a speed for a broken solver. *)

open Stp_sweep

type suite_row = {
  suite : string;
  instances : int;
  runs : int;
  wall_s : float;
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  sat : int;
  unsat : int;
  unknown : int;
}

let row_json r =
  let open Obs.Json in
  let rate n = if r.wall_s > 0. then float_of_int n /. r.wall_s else 0. in
  Obj
    [
      ("suite", String r.suite);
      ("instances", Int r.instances);
      ("runs", Int r.runs);
      ("wall_s", Float r.wall_s);
      ("decisions", Int r.decisions);
      ("conflicts", Int r.conflicts);
      ("propagations", Int r.propagations);
      ("learned", Int r.learned);
      ("conflicts_per_sec", Float (rate r.conflicts));
      ("propagations_per_sec", Float (rate r.propagations));
      ( "answers",
        Obj [ ("sat", Int r.sat); ("unsat", Int r.unsat); ("unknown", Int r.unknown) ]
      );
    ]

let empty_row suite instances =
  {
    suite;
    instances;
    runs = 0;
    wall_s = 0.;
    decisions = 0;
    conflicts = 0;
    propagations = 0;
    learned = 0;
    sat = 0;
    unsat = 0;
    unknown = 0;
  }

let note_answer row (r : Sat.Solver.result) =
  match r with
  | Sat.Solver.Sat -> { row with sat = row.sat + 1 }
  | Sat.Solver.Unsat -> { row with unsat = row.unsat + 1 }
  | Sat.Solver.Unknown -> { row with unknown = row.unknown + 1 }

let add_stats row (s : Sat.Solver.stats) wall =
  {
    row with
    runs = row.runs + 1;
    wall_s = row.wall_s +. wall;
    decisions = row.decisions + s.Sat.Solver.decisions;
    conflicts = row.conflicts + s.Sat.Solver.conflicts;
    propagations = row.propagations + s.Sat.Solver.propagations;
    learned = row.learned + s.Sat.Solver.learned;
  }

let check_expect inst (r : Sat.Solver.result) =
  match (inst.Gen.Cnf.expect, r) with
  | `Sat, Sat.Solver.Unsat | `Unsat, Sat.Solver.Sat ->
    Printf.eprintf "solver_bench: WRONG ANSWER on %s\n" inst.Gen.Cnf.name;
    exit 1
  | _, Sat.Solver.Unknown ->
    Printf.eprintf "solver_bench: unbudgeted Unknown on %s\n" inst.Gen.Cnf.name;
    exit 1
  | _ -> ()

(* One timed pass over a Gen.Cnf instance on a fresh solver. *)
let run_instance inst =
  let s = Sat.Solver.create () in
  for _ = 1 to inst.Gen.Cnf.num_vars do
    ignore (Sat.Solver.new_var s)
  done;
  let t0 = Obs.Clock.now () in
  List.iter (Sat.Solver.add_clause s) inst.Gen.Cnf.clauses;
  let r = Sat.Solver.solve s in
  let wall = Obs.Clock.now () -. t0 in
  check_expect inst r;
  (Sat.Solver.stats s, r, wall)

let run_cnf_suite ~min_time name instances =
  let row = ref (empty_row name (List.length instances)) in
  (* Repeat the whole suite until the cumulative wall time is large
     enough to trust the rate; each repetition is an identical search. *)
  let reps = ref 0 in
  while !reps = 0 || ((!row).wall_s < min_time && !reps < 1000) do
    incr reps;
    List.iter
      (fun inst ->
        let stats, r, wall = run_instance inst in
        row := note_answer (add_stats !row stats wall) r)
      instances
  done;
  !row

(* Incremental workload: one long-lived solver, thousands of solve
   calls under rotating assumptions, fresh clauses trickling in — the
   shape of a sweeping run, and the case that exercises learnt-DB
   reduction and arena reclamation. *)
let run_incremental () =
  let base =
    Gen.Cnf.random3 ~seed:0x14C0L ~num_vars:200 ~ratio:3.0
  in
  let rng = Sutil.Rng.create 0xB135L in
  let s = Sat.Solver.create () in
  for _ = 1 to base.Gen.Cnf.num_vars do
    ignore (Sat.Solver.new_var s)
  done;
  let t0 = Obs.Clock.now () in
  List.iter (Sat.Solver.add_clause s) base.Gen.Cnf.clauses;
  let row = ref (empty_row "incremental" 1) in
  for round = 1 to 3000 do
    let lit () =
      Sat.Solver.lit_of
        (Sutil.Rng.int rng base.Gen.Cnf.num_vars)
        (Sutil.Rng.bool rng)
    in
    if round mod 50 = 0 then
      (* Trickle in a fresh ternary clause, like a growing miter. *)
      Sat.Solver.add_clause s [ lit (); lit (); lit () ];
    let assumptions = [ lit (); lit () ] in
    let r = Sat.Solver.solve ~assumptions ~conflict_limit:500 s in
    row := note_answer !row r
  done;
  let wall = Obs.Clock.now () -. t0 in
  row := add_stats !row (Sat.Solver.stats s) wall;
  !row

(* End-to-end sweeping: the solver under its real driver. Conflicts
   here come from miter queries over Tseitin cones, the workload the
   whole overhaul is for. The multiplier's miters are the hard ones, so
   this row is SAT-dominated; [wall_s] counts only the engine's SAT
   phase, making the rate a solver rate (EXPERIMENTS.md documents
   this). *)
let run_sweep () =
  let net =
    Gen.Redundant.inject ~seed:21L ~fraction:0.3
      (Gen.Arith.wallace_multiplier ~width:16)
  in
  let _result, stats = Sweep.Stp_sweep.sweep net in
  {
    (empty_row "sweep-mult16" 1) with
    runs = 1;
    wall_s = stats.Sweep.Stats.sat_time;
    decisions = stats.Sweep.Stats.sat_decisions;
    conflicts = stats.Sweep.Stats.sat_conflicts;
    propagations = stats.Sweep.Stats.sat_propagations;
    learned = stats.Sweep.Stats.sat_learned;
    unsat = stats.Sweep.Stats.sat_unsat;
    sat = stats.Sweep.Stats.sat_sat;
    unknown = stats.Sweep.Stats.sat_undet;
  }

let all_suite_names = Gen.Cnf.suite_names @ [ "incremental"; "sweep" ]

let run_suite ~min_time = function
  | "incremental" -> run_incremental ()
  | "sweep" -> run_sweep ()
  | name -> run_cnf_suite ~min_time name (Gen.Cnf.suite name)

let print_table rows =
  Printf.printf "%-16s %6s %10s %12s %12s %14s\n" "suite" "runs" "wall_s"
    "conflicts" "conf/sec" "props/sec";
  print_endline (String.make 75 '-');
  List.iter
    (fun r ->
      let rate n = if r.wall_s > 0. then float_of_int n /. r.wall_s else 0. in
      Printf.printf "%-16s %6d %10.3f %12d %12.0f %14.0f\n" r.suite r.runs
        r.wall_s r.conflicts (rate r.conflicts) (rate r.propagations))
    rows

let run suites min_time json =
  Report.cli_guard @@ fun () ->
  let names =
    match suites with
    | None -> all_suite_names
    | Some s ->
      let names = String.split_on_char ',' s in
      List.iter
        (fun n ->
          if not (List.mem n all_suite_names) then begin
            Printf.eprintf "solver_bench: unknown suite %S (have: %s)\n" n
              (String.concat ", " all_suite_names);
            exit 2
          end)
        names;
      names
  in
  let rows = List.map (run_suite ~min_time) names in
  print_table rows;
  match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"solver_bench"
         @ [
             ("min_time_s", Float min_time);
             ("suites", List (List.map row_json rows));
           ]))

open Cmdliner

let suites =
  Arg.(
    value
    & opt (some string) None
    & info [ "suites" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated suite subset (php, xor, random3sat, incremental, \
           sweep). Default: all.")

let min_time =
  Arg.(
    value
    & opt float 0.2
    & info [ "min-time" ] ~docv:"SEC"
        ~doc:
          "Repeat each CNF suite until its cumulative wall time reaches \
           this, so rates on small instances are not timer noise.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the machine-readable report here.")

let cmd =
  Cmd.v
    (Cmd.info "solver_bench"
       ~doc:"Reproducible SAT-core benchmark suites with JSON reports")
    Term.(const run $ suites $ min_time $ json)

let () = exit (Cmd.eval cmd)
