(* Regenerates Table II: SAT sweeping on the HWMCC'15 / IWLS'05-family
   redundant benchmarks, baseline &fraig-style engine vs the STP engine.
   Reported per row, for both engines: resulting AND count, satisfiable
   SAT calls, total SAT calls, simulation runtime, total runtime, and
   the runtime ratio. Every result is CEC-verified against the input
   (the paper runs '&cec' the same way). *)

open Stp_sweep

let run ~names ~timeout ~verify ~certify ~json ~trace () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let suite =
    match names with
    | [] -> Gen.Suites.hwmcc ()
    | names -> List.map (fun n -> Report.load_network ~circuit:n ()) names
  in
  Printf.printf "Table II: SAT sweeping, &fraig-style baseline vs STP engine\n\n";
  let rows = ref [] in
  let json_rows = ref [] in
  let g_sat = ref ([], []) and g_total = ref ([], []) in
  let g_sim = ref ([], []) and g_time = ref ([], []) in
  let g_result = ref ([], []) in
  let push r (a, b) v w = r := (v :: a, w :: b) in
  List.iter
    (fun (name, net) ->
      (* Each engine run gets its own budget so a blown baseline sweep
         does not also starve the STP one. *)
      let swept_f, st_f = Sweep.Fraig.sweep ?timeout ~certify net in
      let swept_s, st_s = Sweep.Stp_sweep.sweep ?timeout ~certify net in
      (match (st_f.Sweep.Stats.budget_exhausted, st_s.Sweep.Stats.budget_exhausted) with
      | None, None -> ()
      | f, s ->
        let describe = function
          | Some { Sweep.Stats.reason; phase } ->
            Printf.sprintf "exhausted (%s) during %s" reason phase
          | None -> "in budget"
        in
        Printf.printf "%s: budget — fraig %s, stp %s\n" name (describe f)
          (describe s));
      if verify then begin
        (match Sweep.Cec.check net swept_f with
         | Sweep.Cec.Equivalent -> ()
         | _ -> failwith (name ^ ": fraig result failed CEC"));
        match Sweep.Cec.check net swept_s with
        | Sweep.Cec.Equivalent -> ()
        | _ -> failwith (name ^ ": stp result failed CEC")
      end;
      let open Sweep.Stats in
      push g_sat !g_sat (float_of_int st_f.sat_sat) (float_of_int st_s.sat_sat);
      push g_total !g_total
        (float_of_int (total_sat_calls st_f))
        (float_of_int (total_sat_calls st_s));
      push g_sim !g_sim (simulation_time st_f) (simulation_time st_s);
      push g_time !g_time st_f.total_time st_s.total_time;
      push g_result !g_result
        (float_of_int (Aig.Network.num_ands swept_f))
        (float_of_int (Aig.Network.num_ands swept_s));
      let engine_json swept st =
        Obs.Json.Obj
          (("result_ands", Obs.Json.Int (Aig.Network.num_ands swept))
          :: (match Sweep.Stats.to_json st with
             | Obs.Json.Obj fields -> fields
             | other -> [ ("sweep", other) ]))
      in
      json_rows :=
        Obs.Json.Obj
          [
            ("name", Obs.Json.String name);
            ("pis", Obs.Json.Int (Aig.Network.num_pis net));
            ("pos", Obs.Json.Int (Aig.Network.num_pos net));
            ("depth", Obs.Json.Int (Aig.Network.depth net));
            ("ands", Obs.Json.Int (Aig.Network.num_ands net));
            ("fraig", engine_json swept_f st_f);
            ("stp", engine_json swept_s st_s);
            ( "runtime_ratio_stp_over_fraig",
              Obs.Json.Float
                (st_s.total_time /. Float.max 1e-9 st_f.total_time) );
          ]
        :: !json_rows;
      rows :=
        [
          name;
          Printf.sprintf "%d/%d" (Aig.Network.num_pis net) (Aig.Network.num_pos net);
          string_of_int (Aig.Network.depth net);
          string_of_int (Aig.Network.num_ands net);
          Printf.sprintf "%d|%d"
            (Aig.Network.num_ands swept_f)
            (Aig.Network.num_ands swept_s);
          Printf.sprintf "%d|%d" st_f.sat_sat st_s.sat_sat;
          Printf.sprintf "%d|%d" (total_sat_calls st_f) (total_sat_calls st_s);
          Printf.sprintf "%s|%s"
            (Report.fmt_time (simulation_time st_f))
            (Report.fmt_time (simulation_time st_s));
          Printf.sprintf "%s|%s" (Report.fmt_time st_f.total_time)
            (Report.fmt_time st_s.total_time);
          Report.fmt_ratio
            (st_s.total_time /. Float.max 1e-9 st_f.total_time);
        ]
        :: !rows)
    suite;
  let header =
    [
      "Benchmark"; "PI/PO"; "Lev"; "Gate"; "Result f|s"; "SAT calls f|s";
      "Total calls f|s"; "Sim(s) f|s"; "Runtime(s) f|s"; "x";
    ]
  in
  print_string (Report.render_table ~header (List.rev !rows));
  let ratio (fs, ss) = Report.geomean ss /. Float.max 1e-9 (Report.geomean fs) in
  Printf.printf
    "\nGeo. mean (STP/fraig)  Result: %.2f  SAT calls: %.2f  Total calls: \
     %.2f  Sim time: %.2f  Runtime: %.2f\n"
    (ratio !g_result) (ratio !g_sat) (ratio !g_total) (ratio !g_sim)
    (ratio !g_time);
  Printf.printf
    "(paper: Result 1.00, SAT calls 0.09, Total calls 0.91, Sim time 1.99, \
     Runtime 0.65)\n";
  match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"table2"
         @ [
             ("verify", Bool verify);
             ("certify", Bool certify);
             ("benchmarks", List (List.rev !json_rows));
             ( "geomean_stp_over_fraig",
               Obj
                 [
                   ("result", Float (ratio !g_result));
                   ("sat_calls", Float (ratio !g_sat));
                   ("total_calls", Float (ratio !g_total));
                   ("sim_time", Float (ratio !g_sim));
                   ("runtime", Float (ratio !g_time));
                 ] );
           ]));
    Printf.printf "wrote: %s\n" path

open Cmdliner

let names =
  Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Benchmarks (default: all fifteen).")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Per-sweep wall-clock budget; exhausted sweeps degrade to partial \
           (still equivalent) results and report budget_exhausted.")

let verify =
  Arg.(value & flag & info [ "verify" ] ~doc:"CEC-verify every sweep against its input.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Run every sweep in certified mode (DRUP proof replay).")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream sweep progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate the paper's Table II (SAT sweeping)")
    Term.(
      const (fun n w v c j t ->
        run ~names:n ~timeout:w ~verify:v ~certify:c ~json:j ~trace:t ())
      $ names $ timeout $ verify $ certify $ json $ trace)

let () = exit (Cmd.eval cmd)
