(* Script-driven optimization flow CLI, ABC-style:

     dune exec bin/flow.exe -- --circuit oski2b1i --verify
     dune exec bin/flow.exe -- --aig design.aag -o out.aag
     dune exec bin/flow.exe -- --circuit voter \
       -c "sweep -e stp; rewrite; balance; sweep -e fraig; verify"

   Without -c, the legacy flags compile into the classic
   sweep -> rewrite -> balance script, so old invocations keep their
   behaviour (and their output network, for a fixed seed). Either way
   the pipeline runs through Pass.run_pipeline: one shared budget
   (--timeout), per-pass JSON records, and PR 3 degradation semantics
   across the whole script. *)

open Stp_sweep

let default_script ~engine ~no_rewrite ~no_balance ~verify =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (match engine with `Stp -> "sweep -e stp" | `Fraig -> "sweep -e fraig");
  if not no_rewrite then Buffer.add_string b "; rewrite";
  if not no_balance then Buffer.add_string b "; balance";
  if verify then Buffer.add_string b "; verify";
  Buffer.contents b

let run circuit file script engine domains sat_domains timeout verify certify
    output no_rewrite no_balance json trace () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let name, net = Report.load_network ?circuit ?file () in
  let script, passes =
    match script with
    | None ->
      let s = default_script ~engine ~no_rewrite ~no_balance ~verify in
      (s, Script.compile s)
    | Some s ->
      let passes = Script.compile s in
      (* --verify on top of a script appends a final CEC unless the
         script already ends with one. *)
      let ends_with_verify =
        match List.rev passes with
        | p :: _ -> p.Pass.name = "verify"
        | [] -> false
      in
      if verify && not ends_with_verify then
        (s ^ "; verify", passes @ Script.compile "verify")
      else (s, passes)
  in
  let echo s = print_string s; flush stdout in
  let ctx =
    Pass.create_ctx ~sim_domains:domains ~sat_domains ?timeout ~certify ~echo
      net
  in
  echo (Printf.sprintf "%-14s %s\n" name
          (Format.asprintf "%a" Aig.Network.pp_stats net));
  let t_flow = Obs.Clock.now () in
  let final, records = Pass.run_pipeline ctx passes net in
  let total_s = Obs.Clock.now () -. t_flow in
  (match output with
  | Some path ->
    Aig.Aiger.write_file path final;
    Printf.printf "wrote: %s\n" path
  | None -> ());
  (match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"flow"
         @ [
             ("circuit", String name);
             ("script", String script);
             ("domains", Int domains);
             ("certify", Bool certify);
             ("input", Aig.Network.stats_json net);
             ("output", Aig.Network.stats_json final);
           ]
         @ Pass.summary_json ctx records
         @ [ ("flow_total_s", Float total_s) ]));
    Printf.printf "wrote: %s\n" path);
  if Pass.any_different ctx then exit 1

open Cmdliner

let circuit =
  Arg.(value & opt (some string) None & info [ "circuit" ] ~doc:"Named benchmark.")

let file = Arg.(value & opt (some file) None & info [ "aig" ] ~doc:"ASCII AIGER file.")

let script =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "command" ] ~docv:"SCRIPT"
        ~doc:
          "Flow script, ABC-style: passes separated by ';', e.g. \
           $(b,\"sweep -e stp; rewrite; balance; verify\"). Available \
           passes: sweep, rewrite, balance, cleanup, verify, ps. \
           Overrides the legacy stage flags.")

let engine =
  Arg.(value & opt (enum [ ("stp", `Stp); ("fraig", `Fraig) ]) `Stp
       & info [ "engine"; "e" ] ~doc:"Sweeping engine (legacy flow; use -c for scripts).")
let domains =
  Arg.(value & opt int 1
       & info [ "domains"; "d" ]
           ~doc:"OCaml domains for the sweeper's bulk resimulation passes.")

let sat_domains =
  Arg.(value & opt int 0
       & info [ "sat-domains" ] ~docv:"N"
           ~doc:
             "Default solver-domain count for every sweep pass's parallel \
              SAT dispatch (0 = inline); a per-pass --sat-domains inside \
              -c overrides it.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the whole pipeline; on exhaustion the \
           current sweep degrades to structural translation, remaining \
           transform passes are skipped (and reported), and verify still \
           runs.")
let verify =
  Arg.(value & flag
       & info [ "verify" ] ~doc:"CEC-verify the result (appends a verify pass).")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Certified pipeline: solver answers in every sweep and every \
           verify CEC are accepted only with a replayed DRUP proof / \
           validated model.")

let output = Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Output AIGER path.")
let no_rewrite = Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Skip the rewrite stage (legacy flow).")
let no_balance = Arg.(value & flag & info [ "no-balance" ] ~doc:"Skip the balance stage (legacy flow).")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream sweep progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "flow" ~doc:"script-driven optimization flow (default: sweep -> rewrite -> balance)")
    Term.(const (fun a b c d e f g h i j k l m n ->
              run a b c d e f g h i j k l m n ())
          $ circuit $ file $ script $ engine $ domains $ sat_domains $ timeout
          $ verify $ certify $ output $ no_rewrite $ no_balance $ json $ trace)

let () = exit (Cmd.eval cmd)
