(* Full optimization flow CLI: STP sweep -> exact rewrite -> balance,
   with CEC verification and per-stage statistics.

     dune exec bin/flow.exe -- -c oski2b1i --verify
     dune exec bin/flow.exe -- --aig design.aag -o out.aag
*)

open Stp_sweep

let load ~circuit ~file =
  match (circuit, file) with
  | Some name, None -> (
    (name, try Gen.Suites.hwmcc_by_name name
     with Not_found -> Gen.Suites.epfl_by_name name))
  | None, Some path -> (Filename.basename path, Aig.Aiger.read_file path)
  | _ ->
    prerr_endline "exactly one of --circuit or --aig is required";
    exit 2

let stage_json name n =
  Obs.Json.Obj
    [
      ("stage", Obs.Json.String name);
      ("ands", Obs.Json.Int (Aig.Network.num_ands n));
      ("depth", Obs.Json.Int (Aig.Network.depth n));
    ]

let run circuit file engine domains timeout verify certify output no_rewrite
    no_balance json trace () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let name, net = load ~circuit ~file in
  let show stage n =
    Printf.printf "%-14s %s\n%!" stage (Format.asprintf "%a" Aig.Network.pp_stats n)
  in
  let t_flow = Obs.Clock.now () in
  let stages = ref [ stage_json "input" net ] in
  show name net;
  let swept, stats =
    match engine with
    | `Stp -> Sweep.Stp_sweep.sweep ~sim_domains:domains ?timeout ~certify net
    | `Fraig -> Sweep.Fraig.sweep ~sim_domains:domains ?timeout ~certify net
  in
  show "sweep" swept;
  Printf.printf "  %s\n" (Format.asprintf "%a" Sweep.Stats.pp stats);
  if certify then
    Printf.printf "  certificates: unsat=%d models=%d rejected=%d\n"
      stats.Sweep.Stats.certified_unsat stats.Sweep.Stats.certified_models
      stats.Sweep.Stats.certificate_rejected;
  (match stats.Sweep.Stats.budget_exhausted with
  | Some { Sweep.Stats.reason; phase } ->
    Printf.printf
      "  budget exhausted (%s) during %s — partial sweep, every applied \
       merge is proven\n"
      reason phase
  | None -> ());
  stages := stage_json "sweep" swept :: !stages;
  let rewritten =
    if no_rewrite then swept
    else begin
      let r, st = Synth.Rewrite.rewrite swept in
      show "rewrite" r;
      Printf.printf "  applied=%d classes=%d\n" st.Synth.Rewrite.applied
        st.Synth.Rewrite.classes_synthesized;
      stages := stage_json "rewrite" r :: !stages;
      r
    end
  in
  let final =
    if no_balance then rewritten
    else begin
      let b, _ = Aig.Balance.balance rewritten in
      show "balance" b;
      stages := stage_json "balance" b :: !stages;
      b
    end
  in
  let cec =
    if not verify then None
    else
      (* The verification oracle is not itself a fault target: with
         STP_SWEEP_FAULTS armed this check judges the degraded flow,
         so it runs with injection suspended. *)
      match Obs.Fault.bypass (fun () -> Sweep.Cec.check net final) with
      | Sweep.Cec.Equivalent ->
        print_endline "cec: equivalent";
        Some "equivalent"
      | Sweep.Cec.Different { po; _ } ->
        Printf.printf "cec: DIFFERENT at output %d\n" po;
        Some "different"
      | Sweep.Cec.Undetermined po ->
        Printf.printf "cec: undetermined at output %d\n" po;
        Some "undetermined"
  in
  let total_s = Obs.Clock.now () -. t_flow in
  (match output with
  | Some path ->
    Aig.Aiger.write_file path final;
    Printf.printf "wrote: %s\n" path
  | None -> ());
  (match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"flow"
         @ [
             ("circuit", String name);
             ("engine", String (match engine with `Stp -> "stp" | `Fraig -> "fraig"));
             ("domains", Int domains);
             ("certify", Bool certify);
             ("stages", List (List.rev !stages));
             ("sweep", Sweep.Stats.to_json stats);
             ( "cec",
               match cec with Some s -> String s | None -> Null );
             ("flow_total_s", Float total_s);
           ]));
    Printf.printf "wrote: %s\n" path);
  if cec = Some "different" then exit 1

open Cmdliner

let circuit = Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~doc:"Named benchmark.")
let file = Arg.(value & opt (some file) None & info [ "aig" ] ~doc:"ASCII AIGER file.")
let engine =
  Arg.(value & opt (enum [ ("stp", `Stp); ("fraig", `Fraig) ]) `Stp
       & info [ "engine"; "e" ] ~doc:"Sweeping engine.")
let domains =
  Arg.(value & opt int 1
       & info [ "domains"; "d" ]
           ~doc:"OCaml domains for the sweeper's bulk resimulation passes.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the sweep stage; on exhaustion the sweep \
           degrades to structural translation and the flow continues.")
let verify = Arg.(value & flag & info [ "verify" ] ~doc:"CEC-verify the result.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Certified sweep stage: solver answers are accepted only with a \
           replayed DRUP proof / validated model.")

let output = Arg.(value & opt (some string) None & info [ "output"; "o" ] ~doc:"Output AIGER path.")
let no_rewrite = Arg.(value & flag & info [ "no-rewrite" ] ~doc:"Skip the rewrite stage.")
let no_balance = Arg.(value & flag & info [ "no-balance" ] ~doc:"Skip the balance stage.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Stream sweep progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "flow" ~doc:"sweep -> rewrite -> balance optimization flow")
    Term.(const (fun a b c d e f g h i j k l -> run a b c d e f g h i j k l ())
          $ circuit $ file $ engine $ domains $ timeout $ verify $ certify
          $ output $ no_rewrite $ no_balance $ json $ trace)

let () = exit (Cmd.eval cmd)
