(* The 'simulator' command, after ALSO's: simulate a circuit (a named
   generated benchmark or an ASCII-AIGER file) with a chosen engine and
   report runtime plus a signature digest. *)

open Stp_sweep

let load ~circuit ~file =
  match (circuit, file) with
  | Some name, None -> (
    (name, try Gen.Suites.epfl_by_name name
     with Not_found -> Gen.Suites.hwmcc_by_name name))
  | None, Some path -> (Filename.basename path, Aig.Aiger.read_file path)
  | _ ->
    prerr_endline "exactly one of --circuit or --aig is required";
    exit 2

let digest tbl =
  (* Cheap order-dependent fold so runs are comparable across engines. *)
  Array.fold_left
    (fun acc s -> Array.fold_left (fun acc w -> (acc * 31) + w land 0xFFFF) acc s)
    17 tbl

let run circuit file engine num_patterns k mode seed () =
  Report.cli_guard @@ fun () ->
  let name, aig = load ~circuit ~file in
  let pats =
    Sim.Patterns.random ~seed:(Int64.of_int seed)
      ~num_pis:(Aig.Network.num_pis aig) ~num_patterns
  in
  Printf.printf "circuit %s: %s\n" name
    (Format.asprintf "%a" Aig.Network.pp_stats aig);
  match mode with
  | `Aig ->
    let t, tbl =
      Report.time (fun () ->
          match engine with
          | `Stp -> Sim.Stp_sim.simulate_aig aig pats
          | `Bitwise -> Sim.Bitwise.simulate_aig aig pats)
    in
    Printf.printf "aig sim: %d patterns, %.3fs, digest %08x\n" num_patterns t
      (digest tbl land 0xFFFFFFFF)
  | `Lut ->
    let lut = Klut.Mapper.map ~k aig in
    Printf.printf "mapped: %s\n" (Format.asprintf "%a" Klut.Network.pp_stats lut);
    let t, tbl =
      Report.time (fun () ->
          match engine with
          | `Stp -> Sim.Stp_sim.simulate_klut lut pats
          | `Bitwise -> Sim.Bitwise.simulate_klut lut pats)
    in
    Printf.printf "%d-lut sim: %d patterns, %.3fs, digest %08x\n" k
      num_patterns t
      (digest tbl land 0xFFFFFFFF)

open Cmdliner

let circuit =
  Arg.(value & opt (some string) None & info [ "circuit"; "c" ] ~doc:"Named generated benchmark.")

let file = Arg.(value & opt (some file) None & info [ "aig" ] ~doc:"ASCII AIGER file.")

let engine =
  Arg.(value & opt (enum [ ("stp", `Stp); ("bitwise", `Bitwise) ]) `Stp
       & info [ "engine"; "e" ] ~doc:"Simulation engine.")

let patterns = Arg.(value & opt int 10_000 & info [ "patterns"; "p" ] ~doc:"Pattern count.")
let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"LUT size for --mode lut.")

let mode =
  Arg.(value & opt (enum [ ("aig", `Aig); ("lut", `Lut) ]) `Lut
       & info [ "mode"; "m" ] ~doc:"Simulate the AIG directly or its k-LUT mapping.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Pattern seed.")

let cmd =
  Cmd.v
    (Cmd.info "simulator" ~doc:"Simulate a circuit with the STP or bitwise engine")
    Term.(const (fun a b c d e f g -> run a b c d e f g ())
          $ circuit $ file $ engine $ patterns $ k $ mode $ seed)

let () = exit (Cmd.eval cmd)
