(* sweepd: the sweep service daemon.

   Listens on a Unix-domain socket for framed pipeline requests
   (bin/sweep_cli.exe --connect is the matching client), runs each
   through Pass.run_pipeline on a pool of worker domains, and answers
   with the same schema-2 report the CLIs write. An optional on-disk
   cache (--cache DIR) carries proven equivalences and counterexamples
   across requests and across daemon restarts; --paranoid replays every
   stored DRUP certificate before a hit is served.

   SIGTERM/SIGINT drain: in-flight requests finish, connections close
   at the next frame boundary, the socket is unlinked and the process
   exits 0. *)

open Stp_sweep

let run socket domains cache_dir paranoid request_timeout global_timeout trace
    () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  let stop = Atomic.make false in
  let quit _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  (* A peer that hangs up mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let echo s = Printf.printf "sweepd: %s\n%!" s in
  let cache = Option.map (fun dir -> Svc.Cache.open_ ~dir) cache_dir in
  (match cache with
  | Some c -> echo (Printf.sprintf "cache: %s" (Svc.Cache.dir c))
  | None -> ());
  let outcome =
    Svc.Server.run ~stop
      {
        Svc.Server.socket_path = socket;
        domains;
        cache;
        paranoid;
        request_timeout;
        global_timeout;
        echo;
      }
  in
  (match cache with
  | Some c ->
    let t = Svc.Cache.counters c in
    echo
      (Printf.sprintf "cache: %d hits, %d misses, %d stores, %d quarantined"
         t.Svc.Cache.c_hits t.c_misses t.c_stores t.c_quarantined)
  | None -> ());
  echo
    (Printf.sprintf "drained: %d served, %d errors, %d dropped"
       outcome.Svc.Server.served outcome.errors outcome.dropped)

open Cmdliner

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (created, unlinked on exit).")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains; up to $(docv) requests run in parallel.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed equivalence cache directory (created if \
           missing). Entries carry DRUP certificates or counterexamples \
           and survive restarts; corrupt entries are quarantined, never \
           served.")

let paranoid =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Replay every cached DRUP certificate through the independent \
           checker before serving the hit; rejected certificates degrade \
           to fresh SAT queries and count into cache_rejected.")

let request_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-timeout" ] ~docv:"SEC"
        ~doc:
          "Per-request budget cap; a request's own timeout_s can only \
           shrink it.")

let global_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "global-timeout" ] ~docv:"SEC"
        ~doc:"Stop serving and drain after $(docv) seconds of lifetime.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Stream progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "sweepd" ~doc:"serve sweep pipelines over a Unix socket")
    Term.(
      const (fun a b c d e f g -> run a b c d e f g ())
      $ socket $ domains $ cache_dir $ paranoid $ request_timeout
      $ global_timeout $ trace)

let () = exit (Cmd.eval cmd)
