(* sweepd: the sweep service daemon.

   Listens on a Unix-domain socket for framed pipeline requests
   (bin/sweep_cli.exe --connect is the matching client), runs each
   through Pass.run_pipeline on a pool of worker domains, and answers
   with the same schema-2 report the CLIs write.

   Overload safety (see DESIGN.md "Overload & eviction"): admission
   control bounds the accept queue (--queue-depth) and sheds beyond it
   with typed R_overloaded answers carrying a --retry-after hint;
   --idle-timeout / --io-timeout bound how long any one peer can hold
   a worker; --wall-pool / --conflict-pool / --prop-pool arm a
   daemon-wide budget pool that leases each request a fair share of
   what is actually left — pool exhaustion degrades requests to proven
   partial results, never errors. An optional on-disk cache
   (--cache DIR) carries proven equivalences across requests and
   restarts, bounded by --cache-max-bytes / --cache-max-entries with
   crash-safe LRU eviction; --paranoid replays every stored DRUP
   certificate before a hit is served.

   Start-up recovers from a predecessor's crash: a socket file with no
   listener behind it is unlinked and rebound; a live listener makes
   this start fail fast (exit 2) instead of stealing the socket.

   SIGTERM/SIGINT drain: in-flight requests finish, queued connections
   are shed with R_overloaded, the socket is unlinked and the process
   exits 0. *)

open Stp_sweep

let run socket domains queue_depth idle_timeout io_timeout retry_after
    wall_pool conflict_pool prop_pool cache_dir cache_max_bytes
    cache_max_entries paranoid request_timeout global_timeout trace () =
  Report.cli_guard @@ fun () ->
  if trace then Obs.Trace.enable ();
  (* Stale-socket recovery: probe before binding. A live daemon on the
     same path is a configuration error — stealing its socket would
     orphan its clients — so that start refuses. A dead one's leftover
     is unlinked and the path reused. *)
  (match Svc.Client.probe socket with
  | `Live ->
    Printf.eprintf
      "sweepd: another daemon is already listening on %s; refusing to start\n"
      socket;
    exit 2
  | `Stale ->
    Printf.printf
      "sweepd: removing stale socket %s (no listener behind it)\n%!" socket;
    (try Unix.unlink socket with Unix.Unix_error _ -> ())
  | `Absent -> ());
  let stop = Atomic.make false in
  let quit _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  (* A peer that hangs up mid-response must not kill the daemon.
     Server.run re-asserts this; doing it before the first bind closes
     the window. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let echo s = Printf.printf "sweepd: %s\n%!" s in
  let cache =
    Option.map
      (fun dir ->
        Svc.Cache.open_ ?max_bytes:cache_max_bytes
          ?max_entries:cache_max_entries dir)
      cache_dir
  in
  (match cache with
  | Some c ->
    echo
      (Printf.sprintf "cache: %s (%d entries, %d bytes resident)"
         (Svc.Cache.dir c) (Svc.Cache.entries c) (Svc.Cache.bytes c))
  | None -> ());
  let pool =
    if wall_pool = None && conflict_pool = None && prop_pool = None then None
    else
      Some
        (Obs.Pool.create ?wall_s:wall_pool ?conflicts:conflict_pool
           ?propagations:prop_pool ())
  in
  let outcome =
    Svc.Server.run ~stop
      {
        Svc.Server.socket_path = socket;
        domains;
        queue_depth;
        idle_timeout;
        io_timeout;
        retry_after_s = retry_after;
        pool;
        cache;
        paranoid;
        request_timeout;
        global_timeout;
        echo;
      }
  in
  (match cache with
  | Some c ->
    let t = Svc.Cache.counters c in
    echo
      (Printf.sprintf
         "cache: %d hits, %d misses, %d stores, %d quarantined, %d evicted"
         t.Svc.Cache.c_hits t.c_misses t.c_stores t.c_quarantined t.c_evictions)
  | None -> ());
  (match pool with
  | Some p ->
    let s = Obs.Pool.stats p in
    echo
      (Printf.sprintf
         "pool: %d leases (%d starved), %.3fs wall / %d conflicts consumed"
         s.Obs.Pool.s_leases s.s_starved s.s_wall_consumed s.s_conflicts_consumed)
  | None -> ());
  echo
    (Printf.sprintf
       "drained: %d served, %d errors, %d dropped, %d shed, %d timeouts, %d \
        write aborts"
       outcome.Svc.Server.served outcome.errors outcome.dropped outcome.shed
       outcome.timeouts outcome.write_aborts)

open Cmdliner

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (created, unlinked on exit).")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains; up to $(docv) requests run in parallel.")

let queue_depth =
  Arg.(
    value & opt int 16
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Accepted connections waiting for a worker before admission \
           control sheds new ones with a typed overloaded answer.")

let idle_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "idle-timeout" ] ~docv:"SEC"
        ~doc:
          "Hang up on connections idle between requests for $(docv) \
           seconds; unset = patient.")

let io_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "io-timeout" ] ~docv:"SEC"
        ~doc:
          "Socket read/write deadline: a peer stalling mid-frame or not \
           draining its response is aborted after $(docv) seconds.")

let retry_after =
  Arg.(
    value & opt float 0.2
    & info [ "retry-after" ] ~docv:"SEC"
        ~doc:"Backoff hint carried by every overloaded answer.")

let wall_pool =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-pool" ] ~docv:"SEC"
        ~doc:
          "Daemon-wide wall-clock pool: concurrent requests lease fair \
           shares of what remains; an exhausted pool degrades requests to \
           proven partial results.")

let conflict_pool =
  Arg.(
    value
    & opt (some int) None
    & info [ "conflict-pool" ] ~docv:"N"
        ~doc:"Daemon-wide SAT-conflict pool (see --wall-pool).")

let prop_pool =
  Arg.(
    value
    & opt (some int) None
    & info [ "prop-pool" ] ~docv:"N"
        ~doc:"Daemon-wide SAT-propagation pool (see --wall-pool).")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed equivalence cache directory (created if \
           missing). Entries carry DRUP certificates or counterexamples \
           and survive restarts; corrupt entries are quarantined, never \
           served.")

let cache_max_bytes =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Hard ceiling on resident cache bytes; least-recently-used \
           entries are evicted (crash-safely) to stay under it.")

let cache_max_entries =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-entries" ] ~docv:"N"
        ~doc:"Hard ceiling on resident cache entries (see --cache-max-bytes).")

let paranoid =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Replay every cached DRUP certificate through the independent \
           checker before serving the hit; rejected certificates degrade \
           to fresh SAT queries and count into cache_rejected.")

let request_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-timeout" ] ~docv:"SEC"
        ~doc:
          "Per-request budget cap; a request's own timeout_s can only \
           shrink it.")

let global_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "global-timeout" ] ~docv:"SEC"
        ~doc:"Stop serving and drain after $(docv) seconds of lifetime.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Stream progress to stderr (or STP_SWEEP_TRACE=1).")

let cmd =
  Cmd.v
    (Cmd.info "sweepd" ~doc:"serve sweep pipelines over a Unix socket")
    Term.(
      const (fun a b c d e f g h i j k l m n o p ->
          run a b c d e f g h i j k l m n o p ())
      $ socket $ domains $ queue_depth $ idle_timeout $ io_timeout
      $ retry_after $ wall_pool $ conflict_pool $ prop_pool $ cache_dir
      $ cache_max_bytes $ cache_max_entries $ paranoid $ request_timeout
      $ global_timeout $ trace)

let () = exit (Cmd.eval cmd)
