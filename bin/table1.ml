(* Regenerates Table I: circuit simulation runtime on the EPFL-family
   benchmarks. For each circuit we time four engines on one shared
   pattern set:

     T_A  - AIG simulation, bitwise baseline vs STP engine
     T_L  - 6-LUT simulation, per-bit baseline (what an off-the-shelf
            bitwise simulator does to k-LUTs) vs STP matrix pass

   The paper uses 10^6 random patterns on a 3.2 GHz M1; we default to
   10^4 (override with --patterns) so the whole table takes minutes.
   Both engines always see identical patterns, so the ratios ("x"
   columns) are directly comparable with the paper's. *)

open Stp_sweep

let run ~num_patterns ~domains ~names ~json () =
  let suite =
    match names with
    | [] -> Gen.Suites.epfl ()
    | names -> List.map (fun n -> (n, Gen.Suites.epfl_by_name n)) names
  in
  Printf.printf
    "Table I: circuit simulation, %d random patterns per benchmark, %d domain%s\n\n"
    num_patterns domains
    (if domains = 1 then "" else "s");
  let rows = ref [] in
  let json_rows = ref [] in
  let ratios_ta = ref [] and ratios_tl = ref [] in
  List.iter
    (fun (name, aig) ->
      let lut = Klut.Mapper.map ~k:6 aig in
      let pats =
        Sim.Patterns.random ~seed:0xEB5L ~num_pis:(Aig.Network.num_pis aig)
          ~num_patterns
      in
      let t_a_bitwise =
        Report.time_repeat (fun () ->
            ignore (Sim.Bitwise.simulate_aig ~domains aig pats))
      in
      let t_a_stp =
        Report.time_repeat (fun () ->
            ignore (Sim.Stp_sim.simulate_aig ~domains aig pats))
      in
      let t_l_bitwise =
        Report.time_repeat (fun () ->
            ignore (Sim.Bitwise.simulate_klut ~domains lut pats))
      in
      let t_l_stp =
        Report.time_repeat (fun () ->
            ignore (Sim.Stp_sim.simulate_klut ~domains lut pats))
      in
      (* Cross-check while we are here: engines must agree bit-exactly,
         and the sharded run must match the sequential reference. *)
      let ref_sig = Sim.Bitwise.simulate_klut lut pats in
      let stp_sig = Sim.Stp_sim.simulate_klut ~domains lut pats in
      if ref_sig <> stp_sig then
        failwith (name ^ ": engines disagree — benchmark invalid");
      let xa = t_a_bitwise /. t_a_stp and xl = t_l_bitwise /. t_l_stp in
      ratios_ta := xa :: !ratios_ta;
      ratios_tl := xl :: !ratios_tl;
      let open Obs.Json in
      json_rows :=
        Obj
          [
            ("name", String name);
            ("ands", Int (Aig.Network.num_ands aig));
            ("luts", Int (Klut.Network.num_luts lut));
            ("t_a_bitwise_s", Float t_a_bitwise);
            ("t_a_stp_s", Float t_a_stp);
            ("t_l_bitwise_s", Float t_l_bitwise);
            ("t_l_stp_s", Float t_l_stp);
            ("speedup_t_a", Float xa);
            ("speedup_t_l", Float xl);
          ]
        :: !json_rows;
      rows :=
        [
          name;
          string_of_int (Aig.Network.num_ands aig);
          string_of_int (Klut.Network.num_luts lut);
          Report.fmt_time t_a_bitwise;
          Report.fmt_time t_l_bitwise;
          Report.fmt_time t_a_stp;
          Report.fmt_ratio xa;
          Report.fmt_time t_l_stp;
          Report.fmt_ratio xl;
        ]
        :: !rows)
    suite;
  let header =
    [
      "Benchmark"; "ands"; "luts"; "base T_A(s)"; "base T_L(s)"; "STP T_A(s)";
      "x"; "STP T_L(s)"; "x";
    ]
  in
  print_string (Report.render_table ~header (List.rev !rows));
  Printf.printf "\nGeo. mean speedup  T_A: %.2fx   T_L: %.2fx\n"
    (Report.geomean !ratios_ta) (Report.geomean !ratios_tl);
  Printf.printf "(paper: T_A 0.99x, T_L 7.18x)\n";
  match json with
  | None -> ()
  | Some path ->
    let open Obs.Json in
    to_file path
      (Obj
         (Report.run_meta ~tool:"table1"
         @ [
             ("patterns", Int num_patterns);
             ("domains", Int domains);
             ("benchmarks", List (List.rev !json_rows));
             ( "geomean_speedup",
               Obj
                 [
                   ("t_a", Float (Report.geomean !ratios_ta));
                   ("t_l", Float (Report.geomean !ratios_tl));
                 ] );
           ]));
    Printf.printf "wrote: %s\n" path

open Cmdliner

let patterns =
  Arg.(value & opt int 10_000 & info [ "patterns"; "p" ] ~doc:"Random patterns to simulate.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains"; "d" ]
        ~doc:
          "OCaml domains for word-sharded parallel simulation (1 = \
           sequential). Results are bit-identical for any value.")

let names =
  Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Benchmarks (default: all twenty).")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write a machine-readable run report here.")

let cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table I (simulation runtime)")
    Term.(
      const (fun p d n j -> run ~num_patterns:p ~domains:d ~names:n ~json:j ())
      $ patterns $ domains $ names $ json)

let () = exit (Cmd.eval cmd)
