#!/bin/sh
# Reproducible solver bench run — the spirit of MiniSat's
# bench-satrace_06.sh: one command, a table on stdout, a JSON report
# for the archive. Every solver PR reruns this and ships the
# before/after table; the checked-in baseline lives at
# results/BENCH_solver.json.
#
#   ./bench/bench_solver.sh                  # all suites -> BENCH_solver.json
#   ./bench/bench_solver.sh --suites php,xor # CI smoke subset
#   OUT=results/BENCH_solver.json ./bench/bench_solver.sh   # refresh baseline
set -eu
cd "$(dirname "$0")/.."
OUT="${OUT:-BENCH_solver.json}"
dune build bin/solver_bench.exe
dune exec bin/solver_bench.exe -- --json "$OUT" "$@"
echo "report written to $OUT"
