#!/bin/sh
# Reproducible simulation-kernel bench run, companion to
# bench_solver.sh: one command, a table on stdout, a JSON report for
# the archive. Every simulator PR reruns this and ships the
# before/after table; the checked-in baseline lives at
# results/BENCH_sim.json. The harness refuses to time an engine that
# is not bit-identical to the reference, so a green run doubles as a
# correctness gate.
#
#   ./bench/bench_sim.sh                     # default run -> BENCH_sim.json
#   ./bench/bench_sim.sh --patterns 8192     # heavier fixture
#   OUT=results/BENCH_sim.json ./bench/bench_sim.sh   # refresh baseline
set -eu
cd "$(dirname "$0")/.."
OUT="${OUT:-BENCH_sim.json}"
dune build bin/sim_bench.exe
dune exec bin/sim_bench.exe -- --json "$OUT" "$@"
echo "report written to $OUT"
