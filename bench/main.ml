(* Bechamel micro-benchmarks: one group per paper table plus ablation
   groups for the design choices DESIGN.md calls out.

   - table1/*:    the four Table I engines on one mid-size benchmark
   - parallel/*:  word-sharded domain parallelism swept over 1/2/4 domains
   - kernel/*:    the compiled plan engine — compile vs. execute,
                  instruction styles, 1/2/4 domains
   - table2/*:    both sweepers on one redundant benchmark
   - cut-limit/*: Algorithm 1's [limit] parameter swept over 2..16
   - config/*:    engine-feature ablation (guided init, window refine)
   - tfi-bound/*: the candidate-comparison bound (paper's n = 1000)
   - window/*:    window leaf budget (paper: < 16)

   Absolute times are machine-specific; the interesting output is the
   ratio structure inside each group. `bin/table1.exe` and
   `bin/table2.exe` regenerate the full per-benchmark tables. *)

open Bechamel
open Toolkit
open Stp_sweep

(* ---- fixtures (built once) ---- *)

let sim_aig = Gen.Suites.epfl_by_name "sin"
let sim_lut = Klut.Mapper.map ~k:6 sim_aig

let sim_pats =
  Sim.Patterns.random ~seed:0xBE7CL
    ~num_pis:(Aig.Network.num_pis sim_aig)
    ~num_patterns:2048

let sweep_net =
  Gen.Redundant.inject ~seed:21L ~fraction:0.3
    (Gen.Arith.carry_lookahead_adder ~width:32)

let cut_net = Klut.Mapper.map ~k:4 (Gen.Suites.epfl_by_name "max")

let cut_pats =
  Sim.Patterns.random ~seed:0x51AL
    ~num_pis:(Klut.Network.num_pis cut_net)
    ~num_patterns:512

let cut_targets =
  (* A spread of LUT nodes across the network. *)
  let luts = ref [] in
  Klut.Network.iter_luts cut_net (fun n -> luts := n :: !luts);
  let arr = Array.of_list (List.rev !luts) in
  List.init 8 (fun i -> arr.(i * (Array.length arr / 8)))

let table1 =
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"aig-bitwise"
        (Staged.stage (fun () -> Sim.Bitwise.simulate_aig sim_aig sim_pats));
      Test.make ~name:"aig-stp"
        (Staged.stage (fun () -> Sim.Stp_sim.simulate_aig sim_aig sim_pats));
      Test.make ~name:"lut6-bitwise"
        (Staged.stage (fun () -> Sim.Bitwise.simulate_klut sim_lut sim_pats));
      Test.make ~name:"lut6-stp"
        (Staged.stage (fun () -> Sim.Stp_sim.simulate_klut sim_lut sim_pats));
    ]

let parallel =
  (* Word-range sharding across OCaml domains, on the table1 fixture.
     2048 patterns = 64 words split across the domains; the interesting
     output is time(1 domain) / time(4 domains) per engine — roughly the
     core count on an unloaded multicore box, and flat on one core. All
     variants produce bit-identical tables, so only time moves. *)
  let doms = [ 1; 2; 4 ] in
  Test.make_grouped ~name:"parallel"
    [
      Test.make_indexed ~name:"aig-bitwise" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Bitwise.simulate_aig ~domains:d sim_aig sim_pats));
      Test.make_indexed ~name:"lut6-bitwise" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Bitwise.simulate_klut ~domains:d sim_lut sim_pats));
      Test.make_indexed ~name:"lut6-stp" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Stp_sim.simulate_klut ~domains:d sim_lut sim_pats));
      (* Whole-sweep SAT dispatch across solver domains (the PR 7
         tentpole). On one core the interesting output is the dispatch
         overhead vs. sweep:1; on a multicore box, the SAT-phase
         speedup. *)
      Test.make_indexed ~name:"sweep" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sweep.Stp_sweep.sweep ~sat_domains:d sweep_net));
    ]

let kernel =
  (* The compiled-plan engine on its own: compilation priced separately
     from execution, and the block executor's word sharding swept over
     1/2/4 domains. The public simulate_* wrappers compile a fresh plan
     per call, so exec-* vs. the table1/parallel groups shows the
     compile overhead the sweep engine amortizes by patching one
     long-lived plan. Both k-LUT instruction styles run on the same
     executor, so lut6-stp vs. lut6-bitblast is purely the paper's
     cascade-vs-bit-blast instruction selection. *)
  let doms = [ 1; 2; 4 ] in
  let aig_plan = Sim.Kernel.compile_aig sim_aig in
  let stp_plan = Sim.Kernel.compile_klut ~style:`Stp sim_lut in
  let blast_plan = Sim.Kernel.compile_klut ~style:`Bitblast sim_lut in
  Test.make_grouped ~name:"kernel"
    [
      Test.make ~name:"compile-aig"
        (Staged.stage (fun () -> Sim.Kernel.compile_aig sim_aig));
      Test.make ~name:"compile-lut6-stp"
        (Staged.stage (fun () ->
             (* A private cache so every run compiles for real instead
                of hitting the process-wide shared cache. *)
             Sim.Kernel.compile_klut
               ~cache:(Sim.Kernel.Cache.create ())
               ~style:`Stp sim_lut));
      Test.make_indexed ~name:"exec-aig" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Kernel.execute ~domains:d aig_plan sim_pats));
      Test.make_indexed ~name:"exec-lut6-stp" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Kernel.execute ~domains:d stp_plan sim_pats));
      Test.make_indexed ~name:"exec-lut6-bitblast" ~args:doms (fun d ->
          Staged.stage (fun () ->
              Sim.Kernel.execute ~domains:d blast_plan sim_pats));
    ]

let table2 =
  Test.make_grouped ~name:"table2"
    [
      Test.make ~name:"fraig"
        (Staged.stage (fun () -> Sweep.Fraig.sweep sweep_net));
      Test.make ~name:"stp"
        (Staged.stage (fun () -> Sweep.Stp_sweep.sweep sweep_net));
    ]

let cut_limit =
  Test.make_indexed ~name:"cut-limit" ~args:[ 2; 4; 8; 16 ] (fun limit ->
      Staged.stage (fun () ->
          let { Sim.Circuit_cut.network; node_map; _ } =
            Sim.Circuit_cut.cut cut_net ~limit ~targets:cut_targets
          in
          let tbl = Sim.Stp_sim.simulate_klut network cut_pats in
          List.map (fun t -> tbl.(node_map.(t))) cut_targets))

let config_ablation =
  let run cfg () = Sweep.Engine.run ~config:cfg sweep_net in
  let base = Sweep.Engine.fraig_config in
  Test.make_grouped ~name:"config"
    [
      Test.make ~name:"baseline" (Staged.stage (run base));
      Test.make ~name:"guided-init"
        (Staged.stage
           (run { base with Sweep.Engine.guided_init = true; guided_queries = 192 }));
      Test.make ~name:"window-refine"
        (Staged.stage (run { base with Sweep.Engine.window_refine = true }));
      Test.make ~name:"guided+window"
        (Staged.stage (run Sweep.Engine.stp_config));
    ]

let tfi_bound =
  Test.make_indexed ~name:"tfi-bound" ~args:[ 10; 100; 1000 ] (fun bound ->
      Staged.stage (fun () ->
          Sweep.Engine.run
            ~config:{ Sweep.Engine.stp_config with Sweep.Engine.max_compares = bound }
            sweep_net))

let window_leaves =
  Test.make_indexed ~name:"window-leaves" ~args:[ 6; 10; 16 ] (fun leaves ->
      Staged.stage (fun () ->
          Sweep.Engine.run
            ~config:
              { Sweep.Engine.stp_config with Sweep.Engine.window_max_leaves = leaves }
            sweep_net))

let mode_s =
  (* Algorithm 1's reason to exist: getting a handful of signatures via
     the circuit cut (mode s) against simulating every node (mode a).
     The cut itself amortizes across repeated simulations (that is how
     the sweeper uses it), so it is built once in the fixture; a
     separate entry prices the cut construction. *)
  let cut =
    Sim.Circuit_cut.cut cut_net ~limit:9 ~targets:cut_targets
  in
  Test.make_grouped ~name:"algorithm1"
    [
      Test.make ~name:"mode-a-all-nodes"
        (Staged.stage (fun () -> Sim.Stp_sim.simulate_klut cut_net cut_pats));
      Test.make ~name:"mode-s-simulate-roots"
        (Staged.stage (fun () ->
             Sim.Stp_sim.simulate_klut cut.Sim.Circuit_cut.network cut_pats));
      Test.make ~name:"mode-s-including-cut"
        (Staged.stage (fun () ->
             Sim.Stp_sim.simulate_specified cut_net cut_pats
               ~targets:cut_targets));
    ]

let incremental =
  (* The counter-example resimulation pattern: one full initial pass,
     then 32 appended patterns handled by a tail refresh (incremental)
     or a second full pass (baseline). *)
  let base_pats () =
    Sim.Patterns.random ~seed:77L
      ~num_pis:(Aig.Network.num_pis sim_aig)
      ~num_patterns:2048
  in
  let appends k f =
    for i = 1 to k do
      f (Array.init (Aig.Network.num_pis sim_aig) (fun j -> (i + j) mod 3 = 0))
    done
  in
  Test.make_grouped ~name:"resim"
    [
      Test.make ~name:"incremental-tail"
        (Staged.stage (fun () ->
             let inc = Sim.Incremental.create sim_aig (base_pats ()) in
             appends 32 (Sim.Incremental.add_pattern inc);
             Sim.Incremental.refresh inc));
      Test.make ~name:"full-resim"
        (Staged.stage (fun () ->
             let pats = base_pats () in
             ignore (Sim.Bitwise.simulate_aig sim_aig pats);
             appends 32 (Sim.Patterns.add_pattern pats);
             ignore (Sim.Bitwise.simulate_aig sim_aig pats)));
    ]

let all_tests =
  Test.make_grouped ~name:"stp_sweep"
    [
      table1; parallel; kernel; table2; cut_limit; config_ablation; tfi_bound;
      window_leaves; mode_s; incremental;
    ]

let () =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Printf.printf "%-40s %15s %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 65 '-');
  List.iter
    (fun (name, ns, r2) ->
      let time_str =
        if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-40s %15s %8.4f\n" name time_str r2)
    rows
