(* Certification tests: the DRUP checker against the solver's proof
   stream. Every UNSAT answer must come with a replayable refutation,
   every SAT answer with a model the checker accepts; corrupting any
   single proof line must make the standalone replay reject; and the
   lying-solver fault sites must be caught by certified mode. *)

module S = Sat.Solver
module D = Sat.Dimacs
module Dr = Sat.Drup
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_faults spec f =
  (match Obs.Fault.configure spec with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e);
  Fun.protect ~finally:Obs.Fault.reset f

(* A solver with an attached checker; returns both. *)
let certified_solver () =
  let s = S.create () in
  let c = Dr.create () in
  Dr.attach c s;
  (s, c)

let random_cnf rng ~num_vars ~num_clauses =
  List.init num_clauses (fun _ ->
      List.init 3 (fun _ ->
          S.lit_of (Rng.int rng num_vars) (Rng.bool rng))
      |> List.sort_uniq compare)

let declare_vars s clauses =
  let max_var =
    List.fold_left
      (List.fold_left (fun m l -> max m (l lsr 1)))
      (-1) clauses
  in
  for _ = 0 to max_var - S.num_vars s do
    ignore (S.new_var s)
  done

let php_clauses ~pigeons ~holes =
  (* Variable p(i,j) = i * holes + j. *)
  let v i j = S.lit_of ((i * holes) + j) false in
  let at_least =
    List.init pigeons (fun i -> List.init holes (fun j -> v i j))
  in
  let at_most = ref [] in
  for j = 0 to holes - 1 do
    for i1 = 0 to pigeons - 1 do
      for i2 = i1 + 1 to pigeons - 1 do
        at_most := [ S.neg (v i1 j); S.neg (v i2 j) ] :: !at_most
      done
    done
  done;
  at_least @ !at_most

(* ---- online certification over random CNF ---- *)

let arb_cnf =
  QCheck.make
    ~print:(fun (seed, nv, nc) ->
      Printf.sprintf "seed=%Ld vars=%d clauses=%d" seed nv nc)
    QCheck.Gen.(
      let* seed = ui64 in
      let* nv = int_range 3 9 in
      (* Clause/variable ratios straddling the 3-SAT phase transition so
         both answers are exercised. *)
      let* nc = int_range nv (6 * nv) in
      return (seed, nv, nc))

let prop_certified_answers (seed, num_vars, num_clauses) =
  let rng = Rng.create seed in
  let clauses = random_cnf rng ~num_vars ~num_clauses in
  let s, c = certified_solver () in
  for _ = 1 to num_vars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  (match S.solve s with
  | S.Unsat ->
    (match Dr.certify_unsat c ~assumptions:[] with
     | Ok () -> ()
     | Error why -> Alcotest.failf "unsat not certified: %s" why)
  | S.Sat ->
    (match Dr.certify_model c ~value:(S.value s) with
     | Ok () -> ()
     | Error why -> Alcotest.failf "model rejected: %s" why);
    (* The model accessor is total over all declared variables. *)
    check_int "model is total" num_vars (Array.length (S.model s))
  | S.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown");
  (* An honest solver never has a derivation rejected. *)
  check_int "no rejections" 0 (Dr.num_rejected c);
  true

(* ---- certification across learnt-DB reduction and arena GC ---- *)

let test_certified_with_gc () =
  (* php(6,5) with the learnt ceiling pinned at the clamp minimum:
     reductions kill clauses mid-refutation and compaction recycles
     their arena slots while the proof is still being built. Deletions
     are streamed at kill time, before any compaction, so the checker's
     database stays in sync and the refutation must still certify. *)
  let s, c = certified_solver () in
  S.set_max_learnts s 2 (* clamps to 16 *);
  let clauses = php_clauses ~pigeons:6 ~holes:5 in
  declare_vars s clauses;
  List.iter (S.add_clause s) clauses;
  (match S.solve s with
   | S.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) must be unsat");
  let st = S.stats s in
  check "reductions fired" true (st.S.reductions > 0);
  check "arena GC fired" true (S.gc_count s > 0);
  (match Dr.certify_unsat c ~assumptions:[] with
   | Ok () -> ()
   | Error why -> Alcotest.failf "refutation with GC not certified: %s" why);
  check_int "no rejections" 0 (Dr.num_rejected c);
  check "deletions reached the checker" true (Dr.num_deleted c > 0)

let arb_cnf_reduce =
  (* Larger than [arb_cnf] so a ceiling-16 learnt DB actually hits
     reduction on a fair share of the instances. *)
  QCheck.make
    ~print:(fun (seed, nv, nc) ->
      Printf.sprintf "seed=%Ld vars=%d clauses=%d" seed nv nc)
    QCheck.Gen.(
      let* seed = ui64 in
      let* nv = int_range 8 20 in
      let* nc = int_range (3 * nv) (5 * nv) in
      return (seed, nv, nc))

let prop_certified_with_reduction (seed, num_vars, num_clauses) =
  let rng = Rng.create seed in
  let clauses = random_cnf rng ~num_vars ~num_clauses in
  let s, c = certified_solver () in
  S.set_max_learnts s 2;
  for _ = 1 to num_vars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  let certify assumptions =
    match S.solve ~assumptions s with
    | S.Unsat -> (
      match Dr.certify_unsat c ~assumptions with
      | Ok () -> ()
      | Error why -> Alcotest.failf "unsat not certified: %s" why)
    | S.Sat -> (
      match Dr.certify_model c ~value:(S.value s) with
      | Ok () -> ()
      | Error why -> Alcotest.failf "model rejected: %s" why)
    | S.Unknown -> Alcotest.fail "unbudgeted solve returned Unknown"
  in
  certify [];
  (* A second, assumption-bound solve on the same (possibly reduced and
     compacted) database must certify too. *)
  certify [ S.lit_of (Rng.int rng num_vars) (Rng.bool rng) ];
  check_int "no rejections" 0 (Dr.num_rejected c);
  true

(* ---- proof text round-trip: stream -> DRUP file -> standalone replay ---- *)

let capture_proof_text s =
  let buf = Buffer.create 256 in
  S.set_proof_logger s
    (Some
       (fun step ->
         Option.iter (Buffer.add_string buf) (D.proof_line step)));
  buf

let replay clauses steps =
  (* Strict standalone replay, like [sat_cli --check-proof]: first
     unjustified addition fails; the replayed database must be refuted. *)
  let c = Dr.create () in
  List.iter (Dr.add_input c) clauses;
  let failure = ref None in
  List.iteri
    (fun i step ->
      if !failure = None then
        match step with
        | `Add lits -> (
          match Dr.add_derived c lits with
          | Ok () -> ()
          | Error why -> failure := Some (Printf.sprintf "step %d: %s" (i + 1) why))
        | `Delete lits -> Dr.delete c lits)
    steps;
  match !failure with
  | Some why -> Error why
  | None -> Dr.certify_unsat c ~assumptions:[]

let test_proof_roundtrip () =
  let clauses = php_clauses ~pigeons:4 ~holes:3 in
  let s = S.create () in
  let buf = capture_proof_text s in
  declare_vars s clauses;
  List.iter (S.add_clause s) clauses;
  (match S.solve s with
   | S.Unsat -> ()
   | _ -> Alcotest.fail "php(4,3) must be unsat");
  let steps = D.parse_proof (Buffer.contents buf) in
  check "proof has additions" true (steps <> []);
  match replay clauses steps with
  | Ok () -> ()
  | Error why -> Alcotest.failf "round-tripped proof rejected: %s" why

let test_proof_roundtrip_with_deletions () =
  (* Same round-trip, but with the learnt ceiling forcing reductions:
     the textual proof now carries [d] lines, and the strict standalone
     replay must apply them and still reach the refutation. *)
  let clauses = php_clauses ~pigeons:6 ~holes:5 in
  let s = S.create () in
  S.set_max_learnts s 2;
  let buf = capture_proof_text s in
  declare_vars s clauses;
  List.iter (S.add_clause s) clauses;
  (match S.solve s with
   | S.Unsat -> ()
   | _ -> Alcotest.fail "php(6,5) must be unsat");
  check "reductions fired" true ((S.stats s).S.reductions > 0);
  let steps = D.parse_proof (Buffer.contents buf) in
  let deletions =
    List.length (List.filter (function `Delete _ -> true | _ -> false) steps)
  in
  check "proof has deletions" true (deletions > 0);
  match replay clauses steps with
  | Ok () -> ()
  | Error why -> Alcotest.failf "proof with deletions rejected: %s" why

let test_proof_mutations () =
  (* Corrupt one proof line at a time: replacing any addition with a
     unit clause of a fresh, unconstrained variable must fail the strict
     replay — such a clause is never RUP on a non-refuted database. *)
  let clauses = php_clauses ~pigeons:4 ~holes:3 in
  let s = S.create () in
  let buf = capture_proof_text s in
  declare_vars s clauses;
  List.iter (S.add_clause s) clauses;
  (match S.solve s with
   | S.Unsat -> ()
   | _ -> Alcotest.fail "php(4,3) must be unsat");
  let steps = D.parse_proof (Buffer.contents buf) in
  let junk = `Add [ S.lit_of 1000 false ] in
  let mutated = ref 0 in
  List.iteri
    (fun k _ ->
      (* Only positions the replay reaches on a not-yet-refuted database
         are meaningful: past the refutation every addition is implied. *)
      let prefix = List.filteri (fun i _ -> i < k) steps in
      let c = Dr.create () in
      List.iter (Dr.add_input c) clauses;
      List.iter
        (fun step ->
          match step with
          | `Add lits -> ignore (Dr.add_derived c lits)
          | `Delete lits -> Dr.delete c lits)
        prefix;
      if not (Dr.conflicting c) then begin
        incr mutated;
        let proof = List.mapi (fun i st -> if i = k then junk else st) steps in
        match replay clauses proof with
        | Ok () -> Alcotest.failf "mutation at step %d went undetected" (k + 1)
        | Error _ -> ()
      end)
    steps;
  check "mutations were exercised" true (!mutated > 0);
  (* Truncating the proof before the refutation must also fail. *)
  match replay clauses [] with
  | Ok () -> Alcotest.fail "empty proof certified a refutation"
  | Error _ -> ()

(* ---- checker semantics: deletions and assumptions ---- *)

let test_deletion_breaks_rup () =
  (* From (a or b) and (!a or b), the unit b is RUP; after deleting
     (a or b) it no longer is. *)
  let a = S.lit_of 0 false and b = S.lit_of 1 false in
  let fresh () =
    let c = Dr.create () in
    Dr.add_input c [ a; b ];
    Dr.add_input c [ S.neg a; b ];
    c
  in
  let c = fresh () in
  (match Dr.add_derived c [ b ] with
   | Ok () -> ()
   | Error why -> Alcotest.failf "b should be RUP: %s" why);
  check_int "checked" 1 (Dr.num_checked c);
  let c = fresh () in
  Dr.delete c [ a; b ];
  check_int "deleted" 1 (Dr.num_deleted c);
  (match Dr.add_derived c [ b ] with
   | Ok () -> Alcotest.fail "b must not be RUP after deletion"
   | Error _ -> ());
  check_int "rejected" 1 (Dr.num_rejected c);
  check "last error kept" true (Dr.last_error c <> None)

let test_deletion_of_root_reason_skipped () =
  (* Deleting the reason of a root-level propagation is the classic DRUP
     checker unsoundness; the checker must refuse. *)
  let a = S.lit_of 0 false in
  let c = Dr.create () in
  Dr.add_input c [ a ];
  Dr.delete c [ a ];
  check_int "deletion skipped" 0 (Dr.num_deleted c);
  (* The unit still propagates: assuming !a must conflict. *)
  match Dr.certify_unsat c ~assumptions:[ S.neg a ] with
  | Ok () -> ()
  | Error why -> Alcotest.failf "root unit lost: %s" why

let test_certify_under_assumptions () =
  (* x -> y -> z: unsat under {x, !z}, satisfiable under {x}. *)
  let x = S.lit_of 0 false and y = S.lit_of 1 false and z = S.lit_of 2 false in
  let c = Dr.create () in
  Dr.add_input c [ S.neg x; y ];
  Dr.add_input c [ S.neg y; z ];
  (match Dr.certify_unsat c ~assumptions:[ x; S.neg z ] with
   | Ok () -> ()
   | Error why -> Alcotest.failf "implication chain not certified: %s" why);
  (match Dr.certify_unsat c ~assumptions:[ x ] with
   | Ok () -> Alcotest.fail "certified a satisfiable assumption set"
   | Error _ -> ());
  (* The rollback left the checker reusable. *)
  match Dr.certify_unsat c ~assumptions:[ x; S.neg z ] with
  | Ok () -> ()
  | Error why -> Alcotest.failf "checker not reusable after rollback: %s" why

let test_certify_model_rejects_falsifying () =
  let a = S.lit_of 0 false and b = S.lit_of 1 false in
  let c = Dr.create () in
  Dr.add_input c [ a; b ];
  Dr.add_input c [ S.neg a ];
  (match Dr.certify_model c ~value:(fun l -> l = S.neg a || l = b) with
   | Ok () -> ()
   | Error why -> Alcotest.failf "good model rejected: %s" why);
  match Dr.certify_model c ~value:(fun l -> l = a || l = b) with
  | Ok () -> Alcotest.fail "model falsifying !a accepted"
  | Error _ -> ()

(* ---- the lying solver ---- *)

let test_lying_flip_unsat () =
  (* A satisfiable instance reported UNSAT: no refutation exists in the
     proof stream, so certification must fail. *)
  with_faults "sat.flip_unsat" (fun () ->
      let s, c = certified_solver () in
      let v = S.lit (S.new_var s) in
      let w = S.lit (S.new_var s) in
      S.add_clause s [ v; w ];
      match S.solve s with
      | S.Unsat -> (
        match Dr.certify_unsat c ~assumptions:[] with
        | Ok () -> Alcotest.fail "flipped answer was certified"
        | Error _ -> ())
      | _ -> Alcotest.fail "fault did not flip the answer")

let test_lying_corrupt_proof () =
  (* Corrupted derivations must be rejected by the online check. The
     answer itself (php is really unsat) may still certify — RUP only
     ever admits sound consequences — but the lie is visible in the
     rejection counter. *)
  with_faults "sat.corrupt_proof" (fun () ->
      let s, c = certified_solver () in
      let clauses = php_clauses ~pigeons:4 ~holes:3 in
      declare_vars s clauses;
      List.iter (S.add_clause s) clauses;
      (match S.solve s with
       | S.Unsat -> ()
       | _ -> Alcotest.fail "php(4,3) must be unsat");
      check "corrupt derivations rejected" true (Dr.num_rejected c > 0))

let test_lying_bogus_model () =
  (* A flipped propagated variable falsifies that variable's reason
     clause; model validation must see it. *)
  with_faults "sat.bogus_model" (fun () ->
      let s, c = certified_solver () in
      let x = S.lit (S.new_var s) in
      let y = S.lit (S.new_var s) in
      S.add_clause s [ S.neg x; y ];
      S.add_clause s [ x; y ];
      match S.solve s with
      | S.Sat -> (
        match Dr.certify_model c ~value:(S.value s) with
        | Ok () -> Alcotest.fail "bogus model was certified"
        | Error _ -> ())
      | _ -> Alcotest.fail "satisfiable instance must answer Sat")

let () =
  Alcotest.run "drup"
    [
      ( "online",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"random 3-CNF answers certify" ~count:200
               arb_cnf prop_certified_answers);
          Alcotest.test_case "certified across reduction and GC" `Quick
            test_certified_with_gc;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make
               ~name:"random runs certify with forced reduction" ~count:100
               arb_cnf_reduce prop_certified_with_reduction);
        ] );
      ( "replay",
        [
          Alcotest.test_case "proof text round-trips" `Quick
            test_proof_roundtrip;
          Alcotest.test_case "deletions replay" `Quick
            test_proof_roundtrip_with_deletions;
          Alcotest.test_case "single-line mutations rejected" `Quick
            test_proof_mutations;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "deletion breaks RUP" `Quick
            test_deletion_breaks_rup;
          Alcotest.test_case "root reason deletion skipped" `Quick
            test_deletion_of_root_reason_skipped;
          Alcotest.test_case "assumption certification" `Quick
            test_certify_under_assumptions;
          Alcotest.test_case "model validation" `Quick
            test_certify_model_rejects_falsifying;
        ] );
      ( "lying solver",
        [
          Alcotest.test_case "flip_unsat caught" `Quick test_lying_flip_unsat;
          Alcotest.test_case "corrupt_proof caught" `Quick
            test_lying_corrupt_proof;
          Alcotest.test_case "bogus_model caught" `Quick test_lying_bogus_model;
        ] );
    ]
