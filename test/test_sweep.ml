(* Sweeping-engine tests. The non-negotiable property: sweeping never
   changes the function (checked by CEC and, on small circuits, by
   exhaustive evaluation). Then: redundancy actually gets removed, the
   STP configuration spends fewer SAT calls than the baseline, and the
   pieces (classes, guided patterns, CEC) behave. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng
module Sg = Sim.Signature

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eval net inputs =
  let v = Array.make (A.num_nodes net) false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- inputs.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  Array.map (fun l -> v.(L.node l) <> L.is_compl l) (A.pos net)

let exhaustive_equal a b =
  let n = A.num_pis a in
  assert (n <= 14);
  A.num_pis a = A.num_pis b
  && A.num_pos a = A.num_pos b
  &&
  let ok = ref true in
  for i = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun p -> (i lsr p) land 1 = 1) in
    if eval a x <> eval b x then ok := false
  done;
  !ok

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

(* ---- equivalence classes ---- *)

let test_equiv_classes () =
  let m = Sweep.Equiv_classes.create ~num_patterns:8 in
  let s1 = [| 0b10110100 |] in
  let s1c = Sg.complement_of ~num_patterns:8 s1 in
  let s2 = [| 0b11110000 |] in
  Sweep.Equiv_classes.add m 1 s1;
  Sweep.Equiv_classes.add m 2 s2;
  Sweep.Equiv_classes.add m 3 s1c;
  Sweep.Equiv_classes.add m 4 s1;
  Alcotest.(check (list int)) "class of s1" [ 1; 3; 4 ]
    (Sweep.Equiv_classes.candidates m s1);
  Alcotest.(check (list int)) "complement joins the class" [ 1; 3; 4 ]
    (Sweep.Equiv_classes.candidates m s1c);
  Alcotest.(check (list int)) "s2 alone" [ 2 ] (Sweep.Equiv_classes.candidates m s2);
  check_int "one multi class" 1 (Sweep.Equiv_classes.class_count m);
  Alcotest.(check (list int)) "candidate nodes" [ 1; 3; 4 ]
    (Sweep.Equiv_classes.candidate_nodes m);
  Sweep.Equiv_classes.clear m ~num_patterns:8;
  check_int "cleared" 0 (Sweep.Equiv_classes.class_count m)

(* ---- CEC ---- *)

let test_cec () =
  let rng = Rng.create 99L in
  let net = random_network rng ~pis:6 ~gates:40 ~pos:4 in
  let copy, _ = A.cleanup net in
  (match Sweep.Cec.check net copy with
   | Sweep.Cec.Equivalent -> ()
   | _ -> Alcotest.fail "identical networks must check");
  (* Break one output. *)
  let broken = A.create () in
  let inputs = Array.init (A.num_pis net) (fun _ -> A.add_pi broken) in
  let map = Array.make (A.num_nodes net) (-1) in
  map.(0) <- L.false_;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> map.(nd) <- inputs.(i)
      | A.And ->
        let tr l = L.xor_compl map.(L.node l) (L.is_compl l) in
        map.(nd) <- A.add_and broken (tr (A.fanin0 net nd)) (tr (A.fanin1 net nd)));
  Array.iteri
    (fun o l ->
      let tl = L.xor_compl map.(L.node l) (L.is_compl l) in
      ignore (A.add_po broken (if o = 2 then L.not_ tl else tl)))
    (A.pos net);
  match Sweep.Cec.check net broken with
  | Sweep.Cec.Different { po; counterexample = _ } -> check_int "po found" 2 po
  | _ -> Alcotest.fail "broken network must fail CEC"

(* ---- guided patterns ---- *)

let test_guided_patterns () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  (* A node that is 1 only on a single assignment — random patterns with
     few words may miss it; guided generation must find it. *)
  let rare = A.add_and net (A.add_and net a b) c in
  (* And a real constant: x & !x through separate structure. *)
  let k = A.add_and net (A.add_and net a b) (L.not_ a) in
  ignore (A.add_po net rare);
  ignore (A.add_po net k);
  let pats = Sim.Patterns.create ~num_pis:3 in
  (* Seed with patterns that keep [rare] at 0: everything with a=0. *)
  for i = 0 to 31 do
    Sim.Patterns.add_pattern pats [| false; i land 1 = 1; i land 2 = 2 |]
  done;
  let outcome = Sweep.Guided_patterns.generate net pats ~seed:5L in
  check "patterns were added" true (outcome.Sweep.Guided_patterns.patterns_added > 0);
  check "constant proven" true
    (List.mem (L.node k, false) outcome.Sweep.Guided_patterns.proven_const);
  (* The rare node must now toggle under the refined pattern set. *)
  let tbl = Sim.Bitwise.simulate_aig net pats in
  check "rare node toggles" true (Sg.count_ones tbl.(L.node rare) > 0)

(* ---- sweeping ---- *)

let sweep_preserves engine_name sweeper =
  let rng = Rng.create 1234L in
  for round = 1 to 12 do
    let base = random_network rng ~pis:7 ~gates:60 ~pos:5 in
    let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.4 base in
    let swept, stats = sweeper net in
    if not (exhaustive_equal net swept) then
      Alcotest.failf "%s round %d: function changed" engine_name round;
    (match Sweep.Cec.check net swept with
     | Sweep.Cec.Equivalent -> ()
     | _ -> Alcotest.failf "%s round %d: CEC failed" engine_name round);
    if A.num_ands swept > A.num_ands net then
      Alcotest.failf "%s round %d: grew" engine_name round;
    if stats.Sweep.Stats.total_time < 0. then
      Alcotest.failf "%s round %d: negative time" engine_name round
  done

let test_fraig_preserves () = sweep_preserves "fraig" (fun n -> Sweep.Fraig.sweep n)
let test_stp_preserves () = sweep_preserves "stp" (fun n -> Sweep.Stp_sweep.sweep n)

let test_sweep_removes_redundancy () =
  let rng = Rng.create 77L in
  let base = random_network rng ~pis:8 ~gates:80 ~pos:6 in
  let redundant = Gen.Redundant.inject ~seed:3L ~fraction:0.5 base in
  check "injection grew the network" true
    (A.num_ands redundant > A.num_ands base);
  let swept_f, _ = Sweep.Fraig.sweep redundant in
  let swept_s, _ = Sweep.Stp_sweep.sweep redundant in
  (* Sweeping must reconverge most of the duplicates: the result should
     be close to the base size, certainly no bigger than the redundant
     input. *)
  check "fraig shrank" true (A.num_ands swept_f < A.num_ands redundant);
  check "stp shrank" true (A.num_ands swept_s < A.num_ands redundant);
  (* Both engines are exact, so they must agree with each other. *)
  match Sweep.Cec.check swept_f swept_s with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "engines disagree"

let test_stp_saves_sat_calls () =
  (* On redundancy-heavy circuits the windowed engine must spend fewer
     satisfiable SAT calls than the baseline — the paper's headline
     Table II effect. Aggregate over several circuits to avoid noise. *)
  let rng = Rng.create 31415L in
  let total_f = ref 0 and total_s = ref 0 in
  for _ = 1 to 6 do
    let base = random_network rng ~pis:8 ~gates:120 ~pos:6 in
    let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.4 base in
    let _, st_f = Sweep.Fraig.sweep net in
    let _, st_s = Sweep.Stp_sweep.sweep net in
    total_f := !total_f + st_f.Sweep.Stats.sat_sat;
    total_s := !total_s + st_s.Sweep.Stats.sat_sat
  done;
  if !total_s > !total_f then
    Alcotest.failf "stp used more satisfiable calls (%d) than fraig (%d)"
      !total_s !total_f

let test_sweep_constant_nodes () =
  (* Structurally hidden constants must be substituted. *)
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let x = A.add_xor net a b in
  let y = A.add_xor net a (L.not_ b) in
  (* x | y is a tautology; (x & y) is constant false. *)
  let taut = A.add_or net x y in
  let contra = A.add_and net x y in
  ignore (A.add_po net taut);
  ignore (A.add_po net contra);
  let swept, stats = Sweep.Stp_sweep.sweep net in
  check "taut PO is const" true (A.po swept 0 = L.true_);
  check "contra PO is const" true (A.po swept 1 = L.false_);
  check_int "no gates left" 0 (A.num_ands swept);
  check "counted" true (stats.Sweep.Stats.merges > 0)

let test_sweep_idempotent () =
  let rng = Rng.create 5150L in
  let base = random_network rng ~pis:6 ~gates:70 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:8L ~fraction:0.5 base in
  let once, _ = Sweep.Stp_sweep.sweep net in
  let twice, stats = Sweep.Stp_sweep.sweep once in
  check "second sweep finds nothing" true
    (A.num_ands twice = A.num_ands once);
  check "second sweep is cheap" true (stats.Sweep.Stats.merges = 0)

(* Wall-clock phase accounting: every phase is nonnegative, every phase
   is within total_time, and — since each instrumented stretch bills to
   exactly one phase — the phases sum to at most total_time (small
   epsilon for float accumulation). *)
let check_phase_accounting label st =
  let open Sweep.Stats in
  let eps = 1e-6 in
  let phases = phase_times st in
  List.iter
    (fun (name, t) ->
      if t < 0. then Alcotest.failf "%s: phase %s negative" label name;
      if t > st.total_time +. eps then
        Alcotest.failf "%s: phase %s (%g) exceeds total (%g)" label name t
          st.total_time)
    phases;
  let sum = List.fold_left (fun acc (_, t) -> acc +. t) 0. phases in
  if sum > st.total_time +. eps then
    Alcotest.failf "%s: phases sum (%g) exceeds total (%g)" label sum
      st.total_time;
  check (label ^ ": simulation_time consistent") true
    (Float.abs
       (simulation_time st
       -. (st.sim_time +. st.plan_compile_time +. st.guided_time
          +. st.resim_time +. st.window_time))
    < eps)

(* The JSON report must survive a print/parse cycle and carry the full
   phase breakdown plus the SAT solver internals. *)
let check_report_roundtrip label st =
  let open Sweep.Stats in
  let j = to_json st in
  (match Obs.Json.of_string (Obs.Json.to_string ~pretty:true j) with
   | Ok j' ->
     if j <> j' then Alcotest.failf "%s: JSON report does not round-trip" label
   | Error e -> Alcotest.failf "%s: report unparseable: %s" label e);
  let phases =
    match Obs.Json.member "phases_s" j with
    | Some (Obs.Json.Obj kvs) -> kvs
    | _ -> Alcotest.failf "%s: no phases_s object" label
  in
  List.iter
    (fun k ->
      if not (List.mem_assoc k phases) then
        Alcotest.failf "%s: phase %s missing from report" label k)
    [ "sim"; "plan_compile"; "guided"; "resim"; "window"; "sat"; "total" ];
  let solver =
    match Obs.Json.member "sat_solver" j with
    | Some (Obs.Json.Obj kvs) -> kvs
    | _ -> Alcotest.failf "%s: no sat_solver object" label
  in
  List.iter
    (fun k ->
      if not (List.mem_assoc k solver) then
        Alcotest.failf "%s: solver stat %s missing from report" label k)
    [ "decisions"; "conflicts"; "propagations"; "learned" ];
  (* Work the solver did must be visible: any completed SAT call implies
     propagations. *)
  if
    total_sat_calls st > st.sat_undet
    && Obs.Json.member "propagations" (Obs.Json.Obj solver) = Some (Obs.Json.Int 0)
  then Alcotest.failf "%s: SAT calls ran but zero propagations reported" label

let test_stats_invariants () =
  let rng = Rng.create 2718L in
  let base = random_network rng ~pis:7 ~gates:100 ~pos:5 in
  let net = Gen.Redundant.inject ~seed:6L ~fraction:0.4 base in
  List.iter2
    (fun label (swept, st) ->
      let open Sweep.Stats in
      check "total = sat+unsat+undet" true
        (total_sat_calls st = st.sat_sat + st.sat_unsat + st.sat_undet);
      check "window merges within merges" true (st.window_merges <= st.merges);
      check "const merges within merges" true (st.const_merges <= st.merges);
      check "ce = sat outcomes" true (st.ce_patterns = st.sat_sat);
      check "times nonnegative" true (st.sim_time >= 0. && st.total_time >= st.sim_time);
      check "initial patterns recorded" true (st.initial_patterns >= 32);
      check "swept not larger" true (A.num_ands swept <= A.num_ands net);
      check_phase_accounting label st;
      check_report_roundtrip label st)
    [ "fraig"; "stp" ]
    [ Sweep.Fraig.sweep net; Sweep.Stp_sweep.sweep net ]

(* qcheck: the phase/report invariants hold on arbitrary circuits under
   both engines, not just the hand-picked ones above. *)
let arb_sweep_case =
  QCheck.make
    ~print:(fun (seed, gates, stp) ->
      Printf.sprintf "seed=%Ld gates=%d engine=%s" seed gates
        (if stp then "stp" else "fraig"))
    QCheck.Gen.(
      let* seed = ui64 in
      let* gates = int_range 10 120 in
      let* stp = bool in
      return (seed, gates, stp))

let prop_phase_accounting (seed, gates, stp) =
  let rng = Rng.create seed in
  let base = random_network rng ~pis:6 ~gates ~pos:4 in
  let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.3 base in
  let _, st = if stp then Sweep.Stp_sweep.sweep net else Sweep.Fraig.sweep net in
  check_phase_accounting "qcheck" st;
  check_report_roundtrip "qcheck" st;
  true

let test_engine_ablation_configs () =
  (* Every knob combination must preserve the function. *)
  let rng = Rng.create 424242L in
  let base = random_network rng ~pis:6 ~gates:60 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:12L ~fraction:0.5 base in
  List.iter
    (fun cfg ->
      let swept, _ = Sweep.Engine.run ~config:cfg net in
      if not (exhaustive_equal net swept) then
        Alcotest.fail "ablation config broke the function")
    [
      Sweep.Engine.fraig_config;
      { Sweep.Engine.fraig_config with Sweep.Engine.guided_init = true; guided_queries = 64 };
      { Sweep.Engine.fraig_config with Sweep.Engine.window_refine = true };
      { Sweep.Engine.stp_config with Sweep.Engine.window_max_leaves = 6 };
      { Sweep.Engine.stp_config with Sweep.Engine.max_compares = 2 };
      { Sweep.Engine.stp_config with Sweep.Engine.conflict_limit = Some 1 };
      { Sweep.Engine.stp_config with Sweep.Engine.resim_batch = 1 };
      { Sweep.Engine.stp_config with Sweep.Engine.initial_words = 1 };
    ]

let test_window_merges_happen () =
  (* Small-TFI duplicates must be merged without SAT by the STP engine. *)
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let x1 = A.add_xor net (A.add_and net a b) c in
  let n1 = L.not_ (A.add_and net (A.add_and net a b) c) in
  let n2 = L.not_ (A.add_and net (A.add_and net a b) (L.not_ c)) in
  let x2 = L.not_ (A.add_and net n1 n2) in
  (* x2 = (a&b) xnor ... build a real duplicate of x1 via nand identity:
     xor(p, c) with p = a&b. *)
  ignore (A.add_po net x1);
  ignore (A.add_po net x2);
  let swept, stats = Sweep.Stp_sweep.sweep net in
  check "still equivalent" true (exhaustive_equal net swept);
  check "windows did work" true
    (stats.Sweep.Stats.window_merges + stats.Sweep.Stats.window_splits > 0)

let test_parallel_sweep_identical () =
  (* The sharded simulators are bit-identical, so the whole sweep — every
     merge decision included — must be deterministic in sim_domains. The
     tiny par_threshold forces the parallel path from the first
     resimulation on. *)
  let rng = Rng.create 0xD011A1L in
  for _ = 1 to 3 do
    let net = random_network rng ~pis:8 ~gates:120 ~pos:4 in
    let run domains =
      Sweep.Engine.run
        ~config:
          {
            Sweep.Engine.stp_config with
            Sweep.Engine.sim_domains = domains;
            par_threshold = 32;
          }
        net
    in
    let seq, seq_stats = run 1 in
    let par, par_stats = run 3 in
    check "same node count" true (A.num_nodes seq = A.num_nodes par);
    check_int "same merges" seq_stats.Sweep.Stats.merges
      par_stats.Sweep.Stats.merges;
    check "function preserved" true (exhaustive_equal net par)
  done

(* ---- compare-budget charging (regression) ---- *)

let test_max_compares_charges_window_splits () =
  (* Three structurally distinct 14-PI minterms plus a balanced-tree
     duplicate of the last one. Every minterm signature is all-zeros
     under any realistic random pattern set, so they all land in the
     constant-0 class, and the duplicate's candidate walk marches
     through constant 0 and the foreign minterms — all window-proved
     splits — before reaching its window-equal twin. With
     [max_compares = 1] the walk must stop at the first split; before
     the fix only counterexample attempts were charged, so a
     window-split-dominated class was never bounded and the merge
     happened regardless of the budget. *)
  let pis = 14 in
  let net = A.create () in
  let ins = Array.init pis (fun _ -> A.add_pi net) in
  let lit i phase = L.xor_compl ins.(i) phase in
  let chain phases =
    let acc = ref (lit 0 phases.(0)) in
    for i = 1 to pis - 1 do
      acc := A.add_and net !acc (lit i phases.(i))
    done;
    !acc
  in
  let p3 = Array.init pis (fun i -> i = 1) in
  let m1 = chain (Array.make pis false) in
  let m2 = chain (Array.init pis (fun i -> i = 0)) in
  let m3 = chain p3 in
  let rec tree lo hi =
    if lo = hi then lit lo p3.(lo)
    else
      let mid = (lo + hi) / 2 in
      A.add_and net (tree lo mid) (tree (mid + 1) hi)
  in
  let d3 = tree 0 (pis - 1) in
  List.iter (fun l -> ignore (A.add_po net l)) [ m1; m2; m3; d3 ];
  (* Guided init off: its rare-value queries would add patterns that
     split the minterms apart before the walk under test ever runs. *)
  let run ~max_compares ~sat_domains =
    Sweep.Engine.run
      ~config:
        {
          Sweep.Engine.stp_config with
          Sweep.Engine.guided_init = false;
          guided_queries = 0;
          max_compares;
          sat_domains;
        }
      net
  in
  (* The balanced tree's inner nodes merge onto chain prefixes with
     unique signatures — first-candidate window merges that cost no
     compare budget and happen under either setting. Only the top-level
     duplicate sits behind a wall of window splits, so a correctly
     charged budget of 1 must find exactly one merge fewer than the
     ample budget; the uncharged-splits bug made the two runs agree. *)
  List.iter
    (fun sat_domains ->
      let label = Printf.sprintf "sat_domains=%d" sat_domains in
      let starved, st1 = run ~max_compares:1 ~sat_domains in
      check (label ^ ": function preserved (starved)") true
        (exhaustive_equal net starved);
      check (label ^ ": splits were charged") true
        (st1.Sweep.Stats.window_splits > 0);
      let swept, st = run ~max_compares:1000 ~sat_domains in
      check (label ^ ": function preserved") true (exhaustive_equal net swept);
      check
        (label ^ ": starved walk stops short of the split-guarded twin")
        true
        (st1.Sweep.Stats.merges < st.Sweep.Stats.merges))
    [ 0; 1 ]

(* ---- parallel SAT dispatch ---- *)

let dispatch_config ?(certify = false) ~sat_domains () =
  {
    Sweep.Engine.stp_config with
    Sweep.Engine.sat_domains;
    (* One wave >> task count: every task derives from the
       seed-deterministic initial signatures alone, making the whole
       dispatched sweep reproducible across domain counts. *)
    sat_wave = 16384;
    certify;
  }

let test_dispatch_domains_agree () =
  (* --sat-domains 1/2/4 must produce CEC-equivalent results with
     identical merge counts: merges are proof-gated and the solver is
     complete without a conflict limit, so which domain runs a task
     cannot change its verdict. *)
  let rng = Rng.create 0xD15BA7L in
  for round = 1 to 3 do
    let base = random_network rng ~pis:8 ~gates:150 ~pos:5 in
    let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.4 base in
    let runs =
      List.map
        (fun d -> (d, Sweep.Engine.run ~config:(dispatch_config ~sat_domains:d ()) net))
        [ 1; 2; 4 ]
    in
    let _, (r1, s1) = List.hd runs in
    List.iter
      (fun (d, (r, s)) ->
        if not (exhaustive_equal net r) then
          Alcotest.failf "round %d: %d domains changed the function" round d;
        (match Sweep.Cec.check net r with
        | Sweep.Cec.Equivalent -> ()
        | _ -> Alcotest.failf "round %d: %d domains fail CEC" round d);
        check_int
          (Printf.sprintf "round %d: merges agree (1 vs %d domains)" round d)
          s1.Sweep.Stats.merges s.Sweep.Stats.merges;
        check_int
          (Printf.sprintf "round %d: size agrees (1 vs %d domains)" round d)
          (A.num_ands r1) (A.num_ands r))
      runs
  done

let arb_dispatch_case =
  QCheck.make
    ~print:(fun (seed, gates, certify) ->
      Printf.sprintf "seed=%Ld gates=%d certify=%b" seed gates certify)
    QCheck.Gen.(
      let* seed = ui64 in
      let* gates = int_range 40 160 in
      let* certify = bool in
      return (seed, gates, certify))

let prop_dispatch_equivalent (seed, gates, certify) =
  let rng = Rng.create seed in
  let base = random_network rng ~pis:7 ~gates ~pos:4 in
  let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.4 base in
  let runs =
    List.map
      (fun d ->
        Sweep.Engine.run ~config:(dispatch_config ~certify ~sat_domains:d ()) net)
      [ 1; 2; 4 ]
  in
  let _, s1 = List.hd runs in
  List.iter
    (fun (r, s) ->
      if not (exhaustive_equal net r) then
        QCheck.Test.fail_report "dispatched sweep changed the function";
      if s.Sweep.Stats.merges <> s1.Sweep.Stats.merges then
        QCheck.Test.fail_reportf "merge counts diverge: %d vs %d"
          s1.Sweep.Stats.merges s.Sweep.Stats.merges;
      if certify then begin
        if s.Sweep.Stats.certificate_rejected <> 0 then
          QCheck.Test.fail_reportf "%d certificates rejected on an honest run"
            s.Sweep.Stats.certificate_rejected;
        if s.Sweep.Stats.sat_unsat <> s.Sweep.Stats.certified_unsat then
          QCheck.Test.fail_report "not every UNSAT was certified";
        if s.Sweep.Stats.sat_sat <> s.Sweep.Stats.certified_models then
          QCheck.Test.fail_report "not every model was certified"
      end;
      check_phase_accounting "dispatch" s;
      check_report_roundtrip "dispatch" s)
    runs;
  true

let test_dispatch_cube_and_conquer () =
  (* A starved conflict limit makes real miters exhaust the retry
     schedule, so hard candidates must reach the cube-and-conquer
     phase — and however the cubes come back, the result stays
     equivalent. *)
  let rng = Rng.create 0xC0BE5L in
  let base = random_network rng ~pis:12 ~gates:400 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:23L ~fraction:0.4 base in
  let swept, st =
    Sweep.Engine.run
      ~config:
        {
          Sweep.Engine.fraig_config with
          Sweep.Engine.sat_domains = 2;
          sat_wave = 256;
          conflict_limit = Some 1;
          retry_schedule = [ 2 ];
        }
      net
  in
  check "function preserved" true (exhaustive_equal net swept);
  (match Sweep.Cec.check net swept with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "cube-split sweep not CEC-equivalent");
  check "hard candidates were cube-split" true (st.Sweep.Stats.cube_splits > 0);
  check "each split enumerated its cubes" true
    (st.Sweep.Stats.cube_queries >= 2 * st.Sweep.Stats.cube_splits);
  check_report_roundtrip "cube" st

let test_dispatch_budget_degrades () =
  (* Budget exhaustion with workers in flight: any domain may trip the
     shared budget; the sweep must still finish with only its proven
     merges and report why it stopped. *)
  let rng = Rng.create 0xB4D6E7L in
  let base = random_network rng ~pis:10 ~gates:8000 ~pos:8 in
  let net = Gen.Redundant.inject ~seed:13L ~fraction:0.3 base in
  let swept, st =
    Sweep.Stp_sweep.sweep ~timeout:0.01 ~sat_domains:2 ~sat_wave:64 net
  in
  (match st.Sweep.Stats.budget_exhausted with
  | Some _ -> ()
  | None -> Alcotest.fail "expected the budget to run out");
  check "function preserved" true (exhaustive_equal net swept);
  (match Sweep.Cec.check net swept with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "degraded dispatch sweep not CEC-equivalent");
  (* And an already-expired deadline, which every worker sees sticky. *)
  let swept0, st0 =
    Sweep.Stp_sweep.sweep
      ~deadline:(Obs.Clock.now () -. 1.)
      ~sat_domains:2 net
  in
  check "expired deadline preserved the function" true
    (exhaustive_equal net swept0);
  match st0.Sweep.Stats.budget_exhausted with
  | Some e ->
    check "reason is deadline" true (e.Sweep.Stats.reason = "deadline")
  | None -> Alcotest.fail "expired deadline not recorded"

let test_guided_consts_recorded () =
  (* Constants proven during guided initialization must surface in the
     stats and the JSON report instead of being silently discarded. *)
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let x = A.add_xor net a b in
  let y = A.add_xor net a (L.not_ b) in
  ignore (A.add_po net (A.add_or net x y));
  ignore (A.add_po net (A.add_and net x y));
  let _, st = Sweep.Stp_sweep.sweep net in
  check "guided consts recorded" true (st.Sweep.Stats.guided_consts > 0);
  let counters =
    match Obs.Json.member "counters" (Sweep.Stats.to_json st) with
    | Some (Obs.Json.Obj _ as o) -> o
    | _ -> Alcotest.fail "no counters object in the report"
  in
  List.iter
    (fun k ->
      match Obs.Json.member k counters with
      | Some (Obs.Json.Int _) -> ()
      | _ -> Alcotest.failf "%s missing from the JSON report" k)
    [ "guided_consts"; "cube_splits"; "cube_queries" ]

(* ---- budgets, degradation, faults ---- *)

let with_faults spec f =
  (match Obs.Fault.configure spec with
   | Ok () -> ()
   | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e);
  Fun.protect ~finally:Obs.Fault.reset f

let test_deadline_degrades () =
  (* An already-expired deadline: the engine must still return, keep the
     function intact (only proven merges — here, structural hashing),
     and record why it stopped, both in the stats and in the report. *)
  let rng = Rng.create 911L in
  let base = random_network rng ~pis:8 ~gates:300 ~pos:5 in
  let net = Gen.Redundant.inject ~seed:4L ~fraction:0.4 base in
  let swept, st =
    Sweep.Stp_sweep.sweep ~deadline:(Obs.Clock.now () -. 1.) net
  in
  check "function preserved" true (exhaustive_equal net swept);
  (match Sweep.Cec.check net swept with
   | Sweep.Cec.Equivalent -> ()
   | _ -> Alcotest.fail "degraded sweep not CEC-equivalent");
  check "not larger" true (A.num_ands swept <= A.num_ands net);
  (match st.Sweep.Stats.budget_exhausted with
   | Some e ->
     check "reason is deadline" true (e.Sweep.Stats.reason = "deadline");
     check "phase recorded" true
       (List.mem e.Sweep.Stats.phase [ "guided"; "sweep"; "sat" ])
   | None -> Alcotest.fail "budget_exhausted not recorded");
  check_report_roundtrip "deadline" st;
  match Obs.Json.member "budget_exhausted" (Sweep.Stats.to_json st) with
  | Some (Obs.Json.Obj kvs) ->
    check "json reason" true
      (List.assoc_opt "reason" kvs = Some (Obs.Json.String "deadline"));
    check "json phase present" true (List.mem_assoc "phase" kvs)
  | _ -> Alcotest.fail "budget_exhausted missing from the JSON report"

let test_timeout_partial () =
  (* A tiny but non-zero budget on a sizeable circuit: the sweep must cut
     itself short mid-flight and the partial result — only the merges
     proven before exhaustion — must still be a correct network. *)
  let rng = Rng.create 31337L in
  let base = random_network rng ~pis:10 ~gates:8000 ~pos:8 in
  let net = Gen.Redundant.inject ~seed:13L ~fraction:0.3 base in
  let swept, st = Sweep.Stp_sweep.sweep ~timeout:0.01 net in
  (match st.Sweep.Stats.budget_exhausted with
   | Some _ -> ()
   | None -> Alcotest.fail "expected the budget to run out");
  check "function preserved" true (exhaustive_equal net swept);
  match Sweep.Cec.check net swept with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "partial sweep not CEC-equivalent"

let test_retry_schedule () =
  (* Escalating conflict limits must recover pairs a starved first
     attempt leaves undetermined, and the retries must be counted. *)
  let rng = Rng.create 1618L in
  let base = random_network rng ~pis:8 ~gates:120 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:9L ~fraction:0.5 base in
  let _, st0 = Sweep.Stp_sweep.sweep ~conflict_limit:1 net in
  let swept, st =
    Sweep.Stp_sweep.sweep ~conflict_limit:1 ~retry_schedule:[ 100; 100_000 ] net
  in
  check "function preserved" true (exhaustive_equal net swept);
  check "no retries without a schedule" true (st0.Sweep.Stats.sat_retries = 0);
  if st0.Sweep.Stats.sat_undet > 0 then begin
    check "retries counted" true (st.Sweep.Stats.sat_retries > 0);
    check "retries resolve undetermined pairs" true
      (st.Sweep.Stats.sat_undet <= st0.Sweep.Stats.sat_undet)
  end

let test_self_verify () =
  (* The opt-in verification path must accept a correct sweep. *)
  let rng = Rng.create 123321L in
  let base = random_network rng ~pis:7 ~gates:60 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:2L ~fraction:0.5 base in
  let swept, _ = Sweep.Stp_sweep.sweep ~verify:true net in
  check "verified sweep not larger" true (A.num_ands swept <= A.num_ands net);
  check "function preserved" true (exhaustive_equal net swept)

let test_fault_matrix () =
  (* Every sweep-path fault site × several seeds: the sweep must not
     crash, must never let an unproven merge through, and the output must
     stay equivalent. The verdicts run with faults disarmed so the check
     itself is not subject to injection. *)
  let sites = [ "sweep.drop_ce"; "sweep.fail_window"; "sat.force_unknown" ] in
  let rng = Rng.create 600613L in
  (* Starved initial patterns (one word over 10 PIs) leave aliased
     signatures, so the engines actually reach SAT counterexamples and
     window checks — the opportunities the faults need. *)
  let base = random_network rng ~pis:10 ~gates:200 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:11L ~fraction:0.5 base in
  List.iter
    (fun site_name ->
      let site = Obs.Fault.register site_name in
      let fired = ref 0 in
      for seed = 1 to 5 do
        (* Both engines: fraig answers distinctions with SAT
           counterexamples (drop_ce opportunities), stp routes them
           through windows (fail_window opportunities). *)
        List.iter
          (fun (engine, sweeper) ->
            let swept =
              with_faults
                (Printf.sprintf "seed=%d,%s:0.5" seed site_name)
                (fun () ->
                  let swept, _ = sweeper net in
                  fired := !fired + Obs.Fault.hits site;
                  swept)
            in
            if not (exhaustive_equal net swept) then
              Alcotest.failf "%s/%s seed %d: function changed" site_name
                engine seed;
            match Sweep.Cec.check net swept with
            | Sweep.Cec.Equivalent -> ()
            | _ -> Alcotest.failf "%s/%s seed %d: CEC failed" site_name engine seed)
          [
            ("fraig", fun n -> Sweep.Fraig.sweep ~initial_words:1 n);
            ("stp", fun n -> Sweep.Stp_sweep.sweep ~initial_words:1 n);
          ]
      done;
      if !fired = 0 then
        Alcotest.failf "%s never struck across the seed matrix" site_name)
    sites

let test_certified_sweep () =
  (* Certified mode on an honest run: every UNSAT merge carries a
     replayed proof, every counterexample validates, nothing is
     rejected, and the counters surface in the JSON report. *)
  let rng = Rng.create 0xCE47L in
  let base = random_network rng ~pis:8 ~gates:120 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:21L ~fraction:0.5 base in
  List.iter
    (fun (label, sweeper) ->
      let swept, st = sweeper net in
      let open Sweep.Stats in
      if not (exhaustive_equal net swept) then
        Alcotest.failf "%s: certified sweep changed the function" label;
      check_int (label ^ ": nothing rejected") 0 st.certificate_rejected;
      check_int (label ^ ": every unsat certified") st.sat_unsat
        st.certified_unsat;
      check_int (label ^ ": every model certified") st.sat_sat
        st.certified_models;
      check_report_roundtrip (label ^ " certified") st;
      let counters =
        match Obs.Json.member "counters" (to_json st) with
        | Some (Obs.Json.Obj _ as o) -> o
        | _ -> Alcotest.failf "%s: no counters object in the report" label
      in
      List.iter
        (fun k ->
          match Obs.Json.member k counters with
          | Some (Obs.Json.Int _) -> ()
          | _ -> Alcotest.failf "%s: %s missing from the JSON report" label k)
        [ "certified_unsat"; "certified_models"; "certificate_rejected" ])
    [
      ("fraig", fun n -> Sweep.Fraig.sweep ~certify:true ~initial_words:1 n);
      ("stp", fun n -> Sweep.Stp_sweep.sweep ~certify:true ~initial_words:1 n);
    ]

let test_lying_solver_matrix () =
  (* The adversarial sites × seeds × engines: a lying solver must never
     get a wrong merge committed in certified mode. Every run's output
     must stay equivalent (also re-judged by the engine's own
     self-check), and across the matrix at least one lie must actually
     fire and be rejected. *)
  let sites = [ "sat.flip_unsat"; "sat.corrupt_proof"; "sat.bogus_model" ] in
  let rng = Rng.create 0x11E5L in
  let base = random_network rng ~pis:10 ~gates:150 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:17L ~fraction:0.5 base in
  List.iter
    (fun site_name ->
      let site = Obs.Fault.register site_name in
      let fired = ref 0 and rejected = ref 0 in
      for seed = 1 to 5 do
        List.iter
          (fun (engine, sweeper) ->
            let swept =
              with_faults
                (Printf.sprintf "seed=%d,%s:0.4" seed site_name)
                (fun () ->
                  let swept, st = sweeper net in
                  fired := !fired + Obs.Fault.hits site;
                  rejected :=
                    !rejected + st.Sweep.Stats.certificate_rejected;
                  swept)
            in
            if not (exhaustive_equal net swept) then
              Alcotest.failf "%s/%s seed %d: a lie was committed" site_name
                engine seed;
            match Sweep.Cec.check net swept with
            | Sweep.Cec.Equivalent -> ()
            | _ ->
              Alcotest.failf "%s/%s seed %d: CEC failed" site_name engine seed)
          [
            ( "fraig",
              fun n ->
                Sweep.Fraig.sweep ~certify:true ~verify:true ~initial_words:1 n
            );
            ( "stp",
              fun n ->
                Sweep.Stp_sweep.sweep ~certify:true ~verify:true
                  ~initial_words:1 n );
          ]
      done;
      if !fired = 0 then
        Alcotest.failf "%s never struck across the seed matrix" site_name;
      if !rejected = 0 then
        Alcotest.failf "%s fired %d times but no certificate was rejected"
          site_name !fired)
    sites

let test_parse_truncate_fault () =
  (* The parser-input fault: a truncated document must surface as
     Parse_error (or still parse, when the cut lands after the payload) —
     never any other exception. *)
  let rng = Rng.create 271828L in
  let net = random_network rng ~pis:6 ~gates:40 ~pos:3 in
  let text = Aig.Aiger.write net in
  let saw_error = ref false in
  for seed = 1 to 10 do
    with_faults
      (Printf.sprintf "seed=%d,parse.truncate" seed)
      (fun () ->
        match Aig.Aiger.read text with
        | _ -> ()
        | exception Aig.Aiger.Parse_error _ -> saw_error := true)
  done;
  check "truncation surfaced as Parse_error" true !saw_error

let test_fault_catalog_complete () =
  (* Linking the sweep stack must register the documented site catalog. *)
  let cat = Obs.Fault.catalog () in
  List.iter
    (fun site ->
      if not (List.mem site cat) then
        Alcotest.failf "site %s not in the catalog" site)
    [
      "parse.truncate";
      "sat.force_unknown";
      "sweep.drop_ce";
      "sweep.fail_window";
      "sat.flip_unsat";
      "sat.corrupt_proof";
      "sat.bogus_model";
      "cache.corrupt_entry";
      "cache.torn_write";
      (* svc.drop_conn registers at Svc.Server init, which this binary does
         not link; test_svc asserts it instead. *)
    ]

(* ---- the equivalence cache (Svc.Cache wired into the engine) ---- *)

let with_cache_dir f =
  let dir = Filename.temp_file "swcache" "" in
  Sys.remove dir;
  let rec rm p =
    if (try Sys.is_directory p with Sys_error _ -> false) then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let iter_cache_files dir f =
  Array.iter
    (fun sub ->
      let p = Filename.concat dir sub in
      if Sys.is_directory p then
        Array.iter
          (fun fn ->
            if Filename.check_suffix fn ".json" then f (Filename.concat p fn))
          (Sys.readdir p))
    (Sys.readdir dir)

let cache_sat_calls st =
  st.Sweep.Stats.sat_sat + st.Sweep.Stats.sat_unsat + st.Sweep.Stats.sat_undet

let test_cache_cold_warm () =
  (* The headline soundness property: a warm-cache sweep must replay the
     cold run's trajectory exactly — same merges, same result size, CEC
     equivalent — while answering every solver query from disk. *)
  List.iter
    (fun (label, certify) ->
      with_cache_dir @@ fun dir ->
      let rng = Rng.create 0xCAC4EDL in
      let base = random_network rng ~pis:8 ~gates:150 ~pos:5 in
      let net = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.5 base in
      let c = Svc.Cache.open_ dir in
      let sweep () =
        Sweep.Stp_sweep.sweep ~initial_words:1 ~window_max_leaves:4 ~certify
          ~cache:(Svc.Cache.ops c) net
      in
      let cold, stc = sweep () in
      let warm, stw = sweep () in
      check (label ^ ": cold function preserved") true
        (exhaustive_equal net cold);
      check (label ^ ": warm function preserved") true
        (exhaustive_equal net warm);
      (match Sweep.Cec.check net warm with
      | Sweep.Cec.Equivalent -> ()
      | _ -> Alcotest.failf "%s: warm sweep not CEC-equivalent" label);
      check (label ^ ": cold run misses") true
        (stc.Sweep.Stats.cache_hits = 0 && stc.Sweep.Stats.cache_misses > 0);
      check (label ^ ": warm run only hits") true
        (stw.Sweep.Stats.cache_misses = 0 && stw.Sweep.Stats.cache_hits > 0);
      check_int (label ^ ": merges identical") stc.Sweep.Stats.merges
        stw.Sweep.Stats.merges;
      check_int (label ^ ": sizes identical") (A.num_ands cold)
        (A.num_ands warm);
      check_int (label ^ ": warm run never solves") 0 (cache_sat_calls stw);
      check_int (label ^ ": nothing rejected") 0 stw.Sweep.Stats.cache_rejected)
    [ ("plain", false); ("certified", true) ]

let test_cache_fault_matrix () =
  (* Corrupt-entry and torn-write faults strike the bytes on the way to
     disk; the next run must quarantine exactly those entries, count
     them as rejected, re-prove them, and still land on the cold run's
     merges — an unproven merge must never come out of the cache. *)
  let rng = Rng.create 0xFA17CAL in
  let base = random_network rng ~pis:9 ~gates:180 ~pos:5 in
  let net = Gen.Redundant.inject ~seed:17L ~fraction:0.5 base in
  List.iter
    (fun site_name ->
      let site = Obs.Fault.register site_name in
      let fired = ref 0 and rejected = ref 0 in
      for seed = 1 to 5 do
        with_cache_dir @@ fun dir ->
        let c = Svc.Cache.open_ dir in
        let sweep () =
          Sweep.Stp_sweep.sweep ~initial_words:1 ~window_max_leaves:4 ~cache:(Svc.Cache.ops c) net
        in
        let cold, stc =
          with_faults
            (Printf.sprintf "seed=%d,%s:0.5" seed site_name)
            (fun () ->
              let r = sweep () in
              fired := !fired + Obs.Fault.hits site;
              r)
        in
        (* Faults disarmed: whatever reached disk is now read back. *)
        let warm, stw = sweep () in
        check
          (Printf.sprintf "%s seed %d: cold function preserved" site_name seed)
          true (exhaustive_equal net cold);
        check
          (Printf.sprintf "%s seed %d: warm function preserved" site_name seed)
          true (exhaustive_equal net warm);
        (match Sweep.Cec.check net warm with
        | Sweep.Cec.Equivalent -> ()
        | _ -> Alcotest.failf "%s seed %d: warm CEC failed" site_name seed);
        check_int
          (Printf.sprintf "%s seed %d: merges identical" site_name seed)
          stc.Sweep.Stats.merges stw.Sweep.Stats.merges;
        (* Layering: every damaged entry the warm run touched was
           quarantined by the cache and counted rejected by the engine. *)
        check_int
          (Printf.sprintf "%s seed %d: rejected = quarantined" site_name seed)
          (Svc.Cache.counters c).Svc.Cache.c_quarantined
          stw.Sweep.Stats.cache_rejected;
        rejected := !rejected + stw.Sweep.Stats.cache_rejected
      done;
      if !fired = 0 then
        Alcotest.failf "%s never struck across the seed matrix" site_name;
      if !rejected = 0 then
        Alcotest.failf "%s: no damaged entry was ever rejected" site_name)
    [ "cache.corrupt_entry"; "cache.torn_write" ]

let test_cache_paranoid_tamper () =
  (* Forged entries with valid structure: correct key, correct checksum,
     gutted proof. Structural integrity alone must not be enough under
     --paranoid — the replayed certificate is the trust anchor. *)
  with_cache_dir @@ fun dir ->
  let rng = Rng.create 0x7A3BE2L in
  let base = random_network rng ~pis:8 ~gates:120 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:5L ~fraction:0.5 base in
  let c = Svc.Cache.open_ dir in
  let _, stc =
    Sweep.Stp_sweep.sweep ~initial_words:1 ~window_max_leaves:4 ~certify:true
      ~cache:(Svc.Cache.ops c) net
  in
  let forged = ref 0 in
  iter_cache_files dir (fun path ->
      let raw = In_channel.with_open_bin path In_channel.input_all in
      match Obs.Json.parse raw with
      | payload -> (
        match
          (Obs.Json.member "key" payload, Obs.Json.member "entry" payload)
        with
        | Some (Obs.Json.String key), Some entry
          when Obs.Json.member "verdict" entry
               = Some (Obs.Json.String "equiv") ->
          let open Obs.Json in
          let entry' =
            Obj
              [
                ("v", Int 1); ("verdict", String "equiv"); ("proof", List []);
              ]
          in
          let sum = Digest.to_hex (Digest.string (to_string entry')) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc
                (to_string
                   (Obj
                      [
                        ("key", String key);
                        ("checksum", String sum);
                        ("entry", entry');
                      ])));
          incr forged
        | _ -> ())
      | exception Obs.Json.Parse_error _ -> ());
  check "some equivalence entries were forged" true (!forged > 0);
  let warm, stw =
    Sweep.Stp_sweep.sweep ~initial_words:1 ~window_max_leaves:4 ~certify:true ~cache_paranoid:true
      ~cache:(Svc.Cache.ops c) net
  in
  check "function preserved despite forged cache" true
    (exhaustive_equal net warm);
  (match Sweep.Cec.check net warm with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "paranoid warm sweep not CEC-equivalent");
  check "forged certificates rejected on replay" true
    (stw.Sweep.Stats.cache_rejected > 0);
  check_int "merges identical (rejects re-proven)" stc.Sweep.Stats.merges
    stw.Sweep.Stats.merges;
  (* The forgery is structurally pristine: the cache layer itself must
     not have quarantined anything — rejection happened at the proof. *)
  check_int "no quarantines for a structurally valid forgery" 0
    (Svc.Cache.counters c).Svc.Cache.c_quarantined

let test_cache_crash_recovery () =
  (* The kill -9 contract at unit level: a committed-but-torn entry
     (rename raced the tear) is quarantined on first read, a plain miss
     afterwards, and the slot is re-storable; an uncommitted temp file
     is swept by the next open_. *)
  with_cache_dir @@ fun dir ->
  let key = String.make 32 'a' in
  let entry =
    Obs.Json.Obj [ ("v", Obs.Json.Int 1); ("verdict", Obs.Json.String "diff") ]
  in
  let c = Svc.Cache.open_ dir in
  with_faults "seed=1,cache.torn_write" (fun () ->
      Svc.Cache.store c ~key entry);
  (* restart *)
  let c2 = Svc.Cache.open_ dir in
  (match Svc.Cache.find c2 ~key with
  | Sweep.Engine.Cache_corrupt -> ()
  | _ -> Alcotest.fail "torn entry served instead of quarantined");
  (match Svc.Cache.find c2 ~key with
  | Sweep.Engine.Cache_miss -> ()
  | _ -> Alcotest.fail "quarantined entry not degraded to a miss");
  let sub = Filename.concat dir (String.sub key 0 2) in
  check "quarantine file preserved for post-mortem" true
    (Sys.file_exists (Filename.concat sub (key ^ ".json.quarantined")));
  Svc.Cache.store c2 ~key entry;
  (match Svc.Cache.find c2 ~key with
  | Sweep.Engine.Cache_hit e -> check "entry round-trips" true (e = entry)
  | _ -> Alcotest.fail "re-stored entry not served");
  (* A temp file is a write that never committed: swept on open_. *)
  let tmp = Filename.concat sub ".tmp.99999.0" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc "x");
  let _ = Svc.Cache.open_ dir in
  check "stale temp swept on restart" false (Sys.file_exists tmp);
  (* Hostile keys stay inside the cache directory. *)
  (match Svc.Cache.find c2 ~key:"../../escape" with
  | Sweep.Engine.Cache_miss -> ()
  | _ -> Alcotest.fail "traversal key must be a miss");
  Svc.Cache.store c2 ~key:"../../escape" entry;
  check "traversal key stored nothing" false
    (Sys.file_exists (Filename.concat (Filename.dirname dir) "escape"))

let () =
  Alcotest.run "sweep"
    [
      ( "pieces",
        [
          Alcotest.test_case "equiv classes" `Quick test_equiv_classes;
          Alcotest.test_case "cec" `Quick test_cec;
          Alcotest.test_case "guided patterns" `Quick test_guided_patterns;
        ] );
      ( "engines",
        [
          Alcotest.test_case "fraig preserves function" `Slow test_fraig_preserves;
          Alcotest.test_case "stp preserves function" `Slow test_stp_preserves;
          Alcotest.test_case "removes redundancy" `Quick
            test_sweep_removes_redundancy;
          Alcotest.test_case "stp saves sat calls" `Slow test_stp_saves_sat_calls;
          Alcotest.test_case "constant nodes" `Quick test_sweep_constant_nodes;
          Alcotest.test_case "idempotent" `Quick test_sweep_idempotent;
          Alcotest.test_case "window merges happen" `Quick
            test_window_merges_happen;
          Alcotest.test_case "stats invariants" `Quick test_stats_invariants;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"phase accounting + report round-trip"
               ~count:30 arb_sweep_case prop_phase_accounting);
          Alcotest.test_case "ablation configs preserve function" `Slow
            test_engine_ablation_configs;
          Alcotest.test_case "parallel sweep identical" `Quick
            test_parallel_sweep_identical;
          Alcotest.test_case "max_compares charges window splits" `Quick
            test_max_compares_charges_window_splits;
          Alcotest.test_case "guided consts recorded" `Quick
            test_guided_consts_recorded;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "domain counts agree" `Slow
            test_dispatch_domains_agree;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"sat-domains 1/2/4 equivalent" ~count:10
               arb_dispatch_case prop_dispatch_equivalent);
          Alcotest.test_case "cube and conquer" `Slow
            test_dispatch_cube_and_conquer;
          Alcotest.test_case "budget degrades" `Quick
            test_dispatch_budget_degrades;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "expired deadline degrades" `Quick
            test_deadline_degrades;
          Alcotest.test_case "mid-flight timeout keeps proven merges" `Slow
            test_timeout_partial;
          Alcotest.test_case "retry schedule" `Slow test_retry_schedule;
          Alcotest.test_case "self-verify accepts a correct sweep" `Quick
            test_self_verify;
          Alcotest.test_case "fault matrix" `Slow test_fault_matrix;
          Alcotest.test_case "certified sweep" `Quick test_certified_sweep;
          Alcotest.test_case "lying-solver matrix" `Slow
            test_lying_solver_matrix;
          Alcotest.test_case "parser truncation fault" `Quick
            test_parse_truncate_fault;
          Alcotest.test_case "fault catalog complete" `Quick
            test_fault_catalog_complete;
        ] );
      ( "cache",
        [
          Alcotest.test_case "warm run replays the cold run" `Slow
            test_cache_cold_warm;
          Alcotest.test_case "corrupt/torn entry matrix" `Slow
            test_cache_fault_matrix;
          Alcotest.test_case "paranoid rejects forged certificates" `Slow
            test_cache_paranoid_tamper;
          Alcotest.test_case "crash recovery + hostile keys" `Quick
            test_cache_crash_recovery;
        ] );
    ]
