(* Parser fuzzing: random truncations and mutations of valid AIGER,
   BLIF and DIMACS documents must either parse or raise that parser's
   [Parse_error] — never any other exception, never a crash. This is
   the guarantee the CLI exit-code mapping (exit 2) rests on. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

let random_aiger rng =
  let pis = 2 + Rng.int rng 6
  and gates = 5 + Rng.int rng 60
  and pos = 1 + Rng.int rng 5 in
  Aig.Aiger.write (random_network rng ~pis ~gates ~pos)

let random_blif rng =
  let pis = 2 + Rng.int rng 6
  and gates = 5 + Rng.int rng 60
  and pos = 1 + Rng.int rng 5 in
  Klut.Blif.write (Klut.Mapper.map ~k:4 (random_network rng ~pis ~gates ~pos))

let random_dimacs rng =
  let num_vars = 1 + Rng.int rng 10 in
  let clauses =
    List.init
      (Rng.int rng 20)
      (fun _ ->
        List.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng (2 * num_vars)))
  in
  Sat.Dimacs.print ~num_vars clauses

(* A grab-bag of lines that are plausible for the *wrong* format, plus
   outright garbage — inserted mid-document they probe cross-format
   confusion and integer-parsing edges. *)
let garbage_lines =
  [|
    "0 0 0 0 0 0 0";
    "p cnf 3 3";
    ".names a b c";
    "-1--0 1";
    "zzz";
    "18446744073709551616 2";
    "-99";
    "aag 1 1";
    "\x00\xffbinary";
    "4611686018427387904 4611686018427387904 1";
    ".latch a b 0";
    "";
  |]

let mutate rng text =
  let lines () = String.split_on_char '\n' text in
  match Rng.int rng 5 with
  | 0 ->
    (* Truncate at an arbitrary byte offset. *)
    String.sub text 0 (Rng.int rng (String.length text + 1))
  | 1 ->
    (* Replace one byte with an arbitrary byte. *)
    if text = "" then text
    else begin
      let b = Bytes.of_string text in
      Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256));
      Bytes.to_string b
    end
  | 2 ->
    (* Delete a line. *)
    let ls = lines () in
    let k = Rng.int rng (List.length ls) in
    String.concat "\n" (List.filteri (fun i _ -> i <> k) ls)
  | 3 ->
    (* Duplicate a line. *)
    let ls = lines () in
    let k = Rng.int rng (List.length ls) in
    String.concat "\n"
      (List.concat (List.mapi (fun i l -> if i = k then [ l; l ] else [ l ]) ls))
  | _ ->
    (* Insert a garbage line. *)
    let ls = lines () in
    let k = Rng.int rng (List.length ls + 1) in
    let g = garbage_lines.(Rng.int rng (Array.length garbage_lines)) in
    String.concat "\n"
      (List.concat (List.mapi (fun i l -> if i = k then [ g; l ] else [ l ]) ls)
      @ if k = List.length ls then [ g ] else [])

let random_json rng =
  (* Skewed toward nesting and strings-with-escapes: the two places a
     JSON parser can die in interesting ways. *)
  let rec value depth =
    match if depth > 4 then Rng.int rng 4 else Rng.int rng 6 with
    | 0 -> "null"
    | 1 -> if Rng.bool rng then "true" else "false"
    | 2 -> string_of_int (Rng.int rng 2000 - 1000)
    | 3 ->
      let chars =
        List.init (Rng.int rng 8) (fun _ ->
            match Rng.int rng 5 with
            | 0 -> "\\\""
            | 1 -> "\\u0041"
            | 2 -> "\\n"
            | 3 -> "x"
            | _ -> String.make 1 (Char.chr (32 + Rng.int rng 90)))
      in
      "\"" ^ String.concat "" chars ^ "\""
    | 4 ->
      let n = Rng.int rng 4 in
      "[" ^ String.concat "," (List.init n (fun _ -> value (depth + 1))) ^ "]"
    | _ ->
      let n = Rng.int rng 4 in
      "{"
      ^ String.concat ","
          (List.init n (fun i ->
               Printf.sprintf "\"k%d\":%s" i (value (depth + 1))))
      ^ "}"
  in
  value 0

(* Hostile inputs aimed at specific parser weaknesses: unbounded
   recursion (stack overflow is not a Parse_error) and the \u escape's
   integer parsing. These are the wire-facing guarantees sweepd's
   per-request isolation rests on. *)
let json_directed () =
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  List.iter
    (fun text ->
      match Obs.Json.parse text with
      | _ -> ()
      | exception Obs.Json.Parse_error _ -> ()
      | exception e ->
        Alcotest.failf "unexpected exception %s on %S..."
          (Printexc.to_string e)
          (String.sub text 0 (min 40 (String.length text))))
    [
      deep 100_000;
      deep 100_000 ^ "1" ^ String.concat "" (List.init 100_000 (fun _ -> "]"));
      "{\"a\":" ^ deep 50_000;
      "\"\\uZZZZ\"";
      "\"\\u12\"";
      "\"\\u\"";
      "\"\\x41\"";
      "[1,2,";
      "{\"a\"";
      "\"unterminated";
      "18446744073709551616";
      "1e99999";
      "nul";
      "\xff\xfe";
      "";
    ]

let arb_case =
  QCheck.make
    ~print:(fun (seed, rounds) -> Printf.sprintf "seed=%Ld rounds=%d" seed rounds)
    QCheck.Gen.(
      let* seed = ui64 in
      let* rounds = int_range 1 3 in
      return (seed, rounds))

let prop_parser ~name ~generate ~parse ~is_parse_error (seed, rounds) =
  let rng = Rng.create seed in
  let text = ref (generate rng) in
  for _ = 1 to rounds do
    text := mutate rng !text
  done;
  match parse !text with
  | _ -> true
  | exception e ->
    if is_parse_error e then true
    else
      QCheck.Test.fail_reportf "%s: unexpected exception %s on input %S" name
        (Printexc.to_string e) !text

let fuzz_test name ~generate ~parse ~is_parse_error =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:300 arb_case
       (prop_parser ~name ~generate ~parse ~is_parse_error))

let () =
  Alcotest.run "fuzz"
    [
      ( "parsers",
        [
          fuzz_test "aiger mutations"
            ~generate:random_aiger
            ~parse:(fun t -> ignore (Aig.Aiger.read t))
            ~is_parse_error:(function Aig.Aiger.Parse_error _ -> true | _ -> false);
          fuzz_test "blif mutations"
            ~generate:random_blif
            ~parse:(fun t -> ignore (Klut.Blif.read t))
            ~is_parse_error:(function Klut.Blif.Parse_error _ -> true | _ -> false);
          fuzz_test "dimacs mutations"
            ~generate:random_dimacs
            ~parse:(fun t -> ignore (Sat.Dimacs.parse t))
            ~is_parse_error:(function Sat.Dimacs.Parse_error _ -> true | _ -> false);
        ] );
      ( "json",
        [
          fuzz_test "json mutations"
            ~generate:random_json
            ~parse:(fun t -> ignore (Obs.Json.parse t))
            ~is_parse_error:(function Obs.Json.Parse_error _ -> true | _ -> false);
          Alcotest.test_case "directed hostile inputs" `Quick json_directed;
        ] );
    ]
