(* Pass-manager tests: the script grammar (positioned errors), the
   pipeline runner (random scripts preserve the function, per-pass times
   sum below the total), budget semantics across a script (expired
   deadline skips remaining transforms, verify still runs), and the
   legacy-flow equivalence (the compiled default script produces the
   same network as calling the stages directly). *)

module Rng = Sutil.Rng
module Pass = Stp_sweep.Pass
module Script = Stp_sweep.Script

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let quiet = ignore

let qcheck_case ~name ~count arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* A small redundant network the sweepers have real work on. *)
let redundant_net seed =
  let rng = Rng.create seed in
  let base = Gen.Arith.ripple_adder ~width:5 in
  Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.4 base

(* ---- grammar ---- *)

let test_parse_valid () =
  let cmds = Script.parse "sweep -e stp; rewrite -k 4; balance; verify" in
  check_int "four commands" 4 (List.length cmds);
  let names = List.map (fun ((t : Script.token), _) -> t.Script.text) cmds in
  check "names" true (names = [ "sweep"; "rewrite"; "balance"; "verify" ]);
  let passes = Script.compile "sweep -e fraig --retry-schedule 10,100; ps" in
  check_int "two passes" 2 (List.length passes);
  let sweep = List.hd passes in
  check_str "engine arg" "fraig" (List.assoc "engine" sweep.Pass.args);
  check_str "retry arg" "10,100" (List.assoc "retry-schedule" sweep.Pass.args);
  check "sweep transforms" true sweep.Pass.transform;
  check "ps reports" false (List.nth passes 1).Pass.transform;
  (* Whitespace and separators are free-form. *)
  check_int "packed separators" 3
    (List.length (Script.compile "sweep;rewrite ;\n balance"))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let expect_error script substr =
  match Script.compile script with
  | _ -> Alcotest.failf "expected Parse_error for %S" script
  | exception Script.Parse_error msg ->
    if not (contains msg substr) then
      Alcotest.failf "error %S does not mention %S" msg substr

let test_parse_errors () =
  expect_error "sweep; rewrit; balance" "col 8: unknown pass 'rewrit'";
  expect_error "sweeep" "col 1: unknown pass";
  expect_error "sweep -z" "col 7: unknown flag '-z'";
  expect_error "sweep -e" "col 7: flag '-e' expects a value";
  expect_error "sweep -e bogus" "col 7: unknown engine 'bogus'";
  expect_error "rewrite -k four" "col 9: expected an integer";
  expect_error "sweep; balance;" "col 15: dangling ';'";
  expect_error ";sweep" "col 1: empty command";
  expect_error "" "empty script";
  expect_error "   " "empty script";
  expect_error "rewrite extra" "col 9: unexpected argument 'extra'";
  expect_error "42pass" "col 1: expected a pass name"

(* ---- random pipelines preserve the function ---- *)

let pass_pool =
  [|
    "sweep -e stp";
    "sweep -e fraig";
    "sweep -e stp --retry-schedule 50,200";
    "rewrite";
    "rewrite -k 3";
    "balance";
    "cleanup";
    "ps";
  |]

let arb_script =
  QCheck.make
    ~print:(fun (seed, picks) ->
      Printf.sprintf "seed=%Ld script=%S" seed
        (String.concat "; "
           (List.map (fun i -> pass_pool.(i)) picks)))
    QCheck.Gen.(
      let* seed = ui64 in
      let* picks = list_size (int_range 1 4) (int_bound (Array.length pass_pool - 1)) in
      let picks = match picks with [] -> [ 0 ] | l -> l in
      return (seed, picks))

let prop_random_script_equivalent (seed, picks) =
  let script = String.concat "; " (List.map (fun i -> pass_pool.(i)) picks) in
  let net = redundant_net seed in
  let ctx = Pass.create_ctx ~echo:quiet net in
  let t0 = Obs.Clock.now () in
  let final, records = Pass.run_pipeline ctx (Script.compile script) net in
  let total = Obs.Clock.now () -. t0 in
  let times = List.fold_left (fun acc r -> acc +. r.Pass.r_wall_s) 0. records in
  List.length records = List.length picks
  && List.for_all (fun r -> r.Pass.r_skipped = None) records
  && times <= total +. 1e-6
  && Sweep.Cec.check net final = Sweep.Cec.Equivalent

(* ---- budget semantics across a script ---- *)

let test_budget_mid_script () =
  let net = redundant_net 11L in
  let ctx = Pass.create_ctx ~timeout:0.05 ~echo:quiet net in
  (* A pass that burns past the deadline: everything after it must be
     skipped — except verify, which judges the degraded pipeline. *)
  let burn =
    {
      Pass.name = "burn";
      args = [];
      transform = true;
      run =
        (fun _ n ->
          Unix.sleepf 0.12;
          (n, Obs.Json.Null));
    }
  in
  let passes = (burn :: Script.compile "sweep; rewrite; balance; verify") in
  let final, records = Pass.run_pipeline ctx passes net in
  check_int "every pass reported" 5 (List.length records);
  let by_name n = List.find (fun r -> r.Pass.r_name = n) records in
  check "burn ran" true ((by_name "burn").Pass.r_skipped = None);
  List.iter
    (fun n ->
      check (n ^ " skipped") true
        ((by_name n).Pass.r_skipped = Some "deadline"))
    [ "sweep"; "rewrite"; "balance" ];
  check "verify still ran" true ((by_name "verify").Pass.r_skipped = None);
  check "verify verdict recorded" true
    (Pass.last_verdict ctx = Some "equivalent");
  check_int "skipped count" 3 (Pass.skipped_count records);
  check "network unchanged" true (final == net);
  (* Skipped transforms report identity before/after sizes. *)
  let r = by_name "rewrite" in
  check_int "skipped before=after" r.Pass.r_ands_before r.Pass.r_ands_after

let test_unlimited_budget_runs_all () =
  let net = redundant_net 5L in
  let ctx = Pass.create_ctx ~echo:quiet net in
  let _, records =
    Pass.run_pipeline ctx (Script.compile "sweep; rewrite; balance; verify") net
  in
  check_int "no skips" 0 (Pass.skipped_count records);
  check "equivalent" true (Pass.last_verdict ctx = Some "equivalent");
  check "no difference" false (Pass.any_different ctx)

(* ---- legacy flow equivalence ---- *)

let test_matches_direct_calls () =
  let net = redundant_net 7L in
  let ctx = Pass.create_ctx ~echo:quiet net in
  let final, _ =
    Pass.run_pipeline ctx (Script.compile "sweep -e stp; rewrite; balance") net
  in
  let swept, _ = Sweep.Stp_sweep.sweep net in
  let rewritten, _ = Synth.Rewrite.rewrite swept in
  let balanced, _ = Aig.Balance.balance rewritten in
  check_str "same network as the hardcoded flow" (Aig.Aiger.write balanced)
    (Aig.Aiger.write final)

(* ---- verify checkpointing and reports ---- *)

let test_verify_checkpoint () =
  let net = redundant_net 3L in
  let ctx = Pass.create_ctx ~echo:quiet net in
  let _, records =
    Pass.run_pipeline ctx (Script.compile "sweep; verify; balance; verify") net
  in
  check_int "no skips" 0 (Pass.skipped_count records);
  let verdicts = List.filter (fun r -> r.Pass.r_name = "verify") records in
  check_int "two verifies" 2 (List.length verdicts);
  (* The second verify checks against the first checkpoint (the swept
     network), not the input — both must pass. *)
  check "all equivalent" true
    (List.for_all
       (fun r ->
         match Obs.Json.member "cec" r.Pass.r_detail with
         | Some (Obs.Json.String "equivalent") -> true
         | _ -> false)
       verdicts)

let test_record_json_shape () =
  let net = redundant_net 9L in
  let ctx = Pass.create_ctx ~echo:quiet net in
  let _, records = Pass.run_pipeline ctx (Script.compile "sweep -e fraig; ps") net in
  let r = List.hd records in
  let j = Pass.record_json r in
  check "pass name" true (Obs.Json.member "pass" j = Some (Obs.Json.String "sweep"));
  check "args rendered" true
    (match Obs.Json.member "args" j with
    | Some (Obs.Json.Obj [ ("engine", Obs.Json.String "fraig") ]) -> true
    | _ -> false);
  check "wall time present" true
    (match Obs.Json.member "wall_s" j with
    | Some (Obs.Json.Float t) -> t >= 0.
    | _ -> false);
  (* Round-trips through the JSON printer/parser. *)
  check "round-trip" true
    (Obs.Json.of_string (Obs.Json.to_string j) = Ok j);
  let ps = List.nth records 1 in
  check "ps detail is network stats" true
    (match Obs.Json.member "ands" ps.Pass.r_detail with
    | Some (Obs.Json.Int _) -> true
    | _ -> false)

let () =
  Alcotest.run "pass"
    [
      ( "grammar",
        [
          Alcotest.test_case "valid scripts" `Quick test_parse_valid;
          Alcotest.test_case "positioned errors" `Quick test_parse_errors;
        ] );
      ( "pipeline",
        [
          qcheck_case ~name:"random scripts preserve the function" ~count:15
            arb_script prop_random_script_equivalent;
          Alcotest.test_case "matches the hardcoded flow" `Quick
            test_matches_direct_calls;
          Alcotest.test_case "verify checkpoints" `Quick test_verify_checkpoint;
          Alcotest.test_case "record json" `Quick test_record_json_shape;
        ] );
      ( "budget",
        [
          Alcotest.test_case "expired mid-script" `Quick test_budget_mid_script;
          Alcotest.test_case "unlimited runs all" `Quick
            test_unlimited_budget_runs_all;
        ] );
    ]
