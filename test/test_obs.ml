(* Observability-layer tests: the clock is monotonic wall time (the
   PR-2 bug was CPU time inverting parallel speedups), metrics account
   exactly, and the JSON printer/parser round-trip — reports must be
   readable back by any consumer. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qcheck_case ~name ~count arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- clock ---- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done

let test_clock_spans () =
  let dt, r = Obs.Clock.span (fun () -> 42) in
  check_int "span result" 42 r;
  check "span nonnegative" true (dt >= 0.);
  (* A busy loop must register wall time: sleep-free lower bound via
     repeated clock reads until some time visibly passes. *)
  let dt, () =
    Obs.Clock.span (fun () ->
        let t0 = Obs.Clock.now () in
        while Obs.Clock.now () -. t0 < 0.01 do
          ()
        done)
  in
  check "span sees wall time" true (dt >= 0.01);
  let cell = ref 0. in
  let r = Obs.Clock.accumulate cell (fun () -> "ok") in
  check_str "accumulate result" "ok" r;
  check "accumulate nonnegative" true (!cell >= 0.);
  let before = !cell in
  ignore (Obs.Clock.accumulate cell (fun () -> ()));
  check "accumulate adds" true (!cell >= before)

let test_clock_wall_not_cpu () =
  (* The defining property vs [Sys.time]: sleeping costs wall time but
     almost no CPU time. 20ms sleep must show up on the wall clock. *)
  let dt, () = Obs.Clock.span (fun () -> Unix.sleepf 0.02) in
  check "sleep registers on wall clock" true (dt >= 0.015)

(* ---- metrics ---- *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  check_int "unset counter is 0" 0 (Obs.Metrics.counter m "x");
  Obs.Metrics.incr m "x";
  Obs.Metrics.incr m "x" ~by:41;
  Obs.Metrics.incr m "y";
  check_int "x accumulated" 42 (Obs.Metrics.counter m "x");
  check_int "y accumulated" 1 (Obs.Metrics.counter m "y");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("x", 42); ("y", 1) ]
    (Obs.Metrics.counters m)

let test_metrics_phases () =
  let m = Obs.Metrics.create () in
  check "unset phase is 0" true (Obs.Metrics.phase_time m "sim" = 0.);
  Obs.Metrics.add_time m "sim" 0.5;
  Obs.Metrics.add_time m "sim" 0.25;
  check "phase accumulates" true (Obs.Metrics.phase_time m "sim" = 0.75);
  let r = Obs.Metrics.time m "sat" (fun () -> 7) in
  check_int "timed result" 7 r;
  check "timed phase nonnegative" true (Obs.Metrics.phase_time m "sat" >= 0.);
  match Obs.Metrics.to_json m with
  | Obs.Json.Obj [ ("counters", _); ("phases_s", Obs.Json.Obj phases) ] ->
    check "phases exported" true (List.mem_assoc "sim" phases)
  | _ -> Alcotest.fail "unexpected metrics JSON shape"

(* ---- json ---- *)

let sample =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("t", Bool true);
        ("f", Bool false);
        ("int", Int (-42));
        ("float", Float 3.5);
        ("tiny", Float 1.0000000000000002);
        ("str", String "line\n\"quoted\"\ttab \\ slash");
        ("list", List [ Int 1; Float 2.5; String "x"; List []; Obj [] ]);
        ("nested", Obj [ ("k", List [ Bool false; Null ]) ]);
      ])

let test_json_roundtrip_sample () =
  let s = Obs.Json.to_string sample in
  (match Obs.Json.of_string s with
   | Ok v -> check "compact round-trip" true (v = sample)
   | Error e -> Alcotest.fail e);
  let s = Obs.Json.to_string ~pretty:true sample in
  match Obs.Json.of_string s with
  | Ok v -> check "pretty round-trip" true (v = sample)
  | Error e -> Alcotest.fail e

let test_json_floats_stay_floats () =
  (* A float that happens to be integral must parse back as Float, not
     Int, or report consumers see the field type flip run to run. *)
  let s = Obs.Json.to_string (Obs.Json.Float 1.) in
  check_str "integral float keeps a dot" "1.0" s;
  (match Obs.Json.of_string s with
   | Ok (Obs.Json.Float 1.) -> ()
   | _ -> Alcotest.fail "1.0 must parse as Float");
  check_str "non-finite becomes null" "null" (Obs.Json.to_string (Obs.Json.Float nan))

let test_json_parser_details () =
  let ok s v =
    match Obs.Json.of_string s with
    | Ok v' -> check ("parse " ^ s) true (v = v')
    | Error e -> Alcotest.fail e
  in
  ok " [1, 2,\t3]\n" (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Int 3 ]);
  ok {|"aAb"|} (Obs.Json.String "aAb");
  ok {|"é"|} (Obs.Json.String "\xc3\xa9");
  ok "1e3" (Obs.Json.Float 1000.);
  ok "-0.5" (Obs.Json.Float (-0.5));
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "" ]

let test_json_member () =
  check "member hit" true
    (Obs.Json.member "int" sample = Some (Obs.Json.Int (-42)));
  check "member miss" true (Obs.Json.member "nope" sample = None);
  check "member on non-obj" true (Obs.Json.member "x" Obs.Json.Null = None);
  check "to_float int" true (Obs.Json.to_float (Obs.Json.Int 2) = Some 2.);
  check "to_float float" true (Obs.Json.to_float (Obs.Json.Float 2.5) = Some 2.5);
  check "to_float string" true (Obs.Json.to_float (Obs.Json.String "2") = None)

let test_json_to_file () =
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Json.to_file path sample;
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.of_string s with
      | Ok v -> check "file round-trip" true (v = sample)
      | Error e -> Alcotest.fail e)

(* Random JSON values: printable-ASCII strings plus escapes, finite
   floats, nesting bounded by the size parameter. *)
let arb_json =
  let open QCheck.Gen in
  let str =
    string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 12)
  in
  let leaf =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map
          (fun f -> Obs.Json.Float (if Float.is_finite f then f else 0.))
          float;
        map (fun s -> Obs.Json.String s) str;
      ]
  in
  let value =
    sized
    @@ fix (fun self n ->
           if n <= 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 (1, map (fun l -> Obs.Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun kvs -> Obs.Json.Obj kvs)
                     (list_size (int_range 0 4) (pair str (self (n / 2)))) );
               ])
  in
  QCheck.make ~print:(fun v -> Obs.Json.to_string ~pretty:true v) value

let prop_json_roundtrip v =
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> v = v'
  | Error _ -> false

let prop_json_roundtrip_pretty v =
  match Obs.Json.of_string (Obs.Json.to_string ~pretty:true v) with
  | Ok v' -> v = v'
  | Error _ -> false

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "spans" `Quick test_clock_spans;
          Alcotest.test_case "wall not cpu" `Quick test_clock_wall_not_cpu;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "phases" `Quick test_metrics_phases;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip sample" `Quick test_json_roundtrip_sample;
          Alcotest.test_case "floats stay floats" `Quick test_json_floats_stay_floats;
          Alcotest.test_case "parser details" `Quick test_json_parser_details;
          Alcotest.test_case "member/to_float" `Quick test_json_member;
          Alcotest.test_case "to_file" `Quick test_json_to_file;
          qcheck_case ~name:"qcheck round-trip compact" ~count:500 arb_json
            prop_json_roundtrip;
          qcheck_case ~name:"qcheck round-trip pretty" ~count:500 arb_json
            prop_json_roundtrip_pretty;
        ] );
    ]
