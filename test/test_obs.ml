(* Observability-layer tests: the clock is monotonic wall time (the
   PR-2 bug was CPU time inverting parallel speedups), metrics account
   exactly, and the JSON printer/parser round-trip — reports must be
   readable back by any consumer. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qcheck_case ~name ~count arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- clock ---- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done

let test_clock_spans () =
  let dt, r = Obs.Clock.span (fun () -> 42) in
  check_int "span result" 42 r;
  check "span nonnegative" true (dt >= 0.);
  (* A busy loop must register wall time: sleep-free lower bound via
     repeated clock reads until some time visibly passes. *)
  let dt, () =
    Obs.Clock.span (fun () ->
        let t0 = Obs.Clock.now () in
        while Obs.Clock.now () -. t0 < 0.01 do
          ()
        done)
  in
  check "span sees wall time" true (dt >= 0.01);
  let cell = ref 0. in
  let r = Obs.Clock.accumulate cell (fun () -> "ok") in
  check_str "accumulate result" "ok" r;
  check "accumulate nonnegative" true (!cell >= 0.);
  let before = !cell in
  ignore (Obs.Clock.accumulate cell (fun () -> ()));
  check "accumulate adds" true (!cell >= before)

let test_clock_wall_not_cpu () =
  (* The defining property vs [Sys.time]: sleeping costs wall time but
     almost no CPU time. 20ms sleep must show up on the wall clock. *)
  let dt, () = Obs.Clock.span (fun () -> Unix.sleepf 0.02) in
  check "sleep registers on wall clock" true (dt >= 0.015)

(* ---- metrics ---- *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  check_int "unset counter is 0" 0 (Obs.Metrics.counter m "x");
  Obs.Metrics.incr m "x";
  Obs.Metrics.incr m "x" ~by:41;
  Obs.Metrics.incr m "y";
  check_int "x accumulated" 42 (Obs.Metrics.counter m "x");
  check_int "y accumulated" 1 (Obs.Metrics.counter m "y");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("x", 42); ("y", 1) ]
    (Obs.Metrics.counters m)

let test_metrics_phases () =
  let m = Obs.Metrics.create () in
  check "unset phase is 0" true (Obs.Metrics.phase_time m "sim" = 0.);
  Obs.Metrics.add_time m "sim" 0.5;
  Obs.Metrics.add_time m "sim" 0.25;
  check "phase accumulates" true (Obs.Metrics.phase_time m "sim" = 0.75);
  let r = Obs.Metrics.time m "sat" (fun () -> 7) in
  check_int "timed result" 7 r;
  check "timed phase nonnegative" true (Obs.Metrics.phase_time m "sat" >= 0.);
  match Obs.Metrics.to_json m with
  | Obs.Json.Obj [ ("counters", _); ("phases_s", Obs.Json.Obj phases) ] ->
    check "phases exported" true (List.mem_assoc "sim" phases)
  | _ -> Alcotest.fail "unexpected metrics JSON shape"

(* ---- json ---- *)

let sample =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("t", Bool true);
        ("f", Bool false);
        ("int", Int (-42));
        ("float", Float 3.5);
        ("tiny", Float 1.0000000000000002);
        ("str", String "line\n\"quoted\"\ttab \\ slash");
        ("list", List [ Int 1; Float 2.5; String "x"; List []; Obj [] ]);
        ("nested", Obj [ ("k", List [ Bool false; Null ]) ]);
      ])

let test_json_roundtrip_sample () =
  let s = Obs.Json.to_string sample in
  (match Obs.Json.of_string s with
   | Ok v -> check "compact round-trip" true (v = sample)
   | Error e -> Alcotest.fail e);
  let s = Obs.Json.to_string ~pretty:true sample in
  match Obs.Json.of_string s with
  | Ok v -> check "pretty round-trip" true (v = sample)
  | Error e -> Alcotest.fail e

let test_json_floats_stay_floats () =
  (* A float that happens to be integral must parse back as Float, not
     Int, or report consumers see the field type flip run to run. *)
  let s = Obs.Json.to_string (Obs.Json.Float 1.) in
  check_str "integral float keeps a dot" "1.0" s;
  (match Obs.Json.of_string s with
   | Ok (Obs.Json.Float 1.) -> ()
   | _ -> Alcotest.fail "1.0 must parse as Float");
  check_str "non-finite becomes null" "null" (Obs.Json.to_string (Obs.Json.Float nan))

let test_json_parser_details () =
  let ok s v =
    match Obs.Json.of_string s with
    | Ok v' -> check ("parse " ^ s) true (v = v')
    | Error e -> Alcotest.fail e
  in
  ok " [1, 2,\t3]\n" (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Int 3 ]);
  ok {|"aAb"|} (Obs.Json.String "aAb");
  ok {|"é"|} (Obs.Json.String "\xc3\xa9");
  ok "1e3" (Obs.Json.Float 1000.);
  ok "-0.5" (Obs.Json.Float (-0.5));
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "" ]

let test_json_member () =
  check "member hit" true
    (Obs.Json.member "int" sample = Some (Obs.Json.Int (-42)));
  check "member miss" true (Obs.Json.member "nope" sample = None);
  check "member on non-obj" true (Obs.Json.member "x" Obs.Json.Null = None);
  check "to_float int" true (Obs.Json.to_float (Obs.Json.Int 2) = Some 2.);
  check "to_float float" true (Obs.Json.to_float (Obs.Json.Float 2.5) = Some 2.5);
  check "to_float string" true (Obs.Json.to_float (Obs.Json.String "2") = None)

let test_json_to_file () =
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Json.to_file path sample;
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.of_string s with
      | Ok v -> check "file round-trip" true (v = sample)
      | Error e -> Alcotest.fail e)

(* ---- budget ---- *)

let test_budget_unlimited () =
  let b = Obs.Budget.unlimited () in
  check "not limited" false (Obs.Budget.is_limited b);
  check "no deadline" true (Obs.Budget.deadline b = None);
  check "no remaining" true (Obs.Budget.remaining_s b = None);
  for _ = 1 to 1000 do
    check "never exhausts" true (Obs.Budget.check b = None)
  done;
  check "check_now too" true
    (Obs.Budget.check_now ~conflicts:max_int ~propagations:max_int b = None);
  check "sticky state empty" true (Obs.Budget.exhausted b = None)

let test_budget_deadline () =
  let b = Obs.Budget.create ~deadline:(Obs.Clock.now () -. 1.0) () in
  check "limited" true (Obs.Budget.is_limited b);
  (match Obs.Budget.remaining_s b with
  | Some r -> check "expired remaining negative" true (r < 0.)
  | None -> Alcotest.fail "deadline budget must report remaining");
  check "first check reads clock" true
    (Obs.Budget.check b = Some Obs.Budget.Deadline);
  (* Sticky: stays exhausted without further clock reads. *)
  check "sticky" true (Obs.Budget.check b = Some Obs.Budget.Deadline);
  check "exhausted accessor" true
    (Obs.Budget.exhausted b = Some Obs.Budget.Deadline);
  (* A generous deadline does not exhaust. *)
  let b2 = Obs.Budget.create ~timeout:3600.0 () in
  check "future deadline ok" true (Obs.Budget.check_now b2 = None);
  match Obs.Budget.deadline b2 with
  | Some d -> check "timeout became absolute" true (d > Obs.Clock.now ())
  | None -> Alcotest.fail "timeout must set a deadline"

let test_budget_stride () =
  (* With a large stride, only every Nth check reads the clock: an
     already-expired deadline is noticed on call 1 (countdown starts at
     zero), and [check_now] forces the read regardless. *)
  let b = Obs.Budget.create ~deadline:(Obs.Clock.now () -. 1.0) ~stride:1000 () in
  check "first strided check notices" true
    (Obs.Budget.check b = Some Obs.Budget.Deadline);
  let b2 = Obs.Budget.create ~deadline:(Obs.Clock.now () +. 3600.) ~stride:1000 () in
  ignore (Obs.Budget.check b2);
  (* Calls 2..1000 are pure countdown — they cannot notice anything, so
     this loop is just exercising the cheap path. *)
  for _ = 2 to 1000 do
    check "cheap path" true (Obs.Budget.check b2 = None)
  done;
  check "forced read" true (Obs.Budget.check_now b2 = None)

let test_budget_counters () =
  let b = Obs.Budget.create ~conflicts:10 ~propagations:100 () in
  check "under caps" true (Obs.Budget.check ~conflicts:9 ~propagations:99 b = None);
  check "conflict cap" true
    (Obs.Budget.check ~conflicts:10 ~propagations:0 b
    = Some Obs.Budget.Conflicts);
  (* Sticky even if later counters are lower. *)
  check "sticky conflicts" true
    (Obs.Budget.check ~conflicts:0 ~propagations:0 b = Some Obs.Budget.Conflicts);
  let b2 = Obs.Budget.create ~propagations:100 () in
  check "prop cap" true
    (Obs.Budget.check ~propagations:100 b2 = Some Obs.Budget.Propagations);
  check_str "reason spellings" "deadline,conflicts,propagations"
    (String.concat ","
       (List.map Obs.Budget.reason_to_string
          [ Obs.Budget.Deadline; Obs.Budget.Conflicts; Obs.Budget.Propagations ]))

let test_budget_charge () =
  (* [charge] takes deltas — unlike [check], whose counters are the
     caller's own cumulative totals — so callers without global
     counters can meter work in increments. *)
  let b = Obs.Budget.create ~conflicts:10 ~propagations:1000 () in
  check "first delta under cap" true (Obs.Budget.charge ~conflicts:4 b = None);
  check "accumulates" true (Obs.Budget.charge ~conflicts:5 b = None);
  check_int "consumed so far" 9 (fst (Obs.Budget.consumed b));
  check "reaching the cap trips" true
    (Obs.Budget.charge ~conflicts:1 b = Some Obs.Budget.Conflicts);
  (* Sticky: a zero delta still reports exhausted. *)
  check "sticky" true (Obs.Budget.charge b = Some Obs.Budget.Conflicts);
  let c, p = Obs.Budget.consumed b in
  check_int "conflicts metered" 10 c;
  check_int "propagations metered" 0 p;
  (* A zero-cap budget is born exhausted — the shape Pool hands out
     when the pool is dry: the very first charge trips it. *)
  let dry = Obs.Budget.create ~conflicts:0 () in
  check "born exhausted" true
    (Obs.Budget.charge dry = Some Obs.Budget.Conflicts);
  let b2 = Obs.Budget.create ~propagations:10 () in
  check "prop deltas" true (Obs.Budget.charge ~propagations:9 b2 = None);
  check "prop trip" true
    (Obs.Budget.charge ~propagations:1 b2 = Some Obs.Budget.Propagations)

(* ---- pool ---- *)

let test_pool_passthrough () =
  (* An unlimited pool leases the request's own caps through
     untouched; lease/release still book inflight and lease counts. *)
  let p = Obs.Pool.create () in
  check "unlimited pool" false (Obs.Pool.is_limited p);
  let l = Obs.Pool.lease ~wall_cap:5.0 ~conflicts_cap:7 p in
  let b = Obs.Pool.budget l in
  check "request caps pass through" true (Obs.Budget.is_limited b);
  (match Obs.Budget.remaining_s b with
  | Some r -> check "wall cap kept" true (r <= 5.0 && r > 4.0)
  | None -> Alcotest.fail "lease budget must carry the wall cap");
  Obs.Pool.release p l;
  let s = Obs.Pool.stats p in
  check_int "no inflight" 0 s.Obs.Pool.s_inflight;
  check_int "one lease granted" 1 s.s_leases

let test_pool_fair_share_and_refund () =
  let p = Obs.Pool.create ~conflicts:100 () in
  (* A solo request takes min(its cap, the whole pool). *)
  let l1 = Obs.Pool.lease ~conflicts_cap:60 p in
  let s = Obs.Pool.stats p in
  check_int "solo lease takes its cap" 40 s.Obs.Pool.s_conflicts_remaining;
  (* A second concurrent lease gets a fair share of what is left:
     min(60, 40 / 2 inflight) = 20. *)
  let l2 = Obs.Pool.lease ~conflicts_cap:60 p in
  let s = Obs.Pool.stats p in
  check_int "fair share deducted" 20 s.s_conflicts_remaining;
  check_int "two inflight" 2 s.s_inflight;
  (* l1 used 10 of its 60: release refunds the unspent 50. *)
  check "charge under lease" true
    (Obs.Budget.charge ~conflicts:10 (Obs.Pool.budget l1) = None);
  Obs.Pool.release p l1;
  let s = Obs.Pool.stats p in
  check_int "refund returned" 70 s.s_conflicts_remaining;
  check_int "consumption booked" 10 s.s_conflicts_consumed;
  (* Idempotent: a second release changes nothing. *)
  Obs.Pool.release p l1;
  let s' = Obs.Pool.stats p in
  check_int "double release is a no-op" 70 s'.s_conflicts_remaining;
  check_int "inflight after double release" 1 s'.s_inflight;
  (* l2 overruns its 20-slice; consumption books at the slice, never
     more, so the books still balance at quiescence. *)
  ignore (Obs.Budget.charge ~conflicts:500 (Obs.Pool.budget l2));
  Obs.Pool.release p l2;
  let s = Obs.Pool.stats p in
  check_int "overrun clamped to the slice" 30 s.s_conflicts_consumed;
  check_int "conservation at quiescence" 100
    (s.s_conflicts_remaining + s.s_conflicts_consumed);
  check_int "quiescent" 0 s.s_inflight

let test_pool_exhausted_sliver () =
  (* A dry pool still grants: a sliver of wall and zero conflicts, so
     the pipeline under it degrades to a proven partial result instead
     of failing the request. *)
  let p = Obs.Pool.create ~wall_s:0.0 ~conflicts:0 ~min_wall_slice:0.01 () in
  let l = Obs.Pool.lease p in
  let b = Obs.Pool.budget l in
  check "limited" true (Obs.Budget.is_limited b);
  check "conflicts born exhausted" true
    (Obs.Budget.charge b = Some Obs.Budget.Conflicts);
  let s = Obs.Pool.stats p in
  check "starved grant counted" true (s.Obs.Pool.s_starved >= 1);
  Obs.Pool.release p l;
  let s = Obs.Pool.stats p in
  check_int "quiescent" 0 s.s_inflight;
  check "wall books never negative" true (s.s_wall_remaining >= 0.0)

let test_pool_stats_json () =
  let p = Obs.Pool.create ~conflicts:5 () in
  let j = Obs.Pool.stats_json p in
  (match Obs.Json.member "conflicts" j with
  | Some c ->
    check "limited flag" true
      (Obs.Json.member "limited" c = Some (Obs.Json.Bool true));
    check "total echoed" true
      (Obs.Json.member "total" c = Some (Obs.Json.Int 5))
  | None -> Alcotest.fail "stats_json carries no conflicts object");
  (match Obs.Json.member "wall_s" j with
  | Some w ->
    check "unlimited wall flagged" true
      (Obs.Json.member "limited" w = Some (Obs.Json.Bool false))
  | None -> Alcotest.fail "stats_json carries no wall_s object");
  check "inflight present" true
    (Obs.Json.member "inflight" j = Some (Obs.Json.Int 0))

(* ---- fault injection ---- *)

(* The test sites get their own names; [configure]/[reset] are global,
   so every test leaves injection disabled. *)
let with_faults spec f =
  (match Obs.Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S failed: %s" spec e);
  Fun.protect ~finally:Obs.Fault.reset f

let test_fault_dormant () =
  Obs.Fault.reset ();
  let s = Obs.Fault.register "test.dormant" in
  check "disabled by default" false (Obs.Fault.enabled ());
  for _ = 1 to 100 do
    check "never fires" false (Obs.Fault.fires s)
  done;
  check_int "no hits" 0 (Obs.Fault.hits s);
  check_str "truncate is identity" "abc" (Obs.Fault.truncate s "abc")

let test_fault_register_idempotent () =
  let a = Obs.Fault.register "test.idem" in
  let b = Obs.Fault.register "test.idem" in
  check "same site" true (a == b);
  check_str "name" "test.idem" (Obs.Fault.name a)

let test_fault_configure () =
  let s = Obs.Fault.register "test.always" in
  with_faults "seed=7,test.always" (fun () ->
      check "enabled" true (Obs.Fault.enabled ());
      for _ = 1 to 50 do
        check "prob 1 always fires" true (Obs.Fault.fires s)
      done;
      check_int "hits counted" 50 (Obs.Fault.hits s));
  check "reset disarms" false (Obs.Fault.enabled ());
  check "after reset" false (Obs.Fault.fires s)

let test_fault_probability () =
  let s = Obs.Fault.register "test.half" in
  with_faults "seed=42,test.half:0.5" (fun () ->
      let n = 2000 in
      let fired = ref 0 in
      for _ = 1 to n do
        if Obs.Fault.fires s then incr fired
      done;
      check "roughly half fire" true (!fired > 800 && !fired < 1200);
      check_int "hits match" !fired (Obs.Fault.hits s));
  let z = Obs.Fault.register "test.never" in
  with_faults "seed=42,test.never:0.0" (fun () ->
      for _ = 1 to 100 do
        check "prob 0 never fires" false (Obs.Fault.fires z)
      done)

let test_fault_determinism () =
  let s = Obs.Fault.register "test.det" in
  let draw () =
    with_faults "seed=123,test.det:0.5" (fun () ->
        List.init 64 (fun _ -> Obs.Fault.fires s))
  in
  check "same seed, same sequence" true (draw () = draw ())

let test_fault_truncate () =
  let s = Obs.Fault.register "test.trunc" in
  with_faults "seed=5,test.trunc" (fun () ->
      let text = String.init 100 (fun i -> Char.chr (32 + (i mod 90))) in
      for _ = 1 to 50 do
        let t = Obs.Fault.truncate s text in
        check "proper prefix" true (String.length t < String.length text);
        check "is a prefix" true (t = String.sub text 0 (String.length t))
      done;
      check_str "empty input unchanged" "" (Obs.Fault.truncate s ""))

let test_fault_bad_spec () =
  (match Obs.Fault.configure "test.x:1.5" with
  | Ok () -> Alcotest.fail "probability > 1 must be rejected"
  | Error _ -> ());
  (match Obs.Fault.configure "seed=notanint" with
  | Ok () -> Alcotest.fail "bad seed must be rejected"
  | Error _ -> ());
  (match Obs.Fault.configure "wrong=shape" with
  | Ok () -> Alcotest.fail "unknown key must be rejected"
  | Error _ -> ());
  (* A failed configure leaves injection disabled. *)
  check "disabled after error" false (Obs.Fault.enabled ());
  Obs.Fault.reset ()

let test_fault_pending_registration () =
  (* Arming a name before any module registered it must apply when the
     registration happens (env spec parses before library init). *)
  with_faults "test.late" (fun () ->
      let s = Obs.Fault.register "test.late.fresh" in
      check "unrelated site stays dormant" false (Obs.Fault.fires s);
      let late = Obs.Fault.register "test.late" in
      check "pending prob applied" true (Obs.Fault.fires late))

let test_fault_catalog () =
  ignore (Obs.Fault.register "test.cat.a");
  ignore (Obs.Fault.register "test.cat.b");
  let cat = Obs.Fault.catalog () in
  check "contains a" true (List.mem "test.cat.a" cat);
  check "contains b" true (List.mem "test.cat.b" cat);
  check "sorted" true (cat = List.sort compare cat)

(* Random JSON values: printable-ASCII strings plus escapes, finite
   floats, nesting bounded by the size parameter. *)
let arb_json =
  let open QCheck.Gen in
  let str =
    string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 12)
  in
  let leaf =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) int;
        map
          (fun f -> Obs.Json.Float (if Float.is_finite f then f else 0.))
          float;
        map (fun s -> Obs.Json.String s) str;
      ]
  in
  let value =
    sized
    @@ fix (fun self n ->
           if n <= 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 (1, map (fun l -> Obs.Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun kvs -> Obs.Json.Obj kvs)
                     (list_size (int_range 0 4) (pair str (self (n / 2)))) );
               ])
  in
  QCheck.make ~print:(fun v -> Obs.Json.to_string ~pretty:true v) value

let prop_json_roundtrip v =
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> v = v'
  | Error _ -> false

let prop_json_roundtrip_pretty v =
  match Obs.Json.of_string (Obs.Json.to_string ~pretty:true v) with
  | Ok v' -> v = v'
  | Error _ -> false

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "spans" `Quick test_clock_spans;
          Alcotest.test_case "wall not cpu" `Quick test_clock_wall_not_cpu;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "phases" `Quick test_metrics_phases;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "stride" `Quick test_budget_stride;
          Alcotest.test_case "counter caps" `Quick test_budget_counters;
          Alcotest.test_case "delta charging" `Quick test_budget_charge;
        ] );
      ( "pool",
        [
          Alcotest.test_case "unlimited passthrough" `Quick
            test_pool_passthrough;
          Alcotest.test_case "fair share + refund + conservation" `Quick
            test_pool_fair_share_and_refund;
          Alcotest.test_case "dry pool grants a sliver" `Quick
            test_pool_exhausted_sliver;
          Alcotest.test_case "stats_json shape" `Quick test_pool_stats_json;
        ] );
      ( "fault",
        [
          Alcotest.test_case "dormant" `Quick test_fault_dormant;
          Alcotest.test_case "register idempotent" `Quick test_fault_register_idempotent;
          Alcotest.test_case "configure" `Quick test_fault_configure;
          Alcotest.test_case "probability" `Quick test_fault_probability;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "truncate" `Quick test_fault_truncate;
          Alcotest.test_case "bad spec" `Quick test_fault_bad_spec;
          Alcotest.test_case "pending registration" `Quick test_fault_pending_registration;
          Alcotest.test_case "catalog" `Quick test_fault_catalog;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip sample" `Quick test_json_roundtrip_sample;
          Alcotest.test_case "floats stay floats" `Quick test_json_floats_stay_floats;
          Alcotest.test_case "parser details" `Quick test_json_parser_details;
          Alcotest.test_case "member/to_float" `Quick test_json_member;
          Alcotest.test_case "to_file" `Quick test_json_to_file;
          qcheck_case ~name:"qcheck round-trip compact" ~count:500 arb_json
            prop_json_roundtrip;
          qcheck_case ~name:"qcheck round-trip pretty" ~count:500 arb_json
            prop_json_roundtrip_pretty;
        ] );
    ]
