(* Sweep-service tests: the framed wire protocol (round-trips, hostile
   frames), and a live daemon loop — requests served over a real Unix
   socket, per-request isolation (a garbage request answers an error
   and the next request on the same connection still works), the
   drop_conn fault, and cooperative drain. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng
module J = Obs.Json
module Proto = Svc.Proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

(* ---- framing ---- *)

let with_pipe f =
  let rd, wr = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_frame_fd_roundtrip () =
  with_pipe @@ fun rd wr ->
  List.iter
    (fun payload ->
      Proto.write_frame_fd wr payload;
      match Proto.read_frame_fd rd with
      | Some got -> check_str "payload round-trips" payload got
      | None -> Alcotest.fail "unexpected EOF")
    (* Payloads stay under the pipe buffer: writer and reader alternate
       in one thread here. *)
    [ ""; "x"; "{\"id\":1}"; String.make 20_000 'a'; "\x00\xff\n binary \x01" ];
  Unix.close wr;
  match Proto.read_frame_fd rd with
  | None -> ()
  | Some _ -> Alcotest.fail "expected clean EOF at the frame boundary"

let test_frame_truncation () =
  (* A header announcing more bytes than ever arrive. *)
  with_pipe (fun rd wr ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 100l;
      ignore (Unix.write wr hdr 0 4);
      ignore (Unix.write_substring wr "short" 0 5);
      Unix.close wr;
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "truncated frame must be a Parse_error");
  (* A header cut off mid-length. *)
  with_pipe (fun rd wr ->
      ignore (Unix.write_substring wr "\x00\x00" 0 2);
      Unix.close wr;
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "truncated header must be a Parse_error");
  (* A length prefix announcing a memory bomb: rejected before
     allocation, without reading the (absent) payload. *)
  with_pipe (fun rd wr ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 0x7fffffffl;
      ignore (Unix.write wr hdr 0 4);
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "oversized frame must be a Parse_error")

let arb_request =
  let arb_str = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)) in
  QCheck.make
    ~print:(fun (r : Proto.request) -> J.to_string (Proto.request_to_json r))
    QCheck.Gen.(
      let* req_id = int_range 0 1_000_000 in
      let* script = arb_str in
      let* aiger = arb_str in
      let* req_timeout = opt (map (fun f -> Float.abs f) float) in
      let* req_verify = bool in
      let* req_certify = bool in
      return { Proto.req_id; script; aiger; req_timeout; req_verify; req_certify })

let prop_request_roundtrip (r : Proto.request) =
  let r' = Proto.request_of_string (J.to_string (Proto.request_to_json r)) in
  r' = r
  ||
  QCheck.Test.fail_reportf "request did not round-trip: %s"
    (J.to_string (Proto.request_to_json r'))

let test_response_codec () =
  List.iter
    (fun rsp ->
      let rsp' =
        match J.parse (Proto.response_to_string rsp) with
        | j -> Proto.response_of_json j
        | exception J.Parse_error _ -> Alcotest.fail "response must serialize"
      in
      check "response round-trips" true (rsp = rsp'))
    [
      Proto.R_ok { rsp_id = 3; report = J.Obj [ ("cec", J.String "equivalent") ] };
      Proto.R_error { rsp_id = 0; kind = "parse_error"; message = "x\n\"y\"" };
      Proto.R_overloaded { rsp_id = 0; retry_after_s = 0.25 };
      Proto.R_health
        { rsp_id = 4; health = J.Obj [ ("status", J.String "ok") ] };
    ];
  (* A frame without "op" is a run request (wire compatibility); "op":
     "health" routes to M_health; anything else is a typed error. *)
  (match
     Proto.client_msg_of_string
       "{\"id\":5,\"script\":\"ps\",\"aiger\":\"aag 0 0 0 0 0\"}"
   with
  | Proto.M_run r -> check_int "legacy frame is a run request" 5 r.Proto.req_id
  | _ -> Alcotest.fail "frame without op must decode as M_run");
  (match Proto.client_msg_of_string "{\"id\":6,\"op\":\"health\"}" with
  | Proto.M_health { h_id } -> check_int "health op id" 6 h_id
  | _ -> Alcotest.fail "op=health must decode as M_health");
  (match Proto.client_msg_of_string "{\"id\":7,\"op\":\"reboot\"}" with
  | _ -> Alcotest.fail "unknown op accepted"
  | exception Proto.Parse_error _ -> ());
  (* Decoding hostility: missing fields and type confusion are
     Parse_error, never Match_failure or a crash. *)
  List.iter
    (fun txt ->
      match Proto.request_of_string txt with
      | _ -> Alcotest.failf "hostile request accepted: %s" txt
      | exception Proto.Parse_error _ -> ())
    [
      "{}";
      "[]";
      "{\"id\":\"one\",\"script\":\"\",\"aiger\":\"\"}";
      "{\"id\":1,\"script\":null,\"aiger\":\"\"}";
      "{\"id\":1,\"script\":\"\",\"aiger\":\"\",\"timeout_s\":\"soon\"}";
      "{\"id\":1,\"script\":\"\",\"aiger\":\"\",\"verify\":1}";
      "not json";
    ]

(* ---- the live daemon loop ---- *)

let with_server ?cache_dir ?(paranoid = false) ?(domains = 1)
    ?(queue_depth = 16) ?idle_timeout ?io_timeout ?(retry_after_s = 0.05)
    ?pool ?request_timeout f =
  let dir = Filename.temp_file "svcsock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "d.sock" in
  let stop = Atomic.make false in
  let cache = Option.map (fun d -> Svc.Cache.open_ d) cache_dir in
  let srv =
    Domain.spawn (fun () ->
        Svc.Server.run ~stop
          {
            Svc.Server.socket_path = sock;
            domains;
            queue_depth;
            idle_timeout;
            io_timeout;
            retry_after_s;
            pool;
            cache;
            paranoid;
            request_timeout;
            global_timeout = Some 60.0;
            echo = ignore;
          })
  in
  let rec wait n =
    if not (Sys.file_exists sock) then
      if n = 0 then Alcotest.fail "server socket never appeared"
      else begin
        Unix.sleepf 0.02;
        wait (n - 1)
      end
  in
  wait 250;
  let finish () =
    Atomic.set stop true;
    Domain.join srv
  in
  match f sock with
  | v ->
    let outcome = finish () in
    check "socket unlinked after drain" false (Sys.file_exists sock);
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    (v, outcome)
  | exception e ->
    ignore (finish ());
    raise e

let send_recv oc ic req =
  Proto.write_request oc req;
  Proto.read_response ic

let request ?(id = 1) ?(script = "sweep -e stp; verify") ?(verify = false)
    ?(certify = false) aiger =
  {
    Proto.req_id = id;
    script;
    aiger;
    req_timeout = None;
    req_verify = verify;
    req_certify = certify;
  }

let test_server_roundtrip () =
  let rng = Rng.create 0x5E44E4L in
  let base = random_network rng ~pis:7 ~gates:80 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:3L ~fraction:0.4 base in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server @@ fun sock ->
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (* 1: a good request. *)
    (match send_recv oc ic (request ~id:7 aiger) with
    | Some (Proto.R_ok { rsp_id; report }) ->
      check_int "id echoed" 7 rsp_id;
      check "cec equivalent" true
        (J.member "cec" report = Some (J.String "equivalent"));
      (match J.member "result_aiger" report with
      | Some (J.String aag) ->
        let swept = Aig.Aiger.read aag in
        (match Sweep.Cec.check net swept with
        | Sweep.Cec.Equivalent -> ()
        | _ -> Alcotest.fail "returned AIG not equivalent to the input");
        check "server swept something" true (A.num_ands swept <= A.num_ands net)
      | _ -> Alcotest.fail "report carries no result_aiger")
    | _ -> Alcotest.fail "expected R_ok for the good request");
    (* 2: a bad script — isolated error, connection survives. *)
    (match send_recv oc ic (request ~id:8 ~script:"no-such-pass" aiger) with
    | Some (Proto.R_error { rsp_id; kind; _ }) ->
      check_int "id echoed on error" 8 rsp_id;
      check_str "script error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the bad script");
    (* 3: a bad AIGER payload. *)
    (match send_recv oc ic (request ~id:9 "not an aiger file") with
    | Some (Proto.R_error { kind; _ }) -> check_str "aiger error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the bad AIGER");
    (* 4: an unparsable frame payload — answered with id 0, still alive. *)
    Proto.write_frame oc "this is not json";
    (match Proto.read_response ic with
    | Some (Proto.R_error { rsp_id; kind; _ }) ->
      check_int "unattributable error is id 0" 0 rsp_id;
      check_str "frame error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the garbage frame");
    (* 5: the same connection still serves. *)
    (match send_recv oc ic (request ~id:10 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "survivor id" 10 rsp_id
    | _ -> Alcotest.fail "connection did not survive the garbage frame");
    Unix.shutdown_connection ic
  in
  check_int "served" 2 outcome.Svc.Server.served;
  check_int "errors" 3 outcome.Svc.Server.errors;
  check_int "dropped" 0 outcome.Svc.Server.dropped

let test_server_drop_conn_fault () =
  (* Linking Svc.Server must register its fault site (test_sweep checks
     the rest of the catalog; this binary is the one that links svc). *)
  if not (List.mem "svc.drop_conn" (Obs.Fault.catalog ())) then
    Alcotest.fail "svc.drop_conn not in the fault catalog";
  let rng = Rng.create 0xD409L in
  let net = random_network rng ~pis:6 ~gates:40 ~pos:3 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server @@ fun sock ->
    (match Obs.Fault.configure "seed=1,svc.drop_conn" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad fault spec: %s" e);
    Fun.protect ~finally:Obs.Fault.reset (fun () ->
        let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
        match send_recv oc ic (request ~id:11 aiger) with
        | None -> (* the server hung up before responding — as injected *) ()
        | Some _ -> Alcotest.fail "drop_conn fault did not drop the response");
    (* The daemon survives its own fault: a fresh connection serves. *)
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:12 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "served after drop" 12 rsp_id
    | _ -> Alcotest.fail "daemon did not survive the dropped connection");
    Unix.shutdown_connection ic
  in
  check_int "dropped counted" 1 outcome.Svc.Server.dropped;
  check_int "served counted" 1 outcome.Svc.Server.served

let test_server_warm_cache () =
  (* Same request twice through one daemon with a disk cache: the warm
     report must show hits, no rejected certificates, and the same
     result size — the service-level version of the engine tests. *)
  (* Wide enough (> window_max_leaves = 16 PIs) that equivalences need
     real SAT proofs — exhaustive windows alone would never consult the
     cache. *)
  let rng = Rng.create 0xCAFE05L in
  let base = random_network rng ~pis:24 ~gates:300 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:9L ~fraction:0.5 base in
  let aiger = Aig.Aiger.write net in
  let dir = Filename.temp_file "svccache" "" in
  Sys.remove dir;
  let counters report =
    match J.member "passes" report with
    | Some (J.List (first :: _)) -> (
      match J.member "stats" first with
      | Some stats -> (
        match J.member "counters" stats with
        | Some (J.Obj kvs) -> kvs
        | _ -> Alcotest.fail "no counters in the sweep record")
      | _ -> Alcotest.fail "no stats in the sweep record")
    | _ -> Alcotest.fail "no pass records in the report"
  in
  let int_counter kvs name =
    match List.assoc_opt name kvs with
    | Some (J.Int i) -> i
    | _ -> Alcotest.failf "counter %s missing" name
  in
  let (), _ =
    with_server ~cache_dir:dir ~paranoid:true @@ fun sock ->
    let run id =
      let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
      let rsp = send_recv oc ic (request ~id ~certify:true aiger) in
      Unix.shutdown_connection ic;
      match rsp with
      | Some (Proto.R_ok { report; _ }) -> report
      | _ -> Alcotest.fail "expected R_ok"
    in
    let cold = counters (run 1) in
    let warm = counters (run 2) in
    check "cold run missed" true (int_counter cold "cache_misses" > 0);
    check_int "cold run had no hits" 0 (int_counter cold "cache_hits");
    check "warm run hit" true (int_counter warm "cache_hits" > 0);
    check_int "warm run missed nothing" 0 (int_counter warm "cache_misses");
    check_int "no rejected certificates" 0 (int_counter warm "cache_rejected");
    check_int "merges identical" (int_counter cold "merges")
      (int_counter warm "merges")
  in
  ()

(* ---- overload: admission control, shedding, the retrying client ---- *)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let test_overload_shedding () =
  let rng = Rng.create 0x0AD5L in
  let net = random_network rng ~pis:5 ~gates:30 ~pos:2 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server ~domains:1 ~queue_depth:1 ~retry_after_s:0.07 @@ fun sock ->
    (* Occupy the single worker with a connection that sends nothing. *)
    let hog_ic, _hog_oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    Unix.sleepf 0.3;
    (* Fill the one queue slot. *)
    let fill_ic, fill_oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    Unix.sleepf 0.3;
    (* Admission control: the next connection is shed at the gate with
       a typed answer carrying the configured hint, then closed. *)
    let shed_ic, _shed_oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match Proto.read_response shed_ic with
    | Some (Proto.R_overloaded { rsp_id; retry_after_s }) ->
      check_int "shed answer is unattributable (id 0)" 0 rsp_id;
      check "retry_after hint" true
        (Float.abs (retry_after_s -. 0.07) < 1e-9)
    | _ -> Alcotest.fail "expected R_overloaded at the admission gate");
    (match Proto.read_response shed_ic with
    | None -> ()
    | Some _ -> Alcotest.fail "shed connection must be closed");
    (try Unix.shutdown_connection shed_ic with Unix.Unix_error _ -> ());
    (* Release the worker: the queued connection is served normally —
       shedding guards the gate, it never drops admitted work. *)
    Unix.shutdown_connection hog_ic;
    (match send_recv fill_oc fill_ic (request ~id:20 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "queued conn served" 20 rsp_id
    | _ -> Alcotest.fail "queued connection not served after the hog left");
    Unix.shutdown_connection fill_ic
  in
  check "shed counted" true (outcome.Svc.Server.shed >= 1);
  check_int "served" 1 outcome.Svc.Server.served

let test_client_retry () =
  let rng = Rng.create 0xC11E47L in
  let net = random_network rng ~pis:5 ~gates:30 ~pos:2 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server ~domains:1 ~queue_depth:1 ~retry_after_s:0.05 @@ fun sock ->
    let hog_ic, _hog_oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    Unix.sleepf 0.3;
    let fill_ic, fill_oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    Unix.sleepf 0.3;
    (* A Svc.Client against the saturated daemon: it must absorb the
       R_overloaded answers with backoff and win once capacity frees. *)
    let client =
      Domain.spawn (fun () ->
          let policy =
            {
              Svc.Client.retries = 60;
              base_backoff_s = 0.02;
              max_backoff_s = 0.1;
              retry_budget_s = 20.0;
              jitter = 0.5;
            }
          in
          match Svc.Client.connect ~policy sock with
          | Error e -> Error e
          | Ok c ->
            Fun.protect ~finally:(fun () -> Svc.Client.close c) @@ fun () ->
            (match Svc.Client.request c (request ~id:21 aiger) with
            | Ok (Proto.R_ok { rsp_id; _ }) when rsp_id = 21 ->
              Ok (Svc.Client.retries_performed c)
            | Ok _ -> Error (Svc.Client.E_protocol "unexpected response")
            | Error e -> Error e))
    in
    (* Let it hit the admission gate at least once, then make room. *)
    Unix.sleepf 0.4;
    Unix.shutdown_connection hog_ic;
    (match send_recv fill_oc fill_ic (request ~id:22 aiger) with
    | Some (Proto.R_ok _) -> ()
    | _ -> Alcotest.fail "filler was not served");
    Unix.shutdown_connection fill_ic;
    match Domain.join client with
    | Ok retries -> check "client backed off and retried" true (retries > 0)
    | Error e ->
      Alcotest.failf "client failed: %s" (Svc.Client.error_to_string e)
  in
  check "both requests served" true (outcome.Svc.Server.served >= 2)

let test_health () =
  let pool = Obs.Pool.create ~wall_s:60.0 ~conflicts:1_000_000 () in
  let dir = tmp_dir "svchealth" in
  let (), _outcome =
    with_server ~cache_dir:dir ~queue_depth:7 ~pool @@ fun sock ->
    match Svc.Client.connect sock with
    | Error e -> Alcotest.failf "connect: %s" (Svc.Client.error_to_string e)
    | Ok c ->
      Fun.protect ~finally:(fun () -> Svc.Client.close c) @@ fun () ->
      (match Svc.Client.health ~id:33 c with
      | Error e -> Alcotest.failf "health: %s" (Svc.Client.error_to_string e)
      | Ok h ->
        check "status ok" true (J.member "status" h = Some (J.String "ok"));
        (match J.member "queue" h with
        | Some q ->
          check "queue limit echoed" true
            (J.member "limit" q = Some (J.Int 7))
        | None -> Alcotest.fail "health carries no queue object");
        (match J.member "pool" h with
        | Some (J.Obj _ as p) -> (
          match J.member "wall_s" p with
          | Some w ->
            check "wall pool limited" true
              (J.member "limited" w = Some (J.Bool true))
          | None -> Alcotest.fail "pool object carries no wall_s")
        | _ -> Alcotest.fail "health carries no pool object");
        (match J.member "cache" h with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.fail "health carries no cache object");
        check "nothing served yet" true
          (J.member "served" h = Some (J.Int 0)));
      (* health is answered inline — the same connection still serves a
         run request afterwards. *)
      match Svc.Client.health c with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "second health: %s" (Svc.Client.error_to_string e)
  in
  ()

let stats_of_report report =
  match J.member "passes" report with
  | Some (J.List (first :: _)) -> (
    match J.member "stats" first with
    | Some stats -> stats
    | None -> Alcotest.fail "no stats in the sweep record")
  | _ -> Alcotest.fail "no pass records in the report"

let test_pool_exhaustion_degrades () =
  (* A one-conflict pool is exhausted by the first SAT query, so every
     request runs under a born-starved lease: the daemon must answer
     R_ok with a proven partial result (budget_exhausted reported, CEC
     equivalent, zero rejected certificates) — never an error — and the
     pool books must balance once the daemon drains. *)
  let pool = Obs.Pool.create ~conflicts:1 () in
  let rng = Rng.create 0xB0071EL in
  let base = random_network rng ~pis:24 ~gates:260 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:5L ~fraction:0.5 base in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server ~pool @@ fun sock ->
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:40 ~certify:true aiger) with
    | Some (Proto.R_ok { rsp_id; report }) ->
      check_int "id echoed" 40 rsp_id;
      check "partial result still proven" true
        (J.member "cec" report = Some (J.String "equivalent"));
      let stats = stats_of_report report in
      (match J.member "budget_exhausted" stats with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.fail "exhausted pool must report budget_exhausted");
      (match J.member "counters" stats with
      | Some counters ->
        check "no rejected certificates" true
          (J.member "certificate_rejected" counters = Some (J.Int 0))
      | None -> Alcotest.fail "no counters in the sweep record")
    | Some (Proto.R_error { message; _ }) ->
      Alcotest.failf "pool exhaustion must degrade, not error: %s" message
    | _ -> Alcotest.fail "expected R_ok under the exhausted pool");
    Unix.shutdown_connection ic
  in
  check_int "served" 1 outcome.Svc.Server.served;
  let s = Obs.Pool.stats pool in
  check_int "pool quiescent" 0 s.Obs.Pool.s_inflight;
  check "lease granted" true (s.s_leases >= 1);
  match s.s_conflicts_total with
  | Some total ->
    check_int "conflict conservation" total
      (s.s_conflicts_remaining + s.s_conflicts_consumed)
  | None -> Alcotest.fail "conflict pool must be limited"

let test_idle_timeout () =
  let rng = Rng.create 0x1D1EL in
  let net = random_network rng ~pis:4 ~gates:12 ~pos:2 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server ~idle_timeout:0.25 @@ fun sock ->
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:50 aiger) with
    | Some (Proto.R_ok _) -> ()
    | _ -> Alcotest.fail "request before idling must serve");
    (* Now go quiet: the server hangs up rather than let us park a
       worker forever. *)
    (match Proto.read_response ic with
    | None -> ()
    | Some _ -> Alcotest.fail "expected the idle hangup"
    | exception Proto.Parse_error _ -> ());
    (try Unix.shutdown_connection ic with Unix.Unix_error _ -> ())
  in
  check "idle hangup counted" true (outcome.Svc.Server.timeouts >= 1);
  check_int "served before idling" 1 outcome.Svc.Server.served

let test_slow_client_fault () =
  List.iter
    (fun site ->
      if not (List.mem site (Obs.Fault.catalog ())) then
        Alcotest.failf "%s not in the fault catalog" site)
    [ "svc.slow_client"; "cache.evict_race" ];
  let rng = Rng.create 0x510C1L in
  let net = random_network rng ~pis:4 ~gates:12 ~pos:2 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server @@ fun sock ->
    (match Obs.Fault.configure "seed=1,svc.slow_client" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad fault spec: %s" e);
    Fun.protect ~finally:Obs.Fault.reset (fun () ->
        let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
        (* The server treats us as a stalled peer and hangs up; the
           write may race the close, which is exactly the EPIPE path
           the daemon itself must also survive. *)
        (match send_recv oc ic (request ~id:60 aiger) with
        | None -> ()
        | Some _ -> Alcotest.fail "slow_client fault did not abort the conn"
        | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
        | exception Sys_error _ -> (* reset mid-read: same abort *) ());
        (try Unix.shutdown_connection ic with Unix.Unix_error _ -> ()));
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:61 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "served after fault" 61 rsp_id
    | _ -> Alcotest.fail "daemon did not survive slow_client");
    Unix.shutdown_connection ic
  in
  check "abort counted" true (outcome.Svc.Server.timeouts >= 1);
  check_int "served" 1 outcome.Svc.Server.served

let test_probe () =
  let dir = tmp_dir "svcprobe" in
  let missing = Filename.concat dir "nothing.sock" in
  check "no file probes absent" true (Svc.Client.probe missing = `Absent);
  let sock_path, _ =
    with_server @@ fun sock ->
    check "running daemon probes live" true (Svc.Client.probe sock = `Live);
    sock
  in
  check "unlinked socket probes absent" true
    (Svc.Client.probe sock_path = `Absent);
  (* A socket file a dead daemon left behind: exists, nobody listens. *)
  let stale = Filename.concat dir "stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  check "abandoned socket probes stale" true (Svc.Client.probe stale = `Stale);
  Sys.remove stale;
  Unix.rmdir dir

let test_stress_overload () =
  (* 4x oversubscription with faults armed: 10 retrying clients, 3
     hostile peers and 3 silent ones against 2 workers and a 2-deep
     queue. Every client must end with a typed outcome, the daemon must
     serve cleanly after the flood, and the budget pool must balance. *)
  let rng = Rng.create 0x57E55L in
  let net = random_network rng ~pis:6 ~gates:40 ~pos:3 in
  let aiger = Aig.Aiger.write net in
  let pool = Obs.Pool.create ~wall_s:120.0 ~conflicts:2_000_000 () in
  let (), outcome =
    with_server ~domains:2 ~queue_depth:2 ~retry_after_s:0.03
      ~io_timeout:1.0 ~pool
    @@ fun sock ->
    (match Obs.Fault.configure "seed=5,svc.drop_conn:0.15" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad fault spec: %s" e);
    Fun.protect ~finally:Obs.Fault.reset @@ fun () ->
    let good_client i =
      Domain.spawn (fun () ->
          let policy =
            {
              Svc.Client.retries = 80;
              base_backoff_s = 0.01;
              max_backoff_s = 0.08;
              retry_budget_s = 30.0;
              jitter = 0.8;
            }
          in
          match Svc.Client.connect ~policy sock with
          | Error e -> `Fail (Svc.Client.error_to_string e)
          | Ok c ->
            Fun.protect ~finally:(fun () -> Svc.Client.close c) @@ fun () ->
            (match Svc.Client.request c (request ~id:(100 + i) aiger) with
            | Ok (Proto.R_ok { rsp_id; _ }) ->
              if rsp_id = 100 + i then `Served else `Fail "wrong id echoed"
            | Ok (Proto.R_error { message; _ }) -> `Fail message
            | Ok _ -> `Fail "unexpected response"
            | Error Svc.Client.E_closed -> `Closed (* drop_conn fault *)
            | Error (Svc.Client.E_overloaded _) -> `Shed
            | Error e -> `Fail (Svc.Client.error_to_string e)))
    in
    let hostile_client () =
      Domain.spawn (fun () ->
          (try
             let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
             Proto.write_frame oc "\x00\xffgarbage{{{";
             (match Proto.read_response ic with
             | Some _ | None -> ()
             | exception Proto.Parse_error _ -> ());
             try Unix.shutdown_connection ic with Unix.Unix_error _ -> ()
           with Unix.Unix_error _ | Sys_error _ -> ());
          `Hostile)
    in
    let slow_client () =
      Domain.spawn (fun () ->
          (try
             let ic, _oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
             Unix.sleepf 0.4;
             try Unix.shutdown_connection ic with Unix.Unix_error _ -> ()
           with Unix.Unix_error _ -> ());
          `Slow)
    in
    let goods = List.init 10 good_client in
    let hostiles = List.init 3 (fun _ -> hostile_client ()) in
    let slows = List.init 3 (fun _ -> slow_client ()) in
    let results = List.map Domain.join goods in
    List.iter (fun d -> ignore (Domain.join d)) hostiles;
    List.iter (fun d -> ignore (Domain.join d)) slows;
    List.iter
      (function
        | `Served | `Closed | `Shed -> ()
        | `Fail m -> Alcotest.failf "client got an untyped outcome: %s" m)
      results;
    check "at least one client won through" true
      (List.exists (fun r -> r = `Served) results);
    (* The flood over: a fresh request serves cleanly. *)
    Obs.Fault.reset ();
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:999 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "post-flood request" 999 rsp_id
    | _ -> Alcotest.fail "daemon did not serve after the flood");
    Unix.shutdown_connection ic
  in
  check "daemon served through the flood" true (outcome.Svc.Server.served >= 2);
  let s = Obs.Pool.stats pool in
  check_int "pool quiescent" 0 s.Obs.Pool.s_inflight;
  (match s.s_conflicts_total with
  | Some total ->
    check_int "conflict conservation" total
      (s.s_conflicts_remaining + s.s_conflicts_consumed)
  | None -> Alcotest.fail "conflict pool must be limited");
  match s.s_wall_total with
  | Some total ->
    check "wall conservation" true
      (Float.abs (total -. (s.s_wall_remaining +. s.s_wall_consumed)) < 1e-6)
  | None -> Alcotest.fail "wall pool must be limited"

(* ---- the bounded cache ---- *)

let mk_key i = Printf.sprintf "%032x" (0xabc000 + i)

let entry_of i = J.Obj [ ("v", J.Int i); ("pad", J.String (String.make 64 'p')) ]

let iter_store_files dir f =
  Array.iter
    (fun sub ->
      let p = Filename.concat dir sub in
      if Sys.is_directory p then
        Array.iter (fun file -> f sub file) (Sys.readdir p))
    (Sys.readdir dir)

let no_litter dir =
  iter_store_files dir (fun sub file ->
      if String.length file >= 5 && String.sub file 0 5 = ".tmp." then
        Alcotest.failf "temp litter: %s/%s" sub file)

let test_cache_lru_bounds () =
  let dir = tmp_dir "svclru" in
  let c = Svc.Cache.open_ ~max_entries:4 dir in
  for i = 0 to 9 do
    Svc.Cache.store c ~key:(mk_key i) (entry_of i)
  done;
  check_int "bounded at 4 entries" 4 (Svc.Cache.entries c);
  let t = Svc.Cache.counters c in
  check_int "evictions counted" 6 t.Svc.Cache.c_evictions;
  check "evicted bytes counted" true (t.c_evicted_bytes > 0);
  (match Svc.Cache.find c ~key:(mk_key 9) with
  | Sweep.Engine.Cache_hit e ->
    check "resident entry intact" true (J.member "v" e = Some (J.Int 9))
  | _ -> Alcotest.fail "youngest entry must be resident");
  (match Svc.Cache.find c ~key:(mk_key 0) with
  | Sweep.Engine.Cache_miss -> ()
  | _ -> Alcotest.fail "oldest entry must have been evicted");
  (* A hit refreshes recency: touch 6, push two more entries — 6
     survives while the untouched 7 and 8 go. *)
  (match Svc.Cache.find c ~key:(mk_key 6) with
  | Sweep.Engine.Cache_hit _ -> ()
  | _ -> Alcotest.fail "entry 6 must be resident");
  Svc.Cache.store c ~key:(mk_key 10) (entry_of 10);
  Svc.Cache.store c ~key:(mk_key 11) (entry_of 11);
  check_int "still bounded" 4 (Svc.Cache.entries c);
  (match Svc.Cache.find c ~key:(mk_key 6) with
  | Sweep.Engine.Cache_hit _ -> ()
  | _ -> Alcotest.fail "touched entry must survive eviction");
  (match Svc.Cache.find c ~key:(mk_key 7) with
  | Sweep.Engine.Cache_miss -> ()
  | _ -> Alcotest.fail "least-recently-used entry must have been evicted");
  check "bytes accounted" true (Svc.Cache.bytes c > 0);
  no_litter dir;
  (* Reopen unbounded: exactly the survivors, intact. *)
  let c2 = Svc.Cache.open_ dir in
  check_int "reopen sees the survivors" 4 (Svc.Cache.entries c2);
  (match Svc.Cache.find c2 ~key:(mk_key 6) with
  | Sweep.Engine.Cache_hit e ->
    check "survivor intact after reopen" true (J.member "v" e = Some (J.Int 6))
  | _ -> Alcotest.fail "survivor must hit after reopen");
  (* Reopen under a tighter bound: open-time eviction shrinks to fit. *)
  let c3 = Svc.Cache.open_ ~max_entries:2 dir in
  check_int "open-time eviction" 2 (Svc.Cache.entries c3)

let test_cache_byte_budget () =
  let dir = tmp_dir "svcbytes" in
  let probe = Svc.Cache.open_ dir in
  Svc.Cache.store probe ~key:(mk_key 0) (entry_of 0);
  let per_entry = Svc.Cache.bytes probe in
  check "entry has a size" true (per_entry > 0);
  let budget = (3 * per_entry) + (per_entry / 2) in
  let c = Svc.Cache.open_ ~max_bytes:budget dir in
  for i = 1 to 7 do
    Svc.Cache.store c ~key:(mk_key i) (entry_of i)
  done;
  check "byte budget holds" true (Svc.Cache.bytes c <= budget);
  check "entries evicted to fit" true (Svc.Cache.entries c <= 3);
  check "cache not emptied" true (Svc.Cache.entries c > 0);
  no_litter dir

let test_cache_evict_race_fault () =
  let dir = tmp_dir "svcrace" in
  (match Obs.Fault.configure "seed=2,cache.evict_race" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bad fault spec: %s" e);
  Fun.protect ~finally:Obs.Fault.reset @@ fun () ->
  let c = Svc.Cache.open_ ~max_entries:2 dir in
  for i = 0 to 5 do
    Svc.Cache.store c ~key:(mk_key i) (entry_of i)
  done;
  check_int "bounded under racing evictions" 2 (Svc.Cache.entries c);
  let t = Svc.Cache.counters c in
  check "evictions recorded" true (t.Svc.Cache.c_evictions >= 4);
  (match Svc.Cache.find c ~key:(mk_key 5) with
  | Sweep.Engine.Cache_hit _ -> ()
  | _ -> Alcotest.fail "resident entry must still hit");
  match Svc.Cache.find c ~key:(mk_key 0) with
  | Sweep.Engine.Cache_miss -> ()
  | _ -> Alcotest.fail "raced-away entry must be a plain miss"

let test_cache_compact () =
  let dir = tmp_dir "svccompact" in
  let c = Svc.Cache.open_ dir in
  for i = 0 to 9 do
    Svc.Cache.store c ~key:(mk_key i) (entry_of i)
  done;
  let bytes_before = Svc.Cache.bytes c in
  (* Plant crash litter: a stale temp file and a corrupted entry. *)
  let key3 = mk_key 3 in
  let sub = Filename.concat dir (String.sub key3 0 2) in
  Out_channel.with_open_bin (Filename.concat sub ".tmp.99999.7") (fun oc ->
      Out_channel.output_string oc "crash leftover");
  Out_channel.with_open_bin (Filename.concat sub (key3 ^ ".json")) (fun oc ->
      Out_channel.output_string oc "not json at all");
  (match Svc.Cache.find c ~key:key3 with
  | Sweep.Engine.Cache_corrupt -> ()
  | _ -> Alcotest.fail "overwritten entry must be detected as corrupt");
  (* Compaction sweeps the temp file, purges the quarantined
     post-mortem, and evicts LRU down to the requested bound. *)
  let s = Svc.Cache.compact ~max_entries:3 c in
  check "tmp swept" true (s.Svc.Cache.k_tmp >= 1);
  check "quarantined purged" true (s.k_quarantined >= 1);
  check "evicted down" true (s.k_evicted >= 1);
  check_int "entries bounded after compact" 3 (Svc.Cache.entries c);
  check "store shrank" true (Svc.Cache.bytes c < bytes_before);
  no_litter dir;
  iter_store_files dir (fun _sub file ->
      if Filename.check_suffix file ".quarantined" then
        Alcotest.failf "quarantined litter: %s" file)

let () =
  Alcotest.run "svc"
    [
      ( "proto",
        [
          Alcotest.test_case "frame fd round-trip" `Quick test_frame_fd_roundtrip;
          Alcotest.test_case "hostile frames" `Quick test_frame_truncation;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"request round-trip" ~count:200 arb_request
               prop_request_roundtrip);
          Alcotest.test_case "response codec + hostile requests" `Quick
            test_response_codec;
        ] );
      ( "server",
        [
          Alcotest.test_case "round-trip + isolation" `Slow test_server_roundtrip;
          Alcotest.test_case "drop_conn fault" `Slow test_server_drop_conn_fault;
          Alcotest.test_case "warm cache across requests" `Slow
            test_server_warm_cache;
        ] );
      ( "overload",
        [
          Alcotest.test_case "admission control sheds typed" `Slow
            test_overload_shedding;
          Alcotest.test_case "client retries through the gate" `Slow
            test_client_retry;
          Alcotest.test_case "health report" `Slow test_health;
          Alcotest.test_case "pool exhaustion degrades, books balance" `Slow
            test_pool_exhaustion_degrades;
          Alcotest.test_case "idle timeout" `Slow test_idle_timeout;
          Alcotest.test_case "slow_client fault" `Slow test_slow_client_fault;
          Alcotest.test_case "socket probe live/stale/absent" `Slow test_probe;
          Alcotest.test_case "4x oversubscription flood" `Slow
            test_stress_overload;
        ] );
      ( "bounded-cache",
        [
          Alcotest.test_case "LRU entry bound + reopen" `Quick
            test_cache_lru_bounds;
          Alcotest.test_case "byte budget" `Quick test_cache_byte_budget;
          Alcotest.test_case "evict_race fault" `Quick
            test_cache_evict_race_fault;
          Alcotest.test_case "compact sweeps, purges, evicts" `Quick
            test_cache_compact;
        ] );
    ]
