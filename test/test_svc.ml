(* Sweep-service tests: the framed wire protocol (round-trips, hostile
   frames), and a live daemon loop — requests served over a real Unix
   socket, per-request isolation (a garbage request answers an error
   and the next request on the same connection still works), the
   drop_conn fault, and cooperative drain. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng
module J = Obs.Json
module Proto = Svc.Proto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

(* ---- framing ---- *)

let with_pipe f =
  let rd, wr = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_frame_fd_roundtrip () =
  with_pipe @@ fun rd wr ->
  List.iter
    (fun payload ->
      Proto.write_frame_fd wr payload;
      match Proto.read_frame_fd rd with
      | Some got -> check_str "payload round-trips" payload got
      | None -> Alcotest.fail "unexpected EOF")
    (* Payloads stay under the pipe buffer: writer and reader alternate
       in one thread here. *)
    [ ""; "x"; "{\"id\":1}"; String.make 20_000 'a'; "\x00\xff\n binary \x01" ];
  Unix.close wr;
  match Proto.read_frame_fd rd with
  | None -> ()
  | Some _ -> Alcotest.fail "expected clean EOF at the frame boundary"

let test_frame_truncation () =
  (* A header announcing more bytes than ever arrive. *)
  with_pipe (fun rd wr ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 100l;
      ignore (Unix.write wr hdr 0 4);
      ignore (Unix.write_substring wr "short" 0 5);
      Unix.close wr;
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "truncated frame must be a Parse_error");
  (* A header cut off mid-length. *)
  with_pipe (fun rd wr ->
      ignore (Unix.write_substring wr "\x00\x00" 0 2);
      Unix.close wr;
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "truncated header must be a Parse_error");
  (* A length prefix announcing a memory bomb: rejected before
     allocation, without reading the (absent) payload. *)
  with_pipe (fun rd wr ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 0x7fffffffl;
      ignore (Unix.write wr hdr 0 4);
      match Proto.read_frame_fd rd with
      | exception Proto.Parse_error _ -> ()
      | Some _ | None -> Alcotest.fail "oversized frame must be a Parse_error")

let arb_request =
  let arb_str = QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 200)) in
  QCheck.make
    ~print:(fun (r : Proto.request) -> J.to_string (Proto.request_to_json r))
    QCheck.Gen.(
      let* req_id = int_range 0 1_000_000 in
      let* script = arb_str in
      let* aiger = arb_str in
      let* req_timeout = opt (map (fun f -> Float.abs f) float) in
      let* req_verify = bool in
      let* req_certify = bool in
      return { Proto.req_id; script; aiger; req_timeout; req_verify; req_certify })

let prop_request_roundtrip (r : Proto.request) =
  let r' = Proto.request_of_string (J.to_string (Proto.request_to_json r)) in
  r' = r
  ||
  QCheck.Test.fail_reportf "request did not round-trip: %s"
    (J.to_string (Proto.request_to_json r'))

let test_response_codec () =
  List.iter
    (fun rsp ->
      let rsp' =
        match J.parse (Proto.response_to_string rsp) with
        | j -> Proto.response_of_json j
        | exception J.Parse_error _ -> Alcotest.fail "response must serialize"
      in
      check "response round-trips" true (rsp = rsp'))
    [
      Proto.R_ok { rsp_id = 3; report = J.Obj [ ("cec", J.String "equivalent") ] };
      Proto.R_error { rsp_id = 0; kind = "parse_error"; message = "x\n\"y\"" };
    ];
  (* Decoding hostility: missing fields and type confusion are
     Parse_error, never Match_failure or a crash. *)
  List.iter
    (fun txt ->
      match Proto.request_of_string txt with
      | _ -> Alcotest.failf "hostile request accepted: %s" txt
      | exception Proto.Parse_error _ -> ())
    [
      "{}";
      "[]";
      "{\"id\":\"one\",\"script\":\"\",\"aiger\":\"\"}";
      "{\"id\":1,\"script\":null,\"aiger\":\"\"}";
      "{\"id\":1,\"script\":\"\",\"aiger\":\"\",\"timeout_s\":\"soon\"}";
      "{\"id\":1,\"script\":\"\",\"aiger\":\"\",\"verify\":1}";
      "not json";
    ]

(* ---- the live daemon loop ---- *)

let with_server ?cache_dir ?(paranoid = false) f =
  let dir = Filename.temp_file "svcsock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "d.sock" in
  let stop = Atomic.make false in
  let cache = Option.map (fun d -> Svc.Cache.open_ ~dir:d) cache_dir in
  let srv =
    Domain.spawn (fun () ->
        Svc.Server.run ~stop
          {
            Svc.Server.socket_path = sock;
            domains = 1;
            cache;
            paranoid;
            request_timeout = None;
            global_timeout = Some 60.0;
            echo = ignore;
          })
  in
  let rec wait n =
    if not (Sys.file_exists sock) then
      if n = 0 then Alcotest.fail "server socket never appeared"
      else begin
        Unix.sleepf 0.02;
        wait (n - 1)
      end
  in
  wait 250;
  let finish () =
    Atomic.set stop true;
    Domain.join srv
  in
  match f sock with
  | v ->
    let outcome = finish () in
    check "socket unlinked after drain" false (Sys.file_exists sock);
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    (v, outcome)
  | exception e ->
    ignore (finish ());
    raise e

let send_recv oc ic req =
  Proto.write_request oc req;
  Proto.read_response ic

let request ?(id = 1) ?(script = "sweep -e stp; verify") ?(verify = false)
    ?(certify = false) aiger =
  {
    Proto.req_id = id;
    script;
    aiger;
    req_timeout = None;
    req_verify = verify;
    req_certify = certify;
  }

let test_server_roundtrip () =
  let rng = Rng.create 0x5E44E4L in
  let base = random_network rng ~pis:7 ~gates:80 ~pos:4 in
  let net = Gen.Redundant.inject ~seed:3L ~fraction:0.4 base in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server @@ fun sock ->
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (* 1: a good request. *)
    (match send_recv oc ic (request ~id:7 aiger) with
    | Some (Proto.R_ok { rsp_id; report }) ->
      check_int "id echoed" 7 rsp_id;
      check "cec equivalent" true
        (J.member "cec" report = Some (J.String "equivalent"));
      (match J.member "result_aiger" report with
      | Some (J.String aag) ->
        let swept = Aig.Aiger.read aag in
        (match Sweep.Cec.check net swept with
        | Sweep.Cec.Equivalent -> ()
        | _ -> Alcotest.fail "returned AIG not equivalent to the input");
        check "server swept something" true (A.num_ands swept <= A.num_ands net)
      | _ -> Alcotest.fail "report carries no result_aiger")
    | _ -> Alcotest.fail "expected R_ok for the good request");
    (* 2: a bad script — isolated error, connection survives. *)
    (match send_recv oc ic (request ~id:8 ~script:"no-such-pass" aiger) with
    | Some (Proto.R_error { rsp_id; kind; _ }) ->
      check_int "id echoed on error" 8 rsp_id;
      check_str "script error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the bad script");
    (* 3: a bad AIGER payload. *)
    (match send_recv oc ic (request ~id:9 "not an aiger file") with
    | Some (Proto.R_error { kind; _ }) -> check_str "aiger error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the bad AIGER");
    (* 4: an unparsable frame payload — answered with id 0, still alive. *)
    Proto.write_frame oc "this is not json";
    (match Proto.read_response ic with
    | Some (Proto.R_error { rsp_id; kind; _ }) ->
      check_int "unattributable error is id 0" 0 rsp_id;
      check_str "frame error kind" "parse_error" kind
    | _ -> Alcotest.fail "expected R_error for the garbage frame");
    (* 5: the same connection still serves. *)
    (match send_recv oc ic (request ~id:10 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "survivor id" 10 rsp_id
    | _ -> Alcotest.fail "connection did not survive the garbage frame");
    Unix.shutdown_connection ic
  in
  check_int "served" 2 outcome.Svc.Server.served;
  check_int "errors" 3 outcome.Svc.Server.errors;
  check_int "dropped" 0 outcome.Svc.Server.dropped

let test_server_drop_conn_fault () =
  (* Linking Svc.Server must register its fault site (test_sweep checks
     the rest of the catalog; this binary is the one that links svc). *)
  if not (List.mem "svc.drop_conn" (Obs.Fault.catalog ())) then
    Alcotest.fail "svc.drop_conn not in the fault catalog";
  let rng = Rng.create 0xD409L in
  let net = random_network rng ~pis:6 ~gates:40 ~pos:3 in
  let aiger = Aig.Aiger.write net in
  let (), outcome =
    with_server @@ fun sock ->
    (match Obs.Fault.configure "seed=1,svc.drop_conn" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "bad fault spec: %s" e);
    Fun.protect ~finally:Obs.Fault.reset (fun () ->
        let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
        match send_recv oc ic (request ~id:11 aiger) with
        | None -> (* the server hung up before responding — as injected *) ()
        | Some _ -> Alcotest.fail "drop_conn fault did not drop the response");
    (* The daemon survives its own fault: a fresh connection serves. *)
    let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
    (match send_recv oc ic (request ~id:12 aiger) with
    | Some (Proto.R_ok { rsp_id; _ }) -> check_int "served after drop" 12 rsp_id
    | _ -> Alcotest.fail "daemon did not survive the dropped connection");
    Unix.shutdown_connection ic
  in
  check_int "dropped counted" 1 outcome.Svc.Server.dropped;
  check_int "served counted" 1 outcome.Svc.Server.served

let test_server_warm_cache () =
  (* Same request twice through one daemon with a disk cache: the warm
     report must show hits, no rejected certificates, and the same
     result size — the service-level version of the engine tests. *)
  (* Wide enough (> window_max_leaves = 16 PIs) that equivalences need
     real SAT proofs — exhaustive windows alone would never consult the
     cache. *)
  let rng = Rng.create 0xCAFE05L in
  let base = random_network rng ~pis:24 ~gates:300 ~pos:6 in
  let net = Gen.Redundant.inject ~seed:9L ~fraction:0.5 base in
  let aiger = Aig.Aiger.write net in
  let dir = Filename.temp_file "svccache" "" in
  Sys.remove dir;
  let counters report =
    match J.member "passes" report with
    | Some (J.List (first :: _)) -> (
      match J.member "stats" first with
      | Some stats -> (
        match J.member "counters" stats with
        | Some (J.Obj kvs) -> kvs
        | _ -> Alcotest.fail "no counters in the sweep record")
      | _ -> Alcotest.fail "no stats in the sweep record")
    | _ -> Alcotest.fail "no pass records in the report"
  in
  let int_counter kvs name =
    match List.assoc_opt name kvs with
    | Some (J.Int i) -> i
    | _ -> Alcotest.failf "counter %s missing" name
  in
  let (), _ =
    with_server ~cache_dir:dir ~paranoid:true @@ fun sock ->
    let run id =
      let ic, oc = Unix.open_connection (Unix.ADDR_UNIX sock) in
      let rsp = send_recv oc ic (request ~id ~certify:true aiger) in
      Unix.shutdown_connection ic;
      match rsp with
      | Some (Proto.R_ok { report; _ }) -> report
      | _ -> Alcotest.fail "expected R_ok"
    in
    let cold = counters (run 1) in
    let warm = counters (run 2) in
    check "cold run missed" true (int_counter cold "cache_misses" > 0);
    check_int "cold run had no hits" 0 (int_counter cold "cache_hits");
    check "warm run hit" true (int_counter warm "cache_hits" > 0);
    check_int "warm run missed nothing" 0 (int_counter warm "cache_misses");
    check_int "no rejected certificates" 0 (int_counter warm "cache_rejected");
    check_int "merges identical" (int_counter cold "merges")
      (int_counter warm "merges")
  in
  ()

let () =
  Alcotest.run "svc"
    [
      ( "proto",
        [
          Alcotest.test_case "frame fd round-trip" `Quick test_frame_fd_roundtrip;
          Alcotest.test_case "hostile frames" `Quick test_frame_truncation;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"request round-trip" ~count:200 arb_request
               prop_request_roundtrip);
          Alcotest.test_case "response codec + hostile requests" `Quick
            test_response_codec;
        ] );
      ( "server",
        [
          Alcotest.test_case "round-trip + isolation" `Slow test_server_roundtrip;
          Alcotest.test_case "drop_conn fault" `Slow test_server_drop_conn_fault;
          Alcotest.test_case "warm cache across requests" `Slow
            test_server_warm_cache;
        ] );
    ]
