(* SAT solver validation: hand clauses, DIMACS, Tseitin equivalence
   queries, and the crucial fuzz test — random CNF instances checked
   against brute-force enumeration, with and without assumptions. *)

module S = Sat.Solver
module D = Sat.Dimacs
module Ts = Sat.Tseitin
module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let check = Alcotest.(check bool)

let result =
  Alcotest.testable
    (fun ppf -> function
      | S.Sat -> Format.fprintf ppf "Sat"
      | S.Unsat -> Format.fprintf ppf "Unsat"
      | S.Unknown -> Format.fprintf ppf "Unknown")
    ( = )

let fresh n =
  let s = S.create () in
  let vars = Array.init n (fun _ -> S.new_var s) in
  (s, vars)

let test_trivial () =
  let s, v = fresh 2 in
  S.add_clause s [ S.lit v.(0) ];
  S.add_clause s [ S.neg (S.lit v.(1)) ];
  Alcotest.check result "sat" S.Sat (S.solve s);
  check "v0 true" true (S.value s (S.lit v.(0)));
  check "v1 false" false (S.value s (S.lit v.(1)))

let test_unsat () =
  let s, v = fresh 1 in
  S.add_clause s [ S.lit v.(0) ];
  S.add_clause s [ S.neg (S.lit v.(0)) ];
  Alcotest.check result "unsat" S.Unsat (S.solve s);
  Alcotest.check result "stays unsat" S.Unsat (S.solve s)

let test_empty_clause () =
  let s, _ = fresh 1 in
  S.add_clause s [];
  Alcotest.check result "unsat" S.Unsat (S.solve s)

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: classically unsat, needs real conflict analysis. *)
  let s = S.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> S.new_var s)) in
  for i = 0 to 3 do
    S.add_clause s (List.init 3 (fun j -> S.lit p.(i).(j)))
  done;
  for j = 0 to 2 do
    for i1 = 0 to 3 do
      for i2 = i1 + 1 to 3 do
        S.add_clause s [ S.neg (S.lit p.(i1).(j)); S.neg (S.lit p.(i2).(j)) ]
      done
    done
  done;
  Alcotest.check result "php(4,3)" S.Unsat (S.solve s)

let test_assumptions () =
  let s, v = fresh 3 in
  (* v0 -> v1, v1 -> v2 *)
  S.add_clause s [ S.neg (S.lit v.(0)); S.lit v.(1) ];
  S.add_clause s [ S.neg (S.lit v.(1)); S.lit v.(2) ];
  Alcotest.check result "sat with v0" S.Sat
    (S.solve ~assumptions:[ S.lit v.(0) ] s);
  check "v2 forced" true (S.value s (S.lit v.(2)));
  Alcotest.check result "conflicting assumptions" S.Unsat
    (S.solve ~assumptions:[ S.lit v.(0); S.neg (S.lit v.(2)) ] s);
  (* Solver survives and can still answer. *)
  Alcotest.check result "recovers" S.Sat (S.solve s)

let test_conflict_limit () =
  (* php(7,6) is hard enough to exceed a tiny conflict budget. *)
  let s = S.create () in
  let n = 7 in
  let p = Array.init n (fun _ -> Array.init (n - 1) (fun _ -> S.new_var s)) in
  for i = 0 to n - 1 do
    S.add_clause s (List.init (n - 1) (fun j -> S.lit p.(i).(j)))
  done;
  for j = 0 to n - 2 do
    for i1 = 0 to n - 1 do
      for i2 = i1 + 1 to n - 1 do
        S.add_clause s [ S.neg (S.lit p.(i1).(j)); S.neg (S.lit p.(i2).(j)) ]
      done
    done
  done;
  Alcotest.check result "budget exhausted" S.Unknown
    (S.solve ~conflict_limit:5 s);
  Alcotest.check result "full run unsat" S.Unsat (S.solve s)

let test_dimacs () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let nv, clauses = D.parse text in
  Alcotest.(check int) "vars" 3 nv;
  Alcotest.(check int) "clauses" 2 (List.length clauses);
  let s = S.create () in
  D.load s text;
  Alcotest.check result "sat" S.Sat (S.solve s);
  (* Roundtrip *)
  let again = D.parse (D.print ~num_vars:nv clauses) in
  check "roundtrip" true (again = (nv, clauses))

(* Brute-force model check of a clause set. *)
let brute_sat num_vars clauses =
  let rec go i assign =
    if i = num_vars then
      List.for_all
        (List.exists (fun l ->
             let v = l lsr 1 and negd = l land 1 = 1 in
             assign.(v) <> negd))
        clauses
    else begin
      assign.(i) <- false;
      go (i + 1) assign
      ||
      (assign.(i) <- true;
       go (i + 1) assign)
    end
  in
  go 0 (Array.make num_vars false)

let random_cnf rng ~num_vars ~num_clauses ~width =
  List.init num_clauses (fun _ ->
      List.init (1 + Rng.int rng width) (fun _ ->
          S.lit_of (Rng.int rng num_vars) (Rng.bool rng)))

let test_fuzz_vs_brute () =
  let rng = Rng.create 42L in
  for round = 1 to 300 do
    let num_vars = 3 + Rng.int rng 8 in
    let num_clauses = 2 + Rng.int rng (3 * num_vars) in
    let clauses = random_cnf rng ~num_vars ~num_clauses ~width:3 in
    let s = S.create () in
    for _ = 1 to num_vars do
      ignore (S.new_var s)
    done;
    List.iter (S.add_clause s) clauses;
    let expect = brute_sat num_vars clauses in
    (match S.solve s with
     | S.Sat ->
       if not expect then Alcotest.failf "round %d: false Sat" round;
       (* model check *)
       List.iter
         (fun clause ->
           if not (List.exists (fun l -> S.value s l) clause) then
             Alcotest.failf "round %d: bogus model" round)
         clauses
     | S.Unsat -> if expect then Alcotest.failf "round %d: false Unsat" round
     | S.Unknown -> Alcotest.failf "round %d: unexpected Unknown" round)
  done

let test_fuzz_assumptions () =
  let rng = Rng.create 7L in
  for round = 1 to 200 do
    let num_vars = 3 + Rng.int rng 6 in
    let num_clauses = 2 + Rng.int rng (2 * num_vars) in
    let clauses = random_cnf rng ~num_vars ~num_clauses ~width:3 in
    let assumptions =
      List.sort_uniq
        (fun a b -> compare (a lsr 1) (b lsr 1))
        (List.init (1 + Rng.int rng 3) (fun _ ->
             S.lit_of (Rng.int rng num_vars) (Rng.bool rng)))
    in
    let s = S.create () in
    for _ = 1 to num_vars do
      ignore (S.new_var s)
    done;
    List.iter (S.add_clause s) clauses;
    let expect =
      brute_sat num_vars (clauses @ List.map (fun a -> [ a ]) assumptions)
    in
    (match S.solve ~assumptions s with
     | S.Sat ->
       if not expect then Alcotest.failf "round %d: false Sat" round;
       List.iter
         (fun a ->
           if not (S.value s a) then
             Alcotest.failf "round %d: assumption violated" round)
         assumptions
     | S.Unsat -> if expect then Alcotest.failf "round %d: false Unsat" round
     | S.Unknown -> Alcotest.failf "round %d: unexpected Unknown" round);
    (* Reuse the same solver without assumptions; must match plain CNF. *)
    let expect_plain = brute_sat num_vars clauses in
    (match S.solve s with
     | S.Sat -> if not expect_plain then Alcotest.failf "round %d: reuse false Sat" round
     | S.Unsat -> if expect_plain then Alcotest.failf "round %d: reuse false Unsat" round
     | S.Unknown -> Alcotest.failf "round %d: reuse Unknown" round)
  done

let test_xor_chain_unsat () =
  (* Parity contradiction: x1 ^ x2 ^ ... ^ xn = 0 and = 1 — forces real
     clause learning, no pure-literal shortcuts. *)
  let s = S.create () in
  let n = 14 in
  let xs = Array.init n (fun _ -> S.new_var s) in
  (* chain variables c_i = x_1 ^ ... ^ x_i *)
  let add_xor out a b =
    (* out <-> a ^ b *)
    S.add_clause s [ S.neg out; a; b ];
    S.add_clause s [ S.neg out; S.neg a; S.neg b ];
    S.add_clause s [ out; S.neg a; b ];
    S.add_clause s [ out; a; S.neg b ]
  in
  let acc = ref (S.lit xs.(0)) in
  for i = 1 to n - 1 do
    let c = S.lit (S.new_var s) in
    add_xor c !acc (S.lit xs.(i));
    acc := c
  done;
  (* Assert both polarities of the chain in two different ways: unit on
     the chain, and a duplicated chain forced opposite. *)
  S.add_clause s [ !acc ];
  let acc2 = ref (S.lit xs.(0)) in
  for i = 1 to n - 1 do
    let c = S.lit (S.new_var s) in
    add_xor c !acc2 (S.lit xs.(i));
    acc2 := c
  done;
  S.add_clause s [ S.neg !acc2 ];
  Alcotest.check result "parity contradiction" S.Unsat (S.solve s);
  check "learned something" true ((S.stats s).S.learned > 0)

let test_many_solves_reuse () =
  (* Incremental reuse under alternating outcomes. *)
  let s, v = fresh 6 in
  S.add_clause s [ S.lit v.(0); S.lit v.(1) ];
  for round = 1 to 50 do
    let a =
      if round mod 2 = 0 then [ S.lit v.(0) ] else [ S.neg (S.lit v.(0)) ]
    in
    match S.solve ~assumptions:a s with
    | S.Sat -> ()
    | _ -> Alcotest.failf "round %d should be Sat" round
  done;
  S.add_clause s [ S.neg (S.lit v.(0)) ];
  S.add_clause s [ S.neg (S.lit v.(1)) ];
  Alcotest.check result "now unsat" S.Unsat (S.solve s)

let test_deadline () =
  let s, v = fresh 2 in
  S.add_clause s [ S.lit v.(0); S.lit v.(1) ];
  let past = Obs.Clock.now () -. 1.0 in
  Alcotest.check result "expired deadline" S.Unknown (S.solve ~deadline:past s);
  (* The abort must leave the solver reusable — same contract as a
     conflict-limit abort. *)
  Alcotest.check result "usable after abort" S.Sat (S.solve s);
  let future = Obs.Clock.now () +. 3600. in
  Alcotest.check result "generous deadline" S.Sat (S.solve ~deadline:future s)

let test_deadline_reuse_fuzz () =
  (* Abort (deadline, then conflict budget), then re-solve without a
     budget: the verdict must match brute force — aborts leave no trace. *)
  let rng = Rng.create 99L in
  for round = 1 to 100 do
    let num_vars = 3 + Rng.int rng 8 in
    let num_clauses = 2 + Rng.int rng (3 * num_vars) in
    let clauses = random_cnf rng ~num_vars ~num_clauses ~width:3 in
    let s = S.create () in
    for _ = 1 to num_vars do
      ignore (S.new_var s)
    done;
    List.iter (S.add_clause s) clauses;
    let expired = Obs.Clock.now () -. 1.0 in
    (match S.solve ~deadline:expired s with
     | S.Unknown -> ()
     | S.Unsat -> () (* top-level conflict needs no search *)
     | S.Sat -> Alcotest.failf "round %d: Sat under expired deadline" round);
    ignore (S.solve ~conflict_limit:1 s);
    let expect = brute_sat num_vars clauses in
    (match S.solve s with
     | S.Sat -> if not expect then Alcotest.failf "round %d: false Sat after aborts" round
     | S.Unsat -> if expect then Alcotest.failf "round %d: false Unsat after aborts" round
     | S.Unknown -> Alcotest.failf "round %d: Unknown without budget" round)
  done

let test_force_unknown_fault () =
  (match Obs.Fault.configure "sat.force_unknown" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Obs.Fault.reset (fun () ->
      let s, v = fresh 1 in
      S.add_clause s [ S.lit v.(0) ];
      Alcotest.check result "fault forces Unknown" S.Unknown (S.solve s));
  let s, v = fresh 1 in
  S.add_clause s [ S.lit v.(0) ];
  Alcotest.check result "normal after reset" S.Sat (S.solve s)

(* ---- clause arena and learnt-DB bookkeeping ---- *)

let learnt_accounting s where =
  let live = S.live_learnts s and truth = S.debug_count_learnts s in
  if live <> truth then
    Alcotest.failf "%s: live_learnts %d but arena recount says %d" where live
      truth

let test_incremental_arena_stress () =
  (* Thousands of budgeted solves on one long-lived solver, with the
     learnt ceiling pinned low so reductions and arena compactions fire
     constantly. The live-learnt counter must track the arena ground
     truth the whole way, and the arena must stay bounded — reclaimed by
     GC, not growing with the number of calls. *)
  let rng = Rng.create 0xA3EAL in
  let num_vars = 40 in
  let s, _ = fresh num_vars in
  let lit () = S.lit_of (Rng.int rng num_vars) (Rng.bool rng) in
  for _ = 1 to 100 do
    S.add_clause s [ lit (); lit (); lit () ]
  done;
  for round = 1 to 2000 do
    S.set_max_learnts s 30;
    if round mod 50 = 0 then S.add_clause s [ lit (); lit (); lit () ];
    ignore (S.solve ~assumptions:[ lit (); lit () ] ~conflict_limit:60 s);
    learnt_accounting s (Printf.sprintf "round %d" round)
  done;
  let st = S.stats s in
  check "reductions fired" true (st.S.reductions > 0);
  check "arena GC fired" true (S.gc_count s > 0);
  (* The live database is capped by the pinned ceiling plus one call's
     learning, and GC keeps waste at a quarter of the arena, so total
     arena size is independent of the 2000 calls. *)
  if S.arena_words s > 65536 then
    Alcotest.failf "arena grew unbounded: %d words" (S.arena_words s)

let prop_learnt_accounting (seed, num_vars, num_clauses) =
  let rng = Rng.create seed in
  let clauses = random_cnf rng ~num_vars ~num_clauses ~width:3 in
  let s = S.create () in
  for _ = 1 to num_vars do
    ignore (S.new_var s)
  done;
  S.set_max_learnts s 16;
  List.iter (S.add_clause s) clauses;
  ignore (S.solve s);
  learnt_accounting s "after solve";
  for round = 1 to 10 do
    let a = S.lit_of (Rng.int rng num_vars) (Rng.bool rng) in
    ignore (S.solve ~assumptions:[ a ] ~conflict_limit:50 s);
    learnt_accounting s (Printf.sprintf "assumption round %d" round)
  done;
  true

let arb_accounting_cnf =
  QCheck.make
    ~print:(fun (seed, nv, nc) ->
      Printf.sprintf "seed=%Ld vars=%d clauses=%d" seed nv nc)
    QCheck.Gen.(
      let* seed = ui64 in
      let* nv = int_range 8 25 in
      let* nc = int_range nv (5 * nv) in
      return (seed, nv, nc))

(* ---- Tseitin over AIGs ---- *)

let xor_network () =
  (* Two XOR implementations; PO0 = mux-style, PO1 = and-or style. *)
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let x1 = A.add_xor net a b in
  let t1 = A.add_and net a (L.not_ b) in
  let t2 = A.add_and net (L.not_ a) b in
  let x2 = A.add_or net t1 t2 in
  ignore (A.add_po net x1);
  ignore (A.add_po net x2);
  (net, x1, x2, a, b)

let test_tseitin_equiv () =
  let net, x1, x2, a, _ = xor_network () in
  let solver = S.create () in
  let env = Ts.create net solver in
  (match Ts.check_equiv env x1 x2 with
   | Ts.Equivalent -> ()
   | Ts.Counterexample _ -> Alcotest.fail "equivalent nodes reported different"
   | Ts.Undetermined -> Alcotest.fail "undetermined"
   | Ts.Uncertified _ -> Alcotest.fail "uncertified without a checker");
  (* x1 vs a must differ; counterexample must actually distinguish. *)
  (match Ts.check_equiv env x1 a with
   | Ts.Counterexample ce ->
     let va = ce.(0) and vb = ce.(1) in
     let x = va <> vb in
     if x = va then Alcotest.fail "counterexample does not distinguish"
   | Ts.Equivalent -> Alcotest.fail "different nodes reported equivalent"
   | Ts.Undetermined -> Alcotest.fail "undetermined"
   | Ts.Uncertified _ -> Alcotest.fail "uncertified without a checker")

let test_tseitin_const () =
  let net = A.create () in
  let a = A.add_pi net in
  let contradiction = A.add_and net a (L.not_ a) in
  ignore (A.add_po net contradiction);
  let solver = S.create () in
  let env = Ts.create net solver in
  (match Ts.check_const env contradiction false with
   | Ts.Equivalent -> ()
   | _ -> Alcotest.fail "x & !x should be constant false");
  (match Ts.check_const env a false with
   | Ts.Counterexample ce -> check "ce sets a" true ce.(0)
   | _ -> Alcotest.fail "a PI is not constant")

let test_tseitin_lazy () =
  (* Encoding one output's cone must not encode the other's. *)
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let left = A.add_and net a b in
  let right = A.add_and net b c in
  ignore (A.add_po net left);
  ignore (A.add_po net right);
  let solver = S.create () in
  let env = Ts.create net solver in
  ignore (Ts.var_of_node env (L.node left));
  check "left encoded" true (Ts.is_encoded env (L.node left));
  check "right not encoded" false (Ts.is_encoded env (L.node right));
  check "c not encoded" false (Ts.is_encoded env (L.node c))

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "unsat" `Quick test_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "conflict limit" `Quick test_conflict_limit;
          Alcotest.test_case "xor chain unsat" `Quick test_xor_chain_unsat;
          Alcotest.test_case "many solves reuse" `Quick test_many_solves_reuse;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "force_unknown fault" `Quick test_force_unknown_fault;
        ] );
      ( "arena",
        [
          Alcotest.test_case "incremental stress stays bounded" `Slow
            test_incremental_arena_stress;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"live_learnts matches arena recount"
               ~count:100 arb_accounting_cnf prop_learnt_accounting);
        ] );
      ("dimacs", [ Alcotest.test_case "parse/print" `Quick test_dimacs ]);
      ( "fuzz",
        [
          Alcotest.test_case "vs brute force" `Slow test_fuzz_vs_brute;
          Alcotest.test_case "assumptions vs brute force" `Slow
            test_fuzz_assumptions;
          Alcotest.test_case "reuse after aborts vs brute force" `Slow
            test_deadline_reuse_fuzz;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "equivalence" `Quick test_tseitin_equiv;
          Alcotest.test_case "constants" `Quick test_tseitin_const;
          Alcotest.test_case "lazy cones" `Quick test_tseitin_lazy;
        ] );
    ]
