(* Simulator tests: the bitwise baseline, the STP engine, the circuit-cut
   algorithm, and exhaustive windows. The key properties: every engine
   computes identical signatures, and mode-s simulation (cut + simulate
   roots only) matches mode-a on the requested nodes. Includes the
   paper's Fig. 1 / Section III-C example. *)

module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table
module P = Sim.Patterns
module Sg = Sim.Signature
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- patterns ---- *)

let test_patterns_basic () =
  let p = P.random ~seed:1L ~num_pis:3 ~num_patterns:100 in
  check_int "count" 100 (P.num_patterns p);
  check_int "words" 4 (P.num_words p);
  let p2 = P.random ~seed:1L ~num_pis:3 ~num_patterns:100 in
  check "deterministic" true
    (List.for_all
       (fun w -> P.word p ~pi:1 w = P.word p2 ~pi:1 w)
       [ 0; 1; 2; 3 ]);
  let e = P.exhaustive ~num_pis:4 in
  check_int "exhaustive count" 16 (P.num_patterns e);
  for i = 0 to 15 do
    for b = 0 to 3 do
      if P.get e ~pi:b ~pattern:i <> ((i lsr b) land 1 = 1) then
        Alcotest.failf "exhaustive layout wrong at %d/%d" i b
    done
  done

let test_patterns_of_rows () =
  (* The paper's ten patterns for the Fig. 1 circuit. *)
  let rows =
    [ "0101010101"; "1010101010"; "1111100000"; "0000011111"; "0011001100" ]
  in
  let p = P.of_rows rows in
  check_int "pis" 5 (P.num_pis p);
  check_int "patterns" 10 (P.num_patterns p);
  (* First simulation pattern is the first column: 0,1,1,0,0. *)
  check "pattern 0" true (P.pattern p 0 = [| false; true; true; false; false |])

let test_patterns_grow () =
  let p = P.create ~num_pis:2 in
  for i = 0 to 99 do
    P.add_pattern p [| i mod 2 = 0; i mod 3 = 0 |]
  done;
  check_int "grown" 100 (P.num_patterns p);
  check "bit 98" true (P.get p ~pi:0 ~pattern:98);
  check "bit 99" false (P.get p ~pi:0 ~pattern:99);
  let rng = Rng.create 5L in
  P.add_pattern_randomized p rng [| Some true; None |];
  check "forced bit" true (P.get p ~pi:0 ~pattern:100)

(* ---- reference evaluation ---- *)

let eval_aig net inputs =
  let v = Array.make (A.num_nodes net) false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- inputs.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  v

let random_aig rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

let random_klut rng ~pis ~luts =
  let net = K.create () in
  let nodes = ref (List.init pis (fun _ -> K.add_pi net)) in
  for _ = 1 to luts do
    let arity = 1 + Rng.int rng 4 in
    let fanins =
      Array.init arity (fun _ ->
          List.nth !nodes (Rng.int rng (List.length !nodes)))
    in
    let f = T.random ~seed:(Rng.int64 rng) arity in
    nodes := K.add_lut net fanins f :: !nodes
  done;
  (* A few POs on the most recent nodes. *)
  List.iteri (fun i n -> if i < 3 then ignore (K.add_po net n (i mod 2 = 1))) !nodes;
  net

(* ---- AIG simulation ---- *)

let test_bitwise_aig_vs_eval () =
  let rng = Rng.create 3L in
  for _ = 1 to 10 do
    let net = random_aig rng ~pis:5 ~gates:30 ~pos:3 in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:5 ~num_patterns:70 in
    let tbl = Sim.Bitwise.simulate_aig net pats in
    for p = 0 to 69 do
      let v = eval_aig net (P.pattern pats p) in
      A.iter_nodes net (fun nd ->
          if Sg.get tbl.(nd) p <> v.(nd) then
            Alcotest.failf "bitwise AIG sim wrong at node %d pattern %d" nd p)
    done
  done

let test_stp_aig_matches_bitwise () =
  let rng = Rng.create 13L in
  for _ = 1 to 10 do
    let net = random_aig rng ~pis:6 ~gates:50 ~pos:3 in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:130 in
    let a = Sim.Bitwise.simulate_aig net pats in
    let b = Sim.Stp_sim.simulate_aig net pats in
    check "equal tables" true (a = b)
  done

(* ---- k-LUT simulation ---- *)

let test_klut_engines_agree () =
  let rng = Rng.create 29L in
  for _ = 1 to 15 do
    let net = random_klut rng ~pis:6 ~luts:40 in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:99 in
    let naive = Sim.Bitwise.simulate_klut net pats in
    let stp = Sim.Stp_sim.simulate_klut net pats in
    check "engines agree" true (naive = stp)
  done

let test_klut_sim_vs_eval () =
  let rng = Rng.create 41L in
  let net = random_klut rng ~pis:5 ~luts:25 in
  let pats = P.exhaustive ~num_pis:5 in
  let tbl = Sim.Stp_sim.simulate_klut net pats in
  (* Evaluate node-by-node per pattern. *)
  for p = 0 to 31 do
    let inputs = P.pattern pats p in
    let v = Array.make (K.num_nodes net) false in
    K.iter_nodes net (fun nd ->
        if K.is_pi net nd then v.(nd) <- inputs.(K.pi_index net nd)
        else if K.is_lut net nd then
          v.(nd) <-
            T.eval (K.func net nd)
              (Array.map (fun f -> v.(f)) (K.fanins net nd)));
    K.iter_nodes net (fun nd ->
        if Sg.get tbl.(nd) p <> v.(nd) then
          Alcotest.failf "stp klut sim wrong at node %d pattern %d" nd p)
  done

let test_mapped_matches_aig () =
  (* AIG simulation and k-LUT simulation of its mapping agree on POs. *)
  let rng = Rng.create 53L in
  for _ = 1 to 10 do
    let net = random_aig rng ~pis:6 ~gates:40 ~pos:4 in
    let lut = Klut.Mapper.map ~k:4 net in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:64 in
    let atbl = Sim.Bitwise.simulate_aig net pats in
    let ltbl = Sim.Stp_sim.simulate_klut lut pats in
    for o = 0 to A.num_pos net - 1 do
      let al = A.po net o in
      let asig =
        Sim.Bitwise.po_signature atbl ~num_patterns:64 ~lit:al
      in
      let lnode, lcompl = K.po lut o in
      let lsig =
        if lcompl then Sg.complement_of ~num_patterns:64 ltbl.(lnode)
        else ltbl.(lnode)
      in
      if asig <> lsig then Alcotest.failf "output %d differs" o
    done
  done

(* ---- circuit cut ---- *)

let fig1_network () =
  (* Section III-C: five PIs, six NAND nodes. Node numbering follows the
     paper: 6=NAND(1,3), 7=NAND(2,3), 8=NAND(7,4), 9=NAND(4,5),
     10=NAND(6,7), 11=NAND(8,9); po1=10, po2=11. *)
  let net = K.create () in
  let pi = Array.init 5 (fun _ -> K.add_pi net) in
  let nand = T.of_bin "0111" in
  let n6 = K.add_lut net [| pi.(0); pi.(2) |] nand in
  let n7 = K.add_lut net [| pi.(1); pi.(2) |] nand in
  let n8 = K.add_lut net [| n7; pi.(3) |] nand in
  let n9 = K.add_lut net [| pi.(3); pi.(4) |] nand in
  let n10 = K.add_lut net [| n6; n7 |] nand in
  let n11 = K.add_lut net [| n8; n9 |] nand in
  ignore (K.add_po net n10 false);
  ignore (K.add_po net n11 false);
  (net, pi, n6, n7, n8, n9, n10, n11)

let test_circuit_cut_fig1 () =
  let net, _, n6, n7, n8, n9, n10, n11 = fig1_network () in
  (* Ten patterns -> limit 3, as in the paper. *)
  let { Sim.Circuit_cut.network = cut_net; node_map; roots } =
    Sim.Circuit_cut.cut net ~limit:3 ~targets:[ n10; n11; n7; n8 ]
  in
  (* The paper's four cuts: roots 10 (absorbing 6), 11 (absorbing 9), and
     the boundary nodes 7, 8. *)
  check "roots" true (List.sort compare roots = List.sort compare [ n7; n8; n10; n11 ]);
  check "6 collapsed" true (node_map.(n6) = -1);
  check "9 collapsed" true (node_map.(n9) = -1);
  check_int "cut network luts" 4 (K.num_luts cut_net);
  (* Cut (6,10) has leaves 1,3,7 (three inputs, within the limit). *)
  let leaves_of root =
    Array.to_list (K.fanins cut_net node_map.(root)) |> List.sort compare
  in
  let orig_of n =
    (* invert node_map for PIs *)
    let found = ref (-1) in
    Array.iteri (fun o m -> if m = n then found := o) node_map;
    !found
  in
  check "cut(6,10) leaves" true
    (List.map orig_of (leaves_of n10) = [ 1; 3; n7 ]);
  check "cut(9,11) leaves" true
    (List.map orig_of (leaves_of n11) = [ 4; 5; n8 ])

let test_circuit_cut_function_preserved () =
  let net, _, _, n7, n8, _, n10, n11 = fig1_network () in
  let rows =
    [ "0101010101"; "1010101010"; "1111100000"; "0000011111"; "0011001100" ]
  in
  let pats = P.of_rows rows in
  let full = Sim.Stp_sim.simulate_klut net pats in
  let specified =
    Sim.Stp_sim.simulate_specified net pats ~targets:[ n7; n8; n10; n11 ]
  in
  List.iter
    (fun (node, s) ->
      if s <> full.(node) then
        Alcotest.failf "specified-node signature differs at node %d" node)
    specified

let test_circuit_cut_random () =
  let rng = Rng.create 61L in
  for _ = 1 to 15 do
    let net = random_klut rng ~pis:6 ~luts:30 in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:50 in
    let full = Sim.Stp_sim.simulate_klut net pats in
    (* Pick a few random LUT targets. *)
    let luts = ref [] in
    K.iter_luts net (fun n -> luts := n :: !luts);
    let luts = Array.of_list !luts in
    let targets =
      List.init 4 (fun _ -> luts.(Rng.int rng (Array.length luts)))
      |> List.sort_uniq compare
    in
    let result = Sim.Stp_sim.simulate_specified net pats ~targets in
    List.iter
      (fun (node, s) ->
        if s <> full.(node) then Alcotest.failf "node %d differs" node)
      result
  done

let test_circuit_cut_respects_limit () =
  let rng = Rng.create 67L in
  let net = random_klut rng ~pis:8 ~luts:60 in
  let luts = ref [] in
  K.iter_luts net (fun n -> luts := n :: !luts);
  let targets = [ List.hd !luts ] in
  List.iter
    (fun limit ->
      let { Sim.Circuit_cut.network = cut_net; _ } =
        Sim.Circuit_cut.cut net ~limit ~targets
      in
      check
        (Printf.sprintf "limit %d respected" limit)
        true
        (K.max_fanin cut_net <= max limit (K.max_fanin net)))
    [ 2; 3; 4; 8 ]

(* ---- windows ---- *)

let test_window_exact_equivalence () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let x1 = A.add_xor net a b in
  (* A NAND-style duplicate of the same xor. *)
  let n1 = L.not_ (A.add_and net a b) in
  let n2 = L.not_ (A.add_and net a n1) in
  let n3 = L.not_ (A.add_and net b n1) in
  let x2 = L.not_ (A.add_and net n2 n3) in
  let other = A.add_and net a c in
  ignore (A.add_po net x1);
  ignore (A.add_po net x2);
  ignore (A.add_po net other);
  check "equal impls" true
    (Sim.Window.equivalent_in_window net (L.node x1) (L.node x2)
       ~max_leaves:16
     = (if L.is_compl x1 = L.is_compl x2 then `Equal else `Compl));
  check "different" true
    (Sim.Window.equivalent_in_window net (L.node x1) (L.node other)
       ~max_leaves:16
     = `Different)

let test_window_too_wide () =
  let net = A.create () in
  let pis = Array.init 20 (fun _ -> A.add_pi net) in
  let acc = ref pis.(0) in
  Array.iteri (fun i p -> if i > 0 then acc := A.add_and net !acc p) pis;
  ignore (A.add_po net !acc);
  check "unknown" true
    (Sim.Window.equivalent_in_window net (L.node !acc) (L.node pis.(0))
       ~max_leaves:16
     = `Unknown)

let test_window_tts () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let g = A.add_and net a (L.not_ b) in
  ignore (A.add_po net g);
  match Sim.Window.signatures net ~targets:[ L.node g ] ~max_leaves:4 with
  | Some ([ la; lb ], [| tt |]) ->
    check "leaves are the PIs" true (la = L.node a && lb = L.node b);
    check "tt" true (T.equal tt (T.and_ (T.nth_var 2 0) (T.not_ (T.nth_var 2 1))))
  | _ -> Alcotest.fail "expected a 2-leaf window"

let test_window_lift_consistency () =
  (* The sweeping engine compares nodes by lifting per-node window
     tables onto a joint support. Validate that mechanism against the
     direct joint-window computation. *)
  let module T = Tt.Truth_table in
  let rng = Rng.create 83L in
  for _ = 1 to 15 do
    let net = random_aig rng ~pis:6 ~gates:40 ~pos:3 in
    (* Pick two AND nodes. *)
    let ands = ref [] in
    A.iter_ands net (fun n -> ands := n :: !ands);
    match !ands with
    | a :: b :: _ -> (
      match Sim.Window.signatures net ~targets:[ a; b ] ~max_leaves:16 with
      | None -> ()
      | Some (joint, [| ta; tb |]) -> (
        (* Individual windows lifted onto the joint support. *)
        let lift node =
          match Sim.Window.signatures net ~targets:[ node ] ~max_leaves:16 with
          | Some (own, [| tt |]) ->
            let joint_arr = Array.of_list joint in
            let positions =
              Array.of_list
                (List.map
                   (fun leaf ->
                     let rec find i =
                       if joint_arr.(i) = leaf then i else find (i + 1)
                     in
                     find 0)
                   own)
            in
            T.remap tt ~positions ~arity:(List.length joint)
          | _ -> Alcotest.fail "individual window missing"
        in
        if not (T.equal (lift a) ta && T.equal (lift b) tb) then
          Alcotest.fail "lifted window disagrees with joint window")
      | Some _ -> Alcotest.fail "arity")
    | _ -> ()
  done

(* ---- incremental simulation ---- *)

let test_incremental_matches_full () =
  let rng = Rng.create 71L in
  for _ = 1 to 8 do
    let net = random_aig rng ~pis:6 ~gates:40 ~pos:3 in
    let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:50 in
    let inc = Sim.Incremental.create net pats in
    (* Append a bunch of patterns one at a time. *)
    for _ = 1 to 45 do
      Sim.Incremental.add_pattern inc
        (Array.init 6 (fun _ -> Rng.bool rng))
    done;
    Sim.Incremental.refresh inc;
    let full = Sim.Bitwise.simulate_aig net pats in
    let got = Sim.Incremental.signatures inc in
    A.iter_nodes net (fun nd ->
        if got.(nd) <> full.(nd) then
          Alcotest.failf "incremental differs at node %d" nd)
  done

let test_incremental_is_incremental () =
  let rng = Rng.create 73L in
  let net = random_aig rng ~pis:6 ~gates:60 ~pos:3 in
  let pats = P.random ~seed:5L ~num_pis:6 ~num_patterns:320 in
  let inc = Sim.Incremental.create net pats in
  check_int "nothing recomputed yet" 0 (Sim.Incremental.words_recomputed inc);
  (* 32 appended patterns live in at most 2 words. *)
  for _ = 1 to 32 do
    Sim.Incremental.add_pattern inc (Array.make 6 true)
  done;
  Sim.Incremental.refresh inc;
  let per_word = A.num_nodes net in
  check "at most two words per node" true
    (Sim.Incremental.words_recomputed inc <= 2 * per_word);
  check_int "patterns counted" 352 (Sim.Incremental.num_patterns inc)

(* ---- activity ---- *)

let test_activity () =
  let module Act = Sim.Activity in
  (* Brute-force cross-check on random signatures. *)
  let rng = Rng.create 101L in
  for _ = 1 to 30 do
    let np = 1 + Rng.int rng 100 in
    let nw = (np + 31) / 32 in
    let s = Array.init nw (fun _ -> Rng.bits32 rng) in
    Sg.num_patterns_mask np s;
    let stats = Act.of_signature ~num_patterns:np s in
    let bits = List.init np (fun i -> Sg.get s i) in
    let ones = List.length (List.filter Fun.id bits) in
    let toggles =
      let rec go = function
        | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + go rest
        | _ -> 0
      in
      go bits
    in
    if stats.Act.ones <> ones then
      Alcotest.failf "ones: got %d want %d (np=%d)" stats.Act.ones ones np;
    if stats.Act.toggles <> toggles then
      Alcotest.failf "toggles: got %d want %d (np=%d)" stats.Act.toggles toggles np
  done;
  (* Metrics. *)
  let alt = Act.of_signature ~num_patterns:8 [| 0b01010101 |] in
  check "toggle rate 1" true (Act.toggle_rate alt = 1.);
  check "bias half" true (Act.bias alt = 0.5);
  check "not constant" false (Act.is_constant alt);
  let const = Act.of_signature ~num_patterns:8 [| 0 |] in
  check "constant" true (Act.is_constant const);
  check "near constant" true (Act.near_constant const)

(* ---- parallel (domain-sharded) simulation ---- *)

let qcheck_case ~name ~count arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* seed, domains 1..4, pattern count deliberately spanning non-multiples
   of 32 so the tail-word fix-up is exercised. *)
let arb_par_case =
  QCheck.make
    ~print:(fun (s, d, np) -> Printf.sprintf "seed=%Ld domains=%d patterns=%d" s d np)
    QCheck.Gen.(
      let* s = ui64 in
      let* d = int_range 1 4 in
      let* np = int_range 1 200 in
      return (s, d, np))

let prop_parallel_aig (seed, domains, np) =
  let rng = Rng.create seed in
  let net = random_aig rng ~pis:6 ~gates:50 ~pos:3 in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:np in
  let ref_bitwise = Sim.Bitwise.simulate_aig net pats in
  Sim.Bitwise.simulate_aig ~domains net pats = ref_bitwise
  && Sim.Stp_sim.simulate_aig ~domains net pats
     = Sim.Stp_sim.simulate_aig net pats

let prop_parallel_klut (seed, domains, np) =
  let rng = Rng.create seed in
  let net = random_klut rng ~pis:6 ~luts:40 in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:np in
  let ref_stp = Sim.Stp_sim.simulate_klut net pats in
  Sim.Stp_sim.simulate_klut ~domains net pats = ref_stp
  && Sim.Bitwise.simulate_klut ~domains net pats
     = Sim.Bitwise.simulate_klut net pats

let test_par_split () =
  for n = 0 to 130 do
    for chunks = 1 to 6 do
      let ranges = Sutil.Par.split ~chunks n in
      (* Ranges are non-empty, contiguous, and cover [0, n). *)
      let expected = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          if lo <> !expected || hi <= lo then
            Alcotest.failf "bad range (%d,%d) for n=%d chunks=%d" lo hi n chunks;
          expected := hi)
        ranges;
      if !expected <> n then
        Alcotest.failf "ranges cover %d of %d (chunks=%d)" !expected n chunks;
      if Array.length ranges > chunks then Alcotest.fail "too many ranges"
    done
  done

let test_pool_reuse () =
  Sutil.Par.Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "width" 3 (Sutil.Par.Pool.domains pool);
      (* Several jobs through the same workers; each job writes disjoint
         slots, sums checked after the join. *)
      for round = 1 to 5 do
        let slots = Array.make 3 0 in
        Sutil.Par.Pool.run pool (fun i -> slots.(i) <- round * (i + 1));
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          (round * 6)
          (Array.fold_left ( + ) 0 slots)
      done;
      Sutil.Par.Pool.for_ranges pool 100 (fun ~lo ~hi ->
          if lo < 0 || hi > 100 then Alcotest.fail "range out of bounds"))

let test_compile_cache () =
  let module SS = Sim.Stp_sim in
  let net = K.create () in
  let pis = Array.init 4 (fun _ -> K.add_pi net) in
  let nand = T.of_bin "0111" in
  let xor2 = T.of_bin "0110" in
  (* Four NANDs sharing one function, one XOR: 2 distinct tables. *)
  let a = K.add_lut net [| pis.(0); pis.(1) |] nand in
  let b = K.add_lut net [| pis.(2); pis.(3) |] nand in
  let c = K.add_lut net [| a; b |] nand in
  let d = K.add_lut net [| pis.(1); pis.(2) |] nand in
  let e = K.add_lut net [| c; d |] xor2 in
  ignore (K.add_po net e false);
  let pats = P.random ~seed:9L ~num_pis:4 ~num_patterns:77 in
  let cache = SS.Compile_cache.create () in
  let t1 = SS.simulate_klut ~cache net pats in
  check_int "misses = distinct functions" 2 (SS.Compile_cache.misses cache);
  check_int "hits = shared functions" 3 (SS.Compile_cache.hits cache);
  (* Re-simulating with the same cache recompiles nothing. *)
  let t2 = SS.simulate_klut ~cache net pats in
  check_int "second pass misses" 2 (SS.Compile_cache.misses cache);
  check_int "second pass hits" 8 (SS.Compile_cache.hits cache);
  check "cached result identical" true (t1 = t2);
  check "matches bitwise" true (t1 = Sim.Bitwise.simulate_klut net pats)

(* ---- kernel plans ---- *)

(* The kernel is the single engine behind every simulator, so its tests
   compare plans against the naive per-pattern reference directly —
   comparing against the thin wrappers would be circular. *)

let arb_kernel_case =
  QCheck.make
    ~print:(fun (s, d, np) ->
      Printf.sprintf "seed=%Ld domains=%d patterns=%d" s d np)
    QCheck.Gen.(
      let* s = ui64 in
      let* d = oneofl [ 1; 2; 4 ] in
      let* np = int_range 1 200 in
      return (s, d, np))

let prop_kernel_aig_vs_eval (seed, domains, np) =
  let rng = Rng.create seed in
  let net = random_aig rng ~pis:6 ~gates:50 ~pos:3 in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:np in
  let tbl = Sim.Kernel.execute ~domains (Sim.Kernel.compile_aig net) pats in
  let ok = ref true in
  for p = 0 to np - 1 do
    let v = eval_aig net (P.pattern pats p) in
    A.iter_nodes net (fun nd -> if Sg.get tbl.(nd) p <> v.(nd) then ok := false)
  done;
  (* And the tail words past [np] stay masked to zero regardless of the
     shard count. *)
  A.iter_nodes net (fun nd ->
      let masked = Array.copy tbl.(nd) in
      Sg.num_patterns_mask np masked;
      if masked <> tbl.(nd) then ok := false);
  !ok

let eval_klut net inputs =
  let v = Array.make (K.num_nodes net) false in
  K.iter_nodes net (fun nd ->
      if K.is_pi net nd then v.(nd) <- inputs.(K.pi_index net nd)
      else if K.is_lut net nd then
        v.(nd) <-
          T.eval (K.func net nd) (Array.map (fun f -> v.(f)) (K.fanins net nd)));
  v

let prop_kernel_klut_styles (seed, domains, np) =
  let rng = Rng.create seed in
  let net = random_klut rng ~pis:6 ~luts:40 in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:np in
  let stp =
    Sim.Kernel.execute ~domains (Sim.Kernel.compile_klut ~style:`Stp net) pats
  in
  let blast =
    Sim.Kernel.execute ~domains
      (Sim.Kernel.compile_klut ~style:`Bitblast net)
      pats
  in
  let ok = ref (stp = blast) in
  for p = 0 to np - 1 do
    let v = eval_klut net (P.pattern pats p) in
    K.iter_nodes net (fun nd -> if Sg.get stp.(nd) p <> v.(nd) then ok := false)
  done;
  !ok

(* Growing a plan in place (the sweep engine's append path) must agree
   with recompiling the grown network from scratch. *)
let prop_plan_patch (seed, domains, np) =
  let rng = Rng.create seed in
  let net = random_aig rng ~pis:6 ~gates:30 ~pos:2 in
  let plan = Sim.Kernel.compile_aig net in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:6 ~num_patterns:np in
  let tbl = Sim.Kernel.execute ~domains plan pats in
  let n0 = A.num_nodes net in
  (* Grow the same network append-only, as SAT sweeping does. *)
  let pick () =
    let nd = Rng.int rng n0 in
    L.of_node nd (Rng.bool rng)
  in
  for _ = 1 to 20 do
    ignore (A.add_and net (pick ()) (pick ()))
  done;
  Sim.Kernel.extend_aig plan net;
  let n = A.num_nodes net in
  let nw = P.num_words pats in
  let ext =
    Array.init n (fun nd -> if nd < n0 then tbl.(nd) else Array.make nw 0)
  in
  Sim.Kernel.run_sharded ~domains plan pats ext ~inst_lo:n0 ~inst_hi:n ~lo:0
    ~hi:nw;
  for nd = n0 to n - 1 do
    Sg.num_patterns_mask np ext.(nd)
  done;
  let scratch = Sim.Kernel.execute ~domains (Sim.Kernel.compile_aig net) pats in
  Sim.Kernel.num_instructions plan = n && ext = scratch

(* Random interleavings of pattern appends and refreshes: after every
   refresh the incremental table equals a from-scratch simulation. *)
let arb_incremental_case =
  QCheck.make
    ~print:(fun (s, steps) ->
      Printf.sprintf "seed=%Ld steps=[%s]" s
        (String.concat ";" (List.map string_of_int steps)))
    QCheck.Gen.(
      let* s = ui64 in
      let* steps = list_size (int_range 1 6) (int_range 0 40) in
      return (s, steps))

let prop_incremental_sequences (seed, steps) =
  let rng = Rng.create seed in
  let net = random_aig rng ~pis:5 ~gates:40 ~pos:2 in
  let pats = P.random ~seed:(Rng.int64 rng) ~num_pis:5 ~num_patterns:33 in
  let inc = Sim.Incremental.create net pats in
  List.for_all
    (fun appends ->
      for _ = 1 to appends do
        Sim.Incremental.add_pattern inc (Array.init 5 (fun _ -> Rng.bool rng))
      done;
      Sim.Incremental.refresh inc;
      Sim.Incremental.signatures inc = Sim.Bitwise.simulate_aig net pats)
    steps

let test_kernel_cache_bound () =
  let net = K.create () in
  let pis = Array.init 4 (fun _ -> K.add_pi net) in
  (* Five distinct 2-input functions through a 2-entry cache. *)
  let fns = [ "0111"; "0110"; "0001"; "1110"; "1001" ] in
  let prev = ref pis.(0) in
  List.iter
    (fun bin ->
      prev := K.add_lut net [| !prev; pis.(1) |] (T.of_bin bin))
    fns;
  ignore (K.add_po net !prev false);
  let cache = Sim.Kernel.Cache.create ~max_entries:2 () in
  let pats = P.random ~seed:17L ~num_pis:4 ~num_patterns:50 in
  let plan = Sim.Kernel.compile_klut ~cache ~style:`Stp net in
  let tbl = Sim.Kernel.execute plan pats in
  check_int "misses" 5 (Sim.Kernel.Cache.misses cache);
  check_int "evictions" 3 (Sim.Kernel.Cache.evictions cache);
  check "bounded" true (Sim.Kernel.Cache.length cache <= 2);
  (* Eviction only forgets compilations, never changes results. *)
  check "results unaffected" true
    (tbl = Sim.Bitwise.simulate_klut net pats)

(* ---- signatures ---- *)

let test_signature_helpers () =
  let s = [| 0b1010; 0 |] in
  check "get" true (Sg.get s 1);
  check "get0" false (Sg.get s 0);
  let c = Sg.complement_of ~num_patterns:40 s in
  check "compl bit" true (Sg.get c 0);
  check "equal up to compl" true (Sg.equal_up_to_compl ~num_patterns:40 s c);
  let norm, flipped = Sg.normalize ~num_patterns:40 c in
  check "normalized flipped" true flipped;
  check "normalized value" true (norm = s);
  check_int "count" 2 (Sg.count_ones s);
  check "const0" true (Sg.is_const0 [| 0; 0 |]);
  check "const1" true (Sg.is_const1 ~num_patterns:40 [| -1 land 0xFFFFFFFF; 0xFF |]);
  (* equal_complement is the allocation-free equivalent of comparing
     against complement_of. *)
  check "equal_complement" true (Sg.equal_complement ~num_patterns:40 s c);
  check "equal_complement self" false (Sg.equal_complement ~num_patterns:40 s s);
  check "equal words" true (Sg.equal (Array.copy s) s);
  check "equal length" false (Sg.equal s [| 0b1010 |])

(* The monomorphic equality pair must agree with the allocating
   reference formulation on arbitrary masked signatures. *)
let arb_sig_pair =
  QCheck.make
    ~print:(fun (np, a, b) ->
      Printf.sprintf "np=%d a=[|%s|] b=[|%s|]" np
        (String.concat ";" (Array.to_list (Array.map string_of_int a)))
        (String.concat ";" (Array.to_list (Array.map string_of_int b))))
    QCheck.Gen.(
      let* words = int_range 1 4 in
      let* np = int_range ((words - 1) * 32 + 1) (words * 32) in
      let word = int_bound 0xFFFFFFFF in
      let masked =
        map
          (fun a ->
            Sg.num_patterns_mask np a;
            a)
          (array_size (return words) word)
      in
      let* a = masked in
      let* b =
        (* Bias towards related signatures so the equal branches are hit. *)
        oneof
          [ return (Array.copy a); return (Sg.complement_of ~num_patterns:np a); masked ]
      in
      return (np, a, b))

let prop_signature_equal (np, a, b) =
  Sg.equal a b = (a = b)
  && Sg.equal_complement ~num_patterns:np a b
     = Sg.equal a (Sg.complement_of ~num_patterns:np b)
  && Sg.equal_up_to_compl ~num_patterns:np a b
     = (a = b || a = Sg.complement_of ~num_patterns:np b)

let () =
  Alcotest.run "sim"
    [
      ( "patterns",
        [
          Alcotest.test_case "basic" `Quick test_patterns_basic;
          Alcotest.test_case "of_rows (paper)" `Quick test_patterns_of_rows;
          Alcotest.test_case "growth" `Quick test_patterns_grow;
        ] );
      ( "aig",
        [
          Alcotest.test_case "bitwise vs eval" `Quick test_bitwise_aig_vs_eval;
          Alcotest.test_case "stp matches bitwise" `Quick
            test_stp_aig_matches_bitwise;
        ] );
      ( "klut",
        [
          Alcotest.test_case "engines agree" `Quick test_klut_engines_agree;
          Alcotest.test_case "stp vs eval" `Quick test_klut_sim_vs_eval;
          Alcotest.test_case "mapped matches aig" `Quick test_mapped_matches_aig;
        ] );
      ( "circuit_cut",
        [
          Alcotest.test_case "fig1 cuts" `Quick test_circuit_cut_fig1;
          Alcotest.test_case "fig1 signatures" `Quick
            test_circuit_cut_function_preserved;
          Alcotest.test_case "random targets" `Quick test_circuit_cut_random;
          Alcotest.test_case "limit respected" `Quick
            test_circuit_cut_respects_limit;
        ] );
      ( "window",
        [
          Alcotest.test_case "exact equivalence" `Quick
            test_window_exact_equivalence;
          Alcotest.test_case "too wide" `Quick test_window_too_wide;
          Alcotest.test_case "truth tables" `Quick test_window_tts;
          Alcotest.test_case "lift consistency" `Quick
            test_window_lift_consistency;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches full simulation" `Quick
            test_incremental_matches_full;
          Alcotest.test_case "recomputes only the tail" `Quick
            test_incremental_is_incremental;
        ] );
      ( "parallel",
        [
          qcheck_case ~name:"aig: sharded = sequential" ~count:60 arb_par_case
            prop_parallel_aig;
          qcheck_case ~name:"klut: sharded = sequential" ~count:60 arb_par_case
            prop_parallel_klut;
          Alcotest.test_case "range splitting" `Quick test_par_split;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "compile cache" `Quick test_compile_cache;
        ] );
      ( "kernel",
        [
          qcheck_case ~name:"aig plan = naive eval" ~count:40 arb_kernel_case
            prop_kernel_aig_vs_eval;
          qcheck_case ~name:"klut styles = naive eval" ~count:40
            arb_kernel_case prop_kernel_klut_styles;
          qcheck_case ~name:"plan patch = scratch recompile" ~count:40
            arb_kernel_case prop_plan_patch;
          qcheck_case ~name:"incremental sequences" ~count:30
            arb_incremental_case prop_incremental_sequences;
          Alcotest.test_case "cache bound" `Quick test_kernel_cache_bound;
        ] );
      ("activity", [ Alcotest.test_case "stats" `Quick test_activity ]);
      ( "signature",
        [
          Alcotest.test_case "helpers" `Quick test_signature_helpers;
          qcheck_case ~name:"equal/equal_complement = reference" ~count:300
            arb_sig_pair prop_signature_equal;
        ] );
    ]
