(* Tests for the STP algebra: dense matrices, logic matrices, canonical
   forms (semantic vs algebraic), and the reasoning layer. Includes the
   paper's Example 1 (implication identity) and Example 2 (liar puzzle). *)

module M = Stp.Matrix
module L = Stp.Logic_matrix
module E = Stp.Expr
module C = Stp.Canonical
module R = Stp.Reasoning
module T = Tt.Truth_table

let check = Alcotest.(check bool)
let matrix = Alcotest.testable M.pp M.equal

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- dense matrices ---- *)

let test_mul () =
  let a = M.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = M.of_lists [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check matrix "mul" (M.of_lists [ [ 19; 22 ]; [ 43; 50 ] ]) (M.mul a b);
  Alcotest.check matrix "identity" a (M.mul a (M.identity 2));
  Alcotest.check matrix "transpose" (M.of_lists [ [ 1; 3 ]; [ 2; 4 ] ]) (M.transpose a)

let test_kron () =
  let a = M.of_lists [ [ 1; 2 ] ] in
  let b = M.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.check matrix "kron"
    (M.of_lists [ [ 0; 1; 0; 2 ]; [ 1; 0; 2; 0 ] ])
    (M.kron a b)

let test_stp_generalizes_mul () =
  let a = M.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = M.of_lists [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check matrix "stp = mul on matching dims" (M.mul a b) (M.stp a b)

let test_stp_example1 () =
  (* Example 1: M_or x M_not = M_implies. *)
  let m_or = L.to_matrix L.m_or in
  let m_not = L.to_matrix L.m_not in
  let m_implies = L.to_matrix L.m_implies in
  Alcotest.check matrix "M_or M_not = M_implies" m_implies (M.stp m_or m_not)

let test_swap_property () =
  (* W_{[2,2]} (x (x) y) = y (x) x for Boolean pairs. *)
  let vec b = M.of_lists (if b then [ [ 1 ]; [ 0 ] ] else [ [ 0 ]; [ 1 ] ]) in
  let w = M.swap 2 2 in
  List.iter
    (fun (bx, by) ->
      let x = vec bx and y = vec by in
      Alcotest.check matrix "swap"
        (M.kron y x)
        (M.mul w (M.kron x y)))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_power_reducing () =
  let vec b = M.of_lists (if b then [ [ 1 ]; [ 0 ] ] else [ [ 0 ]; [ 1 ] ]) in
  List.iter
    (fun b ->
      let x = vec b in
      Alcotest.check matrix "Mr x = x (x) x" (M.kron x x)
        (M.mul M.power_reducing x))
    [ true; false ]

let test_swap_matrix_identity () =
  (* Property 1 with a general matrix: A ⋉ Z_r = Z_r ⋉ (I_t (x) A). *)
  let a = M.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  let zr = M.of_lists [ [ 5; 6; 7 ] ] in
  Alcotest.check matrix "row swap identity" (M.stp a zr)
    (M.stp zr (M.kron (M.identity 3) a));
  let zc = M.transpose zr in
  Alcotest.check matrix "col swap identity" (M.stp zc a)
    (M.stp (M.kron (M.identity 3) a) zc)

(* ---- logic matrices ---- *)

let test_logic_matrix_roundtrip () =
  let nand = L.of_bin "0111" in
  check "is_logic_matrix" true (M.is_logic_matrix (L.to_matrix nand));
  check "roundtrip" true (L.equal nand (L.of_matrix (L.to_matrix nand)))

let test_logic_matrix_apply () =
  check "nand(T,T)=F" false
    L.(bool_of_bvec (apply m_nand [ True; True ]));
  check "nand(T,F)=T" true L.(bool_of_bvec (apply m_nand [ True; False ]));
  check "implies(F,F)=T" true L.(bool_of_bvec (apply m_implies [ False; False ]));
  check "implies(T,F)=F" false L.(bool_of_bvec (apply m_implies [ True; False ]))

let test_stp_bvec_vs_dense () =
  (* Column-half selection must agree with the dense STP against a
     Boolean column vector. *)
  let f = L.of_tt (T.random ~seed:17L 3) in
  let dense = L.to_matrix f in
  let vec b = M.of_lists (if b then [ [ 1 ]; [ 0 ] ] else [ [ 0 ]; [ 1 ] ]) in
  List.iter
    (fun b ->
      let fast = L.to_matrix (L.stp_bvec f (L.bvec_of_bool b)) in
      let slow = M.stp dense (vec b) in
      Alcotest.check matrix "stp_bvec agrees" slow fast)
    [ true; false ]

let test_compose_matches_dense () =
  (* Composition on logic matrices = STP product on dense ones. *)
  let g1 = L.of_tt (T.nth_var 2 1) in
  let g2 = L.of_tt (T.xor (T.nth_var 2 1) (T.nth_var 2 0)) in
  let composed = L.compose L.m_and [ g1; g2 ] in
  (* and(x1, x1 xor x0) has table over (x1 msb, x0 lsb). *)
  let expect = T.and_ (T.nth_var 2 1) (T.xor (T.nth_var 2 1) (T.nth_var 2 0)) in
  check "compose" true (T.equal (L.to_tt composed) expect)

let test_boolean_calculus () =
  (* d(xor)/da = 1; d(and a b)/da = b; positions are STP order
     (leading first). *)
  check "d xor" true (T.is_const1 (L.to_tt (L.derivative L.m_xor 0)));
  let d_and = L.derivative L.m_and 0 in
  check "d and da = b" true (T.equal (L.to_tt d_and) (T.nth_var 1 0));
  (* cofactor of implies on the leading factor (a): a=1 -> b; a=0 -> 1. *)
  check "implies|a=1" true
    (T.equal (L.to_tt (L.cofactor L.m_implies 0 true)) (T.nth_var 1 0));
  check "implies|a=0" true (T.is_const1 (L.to_tt (L.cofactor L.m_implies 0 false)));
  (* depends_on via derivative. *)
  let f = L.of_tt (T.and_ (T.nth_var 3 2) (T.nth_var 3 0)) in
  (* STP factor 0 = table var 2; factor 1 = table var 1; factor 2 = var 0 *)
  check "depends factor 0" true (L.depends_on f 0);
  check "independent factor 1" false (L.depends_on f 1);
  check "depends factor 2" true (L.depends_on f 2);
  (* Cofactor against semantic definition on random tables. *)
  for seed = 1 to 10 do
    let tt = T.random ~seed:(Int64.of_int seed) 3 in
    let m = L.of_tt tt in
    for i = 0 to 2 do
      let v = 2 - i in
      List.iter
        (fun b ->
          let direct = L.to_tt (L.cofactor m i b) in
          let expect =
            T.of_fun 2 (fun x ->
                let y = Array.make 3 false in
                let pos = ref 0 in
                for tv = 0 to 2 do
                  if tv = v then y.(tv) <- b
                  else begin
                    y.(tv) <- x.(!pos);
                    incr pos
                  end
                done;
                T.eval tt y)
          in
          if not (T.equal direct expect) then
            Alcotest.failf "cofactor wrong seed=%d i=%d" seed i)
        [ true; false ]
    done
  done

(* ---- expressions ---- *)

let test_parser () =
  let e = E.of_string "a & !b | c -> d <-> e" in
  Alcotest.(check string)
    "print" "a & !b | c -> d <-> e" (E.to_string e);
  let e2 = E.of_string (E.to_string e) in
  check "reparse" true (e = e2);
  let f = E.of_string "(a <-> !b) & (b <-> !c)" in
  check "eval" true
    (E.eval (function "a" -> true | "b" -> false | _ -> true) f);
  Alcotest.(check (list string)) "vars" [ "a"; "b"; "c" ] (E.vars f)

let test_parser_errors () =
  List.iter
    (fun s ->
      try
        ignore (E.of_string s);
        Alcotest.failf "should not parse: %s" s
      with Invalid_argument _ -> ())
    [ ""; "a &"; "(a"; "a b"; "a @ b"; "->" ]

let arb_expr =
  let open QCheck.Gen in
  let variables = [ "a"; "b"; "c"; "d" ] in
  let rec gen depth =
    if depth = 0 then
      oneof [ map E.var (oneofl variables); map (fun b -> E.Const b) bool ]
    else
      frequency
        [
          (1, map E.var (oneofl variables));
          (2, map E.not_ (gen (depth - 1)));
          (8,
           let sub = gen (depth - 1) in
           let op =
             oneofl
               [ (fun a b -> E.And (a, b));
                 (fun a b -> E.Or (a, b));
                 (fun a b -> E.Xor (a, b));
                 (fun a b -> E.Nand (a, b));
                 (fun a b -> E.Nor (a, b));
                 (fun a b -> E.Implies (a, b));
                 (fun a b -> E.Iff (a, b)) ]
           in
           map3 (fun f a b -> f a b) op sub sub);
        ]
  in
  QCheck.make ~print:E.to_string (int_range 0 4 >>= gen)

(* ---- canonical forms ---- *)

let assignments_of order i =
  (* Assignment where order element k (leading first) takes bit
     (n-1-k) of i. *)
  let n = List.length order in
  List.mapi (fun k v -> (v, (i lsr (n - 1 - k)) land 1 = 1)) order

let test_canonical_example2 () =
  (* The liar puzzle. Canonical matrix from the paper:
     top row 0 0 0 0 0 1 0 0 over columns abc = 111..000. *)
  let phi =
    E.of_string "(a <-> !b) & (b <-> !c) & (c <-> !a & !b)"
  in
  let m, order = C.of_expr phi in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] order;
  (* Column 5 of the dense matrix (0-based) is the only [1;0] column.
     Column j corresponds to assignment with index 7 - j: j=5 -> idx 2 =
     binary 010 -> a=0 b=1 c=0. *)
  let dense = L.to_matrix m in
  for j = 0 to 7 do
    let expect = if j = 5 then 1 else 0 in
    Alcotest.(check int) (Printf.sprintf "col %d" j) expect (M.get dense 0 j)
  done;
  (* Simulation of pattern 010 yields True, as in the paper. *)
  check "simulate 010" true (C.simulate m [ false; true; false ]);
  check "simulate 110" false (C.simulate m [ true; true; false ]);
  (* Unique model: b honest, a and c liars. *)
  match R.satisfying_assignments phi with
  | [ model ] ->
    Alcotest.(check (list (pair string bool)))
      "model" [ ("a", false); ("b", true); ("c", false) ] model
  | models -> Alcotest.failf "expected 1 model, got %d" (List.length models)

let test_algebraic_matches_semantic_fixed () =
  List.iter
    (fun s ->
      let e = E.of_string s in
      let m_sem, order = C.of_expr e in
      let m_alg, order' = C.of_expr_algebraic e in
      Alcotest.(check (list string)) ("order " ^ s) order order';
      Alcotest.check matrix ("canonical " ^ s) (L.to_matrix m_sem) m_alg)
    [
      "a";
      "!a";
      "a & b";
      "a & a";
      "a | !a";
      "a -> b";
      "b -> a";
      "a & b | a & !b";
      "(a <-> !b) & (b <-> !c) & (c <-> !a & !b)";
      "a ^ b ^ c ^ a";
      "(a | b) & (b | c) & (c | a)";
      "1 & a";
      "a & 0";
      "(a nand b) nand (a nand b)";
    ]

let test_canonical_explicit_order () =
  let e = E.of_string "a & b" in
  let m, order = C.of_expr ~order:[ "b"; "a"; "z" ] e in
  Alcotest.(check (list string)) "order kept" [ "b"; "a"; "z" ] order;
  (* z is a don't-care: check via evaluation at all 8 assignments. *)
  for i = 0 to 7 do
    let env = assignments_of order i in
    let lookup v = List.assoc v env in
    let expect = lookup "a" && lookup "b" in
    let got = C.simulate m (List.map snd env) in
    if got <> expect then Alcotest.failf "order eval wrong at %d" i
  done

let prop_canonical_agree =
  qtest "algebraic = semantic canonical" ~count:150 arb_expr (fun e ->
      let m_sem, order = C.of_expr e in
      let m_alg, order' = C.of_expr_algebraic e in
      order = order' && M.equal (L.to_matrix m_sem) m_alg)

let prop_canonical_evaluates =
  qtest "canonical form simulates like eval" ~count:150 arb_expr (fun e ->
      let m, order = C.of_expr e in
      let n = List.length order in
      let ok = ref true in
      for i = 0 to (1 lsl n) - 1 do
        let env = assignments_of order i in
        let expect = E.eval (fun v -> List.assoc v env) e in
        if C.simulate m (List.map snd env) <> expect then ok := false
      done;
      !ok)

(* ---- reasoning ---- *)

let test_reasoning () =
  check "taut" true (R.is_tautology (E.of_string "a | !a"));
  check "not taut" false (R.is_tautology (E.of_string "a | b"));
  check "sat" true (R.is_satisfiable (E.of_string "a & b"));
  check "unsat" false (R.is_satisfiable (E.of_string "a & !a"));
  check "example1 identity" true
    (R.equivalent (E.of_string "a -> b") (E.of_string "!a | b"));
  check "de morgan" true
    (R.equivalent (E.of_string "!(a & b)") (E.of_string "!a | !b"));
  check "not equiv" false
    (R.equivalent (E.of_string "a & b") (E.of_string "a | b"));
  check "different vars" true
    (R.equivalent (E.of_string "a & b") (E.of_string "b & a"));
  check "implies" true (R.implies (E.of_string "a & b") (E.of_string "a"));
  check "implies not" false (R.implies (E.of_string "a") (E.of_string "a & b"))

let prop_equivalent_is_semantic =
  qtest "equivalent = brute force" ~count:100
    (QCheck.pair arb_expr arb_expr)
    (fun (e1, e2) ->
      let vars =
        let v1 = E.vars e1 and v2 = E.vars e2 in
        v1 @ List.filter (fun v -> not (List.mem v v1)) v2
      in
      let n = List.length vars in
      let brute = ref true in
      for i = 0 to (1 lsl n) - 1 do
        let env v =
          let rec idx k = function
            | [] -> assert false
            | x :: rest -> if String.equal x v then k else idx (k + 1) rest
          in
          (i lsr idx 0 vars) land 1 = 1
        in
        if E.eval env e1 <> E.eval env e2 then brute := false
      done;
      R.equivalent e1 e2 = !brute)

let () =
  Alcotest.run "stp"
    [
      ( "matrix",
        [
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "kron" `Quick test_kron;
          Alcotest.test_case "stp generalizes mul" `Quick test_stp_generalizes_mul;
          Alcotest.test_case "example 1" `Quick test_stp_example1;
          Alcotest.test_case "swap property" `Quick test_swap_property;
          Alcotest.test_case "power reducing" `Quick test_power_reducing;
          Alcotest.test_case "swap identities" `Quick test_swap_matrix_identity;
        ] );
      ( "logic_matrix",
        [
          Alcotest.test_case "roundtrip" `Quick test_logic_matrix_roundtrip;
          Alcotest.test_case "apply" `Quick test_logic_matrix_apply;
          Alcotest.test_case "stp_bvec vs dense" `Quick test_stp_bvec_vs_dense;
          Alcotest.test_case "compose vs dense" `Quick test_compose_matches_dense;
          Alcotest.test_case "boolean calculus" `Quick test_boolean_calculus;
        ] );
      ( "expr",
        [
          Alcotest.test_case "parser" `Quick test_parser;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "example 2 (liar puzzle)" `Quick test_canonical_example2;
          Alcotest.test_case "algebraic = semantic (fixed)" `Quick
            test_algebraic_matches_semantic_fixed;
          Alcotest.test_case "explicit order" `Quick test_canonical_explicit_order;
          prop_canonical_agree;
          prop_canonical_evaluates;
        ] );
      ( "reasoning",
        [ Alcotest.test_case "basics" `Quick test_reasoning;
          prop_equivalent_is_semantic ] );
    ]
