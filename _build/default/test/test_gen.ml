(* Generator tests: every arithmetic circuit is checked bit-exactly
   against integer arithmetic on exhaustive or sampled inputs; control
   circuits against direct models; redundancy injection against CEC. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eval net inputs =
  let v = Array.make (A.num_nodes net) false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- inputs.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  Array.map (fun l -> v.(L.node l) <> L.is_compl l) (A.pos net)

let bits_of v w = Array.init w (fun i -> (v lsr i) land 1 = 1)

let int_of_bits bits lo len =
  let v = ref 0 in
  for i = len - 1 downto 0 do
    v := (!v lsl 1) lor (if bits.(lo + i) then 1 else 0)
  done;
  !v

(* Run [f a b] against the circuit for sampled operand pairs. *)
let check_binop name net ~width ~out_width f =
  let rng = Rng.create 2024L in
  let samples =
    [ (0, 0); (1, 0); (0, 1); ((1 lsl width) - 1, (1 lsl width) - 1); (1, (1 lsl width) - 1) ]
    @ List.init 40 (fun _ -> (Rng.int rng (1 lsl width), Rng.int rng (1 lsl width)))
  in
  List.iter
    (fun (a, b) ->
      let inputs = Array.append (bits_of a width) (bits_of b width) in
      let out = eval net inputs in
      let got = int_of_bits out 0 out_width in
      let expect = f a b in
      if got <> expect then
        Alcotest.failf "%s(%d, %d) = %d, expected %d" name a b got expect)
    samples

let test_adders () =
  let w = 8 in
  let mask = (1 lsl (w + 1)) - 1 in
  check_binop "rca" (Gen.Arith.ripple_adder ~width:w) ~width:w ~out_width:(w + 1)
    (fun a b -> (a + b) land mask);
  check_binop "cla" (Gen.Arith.carry_lookahead_adder ~width:w) ~width:w
    ~out_width:(w + 1) (fun a b -> (a + b) land mask);
  (* The two adders are structurally different but CEC-equivalent. *)
  let rca = Gen.Arith.ripple_adder ~width:16 in
  let cla = Gen.Arith.carry_lookahead_adder ~width:16 in
  check "structures differ" true (A.num_ands rca <> A.num_ands cla);
  match Sweep.Cec.check rca cla with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "adders disagree"

let test_kogge_stone () =
  let w = 8 in
  let mask = (1 lsl (w + 1)) - 1 in
  check_binop "kogge-stone" (Gen.Arith.kogge_stone_adder ~width:w) ~width:w
    ~out_width:(w + 1) (fun a b -> (a + b) land mask);
  (* Logarithmic depth, unlike the ripple chain. *)
  let ks = Gen.Arith.kogge_stone_adder ~width:32 in
  let rca = Gen.Arith.ripple_adder ~width:32 in
  check "shallower" true (A.depth ks < A.depth rca / 2);
  match Sweep.Cec.check ks rca with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "kogge-stone disagrees with ripple"

let test_wallace () =
  let w = 6 in
  check_binop "wallace" (Gen.Arith.wallace_multiplier ~width:w) ~width:w
    ~out_width:(2 * w) (fun a b -> a * b);
  let wal = Gen.Arith.wallace_multiplier ~width:8 in
  let arr = Gen.Arith.multiplier ~width:8 in
  check "tree is shallower" true (A.depth wal < A.depth arr);
  match Sweep.Cec.check wal arr with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "wallace disagrees with array multiplier"

let test_subtractor () =
  let w = 8 in
  check_binop "sub" (Gen.Arith.subtractor ~width:w) ~width:w ~out_width:w
    (fun a b -> (a - b) land 0xFF)

let test_multiplier () =
  let w = 6 in
  check_binop "mul" (Gen.Arith.multiplier ~width:w) ~width:w ~out_width:(2 * w)
    (fun a b -> a * b)

let test_square () =
  let w = 6 in
  let net = Gen.Arith.square ~width:w in
  for a = 0 to (1 lsl w) - 1 do
    let out = eval net (bits_of a w) in
    check_int (Printf.sprintf "square %d" a) (a * a) (int_of_bits out 0 (2 * w))
  done

let test_divider () =
  let w = 6 in
  let net = Gen.Arith.divider ~width:w in
  let rng = Rng.create 11L in
  for _ = 1 to 60 do
    let a = Rng.int rng (1 lsl w) and b = 1 + Rng.int rng ((1 lsl w) - 1) in
    let inputs = Array.append (bits_of a w) (bits_of b w) in
    let out = eval net inputs in
    check_int (Printf.sprintf "%d / %d" a b) (a / b) (int_of_bits out 0 w);
    check_int (Printf.sprintf "%d mod %d" a b) (a mod b) (int_of_bits out w w)
  done;
  (* Division by zero: quotient all ones, remainder = dividend. *)
  let out = eval net (Array.append (bits_of 13 w) (bits_of 0 w)) in
  check_int "q div0" ((1 lsl w) - 1) (int_of_bits out 0 w);
  check_int "r div0" 13 (int_of_bits out w w)

let test_sqrt () =
  let w = 8 in
  let net = Gen.Arith.sqrt ~width:w in
  for a = 0 to 255 do
    let out = eval net (bits_of a w) in
    let expect = int_of_float (Float.sqrt (float_of_int a)) in
    check_int (Printf.sprintf "sqrt %d" a) expect (int_of_bits out 0 (w / 2))
  done

let test_barrel_shifter () =
  let w = 16 in
  let net = Gen.Arith.barrel_shifter ~width:w in
  let rng = Rng.create 17L in
  for _ = 1 to 60 do
    let x = Rng.int rng (1 lsl w) and s = Rng.int rng 16 in
    let inputs = Array.append (bits_of x w) (bits_of s 4) in
    let out = eval net inputs in
    check_int
      (Printf.sprintf "%d << %d" x s)
      ((x lsl s) land ((1 lsl w) - 1))
      (int_of_bits out 0 w)
  done

let test_max () =
  let w = 6 in
  let net = Gen.Arith.max ~width:w ~operands:4 in
  let rng = Rng.create 19L in
  for _ = 1 to 60 do
    let ops = Array.init 4 (fun _ -> Rng.int rng (1 lsl w)) in
    let inputs = Array.concat (Array.to_list (Array.map (fun v -> bits_of v w) ops)) in
    let out = eval net inputs in
    check_int "max4" (Array.fold_left max 0 ops) (int_of_bits out 0 w)
  done

let test_log2 () =
  let w = 32 in
  let net = Gen.Arith.log2_floor ~width:w in
  let rng = Rng.create 23L in
  let cases = 1 :: 7 :: 255 :: (1 lsl 31) :: List.init 40 (fun _ -> 1 + Rng.int rng ((1 lsl 31) - 1)) in
  List.iter
    (fun x ->
      let out = eval net (bits_of x w) in
      let expect =
        let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
        go x 0
      in
      (* 32 positions need 5 bits; the flag PO follows. *)
      check_int (Printf.sprintf "log2 %d" x) expect (int_of_bits out 0 5);
      check "not zero flag" false out.(5))
    cases;
  let out = eval net (bits_of 0 w) in
  check "zero flag" true out.(5)

let test_int2float () =
  let w = 32 in
  let net = Gen.Arith.int2float ~width:w in
  let x = 0b1011_0110_1100_0000 in
  let out = eval net (bits_of x w) in
  (* Leading one at position 15; mantissa output bit j is input bit
     (14 - j), so the mantissa word reads x14..x7 lsb-first. *)
  check_int "exponent" 15 (int_of_bits out 0 5);
  check_int "mantissa" 182 (int_of_bits out 5 8)

let test_hyp_and_sin_build () =
  (* Functional spot checks on the big datapath kernels. *)
  let w = 6 in
  let hyp = Gen.Arith.hyp ~width:w in
  let out = eval hyp (Array.append (bits_of 5 w) (bits_of 7 w)) in
  check_int "5^2+7^2" 74 (int_of_bits out 0 (2 * w));
  let sp = Gen.Arith.sin_poly ~width:8 in
  let x = 10 in
  let out = eval sp (bits_of x 8) in
  let x3 = x * x * x land 0xFF and x2 = x * x land 0xFF in
  let x5 = x3 * x2 land 0xFF in
  let expect = (x + (x3 lsr 3) + (x5 lsr 6)) land 0xFF in
  check_int "sin_poly" expect (int_of_bits out 0 8)

let test_decoder () =
  let net = Gen.Control.decoder ~bits:4 in
  for v = 0 to 15 do
    let out = eval net (bits_of v 4) in
    Array.iteri
      (fun i b ->
        if b <> (i = v) then Alcotest.failf "decoder %d wrong at %d" v i)
      out
  done

let test_priority_encoder () =
  let net = Gen.Control.priority_encoder ~width:16 in
  let rng = Rng.create 29L in
  for _ = 1 to 50 do
    let r = Rng.int rng 65536 in
    let out = eval net (bits_of r 16) in
    if r = 0 then check "invalid" false out.(4)
    else begin
      let expect =
        let rec go i = if (r lsr i) land 1 = 1 then i else go (i + 1) in
        go 0
      in
      check_int "position" expect (int_of_bits out 0 4);
      check "valid" true out.(4)
    end
  done

let test_voter () =
  let net = Gen.Control.voter ~inputs:9 in
  let rng = Rng.create 37L in
  for _ = 1 to 80 do
    let r = Rng.int rng 512 in
    let inputs = bits_of r 9 in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
    let out = eval net inputs in
    check "majority" true (out.(0) = (ones >= 5))
  done

let test_parity_and_mux () =
  let net = Gen.Control.parity ~width:12 in
  let rng = Rng.create 41L in
  for _ = 1 to 40 do
    let r = Rng.int rng 4096 in
    let out = eval net (bits_of r 12) in
    let expect =
      let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc <> (v land 1 = 1)) in
      go r false
    in
    check "parity" true (out.(0) = expect)
  done;
  let mt = Gen.Control.mux_tree ~select_bits:4 in
  for _ = 1 to 40 do
    let data = Rng.int rng 65536 and sel = Rng.int rng 16 in
    let inputs = Array.append (bits_of data 16) (bits_of sel 4) in
    let out = eval mt inputs in
    check "mux tree" true (out.(0) = ((data lsr sel) land 1 = 1))
  done

let test_arbiter () =
  let net = Gen.Control.arbiter ~clients:4 in
  let rng = Rng.create 43L in
  for _ = 1 to 60 do
    let req = Rng.int rng 16 and ptr = Rng.int rng 4 in
    let inputs = Array.append (bits_of req 4) (bits_of ptr 2) in
    let out = eval net inputs in
    let grants = Array.to_list out in
    let granted = List.filteri (fun i g -> ignore i; g) grants in
    if req = 0 then check "no grant" true (granted = [])
    else begin
      check_int "single grant" 1 (List.length granted);
      (* The grant goes to the first requester from ptr onward. *)
      let expect =
        let rec go d = if (req lsr ((ptr + d) mod 4)) land 1 = 1 then (ptr + d) mod 4 else go (d + 1) in
        go 0
      in
      check "right client" true out.(expect)
    end
  done

let test_crossbar () =
  let net = Gen.Control.crossbar ~ports:2 ~width:4 in
  let rng = Rng.create 47L in
  for _ = 1 to 40 do
    let b0 = Rng.int rng 16 and b1 = Rng.int rng 16 in
    let s0 = Rng.int rng 2 and s1 = Rng.int rng 2 in
    let inputs =
      Array.concat [ bits_of b0 4; bits_of b1 4; bits_of s0 1; bits_of s1 1 ]
    in
    let out = eval net inputs in
    let buses = [| b0; b1 |] in
    check_int "out0" buses.(s0) (int_of_bits out 0 4);
    check_int "out1" buses.(s1) (int_of_bits out 4 4)
  done

let test_random_logic_deterministic () =
  let a = Gen.Control.random_logic ~seed:5L ~pis:8 ~gates:100 ~pos:4 in
  let b = Gen.Control.random_logic ~seed:5L ~pis:8 ~gates:100 ~pos:4 in
  check "deterministic" true (Aig.Aiger.write a = Aig.Aiger.write b);
  let c = Gen.Control.random_logic ~seed:6L ~pis:8 ~gates:100 ~pos:4 in
  check "seed matters" true (Aig.Aiger.write a <> Aig.Aiger.write c)

let test_redundant_inject () =
  let rng = Rng.create 53L in
  for _ = 1 to 10 do
    let base =
      Gen.Control.random_logic ~seed:(Rng.int64 rng) ~pis:7 ~gates:60 ~pos:5
    in
    let red = Gen.Redundant.inject ~seed:(Rng.int64 rng) ~fraction:0.5 base in
    check "grew" true (A.num_ands red >= A.num_ands base);
    match Sweep.Cec.check base red with
    | Sweep.Cec.Equivalent -> ()
    | _ -> Alcotest.fail "injection changed the function"
  done

let test_suites_build () =
  (* Every named benchmark builds, is non-trivial, and is deterministic. *)
  List.iter
    (fun (name, net) ->
      if A.num_ands net < 50 then
        Alcotest.failf "epfl %s suspiciously small (%d)" name (A.num_ands net);
      let again = Gen.Suites.epfl_by_name name in
      if Aig.Aiger.write net <> Aig.Aiger.write again then
        Alcotest.failf "epfl %s not deterministic" name)
    (Gen.Suites.epfl ());
  List.iter
    (fun (name, net) ->
      if A.num_ands net < 100 then
        Alcotest.failf "hwmcc %s suspiciously small (%d)" name (A.num_ands net))
    (Gen.Suites.hwmcc ())

let () =
  Alcotest.run "gen"
    [
      ( "arith",
        [
          Alcotest.test_case "adders" `Quick test_adders;
          Alcotest.test_case "kogge-stone" `Quick test_kogge_stone;
          Alcotest.test_case "wallace" `Quick test_wallace;
          Alcotest.test_case "subtractor" `Quick test_subtractor;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "divider" `Quick test_divider;
          Alcotest.test_case "sqrt" `Quick test_sqrt;
          Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
          Alcotest.test_case "max" `Quick test_max;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "int2float" `Quick test_int2float;
          Alcotest.test_case "hyp and sin kernels" `Quick test_hyp_and_sin_build;
        ] );
      ( "control",
        [
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
          Alcotest.test_case "voter" `Quick test_voter;
          Alcotest.test_case "parity and mux" `Quick test_parity_and_mux;
          Alcotest.test_case "arbiter" `Quick test_arbiter;
          Alcotest.test_case "crossbar" `Quick test_crossbar;
          Alcotest.test_case "random logic" `Quick test_random_logic_deterministic;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "redundancy injection" `Quick test_redundant_inject;
          Alcotest.test_case "suites build" `Slow test_suites_build;
        ] );
    ]
