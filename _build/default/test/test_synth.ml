(* NPN canonization, exact synthesis, and rewriting tests. *)

module T = Tt.Truth_table
module Npn = Tt.Npn
module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- NPN ---- *)

let qtest name ?(count = 60) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let arb_small_tt =
  QCheck.make
    ~print:(fun t -> T.to_bin t)
    QCheck.Gen.(
      int_range 1 4 >>= fun n ->
      map (fun s -> T.random ~seed:(Int64.of_int s) n) int)

let arb_transform_pair =
  QCheck.make
    ~print:(fun (t, _) -> T.to_bin t)
    QCheck.Gen.(
      int_range 1 4 >>= fun n ->
      int >>= fun s ->
      int_range 0 ((1 lsl n) - 1) >>= fun negs ->
      bool >>= fun oneg ->
      (* random permutation via sorting seeds *)
      let rng = Sutil.Rng.create (Int64.of_int (s + 17)) in
      let perm = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Sutil.Rng.int rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      return
        ( T.random ~seed:(Int64.of_int s) n,
          { Npn.input_negations = negs; permutation = perm; output_negation = oneg } ))

let npn_tests =
  [
    Alcotest.test_case "identity" `Quick (fun () ->
        let t = T.random ~seed:3L 3 in
        check "id transform" true
          (T.equal t (Npn.apply t (Npn.identity_transform 3))));
    Alcotest.test_case "known classes" `Quick (fun () ->
        (* and(a,b), and(!a,b), nor, nand are all one NPN class. *)
        let reps =
          List.map
            (fun s -> fst (Npn.canonical (T.of_bin s)))
            [ "1000"; "0100"; "0001"; "0111"; "1110" ]
        in
        match reps with
        | first :: rest ->
          List.iter (fun r -> check "same class" true (T.equal first r)) rest
        | [] -> assert false);
    Alcotest.test_case "xor separate from and" `Quick (fun () ->
        let cx = fst (Npn.canonical (T.of_bin "0110")) in
        let ca = fst (Npn.canonical (T.of_bin "1000")) in
        check "different classes" false (T.equal cx ca));
    Alcotest.test_case "2-var class count" `Quick (fun () ->
        (* All 16 two-variable functions fall into exactly 4 NPN classes. *)
        let fns = List.init 16 (fun i ->
            T.of_words 2 [| i |]) in
        check_int "classes" 4 (List.length (Npn.classify fns)));
    qtest "apply/inverse roundtrip" arb_transform_pair (fun (t, tr) ->
        T.equal t (Npn.apply (Npn.apply t tr) (Npn.inverse tr)));
    qtest "canonical is invariant" arb_transform_pair (fun (t, tr) ->
        let c1, _ = Npn.canonical t in
        let c2, _ = Npn.canonical (Npn.apply t tr) in
        T.equal c1 c2);
    qtest "canonical transform checks out" arb_small_tt (fun t ->
        let c, tr = Npn.canonical t in
        T.equal c (Npn.apply t tr));
  ]

(* ---- exact synthesis ---- *)

let eval_impl net x =
  let v = Array.make (A.num_nodes net) false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- x.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  let po = A.po net 0 in
  v.(L.node po) <> L.is_compl po

let realizes net tt =
  let n = T.num_vars tt in
  let ok = ref true in
  for i = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun v -> (i lsr v) land 1 = 1) in
    if eval_impl net x <> T.get tt i then ok := false
  done;
  !ok

let test_exact_known () =
  List.iter
    (fun (tt, expected) ->
      match Synth.Exact.synthesize tt with
      | Some r ->
        check_int (T.to_bin tt) expected r.Synth.Exact.gates;
        check "realizes" true (realizes r.Synth.Exact.network tt)
      | None -> Alcotest.failf "no implementation for %s" (T.to_bin tt))
    [
      (T.of_bin "1000", 1) (* and *);
      (T.of_bin "1110", 1) (* or: one AND with complements *);
      (T.of_bin "0110", 3) (* xor *);
      (T.of_hex 3 "e8", 4) (* maj *);
      (T.of_hex 3 "96", 6) (* xor3 *);
      (T.of_hex 3 "ca", 3) (* mux *);
      (T.nth_var 4 2, 0);
      (T.not_ (T.nth_var 2 0), 0);
      (T.const0 3, 0);
    ]

let test_exact_random () =
  let rng = Rng.create 7L in
  for _ = 1 to 6 do
    let tt = T.random ~seed:(Rng.int64 rng) 3 in
    match Synth.Exact.synthesize tt with
    | Some r -> check "realizes random" true (realizes r.Synth.Exact.network tt)
    | None -> Alcotest.fail "3-var function must synthesize"
  done

let test_exact_budget () =
  (* With max_gates too small, synthesis must give up, not lie. *)
  check "xor3 needs 6" true (Synth.Exact.synthesize ~max_gates:5 (T.of_hex 3 "96") = None)

(* ---- rewriting ---- *)

let test_rewrite_preserves () =
  let rng = Rng.create 19L in
  for _ = 1 to 5 do
    let base =
      Gen.Control.random_logic ~seed:(Rng.int64 rng) ~pis:7 ~gates:80 ~pos:5
    in
    let net, _ = A.cleanup base in
    let out, stats = Synth.Rewrite.rewrite net in
    check "no growth" true (A.num_ands out <= A.num_ands net);
    check "stats sane" true (stats.Synth.Rewrite.applied >= 0);
    match Sweep.Cec.check net out with
    | Sweep.Cec.Equivalent -> ()
    | _ -> Alcotest.fail "rewrite changed the function"
  done

let test_rewrite_finds_gains () =
  (* voter's majority tree has known rewrite gains. *)
  let net = Gen.Suites.epfl_by_name "voter" in
  let out, stats = Synth.Rewrite.rewrite net in
  check "applied some" true (stats.Synth.Rewrite.applied > 0);
  check "shrank" true (A.num_ands out < A.num_ands net);
  match Sweep.Cec.check net out with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "voter rewrite changed the function"

let test_sweep_then_rewrite () =
  (* The full flow: redundancy -> sweep -> rewrite, all exact. *)
  let base = Gen.Arith.carry_lookahead_adder ~width:16 in
  let net = Gen.Redundant.inject ~seed:4L ~fraction:0.4 base in
  let swept, _ = Sweep.Stp_sweep.sweep net in
  let final, _ = Synth.Rewrite.rewrite swept in
  check "flow shrinks" true (A.num_ands final <= A.num_ands net);
  match Sweep.Cec.check base final with
  | Sweep.Cec.Equivalent -> ()
  | _ -> Alcotest.fail "flow changed the function"

let () =
  Alcotest.run "synth"
    [
      ("npn", npn_tests);
      ( "exact",
        [
          Alcotest.test_case "known minima" `Quick test_exact_known;
          Alcotest.test_case "random 3-var" `Quick test_exact_random;
          Alcotest.test_case "budget respected" `Quick test_exact_budget;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "preserves function" `Quick test_rewrite_preserves;
          Alcotest.test_case "finds gains" `Slow test_rewrite_finds_gains;
          Alcotest.test_case "sweep then rewrite" `Slow test_sweep_then_rewrite;
        ] );
    ]
