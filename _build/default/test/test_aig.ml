(* AIG package tests: structural hashing invariants, evaluation, levels,
   cones, rebuild with replacements, and AIGER roundtrips. *)

module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Direct evaluation used as the reference semantics throughout. *)
let eval net inputs =
  let v = Array.make (A.num_nodes net) false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- inputs.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  Array.map (fun l -> v.(L.node l) <> L.is_compl l) (A.pos net)

let equal_networks a b =
  (* Functional equality by exhaustive evaluation; assumes <= 14 PIs. *)
  A.num_pis a = A.num_pis b
  && A.num_pos a = A.num_pos b
  &&
  let n = A.num_pis a in
  let ok = ref true in
  for i = 0 to (1 lsl n) - 1 do
    let inputs = Array.init n (fun p -> (i lsr p) land 1 = 1) in
    if eval a inputs <> eval b inputs then ok := false
  done;
  !ok

let test_lit () =
  let l = L.of_node 5 true in
  check_int "node" 5 (L.node l);
  check "compl" true (L.is_compl l);
  check "not" true (L.not_ l = L.of_node 5 false);
  check "regular" true (L.regular l = L.of_node 5 false);
  check "const" true (L.is_const L.true_ && L.is_const L.false_);
  check "xor_compl" true (L.xor_compl l true = L.not_ l)

let test_strash () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let x = A.add_and net a b in
  let y = A.add_and net b a in
  check "commutative hash" true (x = y);
  check_int "one AND" 1 (A.num_ands net);
  (* Trivial rules *)
  check "and(a,a)=a" true (A.add_and net a a = a);
  check "and(a,!a)=0" true (A.add_and net a (L.not_ a) = L.false_);
  check "and(a,1)=a" true (A.add_and net a L.true_ = a);
  check "and(a,0)=0" true (A.add_and net a L.false_ = L.false_);
  check_int "no new nodes" 1 (A.num_ands net);
  check "find_and hit" true (A.find_and net a b = Some x);
  check "find_and miss" true
    (A.find_and net a (L.not_ b) = None)

let test_levels_fanout () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let ab = A.add_and net a b in
  let abc = A.add_and net ab c in
  ignore (A.add_po net abc);
  check_int "level a" 0 (A.level net (L.node a));
  check_int "level ab" 1 (A.level net (L.node ab));
  check_int "level abc" 2 (A.level net (L.node abc));
  check_int "depth" 2 (A.depth net);
  check_int "fanout a" 1 (A.fanout_count net (L.node a));
  check_int "fanout ab" 1 (A.fanout_count net (L.node ab));
  check_int "fanout abc (PO)" 1 (A.fanout_count net (L.node abc))

let test_gates_semantics () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  ignore (A.add_po net (A.add_xor net a b));
  ignore (A.add_po net (A.add_or net a b));
  ignore (A.add_po net (A.add_mux net a b c));
  ignore (A.add_po net (A.add_maj net a b c));
  for i = 0 to 7 do
    let x = Array.init 3 (fun p -> (i lsr p) land 1 = 1) in
    let out = eval net x in
    check "xor" true (out.(0) = (x.(0) <> x.(1)));
    check "or" true (out.(1) = (x.(0) || x.(1)));
    check "mux" true (out.(2) = if x.(0) then x.(1) else x.(2));
    let maj = (x.(0) && x.(1)) || (x.(1) && x.(2)) || (x.(2) && x.(0)) in
    check "maj" true (out.(3) = maj)
  done

let test_cone () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let ab = A.add_and net a b in
  let bc = A.add_and net b c in
  let top = A.add_and net ab bc in
  ignore (A.add_po net top);
  let tfi = Aig.Cone.tfi net [ L.node top ] in
  check_int "tfi size" 6 (List.length tfi);
  let leaves = Aig.Cone.leaves net [ L.node ab ] in
  check "leaves of ab" true (leaves = [ L.node a; L.node b ]);
  check_int "cone_size top" 3 (Aig.Cone.cone_size net (L.node top));
  let bounded, truncated = Aig.Cone.tfi_bounded net [ L.node top ] ~limit:2 in
  check "bounded truncated" true truncated;
  check_int "bounded size" 2 (List.length bounded)

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

let test_cleanup_preserves_function () =
  let rng = Rng.create 11L in
  for _ = 1 to 20 do
    let net = random_network rng ~pis:5 ~gates:30 ~pos:4 in
    let cleaned, _map = A.cleanup net in
    check "cleanup equal" true (equal_networks net cleaned);
    check "cleanup no larger" true (A.num_ands cleaned <= A.num_ands net)
  done

let test_rebuild_with_replacement () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net in
  let x1 = A.add_xor net a b in
  (* A structurally distinct duplicate of xor via nands. *)
  let n1 = L.not_ (A.add_and net a b) in
  let n2 = L.not_ (A.add_and net a n1) in
  let n3 = L.not_ (A.add_and net b n1) in
  let x2 = L.not_ (A.add_and net n2 n3) in
  ignore (A.add_po net x1);
  ignore (A.add_po net x2);
  check "duplicate exists" true (L.node x1 <> L.node x2);
  (* Merge the later implementation onto the earlier. *)
  let map = Array.make (A.num_nodes net) (-1) in
  let earlier, later =
    if L.node x1 < L.node x2 then (x1, x2) else (x2, x1)
  in
  map.(L.node later) <- L.xor_compl earlier (L.is_compl later);
  let merged, tr = A.rebuild ~map net in
  check "function preserved" true (equal_networks net merged);
  check "got smaller" true (A.num_ands merged < A.num_ands net);
  check "translation defined for po nodes" true
    (tr.(L.node x1) >= 0);
  (* Backward-pointing requirement is enforced. *)
  let bad = Array.make (A.num_nodes net) (-1) in
  bad.(L.node earlier) <- later;
  (try
     ignore (A.rebuild ~map:bad net);
     Alcotest.fail "forward replacement accepted"
   with Invalid_argument _ -> ())

let test_aiger_roundtrip () =
  let rng = Rng.create 23L in
  for _ = 1 to 20 do
    let net = random_network rng ~pis:4 ~gates:20 ~pos:3 in
    let text = Aig.Aiger.write net in
    let back = Aig.Aiger.read text in
    check "aiger roundtrip" true (equal_networks net back)
  done

let test_aiger_fixed () =
  (* Hand-written file: an AND of two inputs, one inverted output. *)
  let text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n" in
  let net = Aig.Aiger.read text in
  check_int "pis" 2 (A.num_pis net);
  check_int "ands" 1 (A.num_ands net);
  let out = eval net [| true; true |] in
  check "!(1&1)" false out.(0);
  let out = eval net [| true; false |] in
  check "!(1&0)" true out.(0)

let test_aiger_sequential () =
  (* One latch: q' = q & i; output q. The combinational view gets the
     latch output as a second PI and its next-state as a second PO. *)
  let text = "aag 3 1 1 1 1\n2\n4 6\n4\n6 2 4\n" in
  let net, latches = Aig.Aiger.read_sequential text in
  check_int "latches" 1 latches;
  check_int "pis: real + latch" 2 (A.num_pis net);
  check_int "pos: real + next" 2 (A.num_pos net);
  (* PO 0 = q (the latch PI, index 1); PO 1 = i & q. *)
  let out = eval net [| true; true |] in
  check "q out" true out.(0);
  check "next" true out.(1);
  let out = eval net [| false; true |] in
  check "next gated" false out.(1);
  (* The strict reader still refuses latches. *)
  (try
     ignore (Aig.Aiger.read text);
     Alcotest.fail "strict reader accepted latches"
   with Aig.Aiger.Parse_error _ -> ())

let test_aiger_errors () =
  List.iter
    (fun text ->
      try
        ignore (Aig.Aiger.read text);
        Alcotest.failf "should not parse: %s" text
      with Aig.Aiger.Parse_error _ -> ())
    [
      "";
      "aag 1 1 0 0\n2\n";
      "aag 1 1 1 0 0\n2\n1 1 1\n";
      "nonsense\n";
      "aag 2 1 0 1 1\n2\n4\n4 6 2\n" (* forward ref *);
    ]

let test_balance () =
  (* A long AND chain must become logarithmic. *)
  let net = A.create () in
  let pis = Array.init 16 (fun _ -> A.add_pi net) in
  let acc = ref pis.(0) in
  for i = 1 to 15 do
    acc := A.add_and net !acc pis.(i)
  done;
  ignore (A.add_po net !acc);
  check_int "chain depth" 15 (A.depth net);
  let balanced, map = Aig.Balance.balance net in
  check "function preserved" true (equal_networks net balanced);
  check_int "balanced depth" 4 (A.depth balanced);
  check "po mapped" true (map.(L.node !acc) >= 0);
  (* Random networks: function and depth never get worse. *)
  let rng = Rng.create 17L in
  for _ = 1 to 15 do
    let net = random_network rng ~pis:6 ~gates:50 ~pos:4 in
    let balanced, _ = Aig.Balance.balance net in
    check "random balance equal" true (equal_networks net balanced);
    check "depth not worse" true (A.depth balanced <= A.depth net)
  done

let () =
  Alcotest.run "aig"
    [
      ( "network",
        [
          Alcotest.test_case "literals" `Quick test_lit;
          Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "levels and fanout" `Quick test_levels_fanout;
          Alcotest.test_case "gate semantics" `Quick test_gates_semantics;
          Alcotest.test_case "cones" `Quick test_cone;
        ] );
      ( "rebuild",
        [
          Alcotest.test_case "cleanup preserves function" `Quick
            test_cleanup_preserves_function;
          Alcotest.test_case "replacement merge" `Quick
            test_rebuild_with_replacement;
        ] );
      ("balance", [ Alcotest.test_case "balance" `Quick test_balance ]);
      ( "aiger",
        [
          Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "fixed file" `Quick test_aiger_fixed;
          Alcotest.test_case "sequential" `Quick test_aiger_sequential;
          Alcotest.test_case "errors" `Quick test_aiger_errors;
        ] );
    ]
