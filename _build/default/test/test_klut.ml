(* k-LUT network, cut enumeration and mapping tests. The reference
   semantics is exhaustive AIG evaluation; mapping at every k must
   preserve it. *)

module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table
module Rng = Sutil.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_network rng ~pis ~gates ~pos =
  let net = A.create () in
  let inputs = Array.init pis (fun _ -> A.add_pi net) in
  let all = ref (Array.to_list inputs) in
  for _ = 1 to gates do
    let pick () =
      let l = List.nth !all (Rng.int rng (List.length !all)) in
      L.xor_compl l (Rng.bool rng)
    in
    let l = A.add_and net (pick ()) (pick ()) in
    if not (L.is_const l) then all := l :: !all
  done;
  for _ = 1 to pos do
    let l = List.nth !all (Rng.int rng (List.length !all)) in
    ignore (A.add_po net (L.xor_compl l (Rng.bool rng)))
  done;
  net

let test_network_basics () =
  let net = K.create () in
  let a = K.add_pi net and b = K.add_pi net in
  let nand = K.add_lut net [| a; b |] (T.of_bin "0111") in
  ignore (K.add_po net nand false);
  check_int "pis" 2 (K.num_pis net);
  check_int "luts" 1 (K.num_luts net);
  check_int "level" 1 (K.level net nand);
  check_int "max fanin" 2 (K.max_fanin net);
  check "is_lut" true (K.is_lut net nand);
  check "is_pi" true (K.is_pi net a);
  check_int "pi_index" 0 (K.pi_index net a);
  check_int "fanout a" 1 (K.fanout_count net a);
  (try
     ignore (K.add_lut net [| a |] (T.of_bin "0111"));
     Alcotest.fail "arity mismatch accepted"
   with Invalid_argument _ -> ())

let test_cut_enumeration () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let ab = A.add_and net a b in
  let abc = A.add_and net ab c in
  ignore (A.add_po net abc);
  let cuts = Klut.Cuts.enumerate net ~k:4 () in
  let cut_sets nd =
    List.map (fun c -> Array.to_list (Klut.Cuts.leaves c)) cuts.(nd)
  in
  (* Node abc has the trivial cut, {ab,c}, and {a,b,c}. *)
  let sets = cut_sets (L.node abc) in
  check "trivial" true (List.mem [ L.node abc ] sets);
  check "fanin cut" true
    (List.mem (List.sort compare [ L.node ab; L.node c ]) sets);
  check "pi cut" true
    (List.mem (List.sort compare [ L.node a; L.node b; L.node c ]) sets)

let test_cut_function () =
  let net = A.create () in
  let a = A.add_pi net and b = A.add_pi net and c = A.add_pi net in
  let ab = A.add_and net a (L.not_ b) in
  let abc = A.add_and net (L.not_ ab) c in
  ignore (A.add_po net abc);
  let cuts = Klut.Cuts.enumerate net ~k:3 () in
  let full =
    List.find
      (fun cut -> Array.length (Klut.Cuts.leaves cut) = 3)
      cuts.(L.node abc)
  in
  let f = Klut.Cuts.cut_function net (L.node abc) full in
  (* f = !(a & !b) & c over leaves (a,b,c) ascending by node id. *)
  let expect =
    T.and_
      (T.not_ (T.and_ (T.nth_var 3 0) (T.not_ (T.nth_var 3 1))))
      (T.nth_var 3 2)
  in
  check "cut function" true (T.equal f expect)

let test_map_preserves_function () =
  let rng = Rng.create 31L in
  for round = 1 to 25 do
    let net = random_network rng ~pis:6 ~gates:40 ~pos:4 in
    List.iter
      (fun k ->
        let lut = Klut.Mapper.map ~k net in
        if not (Klut.Mapper.check_equivalent_small net lut) then
          Alcotest.failf "round %d: %d-LUT mapping broke the function" round k;
        if K.max_fanin lut > k then
          Alcotest.failf "round %d: mapping exceeded k=%d" round k)
      [ 2; 3; 4; 6 ]
  done

let test_map_compresses () =
  (* A chain of 2-input gates must collapse into few 6-LUTs. *)
  let net = A.create () in
  let inputs = Array.init 12 (fun _ -> A.add_pi net) in
  let acc = ref inputs.(0) in
  for i = 1 to 11 do
    acc := A.add_and net !acc (if i mod 2 = 0 then inputs.(i) else L.not_ inputs.(i))
  done;
  ignore (A.add_po net !acc);
  let lut = Klut.Mapper.map ~k:6 net in
  check "few luts" true (K.num_luts lut <= 3);
  check "function" true (Klut.Mapper.check_equivalent_small net lut)

let test_2lut_translation () =
  let rng = Rng.create 77L in
  for round = 1 to 25 do
    let net = random_network rng ~pis:5 ~gates:25 ~pos:3 in
    let lut = Klut.Mapper.of_aig_2lut net in
    check_int "one LUT per AND" (A.num_ands net) (K.num_luts lut);
    if not (Klut.Mapper.check_equivalent_small net lut) then
      Alcotest.failf "round %d: 2-LUT translation broke the function" round
  done

let test_area_recovery () =
  let rng = Rng.create 59L in
  for _ = 1 to 10 do
    let net = random_network rng ~pis:6 ~gates:60 ~pos:4 in
    let dep = Klut.Mapper.map ~k:4 ~area_recovery:false net in
    let area = Klut.Mapper.map ~k:4 ~area_recovery:true net in
    check "function preserved" true (Klut.Mapper.check_equivalent_small net area);
    check "never more luts" true (K.num_luts area <= K.num_luts dep);
    check "depth not worse" true (K.depth area <= K.depth dep)
  done

let test_blif_roundtrip () =
  let rng = Rng.create 91L in
  for _ = 1 to 10 do
    let aig = random_network rng ~pis:5 ~gates:30 ~pos:3 in
    let lut = Klut.Mapper.map ~k:4 aig in
    let text = Klut.Blif.write lut in
    let back = Klut.Blif.read text in
    (* Functional comparison through exhaustive evaluation. *)
    if K.num_pis back <> K.num_pis lut || K.num_pos back <> K.num_pos lut then
      Alcotest.fail "blif interface mismatch";
    if not (Klut.Mapper.check_equivalent_small aig back) then
      Alcotest.fail "blif roundtrip changed the function"
  done

let test_blif_fixed () =
  let text =
    ".model test\n.inputs a b\n.outputs y\n# a comment\n.names a b y\n11 1\n.end\n"
  in
  let net = Klut.Blif.read text in
  check_int "pis" 2 (K.num_pis net);
  check_int "pos" 1 (K.num_pos net);
  (* y = a & b *)
  let n, compl = K.po net 0 in
  check "not compl" false compl;
  check "and function" true
    (T.equal (K.func net n) (T.and_ (T.nth_var 2 0) (T.nth_var 2 1)));
  (* Off-set cover form. *)
  let text2 =
    ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
  in
  let net2 = Klut.Blif.read text2 in
  let n2, _ = K.po net2 0 in
  check "offset cover" true
    (T.equal (K.func net2 n2) (T.nand (T.nth_var 2 0) (T.nth_var 2 1)))

let test_blif_errors () =
  List.iter
    (fun text ->
      try
        ignore (Klut.Blif.read text);
        Alcotest.failf "should not parse: %s" text
      with Klut.Blif.Parse_error _ -> ())
    [
      ".model t\n.inputs a\n.outputs y\n.names b y\n1 1\n.end\n";
      ".model t\n.inputs a\n.outputs y\n.latch a y\n.end\n";
      ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
      ".model t\n.inputs a\n.outputs y\n.end\n";
    ]

let () =
  Alcotest.run "klut"
    [
      ( "network",
        [ Alcotest.test_case "basics" `Quick test_network_basics ] );
      ( "cuts",
        [
          Alcotest.test_case "enumeration" `Quick test_cut_enumeration;
          Alcotest.test_case "cut function" `Quick test_cut_function;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "preserves function" `Quick
            test_map_preserves_function;
          Alcotest.test_case "compresses chains" `Quick test_map_compresses;
          Alcotest.test_case "2-LUT translation" `Quick test_2lut_translation;
          Alcotest.test_case "area recovery" `Quick test_area_recovery;
        ] );
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "fixed" `Quick test_blif_fixed;
          Alcotest.test_case "errors" `Quick test_blif_errors;
        ] );
    ]
