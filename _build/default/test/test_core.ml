(* Umbrella-module and Report tests: the public API surface users hit
   first, plus the helpers the harnesses rely on. *)

open Stp_sweep

let check = Alcotest.(check bool)

let small_net () =
  let net = Aig.Network.create () in
  let a = Aig.Network.add_pi net in
  let b = Aig.Network.add_pi net in
  ignore (Aig.Network.add_po net (Aig.Network.add_xor net a b));
  net

let test_facade_sim () =
  let net = small_net () in
  let lut = Klut.Mapper.map ~k:4 net in
  let pats = Sim.Patterns.random ~seed:1L ~num_pis:2 ~num_patterns:64 in
  let a = simulate_klut ~engine:`Stp lut pats in
  let b = simulate_klut ~engine:`Bitwise lut pats in
  check "engines agree" true (a = b);
  let c = simulate_aig ~engine:`Stp net pats in
  let d = simulate_aig ~engine:`Bitwise net pats in
  check "aig engines agree" true (c = d)

let test_facade_sweep () =
  let net =
    Gen.Redundant.inject ~seed:1L ~fraction:0.5
      (Gen.Arith.ripple_adder ~width:8)
  in
  List.iter
    (fun engine ->
      let swept, _stats = sweep ~engine net in
      check "equivalent" true (Sweep.Cec.check net swept = Sweep.Cec.Equivalent))
    [ `Stp; `Fraig ]

let test_report_geomean () =
  let g = Report.geomean [ 2.; 8. ] in
  check "geomean 2,8 = 4" true (abs_float (g -. 4.) < 1e-9);
  check "empty" true (Report.geomean [] = 0.);
  check "zero clamped" true (Report.geomean [ 0.; 4. ] > 0.)

let test_report_table () =
  let s = Report.render_table ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ] ] in
  check "aligned" true
    (s = "a    bb\n---  --\nxxx  y \n")

let test_version () = check "version" true (String.length version > 0)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "simulate" `Quick test_facade_sim;
          Alcotest.test_case "sweep" `Quick test_facade_sweep;
        ] );
      ( "report",
        [
          Alcotest.test_case "geomean" `Quick test_report_geomean;
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "version" `Quick test_version;
        ] );
    ]
