test/test_gen.ml: Aig Alcotest Array Float Gen List Printf Sutil Sweep
