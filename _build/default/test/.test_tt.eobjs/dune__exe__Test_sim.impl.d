test/test_sim.ml: Aig Alcotest Array Fun Klut List Printf Sim Sutil Tt
