test/test_synth.ml: Aig Alcotest Array Gen Int64 List QCheck QCheck_alcotest Sutil Sweep Synth Tt
