test/test_klut.ml: Aig Alcotest Array Klut List Sutil Tt
