test/test_core.ml: Aig Alcotest Gen Klut List Report Sim Stp_sweep String Sweep
