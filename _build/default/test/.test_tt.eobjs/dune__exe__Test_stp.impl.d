test/test_stp.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Stp String Tt
