test/test_sat.ml: Aig Alcotest Array Format List Sat Sutil
