test/test_stp.mli:
