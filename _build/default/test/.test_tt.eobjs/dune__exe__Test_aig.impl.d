test/test_aig.ml: Aig Alcotest Array List Sutil
