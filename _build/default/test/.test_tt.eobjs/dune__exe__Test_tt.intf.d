test/test_tt.mli:
