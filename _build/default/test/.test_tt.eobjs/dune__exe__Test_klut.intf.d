test/test_klut.mli:
