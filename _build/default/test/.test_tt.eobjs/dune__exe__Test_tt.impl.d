test/test_tt.ml: Alcotest Array Int64 QCheck QCheck_alcotest Tt
