test/test_sweep.ml: Aig Alcotest Array Gen List Sim Sutil Sweep
