(* Unit and property tests for the bit-packed truth tables. *)

module T = Tt.Truth_table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tt = Alcotest.testable T.pp T.equal

(* A qcheck generator for truth tables of up to [max_vars] variables. *)
let arb_tt ?(min_vars = 0) ?(max_vars = 9) () =
  let gen =
    QCheck.Gen.(
      int_range min_vars max_vars >>= fun n ->
      map (fun seed -> T.random ~seed:(Int64.of_int seed) n) int)
  in
  QCheck.make ~print:(fun t -> T.to_bin t) gen

let arb_pair =
  (* Two random tables over the same variable count. *)
  let gen =
    QCheck.Gen.(
      int_range 0 9 >>= fun n ->
      pair int int >>= fun (s1, s2) ->
      return (T.random ~seed:(Int64.of_int s1) n, T.random ~seed:(Int64.of_int s2) n))
  in
  QCheck.make ~print:(fun (a, b) -> T.to_bin a ^ " / " ^ T.to_bin b) gen

let qtest name ?(count = 200) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- unit tests ---- *)

let test_consts () =
  check "const0 is const0" true (T.is_const0 (T.const0 4));
  check "const1 is const1" true (T.is_const1 (T.const1 4));
  check "const0 7 vars" true (T.is_const0 (T.const0 7));
  check "const1 7 vars" true (T.is_const1 (T.const1 7));
  check_int "count_ones const1 6" 64 (T.count_ones (T.const1 6));
  check_int "count_ones const0 6" 0 (T.count_ones (T.const0 6));
  check_int "count_ones const1 0" 1 (T.count_ones (T.const1 0))

let test_nth_var () =
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      let v = T.nth_var n i in
      for bit = 0 to (1 lsl n) - 1 do
        let expect = (bit lsr i) land 1 = 1 in
        if T.get v bit <> expect then
          Alcotest.failf "nth_var %d %d wrong at bit %d" n i bit
      done
    done
  done

let test_of_bin_paper () =
  (* The paper's node 6: TT "0111" = 2-input NAND, inputs in order. *)
  let nand = T.of_bin "0111" in
  check "nand(1,1)=0" false (T.eval nand [| true; true |]);
  check "nand(1,0)=1" true (T.eval nand [| false; true |]);
  (* eval array index 0 = variable 0 = least significant = second input. *)
  check "nand(0,0)=1" true (T.eval nand [| false; false |]);
  check_str "roundtrip" "0111" (T.to_bin nand)

let test_hex () =
  let maj = T.of_hex 3 "e8" in
  check "maj(1,1,0)" true (T.eval maj [| false; true; true |]);
  check "maj(1,0,0)" false (T.eval maj [| false; false; true |]);
  check_str "to_hex" "e8" (T.to_hex maj);
  let nand = T.of_hex 2 "7" in
  check_str "nand hex/bin" "0111" (T.to_bin nand);
  let x = T.random ~seed:99L 7 in
  check "hex roundtrip 7 vars" true (T.equal x (T.of_hex 7 (T.to_hex x)))

let test_ops_small () =
  let a = T.nth_var 2 1 and b = T.nth_var 2 0 in
  check_str "and" "1000" (T.to_bin (T.and_ a b));
  check_str "or" "1110" (T.to_bin (T.or_ a b));
  check_str "xor" "0110" (T.to_bin (T.xor a b));
  check_str "nand" "0111" (T.to_bin (T.nand a b));
  check_str "not a" "0011" (T.to_bin (T.not_ a));
  check_str "implies" "1011" (T.to_bin (T.implies a b))

let test_cofactor () =
  let a = T.nth_var 3 2 and b = T.nth_var 3 1 and c = T.nth_var 3 0 in
  let f = T.or_ (T.and_ a b) c in
  let f_a1 = T.cofactor f 2 true in
  let expect = T.or_ b c in
  check "cofactor a=1" true (T.equal f_a1 expect);
  let f_a0 = T.cofactor f 2 false in
  check "cofactor a=0" true (T.equal f_a0 c);
  (* Cofactor on a variable beyond word granularity. *)
  let g = T.and_ (T.nth_var 7 6) (T.nth_var 7 0) in
  check "hi cofactor 1" true (T.equal (T.cofactor g 6 true) (T.extend (T.nth_var 7 0) 7));
  check "hi cofactor 0" true (T.is_const0 (T.cofactor g 6 false))

let test_support () =
  let f = T.and_ (T.nth_var 5 3) (T.nth_var 5 1) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (T.support f);
  check "depends 3" true (T.depends_on f 3);
  check "depends 0" false (T.depends_on f 0)

let test_permute () =
  let f = T.and_ (T.nth_var 3 2) (T.or_ (T.nth_var 3 1) (T.nth_var 3 0)) in
  let p = [| 2; 0; 1 |] in
  (* Variable i of result behaves as p.(i) of f. *)
  let g = T.permute f p in
  for i = 0 to 7 do
    let x = [| i land 1 = 1; (i lsr 1) land 1 = 1; (i lsr 2) land 1 = 1 |] in
    let y = Array.make 3 false in
    Array.iteri (fun j pj -> y.(pj) <- x.(j)) p;
    if T.eval g x <> T.eval f y then Alcotest.failf "permute wrong at %d" i
  done

let test_compose () =
  (* f = x0 AND x1 composed with g0 = a OR b, g1 = NOT a over 2 vars. *)
  let f = T.and_ (T.nth_var 2 1) (T.nth_var 2 0) in
  let a = T.nth_var 2 0 and b = T.nth_var 2 1 in
  let g0 = T.or_ a b and g1 = T.not_ a in
  let h = T.compose f [| g0; g1 |] in
  (* h = (a|b) & !a = b & !a *)
  check "compose" true (T.equal h (T.and_ b (T.not_ a)))

let test_extend () =
  let f = T.xor (T.nth_var 2 1) (T.nth_var 2 0) in
  let g = T.extend f 7 in
  check "extend preserves" true
    (T.equal g (T.xor (T.nth_var 7 1) (T.nth_var 7 0)));
  check "extend equal arity" true (T.equal f (T.extend f 2))

let test_insert_var () =
  (* insert at every position of a known function, all widths *)
  for n = 0 to 7 do
    let t = T.random ~seed:(Int64.of_int (100 + n)) n in
    for p = 0 to n do
      let u = T.insert_var t p in
      if T.num_vars u <> n + 1 then Alcotest.failf "arity %d/%d" n p;
      for i = 0 to (1 lsl (n + 1)) - 1 do
        let x = Array.init (n + 1) (fun v -> (i lsr v) land 1 = 1) in
        let y = Array.init n (fun v -> if v < p then x.(v) else x.(v + 1)) in
        if T.eval u x <> T.eval t y then
          Alcotest.failf "insert_var wrong: n=%d p=%d i=%d" n p i
      done
    done
  done

let test_remap () =
  let t = T.of_bin "0111" (* nand over vars 0,1 *) in
  let u = T.remap t ~positions:[| 1; 3 |] ~arity:4 in
  for i = 0 to 15 do
    let x = Array.init 4 (fun v -> (i lsr v) land 1 = 1) in
    let expect = not (x.(1) && x.(3)) in
    if T.eval u x <> expect then Alcotest.failf "remap wrong at %d" i
  done;
  (* Identity remap. *)
  let t8 = T.random ~seed:7L 6 in
  check "identity remap" true
    (T.equal t8 (T.remap t8 ~positions:(Array.init 6 (fun i -> i)) ~arity:6));
  (try
     ignore (T.remap t ~positions:[| 3; 1 |] ~arity:4);
     Alcotest.fail "non-increasing accepted"
   with Invalid_argument _ -> ())

let test_words () =
  let f = T.random ~seed:5L 8 in
  let w = T.to_words f in
  check_int "word count 8 vars" 8 (Array.length w);
  check "of_words roundtrip" true (T.equal f (T.of_words 8 w));
  check_int "get_word agree" w.(3) (T.get_word f 3)

let test_errors () =
  Alcotest.check_raises "of_bin bad length" (Invalid_argument
    "Truth_table.of_bin: length must be a power of two") (fun () ->
      ignore (T.of_bin "011"));
  (try ignore (T.nth_var 3 3); Alcotest.fail "nth_var range" with Invalid_argument _ -> ());
  (try ignore (T.and_ (T.const0 2) (T.const0 3)); Alcotest.fail "arity" with Invalid_argument _ -> ());
  (try ignore (T.const0 30); Alcotest.fail "too many vars" with Invalid_argument _ -> ())

(* ---- property tests ---- *)

let props =
  [
    qtest "not involutive" (arb_tt ()) (fun t -> T.equal (T.not_ (T.not_ t)) t);
    qtest "de morgan" arb_pair (fun (a, b) ->
        T.equal (T.not_ (T.and_ a b)) (T.or_ (T.not_ a) (T.not_ b)));
    qtest "xor self is zero" (arb_tt ()) (fun t -> T.is_const0 (T.xor t t));
    qtest "or absorb" arb_pair (fun (a, b) ->
        T.equal (T.or_ a (T.and_ a b)) a);
    qtest "mux decomposes" arb_pair (fun (a, b) ->
        let n = T.num_vars a in
        if n = 0 then true
        else
          let s = T.nth_var n (n - 1) in
          T.equal (T.mux s a b)
            (T.or_ (T.and_ s a) (T.and_ (T.not_ s) b)));
    qtest "count_ones via get" (arb_tt ~max_vars:7 ()) (fun t ->
        let c = ref 0 in
        for i = 0 to T.num_bits t - 1 do
          if T.get t i then incr c
        done;
        !c = T.count_ones t);
    qtest "bin roundtrip" (arb_tt ()) (fun t -> T.equal t (T.of_bin (T.to_bin t)));
    qtest "hex roundtrip" (arb_tt ()) (fun t ->
        T.equal t (T.of_hex (T.num_vars t) (T.to_hex t)));
    qtest "shannon rebuild" (arb_tt ~min_vars:1 ()) (fun t ->
        let n = T.num_vars t in
        let i = n - 1 in
        let hi, lo = T.shannon_expand t i in
        let v = T.nth_var n i in
        T.equal t (T.or_ (T.and_ v hi) (T.and_ (T.not_ v) lo)));
    qtest "cofactor removes dependence" (arb_tt ~min_vars:1 ()) (fun t ->
        not (T.depends_on (T.cofactor t 0 true) 0));
    qtest "set/get" (arb_tt ~min_vars:1 ~max_vars:8 ()) (fun t ->
        let i = T.num_bits t / 2 in
        let t1 = T.set t i true and t0 = T.set t i false in
        T.get t1 i && not (T.get t0 i));
    qtest "eval agrees with get" (arb_tt ~min_vars:1 ~max_vars:6 ()) (fun t ->
        let n = T.num_vars t in
        let ok = ref true in
        for i = 0 to T.num_bits t - 1 do
          let x = Array.init n (fun v -> (i lsr v) land 1 = 1) in
          if T.eval t x <> T.get t i then ok := false
        done;
        !ok);
    qtest "of_fun tabulates" (arb_tt ~max_vars:6 ()) (fun t ->
        let n = T.num_vars t in
        T.equal t (T.of_fun n (fun x -> T.eval t x)));
    qtest "compose associativity with projections" (arb_tt ~min_vars:1 ~max_vars:5 ())
      (fun f ->
        let n = T.num_vars f in
        let projections = Array.init n (fun i -> T.nth_var n i) in
        T.equal f (T.compose f projections));
    qtest "permute identity" (arb_tt ~min_vars:1 ()) (fun t ->
        let n = T.num_vars t in
        T.equal t (T.permute t (Array.init n (fun i -> i))));
    qtest "insert then cofactor is identity" (arb_tt ~max_vars:8 ()) (fun t ->
        let n = T.num_vars t in
        let ok = ref true in
        for p = 0 to n do
          let u = T.insert_var t p in
          (* The inserted variable is a don't-care... *)
          if T.depends_on u p then ok := false;
          (* ...and cofactoring it away recovers t at either polarity. *)
          let back b =
            T.of_fun n (fun x ->
                let y = Array.init (n + 1) (fun v ->
                    if v < p then x.(v) else if v = p then b else x.(v - 1))
                in
                T.eval u y)
          in
          if not (T.equal (back true) t && T.equal (back false) t) then
            ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "truth_table"
    [
      ( "unit",
        [
          Alcotest.test_case "consts" `Quick test_consts;
          Alcotest.test_case "nth_var" `Quick test_nth_var;
          Alcotest.test_case "of_bin paper" `Quick test_of_bin_paper;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "ops small" `Quick test_ops_small;
          Alcotest.test_case "cofactor" `Quick test_cofactor;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "insert_var" `Quick test_insert_var;
          Alcotest.test_case "remap" `Quick test_remap;
          Alcotest.test_case "words" `Quick test_words;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("properties", props);
    ]

(* silence unused warning for the testable we keep for debugging *)
let _ = tt
