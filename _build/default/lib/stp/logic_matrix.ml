module T = Tt.Truth_table

type t = T.t
(* The truth table IS the logic matrix: bit i of the table (value at
   assignment i, variable 0 least significant) is the top-row entry of
   column (2^n - 1 - i). *)

type bvec = True | False

let bvec_of_bool b = if b then True else False
let bool_of_bvec = function True -> true | False -> false

let arity = T.num_vars
let of_tt t = t
let to_tt t = t
let of_bin = T.of_bin
let equal = T.equal
let pp = T.pp

let to_matrix t =
  let n = T.num_vars t in
  let bits = 1 lsl n in
  Matrix.make 2 bits (fun i j ->
      let v = T.get t (bits - 1 - j) in
      match (i, v) with
      | 0, true | 1, false -> 1
      | 0, false | 1, true -> 0
      | _ -> assert false)

let of_matrix m =
  if not (Matrix.is_logic_matrix m) then
    invalid_arg "Logic_matrix.of_matrix: not a logic matrix";
  let c = Matrix.cols m in
  let n =
    let rec log2 k acc =
      if k = 1 then acc
      else if k land 1 = 1 then
        invalid_arg "Logic_matrix.of_matrix: columns not a power of two"
      else log2 (k lsr 1) (acc + 1)
    in
    log2 c 0
  in
  T.of_fun n (fun x ->
      let idx = ref 0 in
      Array.iteri (fun v b -> if b then idx := !idx lor (1 lsl v)) x;
      Matrix.get m 0 (c - 1 - !idx) = 1)

(* Structural matrices, paper convention (truth table read right to left).
   Variable order inside the table: for a binary connective a σ b, [a] is
   the leading STP factor, hence the most significant table variable. *)
let m_not = T.of_bin "01"
let m_and = T.of_bin "1000"
let m_or = T.of_bin "1110"
let m_xor = T.of_bin "0110"
let m_nand = T.of_bin "0111"
let m_nor = T.of_bin "0001"
let m_xnor = T.of_bin "1001"
let m_implies = T.of_bin "1011"
let m_iff = m_xnor

let constant b = if b then T.const1 0 else T.const0 0

let stp_bvec m x =
  let n = T.num_vars m in
  if n = 0 then invalid_arg "Logic_matrix.stp_bvec: arity 0";
  (* Leading variable = most significant table variable (n-1). Fixing it
     to the value of x keeps the corresponding half of the columns. *)
  let b = bool_of_bvec x in
  let fixed = T.cofactor m (n - 1) b in
  (* Drop the now-vacuous top variable: the low half of the table. *)
  T.of_fun (n - 1) (fun xs ->
      let idx = ref 0 in
      Array.iteri (fun v bit -> if bit then idx := !idx lor (1 lsl v)) xs;
      T.get fixed !idx)

let apply m xs =
  if List.length xs <> arity m then invalid_arg "Logic_matrix.apply";
  let idx = ref 0 in
  (* First list element is the leading factor = most significant bit. *)
  List.iter
    (fun x -> idx := (!idx lsl 1) lor (if bool_of_bvec x then 1 else 0))
    xs;
  bvec_of_bool (T.get m !idx)

let compose f gs =
  (* STP order lists the leading factor first; Tt.compose indexes its
     array by variable number (least significant first), so reverse. *)
  T.compose f (Array.of_list (List.rev gs))

(* STP factor i (0 = leading) is table variable (n - 1 - i). Dropping it
   re-indexes the lower variables down by re-tabulating. *)
let cofactor m i b =
  let n = T.num_vars m in
  if i < 0 || i >= n then invalid_arg "Logic_matrix.cofactor";
  let v = n - 1 - i in
  let fixed = T.cofactor m v b in
  T.of_fun (n - 1) (fun x ->
      let idx = ref 0 in
      Array.iteri
        (fun j bit ->
          let src = if j < v then j else j + 1 in
          if bit then idx := !idx lor (1 lsl src))
        x;
      T.get fixed !idx)

let derivative m i = T.xor (cofactor m i true) (cofactor m i false)

let depends_on m i = not (T.is_const0 (derivative m i))
