module T = Tt.Truth_table

let occurrence_order e = Expr.vars e

let resolve_order ?order e =
  let occurring = occurrence_order e in
  match order with
  | None -> occurring
  | Some order ->
    List.iter
      (fun v ->
        if not (List.mem v order) then
          invalid_arg ("Canonical: variable " ^ v ^ " missing from order"))
      occurring;
    order

(* Semantic construction: tabulate the expression directly. Variable
   [order] lists the leading factor first, which is the most significant
   truth-table variable; table variable index of order element i is
   (n - 1 - i). *)
let of_expr ?order e =
  let order = resolve_order ?order e in
  let n = List.length order in
  let position = Hashtbl.create 7 in
  List.iteri (fun i v -> Hashtbl.replace position v (n - 1 - i)) order;
  let table =
    T.of_fun n (fun x ->
        Expr.eval (fun v -> x.(Hashtbl.find position v)) e)
  in
  (Logic_matrix.of_tt table, order)

(* ---- Algebraic construction ---- *)

type item = Mat of Matrix.t | V of string

let structural op =
  Logic_matrix.to_matrix
    (match op with
     | `Not -> Logic_matrix.m_not
     | `And -> Logic_matrix.m_and
     | `Or -> Logic_matrix.m_or
     | `Xor -> Logic_matrix.m_xor
     | `Nand -> Logic_matrix.m_nand
     | `Nor -> Logic_matrix.m_nor
     | `Implies -> Logic_matrix.m_implies
     | `Iff -> Logic_matrix.m_iff)

let const_vec b =
  Matrix.of_lists (if b then [ [ 1 ]; [ 0 ] ] else [ [ 0 ]; [ 1 ] ])

(* Prefix word of the expression: Phi = item1 ⋉ item2 ⋉ ... *)
let rec word = function
  | Expr.Const b -> [ Mat (const_vec b) ]
  | Expr.Var v -> [ V v ]
  | Expr.Not a -> Mat (structural `Not) :: word a
  | Expr.And (a, b) -> binword `And a b
  | Expr.Or (a, b) -> binword `Or a b
  | Expr.Xor (a, b) -> binword `Xor a b
  | Expr.Nand (a, b) -> binword `Nand a b
  | Expr.Nor (a, b) -> binword `Nor a b
  | Expr.Implies (a, b) -> binword `Implies a b
  | Expr.Iff (a, b) -> binword `Iff a b

and binword op a b = Mat (structural op) :: (word a @ word b)

let w22 = Matrix.swap 2 2

(* Multiply the accumulated front matrix by (I_{2^k} ⊗ A): the identity
   spans the k variables already emitted (Property 1 applied k times). *)
let push_through front k a =
  let factor =
    if k = 0 then a else Matrix.kron (Matrix.identity (1 lsl k)) a
  in
  Matrix.stp front factor

let of_expr_algebraic ?order e =
  let order = resolve_order ?order e in
  (* Phase 1: move every matrix to the front. *)
  let front = ref (Matrix.identity 2) in
  let pending = ref [] (* reversed: head = last variable emitted *) in
  List.iter
    (function
      | Mat a -> front := push_through !front (List.length !pending) a
      | V v -> pending := v :: !pending)
    (word e);
  let vars = ref (Array.of_list (List.rev !pending)) in
  (* Phase 2: append dummy factors for order variables that do not occur:
     M ⊗ [1 1] adds a trailing don't-care factor. *)
  let occurs v = Array.exists (String.equal v) !vars in
  List.iter
    (fun v ->
      if not (occurs v) then begin
        front := Matrix.kron !front (Matrix.of_lists [ [ 1; 1 ] ]);
        vars := Array.append !vars [| v |]
      end)
    order;
  (* Phase 3: bubble-sort variables into [order] using swap matrices; a
     swap of positions (i, i+1) multiplies by I_{2^i} ⊗ W_{[2,2]}. Equal
     keys (duplicate occurrences of one variable) stay adjacent. *)
  let key v =
    let rec find i = function
      | [] -> invalid_arg ("Canonical: unknown variable " ^ v)
      | x :: rest -> if String.equal x v then i else find (i + 1) rest
    in
    find 0 order
  in
  let a = !vars in
  let len = Array.length a in
  for pass = 0 to len - 2 do
    ignore pass;
    for i = 0 to len - 2 do
      if key a.(i) > key a.(i + 1) then begin
        front := Matrix.stp !front (Matrix.kron (Matrix.identity (1 lsl i)) w22);
        let tmp = a.(i) in
        a.(i) <- a.(i + 1);
        a.(i + 1) <- tmp
      end
    done
  done;
  (* Phase 4: merge adjacent duplicates with the power-reducing matrix:
     x ⋉ x = M_r ⋉ x, so positions (i, i+1) holding the same variable
     contract via I_{2^i} ⊗ M_r. *)
  let items = ref (Array.to_list a) in
  let changed = ref true in
  while !changed do
    changed := false;
    let rec merge i = function
      | x :: y :: rest when String.equal x y ->
        front :=
          Matrix.stp !front
            (Matrix.kron (Matrix.identity (1 lsl i)) Matrix.power_reducing);
        changed := true;
        x :: merge (i + 1) rest
      | x :: rest -> x :: merge (i + 1) rest
      | [] -> []
    in
    items := merge 0 !items
  done;
  assert (!items = order);
  assert (Matrix.rows !front = 2);
  assert (Matrix.cols !front = 1 lsl List.length order);
  (!front, order)

let simulate m pattern =
  let rec go m = function
    | [] ->
      assert (Logic_matrix.arity m = 0);
      Logic_matrix.bool_of_bvec
        (Logic_matrix.apply m [])
    | b :: rest -> go (Logic_matrix.stp_bvec m (Logic_matrix.bvec_of_bool b)) rest
  in
  go m pattern
