(** Dense integer matrices and the semi-tensor product (STP).

    This is the honest Definition-1 implementation of the paper's algebra:
    [stp x y = (x (x) I_{t/n}) * (y (x) I_{t/p})] with [t = lcm n p], where
    [(x)] is the Kronecker product. Entries are OCaml [int]s; for logical
    reasoning only 0/1 matrices appear, but nothing here assumes that.

    Dimensions stay modest in this code base (at most [2 x 2^n] canonical
    forms with small [n] plus the square matrices needed to normalize
    them), so a simple dense row-major representation is the right tool;
    the performance-critical logic-matrix path lives in {!Logic_matrix}. *)

type t

val rows : t -> int
val cols : t -> int

val make : int -> int -> (int -> int -> int) -> t
(** [make r c f] builds the [r x c] matrix with entry [f i j] at row [i],
    column [j] (0-based). *)

val of_lists : int list list -> t
(** Rows given as lists; all rows must have equal nonzero length. *)

val to_lists : t -> int list list

val get : t -> int -> int -> int

val identity : int -> t

val zero : int -> int -> t

val equal : t -> t -> bool

val transpose : t -> t

val mul : t -> t -> t
(** Ordinary matrix product. Raises [Invalid_argument] on dimension
    mismatch. *)

val kron : t -> t -> t
(** Kronecker product. *)

val stp : t -> t -> t
(** Semi-tensor product per Definition 1. Generalizes [mul]: when inner
    dimensions agree it coincides with the ordinary product. *)

val swap : int -> int -> t
(** [swap m n] is the swap matrix [W_{[m,n]}], the [mn x mn] permutation
    with [W_{[m,n]} (x (x) y) = y (x) x] for [x] of dimension [m] and [y]
    of dimension [n]. *)

val power_reducing : t
(** The power-reducing matrix [M_r] with [M_r x = x (x) x] for [x] in the
    Boolean pair domain, i.e. the [4 x 2] matrix [[1;0],[0;0],[0;0],[0;1]]
    — read column-wise it duplicates a Boolean vector. *)

val is_logic_matrix : t -> bool
(** Whether every column is a Boolean pair [ [1;0] or [0;1] ] stacked, i.e.
    the matrix has 2 rows, entries in {0,1}, and each column sums to 1. *)

val pp : Format.formatter -> t -> unit
