(** Logical reasoning on top of canonical forms.

    This is the "logic identities can be easily proved using structure
    matrices" part of the paper (Example 1) plus the satisfying-assignment
    extraction used by the liar puzzle of Example 2. *)

val is_tautology : Expr.t -> bool
val is_satisfiable : Expr.t -> bool

val equivalent : Expr.t -> Expr.t -> bool
(** [equivalent a b] proves or refutes [a <-> b] by comparing canonical
    forms over the union of both variable sets. This is the STP identity
    proof of Example 1. *)

val satisfying_assignments : Expr.t -> (string * bool) list list
(** All models, each as an assignment in the expression's first-occurrence
    variable order. Exponential in the variable count by nature; intended
    for the small formulas of the reasoning layer. *)

val implies : Expr.t -> Expr.t -> bool
(** [implies a b] — whether [a -> b] is a tautology. *)
