type t = { rows : int; cols : int; data : int array }
(* Row-major: entry (i, j) at data.(i * cols + j). *)

let rows m = m.rows
let cols m = m.cols

let make rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.make";
  let data = Array.make (rows * cols) 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let get m i j =
  assert (i >= 0 && i < m.rows && j >= 0 && j < m.cols);
  m.data.((i * m.cols) + j)

let of_lists rows_l =
  match rows_l with
  | [] -> invalid_arg "Matrix.of_lists: no rows"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 then invalid_arg "Matrix.of_lists: empty row";
    if not (List.for_all (fun r -> List.length r = cols) rows_l) then
      invalid_arg "Matrix.of_lists: ragged rows";
    let arr = Array.of_list (List.map Array.of_list rows_l) in
    make (Array.length arr) cols (fun i j -> arr.(i).(j))

let to_lists m =
  List.init m.rows (fun i -> List.init m.cols (fun j -> get m i j))

let identity n = make n n (fun i j -> if i = j then 1 else 0)
let zero rows cols = make rows cols (fun _ _ -> 0)

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.data = b.data

let transpose m = make m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = { rows = a.rows; cols = b.cols; data = Array.make (a.rows * b.cols) 0 } in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * b.cols) + j) <-
            c.data.((i * b.cols) + j) + (aik * b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let kron a b =
  make (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      get a (i / b.rows) (j / b.cols) * get b (i mod b.rows) (j mod b.cols))

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let stp x y =
  let t = lcm x.cols y.rows in
  let left = if t = x.cols then x else kron x (identity (t / x.cols)) in
  let right = if t = y.rows then y else kron y (identity (t / y.rows)) in
  mul left right

let swap m n =
  (* W_{[m,n]} maps basis vector delta_m^i (x) delta_n^j to
     delta_n^j (x) delta_m^i. Column index (i*n + j) has its single 1 at
     row (j*m + i). *)
  make (m * n) (m * n) (fun row col ->
      let i = col / n and j = col mod n in
      if row = (j * m) + i then 1 else 0)

let power_reducing = of_lists [ [ 1; 0 ]; [ 0; 0 ]; [ 0; 0 ]; [ 0; 1 ] ]

let is_logic_matrix m =
  m.rows = 2
  && Array.for_all (fun x -> x = 0 || x = 1) m.data
  && (let ok = ref true in
      for j = 0 to m.cols - 1 do
        if get m 0 j + get m 1 j <> 1 then ok := false
      done;
      !ok)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%d" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
