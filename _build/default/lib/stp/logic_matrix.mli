(** Logic matrices — the fast path of the STP algebra.

    A logic matrix (Definition 2) is an element of [M^{2 x 2^n}] whose
    columns all lie in the Boolean pair domain 𝔹 = { [1;0], [0;1] }. Its
    top row, read right to left, is a truth table, so we store exactly a
    {!Tt.Truth_table.t} and expose STP operations on it directly: the STP
    of a logic matrix with a Boolean value is a column-half selection, and
    the STP composition of structural matrices is function composition.

    Column index convention: column [j] of the matrix corresponds to truth
    table bit [2^n - 1 - j] (the paper reads truth tables right to left:
    column 0 is the all-true assignment). *)

type t

(** Boolean values as elements of 𝔹. *)
type bvec = True | False

val bvec_of_bool : bool -> bvec
val bool_of_bvec : bvec -> bool

val arity : t -> int

val of_tt : Tt.Truth_table.t -> t
val to_tt : t -> Tt.Truth_table.t

val of_bin : string -> t
(** Paper-style construction: [of_bin "0111"] is the structural matrix of
    2-input NAND. *)

val to_matrix : t -> Matrix.t
(** The dense [2 x 2^n] form, for cross-checking against {!Matrix.stp}. *)

val of_matrix : Matrix.t -> t
(** Raises [Invalid_argument] if the argument is not a logic matrix with a
    power-of-two column count. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Structural matrices of the usual connectives} *)

val m_not : t
val m_and : t
val m_or : t
val m_xor : t
val m_nand : t
val m_nor : t
val m_xnor : t
val m_implies : t
val m_iff : t

(** {1 STP operations} *)

val stp_bvec : t -> bvec -> t
(** [stp_bvec m x] is [m ⋉ x]: fixing the leading variable selects half of
    the columns, producing a logic matrix of arity [n-1]. For arity 0 the
    call is invalid. *)

val apply : t -> bvec list -> bvec
(** [apply m xs] is [m ⋉ x1 ⋉ ... ⋉ xn] fully evaluated, i.e. one matrix
    pass over a simulation pattern. [xs] must have length [arity m], first
    element = leading (leftmost) variable. *)

val compose : t -> t list -> t
(** [compose f gs] is the canonical form of [f(g1(x..), ..., gk(x..))]
    where all [gs] share one variable space — the STP product
    [M_f ⋉ M_{g1} ⋉ ...] after normalization. *)

val constant : bool -> t
(** Arity-0 logic matrix, a single column of 𝔹. *)

(** {1 Boolean calculus} *)

val cofactor : t -> int -> bool -> t
(** [cofactor m i b] fixes the [i]-th STP factor (0 = leading) to [b];
    arity drops by one. Generalizes {!stp_bvec} to any position. *)

val derivative : t -> int -> t
(** The Boolean difference [∂f/∂x_i = f|x_i=1 xor f|x_i=0] over the
    remaining factors — 1 exactly where the function is sensitive to the
    [i]-th input. A staple of the STP calculus literature and the basis
    of observability reasoning. *)

val depends_on : t -> int -> bool
(** Whether the function is sensitive to the [i]-th STP factor at all
    ([derivative] not constantly 0). *)
