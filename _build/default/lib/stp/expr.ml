type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Nand of t * t
  | Nor of t * t
  | Implies of t * t
  | Iff of t * t

let rec eval env = function
  | Const b -> b
  | Var v -> env v
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b
  | Nand (a, b) -> not (eval env a && eval env b)
  | Nor (a, b) -> not (eval env a || eval env b)
  | Implies (a, b) -> (not (eval env a)) || eval env b
  | Iff (a, b) -> eval env a = eval env b

let vars e =
  let seen = Hashtbl.create 7 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Xor (a, b) | Nand (a, b) | Nor (a, b)
    | Implies (a, b) | Iff (a, b) ->
      go a;
      go b
  in
  go e;
  List.rev !out

(* Recursive-descent parser. Precedence, loosest first:
   iff < implies < or < xor < and < not < atoms.
   Also accepts the keywords nand/nor as infix operators at the 'and'
   level, written [a nand b]. *)

type token =
  | TVar of string
  | TConst of bool
  | TNot
  | TAnd
  | TOr
  | TXor
  | TNand
  | TNor
  | TImplies
  | TIff
  | TLparen
  | TRparen
  | TEnd

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Expr.of_string: %s at %d" msg !pos) in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '\''
  in
  while !pos < n do
    let c = s.[!pos] in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr pos
     | '!' | '~' -> toks := TNot :: !toks; incr pos
     | '&' -> incr pos; if !pos < n && s.[!pos] = '&' then incr pos; toks := TAnd :: !toks
     | '|' -> incr pos; if !pos < n && s.[!pos] = '|' then incr pos; toks := TOr :: !toks
     | '^' -> toks := TXor :: !toks; incr pos
     | '(' -> toks := TLparen :: !toks; incr pos
     | ')' -> toks := TRparen :: !toks; incr pos
     | '-' ->
       if !pos + 1 < n && s.[!pos + 1] = '>' then begin
         toks := TImplies :: !toks;
         pos := !pos + 2
       end
       else fail "expected '->'"
     | '<' ->
       if !pos + 2 < n && s.[!pos + 1] = '-' && s.[!pos + 2] = '>' then begin
         toks := TIff :: !toks;
         pos := !pos + 3
       end
       else fail "expected '<->'"
     | '0' when not (!pos + 1 < n && is_ident s.[!pos + 1]) ->
       toks := TConst false :: !toks; incr pos
     | '1' when not (!pos + 1 < n && is_ident s.[!pos + 1]) ->
       toks := TConst true :: !toks; incr pos
     | c when is_ident c ->
       let start = !pos in
       while !pos < n && is_ident s.[!pos] do incr pos done;
       let word = String.sub s start (!pos - start) in
       toks :=
         (match word with
          | "nand" -> TNand
          | "nor" -> TNor
          | "not" -> TNot
          | "and" -> TAnd
          | "or" -> TOr
          | "xor" -> TXor
          | _ -> TVar word)
         :: !toks
     | _ -> fail (Printf.sprintf "unexpected character %C" c));
  done;
  List.rev (TEnd :: !toks)

let of_string s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with t :: _ -> t | [] -> TEnd in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let fail msg = invalid_arg ("Expr.of_string: " ^ msg) in
  let rec parse_iff () =
    let lhs = parse_implies () in
    if peek () = TIff then begin
      advance ();
      Iff (lhs, parse_iff ())
    end
    else lhs
  and parse_implies () =
    let lhs = parse_or () in
    if peek () = TImplies then begin
      advance ();
      Implies (lhs, parse_implies ())
    end
    else lhs
  and parse_or () =
    let lhs = ref (parse_xor ()) in
    while peek () = TOr do
      advance ();
      lhs := Or (!lhs, parse_xor ())
    done;
    !lhs
  and parse_xor () =
    let lhs = ref (parse_and ()) in
    while peek () = TXor do
      advance ();
      lhs := Xor (!lhs, parse_and ())
    done;
    !lhs
  and parse_and () =
    let lhs = ref (parse_unary ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | TAnd ->
        advance ();
        lhs := And (!lhs, parse_unary ())
      | TNand ->
        advance ();
        lhs := Nand (!lhs, parse_unary ())
      | TNor ->
        advance ();
        lhs := Nor (!lhs, parse_unary ())
      | _ -> continue := false
    done;
    !lhs
  and parse_unary () =
    match peek () with
    | TNot ->
      advance ();
      Not (parse_unary ())
    | _ -> parse_atom ()
  and parse_atom () =
    match peek () with
    | TVar v ->
      advance ();
      Var v
    | TConst b ->
      advance ();
      Const b
    | TLparen ->
      advance ();
      let e = parse_iff () in
      if peek () <> TRparen then fail "expected ')'";
      advance ();
      e
    | _ -> fail "expected an atom"
  in
  let e = parse_iff () in
  if peek () <> TEnd then fail "trailing input";
  e

(* Printing with minimal parentheses. Levels match the parser. *)
let rec level = function
  | Iff _ -> 0
  | Implies _ -> 1
  | Or _ -> 2
  | Xor _ -> 3
  | And _ | Nand _ | Nor _ -> 4
  | Not _ -> 5
  | Const _ | Var _ -> 6

and to_buf buf parent e =
  let lvl = level e in
  let wrap = lvl < parent in
  if wrap then Buffer.add_char buf '(';
  (match e with
   | Const b -> Buffer.add_char buf (if b then '1' else '0')
   | Var v -> Buffer.add_string buf v
   | Not a ->
     Buffer.add_char buf '!';
     to_buf buf 6 a
   | And (a, b) -> binop buf lvl a " & " b
   | Nand (a, b) -> binop buf lvl a " nand " b
   | Nor (a, b) -> binop buf lvl a " nor " b
   | Or (a, b) -> binop buf lvl a " | " b
   | Xor (a, b) -> binop buf lvl a " ^ " b
   | Implies (a, b) -> binop_right buf lvl a " -> " b
   | Iff (a, b) -> binop_right buf lvl a " <-> " b);
  if wrap then Buffer.add_char buf ')'

and binop buf lvl a op b =
  (* Left-associative: right operand needs one level more. *)
  to_buf buf lvl a;
  Buffer.add_string buf op;
  to_buf buf (lvl + 1) b

and binop_right buf lvl a op b =
  to_buf buf (lvl + 1) a;
  Buffer.add_string buf op;
  to_buf buf lvl b

let to_string e =
  let buf = Buffer.create 64 in
  to_buf buf 0 e;
  Buffer.contents buf

let pp ppf e = Format.pp_print_string ppf (to_string e)

let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let ( ^^ ) a b = Xor (a, b)
let ( --> ) a b = Implies (a, b)
let ( <--> ) a b = Iff (a, b)
let not_ a = Not a
let var v = Var v
