(** Canonical forms of Boolean expressions (Property 3).

    Any expression [Phi(x1..xn)] equals [M_Phi ⋉ x1 ⋉ ... ⋉ xn] for a
    unique logic matrix [M_Phi] once a variable order is fixed. Two
    independent constructions are provided:

    - {!of_expr} works semantically on the bit-packed logic matrices
      (fast; used by the simulator), and
    - {!of_expr_algebraic} runs the textbook STP normalization on dense
      matrices: structural matrices are pushed to the front with the
      variable-swap identity (Property 1), variables are reordered with
      swap matrices [W_{[2,2]}] and duplicate occurrences merged with the
      power-reducing matrix [M_r].

    The two agree on every expression; the test suite checks this by
    property testing, which is the repository's evidence that the fast
    path implements the paper's algebra. *)

val of_expr : ?order:string list -> Expr.t -> Logic_matrix.t * string list
(** [of_expr e] is [(m, order)] with [e = m ⋉ x_{order0} ⋉ x_{order1} ...]
    — the {e first} element of [order] is the leading STP factor, i.e. the
    most significant selector. Default order: first occurrence in [e].
    A supplied [order] must cover all variables of [e] (extra names are
    allowed and become don't-care positions). *)

val of_expr_algebraic : ?order:string list -> Expr.t -> Matrix.t * string list
(** Dense-matrix normalization; same contract as {!of_expr}. *)

val simulate : Logic_matrix.t -> bool list -> bool
(** [simulate m pattern] evaluates the canonical form on one simulation
    pattern (Example 2 of the paper): a cascade of STPs with elements
    of 𝔹, i.e. one matrix pass. *)
