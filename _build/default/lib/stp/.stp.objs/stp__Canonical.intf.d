lib/stp/canonical.mli: Expr Logic_matrix Matrix
