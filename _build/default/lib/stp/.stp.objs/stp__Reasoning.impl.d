lib/stp/reasoning.ml: Array Canonical Expr List Logic_matrix Tt
