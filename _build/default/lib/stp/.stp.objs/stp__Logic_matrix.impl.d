lib/stp/logic_matrix.ml: Array List Matrix Tt
