lib/stp/matrix.ml: Array Format List
