lib/stp/matrix.mli: Format
