lib/stp/canonical.ml: Array Expr Hashtbl List Logic_matrix Matrix String Tt
