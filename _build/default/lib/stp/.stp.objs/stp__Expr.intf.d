lib/stp/expr.mli: Format
