lib/stp/expr.ml: Buffer Format Hashtbl List Printf String
