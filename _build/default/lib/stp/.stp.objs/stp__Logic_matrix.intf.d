lib/stp/logic_matrix.mli: Format Matrix Tt
