lib/stp/reasoning.mli: Expr
