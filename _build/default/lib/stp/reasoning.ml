module T = Tt.Truth_table

let table e = Logic_matrix.to_tt (fst (Canonical.of_expr e))

let is_tautology e = T.is_const1 (table e)
let is_satisfiable e = not (T.is_const0 (table e))

let union_order a b =
  let va = Expr.vars a and vb = Expr.vars b in
  va @ List.filter (fun v -> not (List.mem v va)) vb

let equivalent a b =
  let order = union_order a b in
  let order = if order = [] then [] else order in
  if order = [] then
    (* Closed formulas: compare the two constants. *)
    Expr.eval (fun _ -> assert false) a = Expr.eval (fun _ -> assert false) b
  else
    let ma, _ = Canonical.of_expr ~order a in
    let mb, _ = Canonical.of_expr ~order b in
    Logic_matrix.equal ma mb

let satisfying_assignments e =
  let m, order = Canonical.of_expr e in
  let tt = Logic_matrix.to_tt m in
  let n = List.length order in
  let vars = Array.of_list order in
  let models = ref [] in
  for i = (1 lsl n) - 1 downto 0 do
    if T.get tt i then begin
      (* Bit v of i is table variable v = order element (n - 1 - v). *)
      let model =
        List.init n (fun pos ->
            (vars.(pos), (i lsr (n - 1 - pos)) land 1 = 1))
      in
      models := model :: !models
    end
  done;
  !models

let implies a b = is_tautology (Expr.Implies (a, b))
