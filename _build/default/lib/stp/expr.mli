(** Boolean expressions for STP logical reasoning.

    Variables are named; {!Canonical} assigns them STP positions. A small
    concrete syntax is provided for tests and examples:

    {v
      expr ::= expr '<->' expr        (iff, lowest precedence)
             | expr '->' expr         (implication, right associative)
             | expr '|' expr          (or)
             | expr '^' expr          (xor)
             | expr '&' expr          (and)
             | '!' expr               (not)
             | '0' | '1'              (constants)
             | identifier             (variable)
             | '(' expr ')'
    v} *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Nand of t * t
  | Nor of t * t
  | Implies of t * t
  | Iff of t * t

val eval : (string -> bool) -> t -> bool
(** [eval env e] evaluates [e] with variable values from [env]. *)

val vars : t -> string list
(** Variables in order of first occurrence, no duplicates. *)

val of_string : string -> t
(** Parses the concrete syntax above. Raises [Invalid_argument] with a
    position message on syntax errors. *)

val to_string : t -> string
(** Re-prints with minimal parentheses; [of_string (to_string e)] is
    structurally equal to [e]. *)

val pp : Format.formatter -> t -> unit

(** Convenience constructors used heavily in tests. *)

val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( ^^ ) : t -> t -> t
val ( --> ) : t -> t -> t
val ( <--> ) : t -> t -> t
val not_ : t -> t
val var : string -> t
