lib/util/vec.mli:
