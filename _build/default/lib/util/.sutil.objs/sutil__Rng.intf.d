lib/util/rng.mli:
