(** Growable integer vectors.

    The AIG, k-LUT and SAT packages all need amortized-O(1) append over
    flat [int] storage; this is that one shared primitive. Not a general
    container: ints only, no polymorphism, no iterator zoo. *)

type t

val create : ?capacity:int -> unit -> t
val make : int -> int -> t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
(** Removes and returns the last element. Raises [Invalid_argument] when
    empty. *)

val top : t -> int
val clear : t -> unit
(** Resets length to zero; capacity is kept. *)

val shrink : t -> int -> unit
(** [shrink v n] truncates to the first [n] elements. *)

val grow : t -> int -> int -> unit
(** [grow v n x] extends to length [n] filling new slots with [x]; no-op
    if already at least [n] long. *)

val copy : t -> t
val to_array : t -> int array
val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
val exists : (int -> bool) -> t -> bool
val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
