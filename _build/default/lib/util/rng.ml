type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = create (int64 t)

let bits32 t = Int64.to_int (Int64.logand (int64 t) 0xFFFFFFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Keep 62 bits so the value stays non-negative as a native int;
     plain modulo bias is fine for the non-cryptographic uses here. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)
