type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x
let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x

let ensure v cap =
  if Array.length v.data < cap then begin
    let data = Array.make (max cap (2 * Array.length v.data)) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  v.data.(v.len - 1)

let clear v = v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  v.len <- n

let grow v n x =
  if n > v.len then begin
    ensure v n;
    Array.fill v.data v.len (n - v.len) x;
    v.len <- n
  end

let copy v = { data = Array.copy v.data; len = v.len }
let to_array v = Array.sub v.data 0 v.len
let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0
