(** Deterministic pseudo-random numbers (splitmix64).

    Benchmarks and generated circuits must be bit-reproducible across runs
    and OCaml versions, so nothing in this repository uses [Stdlib.Random];
    every consumer threads one of these explicit states instead. *)

type t

val create : int64 -> t
(** [create seed] — equal seeds give equal streams. *)

val split : t -> t
(** An independent stream derived from the current state. *)

val int64 : t -> int64
val bits32 : t -> int
(** 32 uniform bits in the low bits of an [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)
