(** AND-tree balancing (ABC's [balance] pass).

    Collapses maximal single-polarity AND trees into n-ary conjunctions
    and rebuilds them as balanced trees, pairing the shallowest operands
    first. Functionally exact; never increases depth, typically reduces
    it substantially on chained arithmetic. Used in the examples and in
    tests as a second source of structurally-different-but-equivalent
    networks for the sweepers to reconverge. *)

val balance : Network.t -> Network.t * Lit.t array
(** Returns the balanced network and the old-node -> new-literal map
    ([-1] for dropped nodes). PIs keep their indices. *)
