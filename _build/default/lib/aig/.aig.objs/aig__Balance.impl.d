lib/aig/balance.ml: Array List Lit Network
