lib/aig/balance.mli: Lit Network
