lib/aig/cone.ml: Array List Lit Network Sutil
