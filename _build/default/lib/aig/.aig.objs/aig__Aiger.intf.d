lib/aig/aiger.mli: Network
