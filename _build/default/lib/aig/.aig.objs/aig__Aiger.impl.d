lib/aig/aiger.ml: Array Buffer Fun List Lit Network Printf String
