lib/aig/network.mli: Format Lit
