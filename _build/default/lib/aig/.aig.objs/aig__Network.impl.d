lib/aig/network.ml: Array Format Hashtbl Lit Sutil
