lib/aig/lit.ml: Format
