module Vec = Sutil.Vec

let tfi_mark t roots =
  let mark = Array.make (Network.num_nodes t) false in
  let stack = Vec.create () in
  let push n =
    if n > 0 && not mark.(n) then begin
      mark.(n) <- true;
      Vec.push stack n
    end
  in
  List.iter push roots;
  while Vec.length stack > 0 do
    let n = Vec.pop stack in
    if Network.is_and t n then begin
      push (Lit.node (Network.fanin0 t n));
      push (Lit.node (Network.fanin1 t n))
    end
  done;
  mark

let tfi t roots =
  let mark = tfi_mark t roots in
  let out = ref [] in
  for n = Array.length mark - 1 downto 1 do
    if mark.(n) then out := n :: !out
  done;
  !out

let tfi_bounded t roots ~limit =
  let mark = Array.make (Network.num_nodes t) false in
  let stack = Vec.create () in
  let count = ref 0 in
  let truncated = ref false in
  let push n =
    if n > 0 && not mark.(n) then
      if !count >= limit then truncated := true
      else begin
        mark.(n) <- true;
        incr count;
        Vec.push stack n
      end
  in
  List.iter push roots;
  while Vec.length stack > 0 do
    let n = Vec.pop stack in
    if Network.is_and t n then begin
      push (Lit.node (Network.fanin0 t n));
      push (Lit.node (Network.fanin1 t n))
    end
  done;
  let out = ref [] in
  for n = Array.length mark - 1 downto 1 do
    if mark.(n) then out := n :: !out
  done;
  (!out, !truncated)

let leaves t roots =
  let mark = tfi_mark t roots in
  let out = ref [] in
  for n = Array.length mark - 1 downto 1 do
    if mark.(n) && Network.is_pi t n then out := n :: !out
  done;
  !out

let cone_size t root =
  List.length (List.filter (Network.is_and t) (tfi t [ root ]))
