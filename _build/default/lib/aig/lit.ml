type t = int

let of_node n c = (n lsl 1) lor (if c then 1 else 0)
let node l = l lsr 1
let is_compl l = l land 1 = 1
let not_ l = l lxor 1
let xor_compl l c = if c then l lxor 1 else l
let regular l = l land lnot 1
let false_ = 0
let true_ = 1
let is_const l = l lsr 1 = 0

let pp ppf l =
  if is_compl l then Format.fprintf ppf "!%d" (node l)
  else Format.fprintf ppf "%d" (node l)
