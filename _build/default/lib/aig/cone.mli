(** Transitive fanin (TFI) cones.

    The sweepers bound their driver search by TFI membership (the paper
    caps the comparable nodes within the TFI at [n = 1000]), and the
    SAT encoder works cone-by-cone; both use these traversals. *)

val tfi : Network.t -> int list -> int list
(** [tfi t roots] is every node (including the roots, excluding the
    constant node) in the transitive fanin of [roots], in ascending —
    hence topological — order. *)

val tfi_bounded : Network.t -> int list -> limit:int -> int list * bool
(** Like {!tfi} but stops collecting once [limit] nodes are gathered.
    Returns the nodes found (ascending) and whether the cone was
    truncated. *)

val tfi_mark : Network.t -> int list -> bool array
(** Membership array of length [num_nodes]: [true] for TFI members. *)

val leaves : Network.t -> int list -> int list
(** PIs feeding the cone of [roots], ascending node order. *)

val cone_size : Network.t -> int -> int
(** Number of AND nodes in the TFI of one node. *)
