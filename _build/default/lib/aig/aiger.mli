(** ASCII AIGER ([aag]) reading and writing.

    Combinational subset: the latch section must be empty when reading and
    is never produced when writing. Literal numbering follows the AIGER
    convention, which coincides with {!Lit.t} once node ids are assigned
    in file order. *)

exception Parse_error of string

val read : string -> Network.t
(** Parses an [aag] document from a string. Raises {!Parse_error} on
    malformed input, latches, or forward references. *)

val read_file : string -> Network.t

val read_sequential : string -> Network.t * int
(** Like {!read} but accepts latches by cutting the sequential loop the
    way combinational sweeping tools do: each latch's output becomes an
    extra PI (after the real PIs) and each latch's next-state input an
    extra PO (after the real POs). Returns the network and the latch
    count. This is how the HWMCC'15 model-checking circuits are consumed
    by a combinational SAT sweeper. *)

val read_sequential_file : string -> Network.t * int

val write : Network.t -> string
(** Serializes; nodes keep their ids (the network is already dense and
    topologically ordered). *)

val write_file : string -> Network.t -> unit
