(** AIG literals.

    A literal encodes a node reference plus a complement flag in one int:
    [lit = 2 * node + (1 if complemented)] — the AIGER / ABC convention.
    Node 0 is the constant-false node, so literal 0 is constant false and
    literal 1 constant true. *)

type t = int

val of_node : int -> bool -> t
(** [of_node n c] refers to node [n], complemented iff [c]. *)

val node : t -> int
val is_compl : t -> bool

val not_ : t -> t
val xor_compl : t -> bool -> t
(** [xor_compl l c] complements [l] iff [c]. *)

val regular : t -> t
(** The positive-polarity literal of the same node. *)

val false_ : t
val true_ : t
val is_const : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints node with polarity, e.g. [!7] or [7]. *)
