(** Redundancy injection — the workload that makes SAT-sweeping earn its
    keep.

    Real HWMCC/IWLS circuits contain many functionally equivalent but
    structurally distinct internal nodes (synthesis artifacts, retimed
    copies, speculation). The benchmark files are not available in this
    container, so this module manufactures that property: it rewrites a
    fraction of the AND nodes into structurally different but equivalent
    implementations (re-associated conjunction trees, strengthened
    [x = x & (a | b)] forms) and routes a random share of each node's
    fanout through the duplicate. Structural hashing cannot reconverge
    the copies; simulation + SAT can — exactly the paper's Table II
    setting. *)

val inject :
  seed:int64 -> fraction:float -> Aig.Network.t -> Aig.Network.t
(** [inject ~seed ~fraction net] — [fraction] of eligible AND nodes (in
    [0,1]) get a duplicate implementation. The result is functionally
    equivalent to [net] (same PI/PO interface) and strictly larger. *)
