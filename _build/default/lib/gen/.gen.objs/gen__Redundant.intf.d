lib/gen/redundant.mli: Aig
