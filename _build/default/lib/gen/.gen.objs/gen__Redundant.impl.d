lib/gen/redundant.ml: Aig Array List Sutil
