lib/gen/arith.ml: Aig Array List Stdlib
