lib/gen/control.ml: Aig Array List Stdlib Sutil
