lib/gen/arith.mli: Aig
