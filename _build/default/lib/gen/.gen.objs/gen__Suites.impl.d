lib/gen/suites.ml: Aig Arith Control Int64 List Redundant
