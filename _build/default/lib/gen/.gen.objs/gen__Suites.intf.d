lib/gen/suites.mli: Aig
