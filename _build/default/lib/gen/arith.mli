(** Arithmetic circuit generators (the EPFL suite's arithmetic family).

    All builders return a self-contained AIG. Multi-bit buses are little
    endian: PI order is operand A bits 0..w-1, then operand B, etc.; PO
    order likewise. Every builder is deterministic. *)

val ripple_adder : width:int -> Aig.Network.t
(** [2w] PIs, [w+1] POs (sum, carry out). *)

val carry_lookahead_adder : width:int -> Aig.Network.t
(** Same function as {!ripple_adder}, different structure — block-wise
    generate/propagate. Useful for equivalence workloads. *)

val kogge_stone_adder : width:int -> Aig.Network.t
(** Same function again, parallel-prefix structure: logarithmic depth,
    the third structurally distinct adder for CEC and sweeping tests. *)

val wallace_multiplier : width:int -> Aig.Network.t
(** Same function as {!multiplier}, built as a Wallace tree (3:2
    compressor reduction) instead of ripple rows. *)

val subtractor : width:int -> Aig.Network.t
(** [a - b] two's complement; [w+1] POs (difference, borrow). *)

val multiplier : width:int -> Aig.Network.t
(** Array multiplier, [2w] PIs, [2w] POs. *)

val square : width:int -> Aig.Network.t
(** [w] PIs, [2w] POs — the multiplier with both operands tied. *)

val divider : width:int -> Aig.Network.t
(** Restoring array divider: [2w] PIs (dividend, divisor), [2w] POs
    (quotient, remainder). Division by zero yields quotient all-ones. *)

val sqrt : width:int -> Aig.Network.t
(** Restoring square root; [width] even. [w] PIs, [w/2] POs. *)

val barrel_shifter : width:int -> Aig.Network.t
(** Logical left shifter: [w + log2 w] PIs (value, amount), [w] POs.
    [width] must be a power of two. *)

val max : width:int -> operands:int -> Aig.Network.t
(** Maximum of [operands] unsigned words via a comparator/mux tree.
    [operands * width] PIs, [width] POs. *)

val log2_floor : width:int -> Aig.Network.t
(** Floor of log2 (priority position of the highest set bit): [w] PIs,
    [ceil log2 w] POs plus a "zero input" flag PO. *)

val int2float : width:int -> Aig.Network.t
(** Toy normalizer: leading-one position (exponent) and the [8] bits
    after it (mantissa), like the EPFL int2float kernel. *)

val hyp : width:int -> Aig.Network.t
(** Hypotenuse-style kernel: [a*a + b*b] over [2w] PIs — a deep
    multiply-accumulate chain like the EPFL [hyp]. *)

val sin_poly : width:int -> Aig.Network.t
(** Odd-polynomial kernel [x - x^3/8 + x^5/64] in fixed point — a
    multiplier-rich datapath standing in for the EPFL [sin]. [w] PIs,
    [w] POs. *)
