module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

let pis net w = Array.init w (fun _ -> A.add_pi net)
let pos net v = Array.iter (fun l -> ignore (A.add_po net l)) v

let bits_for n =
  let rec go k acc = if k <= 1 then acc else go ((k + 1) / 2) (acc + 1) in
  Stdlib.max 1 (go n 0)

let decoder ~bits =
  let net = A.create () in
  let sel = pis net bits in
  for v = 0 to (1 lsl bits) - 1 do
    let term =
      Array.to_list sel
      |> List.mapi (fun i s -> if (v lsr i) land 1 = 1 then s else L.not_ s)
      |> List.fold_left (A.add_and net) L.true_
    in
    ignore (A.add_po net term)
  done;
  net

let priority_encoder ~width =
  let net = A.create () in
  let req = pis net width in
  (* lowest set bit one-hot *)
  let prefix_or = Array.make (width + 1) L.false_ in
  for i = 1 to width do
    prefix_or.(i) <- A.add_or net prefix_or.(i - 1) req.(i - 1)
  done;
  let oh = Array.init width (fun i -> A.add_and net req.(i) (L.not_ prefix_or.(i))) in
  let out =
    Array.init (bits_for width) (fun b ->
        let acc = ref L.false_ in
        Array.iteri (fun i h -> if (i lsr b) land 1 = 1 then acc := A.add_or net !acc h) oh;
        !acc)
  in
  pos net out;
  ignore (A.add_po net prefix_or.(width));
  net

let arbiter ~clients =
  let net = A.create () in
  let req = pis net clients in
  let ptr = pis net (bits_for clients) in
  (* ptr_is.(k): the rotation pointer equals k (decoder over the pointer
     PIs; out-of-range codes grant nothing). *)
  let ptr_is =
    Array.init clients (fun k ->
        Array.to_list ptr
        |> List.mapi (fun b s -> if (k lsr b) land 1 = 1 then s else L.not_ s)
        |> List.fold_left (A.add_and net) L.true_)
  in
  (* grant_i = exists rotation k where ptr=k and i is the first requester
     in the order k, k+1, ..., i. *)
  let grants = Array.make clients L.false_ in
  for k = 0 to clients - 1 do
    let blocked = ref L.false_ in
    for d = 0 to clients - 1 do
      let i = (k + d) mod clients in
      let fires = A.add_and net req.(i) (L.not_ !blocked) in
      grants.(i) <- A.add_or net grants.(i) (A.add_and net ptr_is.(k) fires);
      blocked := A.add_or net !blocked req.(i)
    done
  done;
  pos net grants;
  net

let popcount net bits =
  (* Sum single-bit inputs into a binary count with full adders. *)
  let rec reduce = function
    | [] -> [ L.false_ ]
    | [ x ] -> [ x ]
    | xs ->
      (* Group into threes: each (a,b,c) -> sum + 2*carry. *)
      let rec group sums carries = function
        | a :: b :: c :: rest ->
          let s = A.add_xor net (A.add_xor net a b) c in
          let cy = A.add_maj net a b c in
          group (s :: sums) (cy :: carries) rest
        | [ a; b ] ->
          let s = A.add_xor net a b in
          let cy = A.add_and net a b in
          (s :: sums, cy :: carries)
        | [ a ] -> (a :: sums, carries)
        | [] -> (sums, carries)
      in
      let sums, carries = group [] [] xs in
      let low = reduce sums in
      let high = reduce carries in
      (* result = low + 2*high, ripple *)
      let w = 1 + Stdlib.max (List.length low) (List.length high + 1) in
      let get l i =
        if i < 0 then L.false_
        else match List.nth_opt l i with Some x -> x | None -> L.false_
      in
      let out = Array.make w L.false_ in
      let carry = ref L.false_ in
      for i = 0 to w - 1 do
        let a = get low i and b = get high (i - 1) in
        let s = A.add_xor net (A.add_xor net a b) !carry in
        out.(i) <- s;
        carry := A.add_maj net a b !carry
      done;
      Array.to_list out
  in
  reduce bits

let voter ~inputs =
  if inputs mod 2 = 0 then invalid_arg "Control.voter: inputs must be odd";
  let net = A.create () in
  let xs = pis net inputs in
  let count = popcount net (Array.to_list xs) in
  (* majority <=> count >= (inputs+1)/2: compare against the constant. *)
  let threshold = (inputs + 1) / 2 in
  let w = List.length count in
  let const_bits = Array.init w (fun i -> (threshold lsr i) land 1 = 1) in
  (* count >= threshold via ripple borrow of threshold - count. *)
  let ge = ref L.true_ in
  List.iteri
    (fun i c ->
      let t = const_bits.(i) in
      (* ge' = (c > t) | (c = t) & ge = standard msb-first fold; build
         lsb-first instead: ge_{i+1} over bits 0..i. *)
      let c_gt = if t then L.false_ else c in
      let c_eq = if t then c else L.not_ c in
      ge := A.add_or net c_gt (A.add_and net c_eq !ge))
    count;
  ignore (A.add_po net !ge);
  net

let parity ~width =
  let net = A.create () in
  let xs = pis net width in
  let out = Array.fold_left (A.add_xor net) L.false_ xs in
  ignore (A.add_po net out);
  net

let mux_tree ~select_bits =
  let net = A.create () in
  let data = pis net (1 lsl select_bits) in
  let sel = pis net select_bits in
  let v = ref (Array.to_list data) in
  for k = 0 to select_bits - 1 do
    let rec pair = function
      | a :: b :: rest -> A.add_mux net sel.(k) b a :: pair rest
      | tail -> tail
    in
    v := pair !v
  done;
  (match !v with
   | [ out ] -> ignore (A.add_po net out)
   | _ -> assert false);
  net

let crossbar ~ports ~width =
  let net = A.create () in
  let buses = Array.init ports (fun _ -> pis net width) in
  let selbits = bits_for ports in
  let sels = Array.init ports (fun _ -> pis net selbits) in
  for o = 0 to ports - 1 do
    let out =
      Array.init width (fun b ->
          let acc = ref L.false_ in
          for i = 0 to ports - 1 do
            let is_i =
              Array.to_list sels.(o)
              |> List.mapi (fun k s -> if (i lsr k) land 1 = 1 then s else L.not_ s)
              |> List.fold_left (A.add_and net) L.true_
            in
            acc := A.add_or net !acc (A.add_and net is_i buses.(i).(b))
          done;
          !acc)
    in
    pos net out
  done;
  net

(* Fold every signal with no fanout into the outputs so generated
   circuits are fully live, like real netlists: dead cones would
   otherwise dominate the gate count and vanish at the first cleanup. *)
let fold_dangling net rng pos_drivers =
  let dangling = ref [] in
  A.iter_ands net (fun nd ->
      if A.fanout_count net nd = 0 then
        dangling := L.of_node nd false :: !dangling);
  match (!dangling, pos_drivers) with
  | [], _ | _, [] -> pos_drivers
  | _ ->
    let drivers = Array.of_list pos_drivers in
    List.iter
      (fun l ->
        let slot = Rng.int rng (Array.length drivers) in
        drivers.(slot) <- A.add_xor net drivers.(slot) l)
      !dangling;
    Array.to_list drivers

let random_logic ~seed ~pis:num_pis ~gates ~pos:num_pos =
  let rng = Rng.create seed in
  let net = A.create () in
  let inputs = pis net num_pis in
  let signals = ref (Array.to_list inputs) in
  let count = ref (List.length !signals) in
  let pick () =
    let l = List.nth !signals (Rng.int rng !count) in
    L.xor_compl l (Rng.bool rng)
  in
  for _ = 1 to gates do
    let l =
      match Rng.int rng 8 with
      | 0 | 1 | 2 -> A.add_and net (pick ()) (pick ())
      | 3 | 4 -> A.add_or net (pick ()) (pick ())
      | 5 | 6 -> A.add_xor net (pick ()) (pick ())
      | _ -> A.add_mux net (pick ()) (pick ()) (pick ())
    in
    if not (L.is_const l) then begin
      signals := l :: !signals;
      incr count
    end
  done;
  let drivers = List.init num_pos (fun _ -> pick ()) in
  (* Repeated folding: folding can itself leave new dangling nodes only
     at the drivers, which are about to become POs. *)
  let drivers = fold_dangling net rng drivers in
  List.iter (fun l -> ignore (A.add_po net l)) drivers;
  net

let fsm_next_state ~seed ~state_bits ~input_bits ~complexity =
  let rng = Rng.create seed in
  let net = A.create () in
  let state = pis net state_bits in
  let inputs = pis net input_bits in
  let base = Array.append state inputs in
  let next =
    Array.init state_bits (fun _ ->
        (* A random cone mixing state and input bits. *)
        let signals = ref (Array.to_list base) in
        let count = ref (Array.length base) in
        let pick () =
          let l = List.nth !signals (Rng.int rng !count) in
          L.xor_compl l (Rng.bool rng)
        in
        for _ = 1 to complexity do
          let l =
            match Rng.int rng 4 with
            | 0 | 1 -> A.add_and net (pick ()) (pick ())
            | 2 -> A.add_or net (pick ()) (pick ())
            | _ -> A.add_xor net (pick ()) (pick ())
          in
          if not (L.is_const l) then begin
            signals := l :: !signals;
            incr count
          end
        done;
        pick ())
  in
  (* A couple of flag cones over the next-state bits, with all dangling
     intermediate logic folded in (next-state cones only sample their
     random signals). *)
  let all_flag = Array.fold_left (A.add_and net) L.true_ next in
  let parity_flag = Array.fold_left (A.add_xor net) L.false_ next in
  let drivers =
    fold_dangling net rng (Array.to_list next @ [ all_flag; parity_flag ])
  in
  List.iter (fun l -> ignore (A.add_po net l)) drivers;
  net
