module A = Aig.Network
module L = Aig.Lit

(* ---- bit-vector building blocks ---- *)

let pis net w = Array.init w (fun _ -> A.add_pi net)
let pos net v = Array.iter (fun l -> ignore (A.add_po net l)) v

let full_adder net a b c =
  let sum = A.add_xor net (A.add_xor net a b) c in
  let carry = A.add_maj net a b c in
  (sum, carry)

(* Ripple addition; returns (sum bits, carry out). *)
let add_vec net a b cin =
  let w = Array.length a in
  let sum = Array.make w L.false_ in
  let c = ref cin in
  for i = 0 to w - 1 do
    let s, c' = full_adder net a.(i) b.(i) !c in
    sum.(i) <- s;
    c := c'
  done;
  (sum, !c)

(* a - b as a + ~b + 1; carry out = no borrow (a >= b). *)
let sub_vec net a b =
  let nb = Array.map L.not_ b in
  let diff, carry = add_vec net a nb L.true_ in
  (diff, carry)

let mux_vec net s a b = Array.map2 (fun x y -> A.add_mux net s x y) a b

let zero_vec w = Array.make w L.false_

let resize v w =
  if Array.length v >= w then Array.sub v 0 w
  else Array.append v (zero_vec (w - Array.length v))

(* Unsigned comparison a >= b via subtraction carry. *)
let ge_vec net a b =
  let _, carry = sub_vec net a b in
  carry

(* Array multiplication with ripple rows; result has |a|+|b| bits. *)
let mul_vec net a b =
  let wa = Array.length a and wb = Array.length b in
  let acc = ref (zero_vec (wa + wb)) in
  for j = 0 to wb - 1 do
    let partial =
      Array.init (wa + wb) (fun i ->
          if i >= j && i - j < wa then A.add_and net a.(i - j) b.(j)
          else L.false_)
    in
    let sum, _ = add_vec net !acc partial L.false_ in
    acc := sum
  done;
  !acc

(* ---- public builders ---- *)

let ripple_adder ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  let sum, carry = add_vec net a b L.false_ in
  pos net sum;
  ignore (A.add_po net carry);
  net

let carry_lookahead_adder ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  let p = Array.init width (fun i -> A.add_xor net a.(i) b.(i)) in
  let g = Array.init width (fun i -> A.add_and net a.(i) b.(i)) in
  (* Block-of-4 lookahead: expand each carry as a sum of products over
     its block, rippling between blocks. *)
  let c = Array.make (width + 1) L.false_ in
  let i = ref 0 in
  while !i < width do
    let block_end = min (!i + 4) width in
    for k = !i to block_end - 1 do
      (* c_{k+1} = g_k | p_k g_{k-1} | ... | p_k..p_{i+1} g_i
                       | p_k..p_i c_i, products within the block. *)
      let terms = ref [] in
      let prod = ref L.true_ in
      for j = k downto !i do
        if j = k then terms := g.(j) :: !terms
        else begin
          (* prod currently = p_k..p_{j+1} *)
          terms := A.add_and net !prod g.(j) :: !terms
        end;
        prod := A.add_and net !prod p.(j)
      done;
      terms := A.add_and net !prod c.(!i) :: !terms;
      c.(k + 1) <- List.fold_left (A.add_or net) L.false_ !terms
    done;
    i := block_end
  done;
  let sum = Array.init width (fun k -> A.add_xor net p.(k) c.(k)) in
  pos net sum;
  ignore (A.add_po net c.(width));
  net

let kogge_stone_adder ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  (* Parallel prefix over (generate, propagate) pairs with the operator
     (g, p) o (g', p') = (g | p & g', p & p'). *)
  let g = ref (Array.init width (fun i -> A.add_and net a.(i) b.(i))) in
  let p = ref (Array.init width (fun i -> A.add_xor net a.(i) b.(i))) in
  let p_orig = !p in
  let dist = ref 1 in
  while !dist < width do
    let g' = Array.copy !g and p' = Array.copy !p in
    for i = !dist to width - 1 do
      g'.(i) <- A.add_or net !g.(i) (A.add_and net !p.(i) !g.(i - !dist));
      p'.(i) <- A.add_and net !p.(i) !p.(i - !dist)
    done;
    g := g';
    p := p';
    dist := 2 * !dist
  done;
  (* Carry into position i is the prefix generate of i-1. *)
  let sum =
    Array.init width (fun i ->
        if i = 0 then p_orig.(0)
        else A.add_xor net p_orig.(i) !g.(i - 1))
  in
  pos net sum;
  ignore (A.add_po net !g.(width - 1));
  net

let subtractor ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  let diff, carry = sub_vec net a b in
  pos net diff;
  ignore (A.add_po net (L.not_ carry));
  net

let multiplier ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  pos net (mul_vec net a b);
  net

let square ~width =
  let net = A.create () in
  let a = pis net width in
  pos net (mul_vec net a a);
  net

let wallace_multiplier ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  let out_w = 2 * width in
  (* Partial-product bits bucketed by output column. *)
  let columns = Array.make out_w [] in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      columns.(i + j) <- A.add_and net a.(i) b.(j) :: columns.(i + j)
    done
  done;
  (* 3:2 compression until every column holds at most two bits. *)
  let pending = ref true in
  while !pending do
    pending := false;
    for c = 0 to out_w - 1 do
      if List.length columns.(c) > 2 then begin
        pending := true;
        match columns.(c) with
        | x :: y :: z :: rest ->
          let s = A.add_xor net (A.add_xor net x y) z in
          let cy = A.add_maj net x y z in
          columns.(c) <- s :: rest;
          if c + 1 < out_w then columns.(c + 1) <- cy :: columns.(c + 1)
        | _ -> assert false
      end
    done
  done;
  (* Final carry-propagate addition of the two remaining rows. *)
  let row k =
    Array.init out_w (fun c ->
        match List.nth_opt columns.(c) k with Some l -> l | None -> L.false_)
  in
  let sum, _ = add_vec net (row 0) (row 1) L.false_ in
  pos net sum;
  net

let divider ~width =
  let net = A.create () in
  let d = pis net width and v = pis net width in
  let rw = width + 1 in
  let v_ext = resize v rw in
  let r = ref (zero_vec rw) in
  let q = Array.make width L.false_ in
  for i = width - 1 downto 0 do
    (* r = (r << 1) | d_i *)
    let shifted =
      Array.init rw (fun k -> if k = 0 then d.(i) else !r.(k - 1))
    in
    let diff, no_borrow = sub_vec net shifted v_ext in
    q.(i) <- no_borrow;
    r := mux_vec net no_borrow diff shifted
  done;
  pos net q;
  pos net (Array.sub !r 0 width);
  net

let sqrt ~width =
  if width mod 2 <> 0 then invalid_arg "Arith.sqrt: width must be even";
  let net = A.create () in
  let d = pis net width in
  let half = width / 2 in
  let rw = width + 2 in
  let rem = ref (zero_vec rw) in
  let root = ref (zero_vec half) in
  for step = half - 1 downto 0 do
    (* rem = (rem << 2) | d[2*step+1 .. 2*step] *)
    let shifted =
      Array.init rw (fun k ->
          if k = 0 then d.(2 * step)
          else if k = 1 then d.((2 * step) + 1)
          else !rem.(k - 2))
    in
    (* trial = (root << 2) | 1 *)
    let trial =
      Array.init rw (fun k ->
          if k = 0 then L.true_
          else if k = 1 then L.false_
          else if k - 2 < half then !root.(k - 2)
          else L.false_)
    in
    let diff, fits = sub_vec net shifted trial in
    rem := mux_vec net fits diff shifted;
    (* root = (root << 1) | fits *)
    root := Array.init half (fun k -> if k = 0 then fits else !root.(k - 1))
  done;
  pos net !root;
  net

let barrel_shifter ~width =
  let log =
    let rec go w acc = if w <= 1 then acc else go (w lsr 1) (acc + 1) in
    go width 0
  in
  if 1 lsl log <> width then
    invalid_arg "Arith.barrel_shifter: width must be a power of two";
  let net = A.create () in
  let x = pis net width and amt = pis net log in
  let v = ref x in
  for k = 0 to log - 1 do
    let sh = 1 lsl k in
    let shifted =
      Array.init width (fun i -> if i < sh then L.false_ else !v.(i - sh))
    in
    v := mux_vec net amt.(k) shifted !v
  done;
  pos net !v;
  net

let max ~width ~operands =
  if operands < 2 then invalid_arg "Arith.max: at least two operands";
  let net = A.create () in
  let ops = Array.init operands (fun _ -> pis net width) in
  let max2 a b =
    let a_ge = ge_vec net a b in
    mux_vec net a_ge a b
  in
  let rec tree = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | a :: b :: rest -> max2 a b :: pair rest
        | tail -> tail
      in
      tree (pair xs)
  in
  pos net (tree (Array.to_list ops));
  net

(* highest-set-bit one-hot: bit i set iff x_i and no higher bit. *)
let highest_onehot net x =
  let w = Array.length x in
  let suffix_or = Array.make (w + 1) L.false_ in
  for i = w - 1 downto 0 do
    suffix_or.(i) <- A.add_or net x.(i) suffix_or.(i + 1)
  done;
  Array.init w (fun i -> A.add_and net x.(i) (L.not_ suffix_or.(i + 1)))

let encode_position net onehot out_bits =
  Array.init out_bits (fun b ->
      let terms = ref L.false_ in
      Array.iteri
        (fun i h -> if (i lsr b) land 1 = 1 then terms := A.add_or net !terms h)
        onehot;
      !terms)

let bits_for n =
  let rec go k acc = if k <= 1 then acc else go ((k + 1) / 2) (acc + 1) in
  go n 0

let log2_floor ~width =
  let net = A.create () in
  let x = pis net width in
  let oh = highest_onehot net x in
  let out = encode_position net oh (Stdlib.max 1 (bits_for width)) in
  pos net out;
  (* zero-input flag *)
  let any = Array.fold_left (A.add_or net) L.false_ x in
  ignore (A.add_po net (L.not_ any));
  net

let int2float ~width =
  let net = A.create () in
  let x = pis net width in
  let oh = highest_onehot net x in
  let exponent = encode_position net oh (Stdlib.max 1 (bits_for width)) in
  (* Mantissa: the 8 bits below the leading one, selected by the
     one-hot position. *)
  let mantissa =
    Array.init 8 (fun j ->
        let terms = ref L.false_ in
        Array.iteri
          (fun i h ->
            let src = i - 1 - j in
            if src >= 0 then terms := A.add_or net !terms (A.add_and net h x.(src)))
          oh;
        !terms)
  in
  pos net exponent;
  pos net mantissa;
  net

let hyp ~width =
  let net = A.create () in
  let a = pis net width and b = pis net width in
  let aa = mul_vec net a a in
  let bb = mul_vec net b b in
  let sum, carry = add_vec net aa bb L.false_ in
  pos net sum;
  ignore (A.add_po net carry);
  net

let sin_poly ~width =
  let net = A.create () in
  let x = pis net width in
  let trunc v = resize v width in
  let x2 = trunc (mul_vec net x x) in
  let x3 = trunc (mul_vec net x2 x) in
  let x5 = trunc (mul_vec net x3 (trunc (mul_vec net x x))) in
  let shr v k =
    Array.init width (fun i -> if i + k < width then v.(i + k) else L.false_)
  in
  let t1, _ = add_vec net x (shr x3 3) L.false_ in
  let t2, _ = add_vec net t1 (shr x5 6) L.false_ in
  pos net t2;
  net
