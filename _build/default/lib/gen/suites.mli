(** Named benchmark suites mirroring the paper's tables.

    The EPFL, HWMCC'15 and IWLS'05 benchmark files are not available in
    this environment; these are procedurally generated circuits of the
    same structural families, keyed by the paper's names so the harness
    prints recognizable rows. Sizes are scaled to what a container run
    completes in minutes; DESIGN.md and EXPERIMENTS.md document the
    substitution. Every function is deterministic. *)

val epfl : unit -> (string * Aig.Network.t) list
(** The twenty Table I rows: ten arithmetic, ten random/control. *)

val epfl_by_name : string -> Aig.Network.t
(** Raises [Not_found] for unknown names. *)

val hwmcc : unit -> (string * Aig.Network.t) list
(** The fifteen Table II rows: redundancy-injected circuits in the
    HWMCC'15 / IWLS'05 style. *)

val hwmcc_by_name : string -> Aig.Network.t

val names_epfl : string list
val names_hwmcc : string list
