(** Random-logic and control circuit generators (the EPFL suite's control
    family and the HWMCC-style next-state cones).

    Everything is deterministic in its parameters; circuits carrying a
    [seed] use the shared splitmix64 stream. *)

val decoder : bits:int -> Aig.Network.t
(** Full binary decoder: [bits] PIs, [2^bits] one-hot POs. *)

val priority_encoder : width:int -> Aig.Network.t
(** Position of the lowest set request bit, plus a valid flag. *)

val arbiter : clients:int -> Aig.Network.t
(** Fixed-priority arbiter replicated over all rotations (a combinational
    stand-in for a round-robin arbiter): [clients] request PIs +
    [ceil log2 clients] pointer PIs; [clients] grant POs. *)

val voter : inputs:int -> Aig.Network.t
(** Majority vote of [inputs] (odd) single-bit inputs via a population
    counter and threshold compare. *)

val parity : width:int -> Aig.Network.t
(** XOR tree. *)

val mux_tree : select_bits:int -> Aig.Network.t
(** [2^s] data PIs + [s] select PIs, one PO. *)

val crossbar : ports:int -> width:int -> Aig.Network.t
(** Router-style crossbar: [ports] data buses, per-output select fields,
    fully muxed. *)

val random_logic :
  seed:int64 -> pis:int -> gates:int -> pos:int -> Aig.Network.t
(** A random DAG of AND/OR/XOR/MUX over random earlier signals — the
    stand-in for cavlc/ctrl/i2c/mem_ctrl-style control blocks. Gate count
    is approximate (structural hashing may fold some). *)

val fsm_next_state :
  seed:int64 -> state_bits:int -> input_bits:int -> complexity:int ->
  Aig.Network.t
(** Next-state and output cones of a random Mealy machine: the HWMCC-like
    shape — state and input PIs, state' and flag POs, built from
    [complexity] random gates per state bit. *)
