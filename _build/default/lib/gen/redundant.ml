module A = Aig.Network
module L = Aig.Lit
module Rng = Sutil.Rng

(* Flatten the conjunction tree under a positive AND literal, stopping at
   complemented edges, PIs, and a depth bound. *)
let rec flatten net lit depth acc =
  if L.is_compl lit || depth = 0 || not (A.is_and net (L.node lit)) then
    lit :: acc
  else
    let n = L.node lit in
    flatten net (A.fanin0 net n) (depth - 1)
      (flatten net (A.fanin1 net n) (depth - 1) acc)

(* x = x & (f0 | f1): adds an OR node and a fresh top AND containing the
   original — always structurally distinct, always equivalent. *)
let strengthen net m =
  let n = L.node m in
  let f0 = A.fanin0 net n and f1 = A.fanin1 net n in
  A.add_and net m (A.add_or net f0 f1)

let inject ~seed ~fraction net =
  if fraction < 0. || fraction > 1. then invalid_arg "Redundant.inject";
  let rng = Rng.create seed in
  let fresh = A.create ~capacity:(2 * A.num_nodes net) () in
  let map = Array.make (A.num_nodes net) (-1) in
  let dup = Array.make (A.num_nodes net) (-1) in
  (* 0 = dup unused so far, 1 = dup used once (orig next), 2 = free *)
  let dup_state = Array.make (A.num_nodes net) 0 in
  map.(0) <- L.false_;
  let tr l =
    let nd = L.node l in
    let target =
      if dup.(nd) >= 0 then begin
        match dup_state.(nd) with
        | 0 ->
          dup_state.(nd) <- 1;
          dup.(nd)
        | 1 ->
          dup_state.(nd) <- 2;
          map.(nd)
        | _ -> if Rng.bool rng then dup.(nd) else map.(nd)
      end
      else map.(nd)
    in
    L.xor_compl target (L.is_compl l)
  in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ -> map.(nd) <- A.add_pi fresh
      | A.And ->
        let m = A.add_and fresh (tr (A.fanin0 net nd)) (tr (A.fanin1 net nd)) in
        map.(nd) <- m;
        (* Only plain AND results are eligible (folds and hash hits keep
           their existing duplicates, if any). *)
        if
          (not (L.is_compl m))
          && (not (L.is_const m))
          && A.is_and fresh (L.node m)
          && Rng.float rng < fraction
        then begin
          let leaves = flatten fresh m 3 [] in
          let candidate =
            if List.length leaves >= 3 then
              (* Re-associate the conjunction in reversed leaf order. *)
              List.fold_left (A.add_and fresh) L.true_ (List.rev leaves)
            else m
          in
          let d = if candidate <> m then candidate else strengthen fresh m in
          if d <> m then dup.(nd) <- d
        end);
  Array.iter (fun l -> ignore (A.add_po fresh (tr l))) (A.pos net);
  fresh
