module A = Aig.Network

(* Table I's EPFL families. Widths are chosen so each circuit lands in
   the hundreds-to-thousands of AND gates: large enough that simulation
   time is meaningful, small enough that the whole table regenerates in
   minutes. *)
let epfl_builders : (string * (unit -> A.t)) list =
  [
    ("adder", fun () -> Arith.ripple_adder ~width:128);
    ("bar", fun () -> Arith.barrel_shifter ~width:64);
    ("div", fun () -> Arith.divider ~width:24);
    ("hyp", fun () -> Arith.hyp ~width:24);
    ("log2", fun () -> Arith.log2_floor ~width:256);
    ("max", fun () -> Arith.max ~width:32 ~operands:4);
    ("multiplier", fun () -> Arith.multiplier ~width:24);
    ("sin", fun () -> Arith.sin_poly ~width:16);
    ("sqrt", fun () -> Arith.sqrt ~width:32);
    ("square", fun () -> Arith.square ~width:24);
    ("arbiter", fun () -> Control.arbiter ~clients:24);
    ("cavlc", fun () -> Control.random_logic ~seed:0xCA71CL ~pis:10 ~gates:700 ~pos:11);
    ("ctrl", fun () -> Control.random_logic ~seed:0xC791L ~pis:7 ~gates:180 ~pos:25);
    ("dec", fun () -> Control.decoder ~bits:8);
    ("i2c", fun () -> Control.random_logic ~seed:0x12CL ~pis:18 ~gates:1300 ~pos:14);
    ("int2float", fun () -> Arith.int2float ~width:64);
    ("mem_ctrl", fun () -> Control.random_logic ~seed:0x3E3L ~pis:48 ~gates:9000 ~pos:22);
    ("priority", fun () -> Control.priority_encoder ~width:128);
    ("router", fun () -> Control.crossbar ~ports:4 ~width:8);
    ("voter", fun () -> Control.voter ~inputs:127);
  ]

(* Table II's HWMCC'15 / IWLS'05 rows: a base circuit of the right
   flavour (next-state logic for the 6s*/beem*/oski* model-checking rows,
   larger control/datapath mixes for b18/b19/leon2) with injected
   redundancy so the sweepers have genuine merge opportunities. *)
let hwmcc_builders : (string * (unit -> A.t)) list =
  let fsm name seed state_bits input_bits complexity fraction =
    ( name,
      fun () ->
        Redundant.inject ~seed:(Int64.of_int (seed * 7919)) ~fraction
          (Control.fsm_next_state ~seed:(Int64.of_int seed) ~state_bits
             ~input_bits ~complexity) )
  in
  let mix name seed pis gates pos fraction =
    ( name,
      fun () ->
        Redundant.inject ~seed:(Int64.of_int (seed * 104729)) ~fraction
          (Control.random_logic ~seed:(Int64.of_int seed) ~pis ~gates ~pos) )
  in
  let datapath name seed width fraction =
    (* Restoring dividers: compare-subtract chains whose intermediate
       nodes toggle rarely under random patterns, so candidate classes
       stay fat until refined — the workload where exhaustive windows
       pay off. *)
    ( name,
      fun () ->
        Redundant.inject ~seed:(Int64.of_int (seed * 31337)) ~fraction
          (Arith.divider ~width) )
  in
  [
    fsm "6s100" 100 64 48 60 0.25;
    fsm "6s20" 20 24 16 50 0.30;
    fsm "6s203b41" 203 56 40 45 0.20;
    fsm "6s281b35" 281 72 48 70 0.25;
    fsm "6s342rb122" 342 48 40 40 0.20;
    fsm "6s350rb46" 350 80 56 60 0.22;
    fsm "6s382r" 382 64 48 55 0.28;
    fsm "6s392r" 392 60 44 50 0.24;
    mix "beemfwt4b1" 441 24 900 16 0.30;
    mix "beemfwt5b3" 553 28 1800 20 0.30;
    mix "oski15a07b0s" 157 30 2200 18 0.25;
    mix "oski2b1i" 221 34 3400 22 0.25;
    datapath "b18" 18 12 0.20;
    datapath "b19" 19 14 0.20;
    mix "leon2" 777 56 7000 40 0.18;
  ]

(* Builders can leave dead logic behind (e.g. truncated multiplier
   halves); benchmarks must count only live gates. *)
let clean net = fst (A.cleanup net)

let build builders = List.map (fun (name, f) -> (name, clean (f ()))) builders

let epfl () = build epfl_builders
let hwmcc () = build hwmcc_builders

let by_name builders name =
  match List.assoc_opt name builders with
  | Some f -> clean (f ())
  | None -> raise Not_found

let epfl_by_name = by_name epfl_builders
let hwmcc_by_name = by_name hwmcc_builders
let names_epfl = List.map fst epfl_builders
let names_hwmcc = List.map fst hwmcc_builders
