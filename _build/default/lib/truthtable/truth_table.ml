let word_bits = 32
let word_mask = 0xFFFFFFFF
let max_vars = 24

type t = { n : int; words : int array }
(* Invariant: Array.length words = max 1 (2^n / 32) and all bits at
   positions >= 2^n in the final word are zero. *)

let num_vars t = t.n
let num_bits t = 1 lsl t.n
let num_words t = Array.length t.words

let words_for n = if n <= 5 then 1 else 1 lsl (n - 5)

let last_word_mask n =
  if n >= 5 then word_mask else (1 lsl (1 lsl n)) - 1

let check_vars n =
  if n < 0 || n > max_vars then
    invalid_arg (Printf.sprintf "Truth_table: %d variables out of range" n)

let const0 n =
  check_vars n;
  { n; words = Array.make (words_for n) 0 }

let const1 n =
  check_vars n;
  let words = Array.make (words_for n) word_mask in
  words.(Array.length words - 1) <- last_word_mask n;
  { n; words }

(* Projection masks for variables living inside one word: variable [i]
   (0 <= i < 5) is true at assignment [j] iff bit [i] of [j] is set, which
   tiles the word with alternating runs of length 2^i. *)
let var_masks =
  [| 0xAAAAAAAA; 0xCCCCCCCC; 0xF0F0F0F0; 0xFF00FF00; 0xFFFF0000 |]

let nth_var n i =
  check_vars n;
  if i < 0 || i >= n then invalid_arg "Truth_table.nth_var";
  let words = Array.make (words_for n) 0 in
  if i < 5 then begin
    let m = var_masks.(i) land last_word_mask n in
    Array.fill words 0 (Array.length words) m;
    if Array.length words > 0 then words.(Array.length words - 1) <- m
  end else begin
    (* Variable i >= 5: whole words alternate in runs of 2^(i-5). *)
    let run = 1 lsl (i - 5) in
    for w = 0 to Array.length words - 1 do
      if (w / run) land 1 = 1 then words.(w) <- word_mask
    done
  end;
  { n; words }

let get t i =
  assert (i >= 0 && i < num_bits t);
  (t.words.(i lsr 5) lsr (i land 31)) land 1 = 1

let set t i b =
  assert (i >= 0 && i < num_bits t);
  let words = Array.copy t.words in
  let w = i lsr 5 and off = i land 31 in
  if b then words.(w) <- words.(w) lor (1 lsl off)
  else words.(w) <- words.(w) land lnot (1 lsl off);
  { t with words }

let of_fun n f =
  check_vars n;
  let x = Array.make n false in
  let words = Array.make (words_for n) 0 in
  for i = 0 to (1 lsl n) - 1 do
    for v = 0 to n - 1 do
      x.(v) <- (i lsr v) land 1 = 1
    done;
    if f x then words.(i lsr 5) <- words.(i lsr 5) lor (1 lsl (i land 31))
  done;
  { n; words }

let eval t x =
  if Array.length x <> t.n then invalid_arg "Truth_table.eval";
  let idx = ref 0 in
  for v = t.n - 1 downto 0 do
    idx := (!idx lsl 1) lor (if x.(v) then 1 else 0)
  done;
  get t !idx

let of_bin s =
  let len = String.length s in
  let n =
    let rec log2 k acc =
      if k = 1 then acc
      else if k land 1 = 1 || k = 0 then
        invalid_arg "Truth_table.of_bin: length must be a power of two"
      else log2 (k lsr 1) (acc + 1)
    in
    if len = 0 then invalid_arg "Truth_table.of_bin: empty" else log2 len 0
  in
  check_vars n;
  let words = Array.make (words_for n) 0 in
  String.iteri
    (fun pos c ->
      let i = len - 1 - pos in
      match c with
      | '1' -> words.(i lsr 5) <- words.(i lsr 5) lor (1 lsl (i land 31))
      | '0' -> ()
      | _ -> invalid_arg "Truth_table.of_bin: not a binary digit")
    s;
  { n; words }

let to_bin t =
  String.init (num_bits t) (fun pos ->
      if get t (num_bits t - 1 - pos) then '1' else '0')

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Truth_table.of_hex: not a hex digit"

let of_hex n s =
  check_vars n;
  let digits = max 1 ((1 lsl n) / 4) in
  if String.length s <> digits then
    invalid_arg
      (Printf.sprintf "Truth_table.of_hex: expected %d digits" digits);
  let words = Array.make (words_for n) 0 in
  String.iteri
    (fun pos c ->
      let d = hex_digit c in
      let nib = digits - 1 - pos in
      let base = nib * 4 in
      for b = 0 to 3 do
        let i = base + b in
        if i < 1 lsl n && (d lsr b) land 1 = 1 then
          words.(i lsr 5) <- words.(i lsr 5) lor (1 lsl (i land 31))
      done)
    s;
  { n; words = (words.(Array.length words - 1) <-
                  words.(Array.length words - 1) land last_word_mask n;
                words) }

let to_hex t =
  let digits = max 1 (num_bits t / 4) in
  String.init digits (fun pos ->
      let nib = digits - 1 - pos in
      let v = ref 0 in
      for b = 3 downto 0 do
        let i = (nib * 4) + b in
        v := (!v lsl 1) lor (if i < num_bits t && get t i then 1 else 0)
      done;
      "0123456789abcdef".[!v])

(* splitmix64, truncated to 32-bit words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let random ~seed n =
  check_vars n;
  let state = ref seed in
  let words =
    Array.init (words_for n) (fun _ ->
        Int64.to_int (Int64.logand (splitmix64 state) 0xFFFFFFFFL))
  in
  words.(Array.length words - 1) <-
    words.(Array.length words - 1) land last_word_mask n;
  { n; words }

let popcount32 x =
  (* SWAR population count over a 32-bit value held in an int. *)
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let count_ones t =
  Array.fold_left (fun acc w -> acc + popcount32 w) 0 t.words

let is_const0 t = Array.for_all (fun w -> w = 0) t.words

let is_const1 t =
  let last = Array.length t.words - 1 in
  let ok = ref true in
  for w = 0 to last - 1 do
    if t.words.(w) <> word_mask then ok := false
  done;
  !ok && t.words.(last) = last_word_mask t.n

let equal a b = a.n = b.n && a.words = b.words
let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.n, t.words)

let pp ppf t = Format.fprintf ppf "%d'b%s" t.n (to_bin t)

let same_arity a b op =
  if a.n <> b.n then invalid_arg ("Truth_table." ^ op ^ ": arity mismatch")

let map2 op a b =
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> op a.words.(i) b.words.(i)) }

let not_ t =
  let words = Array.map (fun w -> lnot w land word_mask) t.words in
  words.(Array.length words - 1) <- words.(Array.length words - 1) land last_word_mask t.n;
  { t with words }

let and_ a b = same_arity a b "and_"; map2 (land) a b
let or_ a b = same_arity a b "or_"; map2 (lor) a b
let xor a b = same_arity a b "xor"; map2 (lxor) a b
let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)
let xnor a b = not_ (xor a b)
let implies a b = same_arity a b "implies"; or_ (not_ a) b

let mux s a b =
  same_arity s a "mux";
  same_arity s b "mux";
  or_ (and_ s a) (and_ (not_ s) b)

let cofactor t i b =
  if i < 0 || i >= t.n then invalid_arg "Truth_table.cofactor";
  (* Copy the half where variable i = b over the other half. *)
  let words = Array.copy t.words in
  if i < 5 then begin
    let m = var_masks.(i) in
    let shift = 1 lsl i in
    for w = 0 to Array.length words - 1 do
      let x = words.(w) in
      words.(w) <-
        (if b then
           let hi = x land m in
           hi lor (hi lsr shift)
         else
           let lo = x land lnot m land word_mask in
           lo lor (lo lsl shift) land word_mask)
    done;
    words.(Array.length words - 1) <-
      words.(Array.length words - 1) land last_word_mask t.n
  end else begin
    let run = 1 lsl (i - 5) in
    for w = 0 to Array.length words - 1 do
      let in_hi = (w / run) land 1 = 1 in
      let src = if b then (if in_hi then w else w + run)
                else if in_hi then w - run else w in
      words.(w) <- t.words.(src)
    done
  end;
  { t with words }

let depends_on t i =
  not (equal (cofactor t i true) (cofactor t i false))

let support t =
  List.filter (depends_on t) (List.init t.n (fun i -> i))

let shannon_expand t i = (cofactor t i true, cofactor t i false)

let permute t p =
  if Array.length p <> t.n then invalid_arg "Truth_table.permute";
  of_fun t.n (fun x ->
      let y = Array.make t.n false in
      Array.iteri (fun i pi -> y.(pi) <- x.(i)) p;
      (* The result at assignment x behaves as t at assignment where
         variable p.(i) takes x.(i)'s value. *)
      eval t y)

let extend t n =
  if n < t.n then invalid_arg "Truth_table.extend";
  if n = t.n then t
  else begin
    check_vars n;
    let words = Array.make (words_for n) 0 in
    let src_bits = num_bits t in
    (* Tile the original table across the larger space. *)
    if src_bits >= word_bits then begin
      let src_words = Array.length t.words in
      for w = 0 to Array.length words - 1 do
        words.(w) <- t.words.(w mod src_words)
      done
    end else begin
      let tile = ref t.words.(0) in
      let width = ref src_bits in
      while !width < word_bits do
        tile := !tile lor (!tile lsl !width);
        width := !width * 2
      done;
      tile := !tile land word_mask;
      Array.fill words 0 (Array.length words) !tile;
      words.(Array.length words - 1) <- !tile land last_word_mask n
    end;
    { n; words }
  end

let insert_var t p =
  let n = t.n in
  if p < 0 || p > n then invalid_arg "Truth_table.insert_var";
  check_vars (n + 1);
  let words = Array.make (words_for (n + 1)) 0 in
  if p >= 5 then begin
    (* The new variable lives in the word index: output word [w] copies
       the input word with bit (p - 5) removed from its index. *)
    let b = p - 5 in
    for w = 0 to Array.length words - 1 do
      let iw = ((w lsr (b + 1)) lsl b) lor (w land ((1 lsl b) - 1)) in
      words.(w) <- (if n <= 5 then t.words.(0) else t.words.(iw))
    done
  end
  else begin
    (* The new variable lives inside the word: each output word draws 16
       input bits (input variables 0..3 plus the word-selecting high
       variables) and stretches them by duplicating blocks of 2^p. *)
    for w = 0 to Array.length words - 1 do
      let src_word = if n <= 4 then t.words.(0) else t.words.(w lsr 1) in
      let src_half =
        if n <= 4 then src_word land 0xFFFF
        else if w land 1 = 1 then (src_word lsr 16) land 0xFFFF
        else src_word land 0xFFFF
      in
      let acc = ref 0 in
      for i = 0 to min 31 ((1 lsl (n + 1)) - 1) do
        let j = ((i lsr (p + 1)) lsl p) lor (i land ((1 lsl p) - 1)) in
        if (src_half lsr j) land 1 = 1 then acc := !acc lor (1 lsl i)
      done;
      words.(w) <- !acc
    done
  end;
  words.(Array.length words - 1) <-
    words.(Array.length words - 1) land last_word_mask (n + 1);
  { n = n + 1; words }

let remap t ~positions ~arity =
  if Array.length positions <> t.n then invalid_arg "Truth_table.remap";
  Array.iteri
    (fun i p ->
      if p < 0 || p >= arity || (i > 0 && p <= positions.(i - 1)) then
        invalid_arg "Truth_table.remap: positions must be increasing")
    positions;
  (* Insert the missing (don't-care) positions in ascending order; each
     insertion uses its final position, which earlier insertions cannot
     disturb because they land strictly below. *)
  let hit = Array.make arity false in
  Array.iter (fun p -> hit.(p) <- true) positions;
  let out = ref t in
  for p = 0 to arity - 1 do
    if not hit.(p) then out := insert_var !out p
  done;
  !out

let compose f gs =
  if Array.length gs <> f.n then invalid_arg "Truth_table.compose";
  if Array.length gs = 0 then
    (* Constant function of zero variables: keep as-is. *)
    f
  else begin
    let m = gs.(0).n in
    Array.iter (fun g -> if g.n <> m then invalid_arg "Truth_table.compose") gs;
    (* Evaluate f over the gs signatures word by word: for each assignment
       of the m outer variables, form the index into f from the g values.
       Done in 32-bit blocks to stay linear. *)
    let out_words = Array.make (words_for m) 0 in
    let nw = words_for m in
    let gwords = Array.map (fun g -> g.words) gs in
    for w = 0 to nw - 1 do
      let acc = ref 0 in
      for bit = 0 to word_bits - 1 do
        let idx = ref 0 in
        for v = f.n - 1 downto 0 do
          idx := (!idx lsl 1) lor ((gwords.(v).(w) lsr bit) land 1)
        done;
        if get f !idx then acc := !acc lor (1 lsl bit)
      done;
      out_words.(w) <- !acc
    done;
    out_words.(nw - 1) <- out_words.(nw - 1) land last_word_mask m;
    { n = m; words = out_words }
  end

let get_word t w = t.words.(w)

let of_words n words =
  check_vars n;
  if Array.length words <> words_for n then invalid_arg "Truth_table.of_words";
  let words = Array.map (fun w -> w land word_mask) words in
  words.(Array.length words - 1) <-
    words.(Array.length words - 1) land last_word_mask n;
  { n; words }

let to_words t = Array.copy t.words
