module T = Truth_table

type transform = {
  input_negations : int;
  permutation : int array;
  output_negation : bool;
}

let identity_transform n =
  {
    input_negations = 0;
    permutation = Array.init n (fun i -> i);
    output_negation = false;
  }

let apply t tr =
  let n = T.num_vars t in
  if Array.length tr.permutation <> n then invalid_arg "Npn.apply";
  (* Negate chosen inputs, permute, then negate the output. *)
  let negated =
    T.of_fun n (fun x ->
        let y =
          Array.mapi
            (fun i b -> if (tr.input_negations lsr i) land 1 = 1 then not b else b)
            x
        in
        T.eval t y)
  in
  let permuted =
    T.of_fun n (fun x ->
        let y = Array.make n false in
        for i = 0 to n - 1 do
          y.(tr.permutation.(i)) <- x.(i)
        done;
        T.eval negated y)
  in
  if tr.output_negation then T.not_ permuted else permuted

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let canonical t =
  let n = T.num_vars t in
  if n > 6 then invalid_arg "Npn.canonical: more than 6 variables";
  let perms = permutations (List.init n (fun i -> i)) in
  let best = ref None in
  List.iter
    (fun perm ->
      let permutation = Array.of_list perm in
      for negs = 0 to (1 lsl n) - 1 do
        List.iter
          (fun output_negation ->
            let tr = { input_negations = negs; permutation; output_negation } in
            let candidate = apply t tr in
            match !best with
            | Some (b, _) when T.compare candidate b >= 0 -> ()
            | _ -> best := Some (candidate, tr))
          [ false; true ]
      done)
    perms;
  match !best with Some r -> r | None -> assert false

let inverse tr =
  let n = Array.length tr.permutation in
  let inv_perm = Array.make n 0 in
  Array.iteri (fun i p -> inv_perm.(p) <- i) tr.permutation;
  (* Applying tr: x -> neg -> perm -> outneg. The inverse permutes back,
     then negates the (re-indexed) inputs. Input i of the inverse's
     argument corresponds to original variable tr.permutation.(i), so
     the inverse's negation mask is the original mask pushed through the
     permutation. *)
  let negs = ref 0 in
  for i = 0 to n - 1 do
    if (tr.input_negations lsr i) land 1 = 1 then
      negs := !negs lor (1 lsl inv_perm.(i))
  done;
  {
    input_negations = !negs;
    permutation = inv_perm;
    output_negation = tr.output_negation;
  }

let classify fns =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let c, _ = canonical f in
      let bucket = try Hashtbl.find tbl c with Not_found -> [] in
      Hashtbl.replace tbl c (f :: bucket))
    fns;
  Hashtbl.fold (fun c fs acc -> (c, List.rev fs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> T.compare a b)
