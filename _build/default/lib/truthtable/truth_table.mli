(** Bit-packed truth tables.

    A truth table over [n] variables stores [2^n] function values, one per
    input assignment. Bit index [i] holds the value of the function at the
    assignment whose binary encoding is [i], with variable [0] the least
    significant position. Tables are immutable; all operators return fresh
    tables. Variables beyond [num_vars] do not exist and indexing past
    [2^num_vars - 1] is a programming error (checked by assertion).

    This is the substrate shared by the STP logic matrices (a logic matrix
    [M] in [M^{2 x 2^n}] is exactly a truth table, see {!Stp.Logic_matrix})
    and by both circuit simulators. *)

type t

(** {1 Construction} *)

val const0 : int -> t
(** [const0 n] is the constant-false function on [n] variables.
    Raises [Invalid_argument] if [n < 0] or [n > 24]. *)

val const1 : int -> t
(** [const1 n] is the constant-true function on [n] variables. *)

val nth_var : int -> int -> t
(** [nth_var n i] is the projection of variable [i] on [n] variables,
    i.e. the function [fun x -> x.(i)]. Requires [0 <= i < n]. *)

val of_fun : int -> (bool array -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] assignments. The array given
    to [f] has length [n] with index [i] holding variable [i]. *)

val of_bin : string -> t
(** [of_bin s] parses a truth table from its binary string written MSB
    first, as in the paper: ["0111"] is the 2-input NAND whose value at
    assignment (1,1) is the leftmost character. The length of [s] must be a
    power of two. Raises [Invalid_argument] otherwise. *)

val of_hex : int -> string -> t
(** [of_hex n s] parses an [n]-variable table from hexadecimal, MSB first,
    e.g. [of_hex 2 "7"] is NAND, [of_hex 3 "e8"] is the majority of three.
    The string must supply exactly [max 1 (2^n / 4)] hex digits. *)

val random : seed:int64 -> int -> t
(** [random ~seed n] is a deterministic pseudo-random table on [n]
    variables (splitmix64 stream). *)

(** {1 Observation} *)

val num_vars : t -> int
val num_bits : t -> int

val get : t -> int -> bool
(** [get t i] is the function value at assignment [i]. *)

val set : t -> int -> bool -> t
(** [set t i b] is [t] with the value at assignment [i] replaced by [b]. *)

val eval : t -> bool array -> bool
(** [eval t x] is the value at the assignment given per-variable.
    [x] must have length [num_vars t]. *)

val to_bin : t -> string
(** MSB-first binary string, inverse of {!of_bin}. *)

val to_hex : t -> string
(** MSB-first hexadecimal string, inverse of {!of_hex}. *)

val count_ones : t -> int

val is_const0 : t -> bool
val is_const1 : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [<n>'b<binary>], e.g. [2'b0111]. *)

(** {1 Boolean operators} *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xnor : t -> t -> t
val implies : t -> t -> t
val mux : t -> t -> t -> t
(** [mux s a b] is [if s then a else b], bitwise. *)

(** {1 Structure} *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] is the function with variable [i] fixed to [b]. The
    result still ranges over [n] variables but no longer depends on [i]. *)

val depends_on : t -> int -> bool
(** Whether the function semantically depends on variable [i]. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val shannon_expand : t -> int -> t * t
(** [shannon_expand t i] is [(cofactor t i true, cofactor t i false)]. *)

val permute : t -> int array -> t
(** [permute t p] renames variables: variable [i] of the result behaves as
    variable [p.(i)] of [t]. [p] must be a permutation of [0..n-1]. *)

val extend : t -> int -> t
(** [extend t n] re-expresses [t] over [n >= num_vars t] variables; the
    new variables are don't-cares. *)

val insert_var : t -> int -> t
(** [insert_var t p] adds a fresh don't-care variable at position [p]
    (0 <= p <= num_vars t), shifting variables at and above [p] up by
    one. [insert_var t (num_vars t)] = [extend t (num_vars t + 1)]. *)

val remap : t -> positions:int array -> arity:int -> t
(** [remap t ~positions ~arity] re-expresses [t] over [arity] variables
    where old variable [i] becomes variable [positions.(i)]; [positions]
    must be strictly increasing and fit below [arity]. The variables not
    hit by [positions] are don't-cares. This is how a window signature
    over a node's own support is lifted onto a joint support. *)

val compose : t -> t array -> t
(** [compose f gs] substitutes table [gs.(i)] for variable [i] of [f]. All
    tables in [gs] must have the same variable count [m]; the result has
    [m] variables. This is function composition — the STP product of the
    logic matrix of [f] with those of the [gs]. *)

(** {1 Word access (for the simulators)} *)

val word_bits : int
(** Number of pattern bits carried per word ([32]). *)

val num_words : t -> int

val get_word : t -> int -> int
(** [get_word t w] is the [w]-th 32-bit block of the table, in the low bits
    of the returned integer. *)

val of_words : int -> int array -> t
(** [of_words n words] builds a table over [n] variables directly from its
    32-bit blocks. The array is copied; excess high bits of the final word
    are masked off. *)

val to_words : t -> int array
(** A copy of the underlying 32-bit blocks. *)
