(** NPN classification of small functions.

    Two functions are NPN-equivalent when one maps to the other by
    negating inputs (N), permuting inputs (P), and possibly negating the
    output (N). The canonical representative here is the
    lexicographically smallest truth table over all [2^n * n! * 2]
    transforms — exact, intended for [n <= 5] (the sizes rewriting and
    LUT libraries care about). *)

type transform = {
  input_negations : int;  (** bit [i] set = negate input [i] (applied first) *)
  permutation : int array;
      (** [permutation.(i)] = which original variable feeds position [i] *)
  output_negation : bool;
}

val identity_transform : int -> transform

val apply : Truth_table.t -> transform -> Truth_table.t
(** [apply t tr] — result position [i] behaves as original variable
    [tr.permutation.(i)], negated per [tr.input_negations] (indexed by
    the {e original} variable), output complemented last. *)

val canonical : Truth_table.t -> Truth_table.t * transform
(** [canonical t] is [(c, tr)] with [c = apply t tr] minimal. Raises
    [Invalid_argument] above 6 variables (6 is already 92160 transforms;
    use with care). *)

val inverse : transform -> transform
(** [apply (apply t tr) (inverse tr) = t]. *)

val classify : Truth_table.t list -> (Truth_table.t * Truth_table.t list) list
(** Groups functions by canonical representative. *)
