lib/truthtable/npn.ml: Array Hashtbl List Truth_table
