lib/truthtable/truth_table.ml: Array Char Format Hashtbl Int64 List Printf Stdlib String
