lib/truthtable/truth_table.mli: Format
