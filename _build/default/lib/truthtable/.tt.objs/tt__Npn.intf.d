lib/truthtable/npn.mli: Truth_table
