lib/core/stp_sweep.ml: Aig Gen Klut Report Sat Sim Stp Sutil Sweep Synth Tt
