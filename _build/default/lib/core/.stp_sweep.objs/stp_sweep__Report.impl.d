lib/core/report.ml: Float List Printf Stdlib String Sys
