lib/core/report.mli:
