lib/synth/exact.ml: Aig Array List Option Sat Tt
