lib/synth/exact.mli: Aig Tt
