lib/synth/rewrite.ml: Aig Array Exact Hashtbl Klut List Tt
