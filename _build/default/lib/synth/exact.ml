module A = Aig.Network
module L = Aig.Lit
module T = Tt.Truth_table
module S = Sat.Solver

type result = { network : A.t; gates : int }

(* A selection choice for one gate: fanin operands [j < k] (operand ids:
   0..n-1 = inputs, n+g = gate g) with polarities. *)
type choice = { j : int; pj : bool; k : int; pk : bool; var : int }

let network_of n choices out_compl =
  let net = A.create () in
  let inputs = Array.init n (fun _ -> A.add_pi net) in
  let operand = Array.make (n + List.length choices) L.false_ in
  Array.iteri (fun i l -> operand.(i) <- l) inputs;
  List.iteri
    (fun g c ->
      let la = L.xor_compl operand.(c.j) c.pj in
      let lb = L.xor_compl operand.(c.k) c.pk in
      operand.(n + g) <- A.add_and net la lb)
    choices;
  let top = operand.(n + List.length choices - 1) in
  ignore (A.add_po net (L.xor_compl top out_compl));
  net

(* Ladder (sequential) at-most-one over a literal list. *)
let at_most_one solver lits =
  match lits with
  | [] | [ _ ] -> ()
  | first :: rest ->
    let prev = ref first in
    let carry = ref None in
    List.iter
      (fun l ->
        let c = S.lit (S.new_var solver) in
        (match !carry with
         | None -> S.add_clause solver [ S.neg !prev; c ]
         | Some prev_c ->
           S.add_clause solver [ S.neg !prev; c ];
           S.add_clause solver [ S.neg prev_c; c ];
           S.add_clause solver [ S.neg prev_c; S.neg !prev ]);
        S.add_clause solver [ S.neg c; S.neg l ];
        carry := Some c;
        prev := l)
      rest

let try_gates ?conflict_limit tt r =
  let n = T.num_vars tt in
  let minterms = 1 lsl n in
  let solver = S.create () in
  (* Truth variables per gate per minterm. *)
  let x = Array.init r (fun _ -> Array.init minterms (fun _ -> S.new_var solver)) in
  (* Output polarity. *)
  let q = S.new_var solver in
  (* Selection variables. *)
  let choices = Array.make r [] in
  for g = 0 to r - 1 do
    let ops = n + g in
    let cs = ref [] in
    for j = 0 to ops - 1 do
      for k = j + 1 to ops - 1 do
        List.iter
          (fun (pj, pk) ->
            let var = S.new_var solver in
            cs := { j; pj; k; pk; var } :: !cs)
          [ (false, false); (false, true); (true, false); (true, true) ]
      done
    done;
    choices.(g) <- List.rev !cs;
    let sel_lits = List.map (fun c -> S.lit c.var) choices.(g) in
    S.add_clause solver sel_lits;
    at_most_one solver sel_lits
  done;
  (* Semantics: under selection c of gate g, for every minterm t,
     x_{g,t} <-> la(t) & lb(t). Operand literals over minterm t are
     constants for inputs and x variables for gates. *)
  let operand_value op pol t =
    if op < n then
      (* constant: value of input op in minterm t, xor polarity *)
      `Const ((t lsr op) land 1 = 1 <> pol)
    else `Var (S.lit_of x.(op - n).(t) pol)
  in
  for g = 0 to r - 1 do
    List.iter
      (fun c ->
        let s = S.lit c.var in
        for t = 0 to minterms - 1 do
          let xg = S.lit x.(g).(t) in
          let a = operand_value c.j c.pj t in
          let b = operand_value c.k c.pk t in
          match (a, b) with
          | `Const av, `Const bv ->
            (* gate output is the constant av && bv under s *)
            if av && bv then S.add_clause solver [ S.neg s; xg ]
            else S.add_clause solver [ S.neg s; S.neg xg ]
          | `Const av, `Var lb ->
            if av then begin
              S.add_clause solver [ S.neg s; S.neg xg; lb ];
              S.add_clause solver [ S.neg s; xg; S.neg lb ]
            end
            else S.add_clause solver [ S.neg s; S.neg xg ]
          | `Var la, `Const bv ->
            if bv then begin
              S.add_clause solver [ S.neg s; S.neg xg; la ];
              S.add_clause solver [ S.neg s; xg; S.neg la ]
            end
            else S.add_clause solver [ S.neg s; S.neg xg ]
          | `Var la, `Var lb ->
            S.add_clause solver [ S.neg s; S.neg xg; la ];
            S.add_clause solver [ S.neg s; S.neg xg; lb ];
            S.add_clause solver [ S.neg s; xg; S.neg la; S.neg lb ]
        done)
      choices.(g)
  done;
  (* Tie the top gate to the target function modulo output polarity q. *)
  for t = 0 to minterms - 1 do
    let xt = S.lit x.(r - 1).(t) in
    let want = T.get tt t in
    (* q=0: x = want; q=1: x = not want *)
    let ql = S.lit q in
    if want then begin
      S.add_clause solver [ ql; xt ];
      S.add_clause solver [ S.neg ql; S.neg xt ]
    end
    else begin
      S.add_clause solver [ ql; S.neg xt ];
      S.add_clause solver [ S.neg ql; xt ]
    end
  done;
  match S.solve ?conflict_limit solver with
  | S.Sat ->
    let picked =
      List.init r (fun g ->
          match
            List.find_opt (fun c -> S.value solver (S.lit c.var)) choices.(g)
          with
          | Some c -> c
          | None -> failwith "Exact: no selection in model")
    in
    let out_compl = S.value solver (S.lit q) in
    Some (network_of n picked out_compl)
  | S.Unsat -> None
  | S.Unknown -> None

(* Zero-gate implementations: constants and (complemented) projections. *)
let trivial tt =
  let n = T.num_vars tt in
  let with_po driver_of_inputs =
    let net = A.create () in
    let inputs = Array.init n (fun _ -> A.add_pi net) in
    ignore (A.add_po net (driver_of_inputs inputs));
    Some net
  in
  if T.is_const0 tt then with_po (fun _ -> L.false_)
  else if T.is_const1 tt then with_po (fun _ -> L.true_)
  else begin
    let found = ref None in
    for v = 0 to n - 1 do
      if !found = None then
        if T.equal tt (T.nth_var n v) then
          found := with_po (fun inputs -> inputs.(v))
        else if T.equal tt (T.not_ (T.nth_var n v)) then
          found := with_po (fun inputs -> L.not_ inputs.(v))
    done;
    !found
  end

let synthesize ?(max_gates = 12) ?conflict_limit tt =
  match trivial tt with
  | Some network -> Some { network; gates = 0 }
  | None ->
    let rec go r =
      if r > max_gates then None
      else
        match try_gates ?conflict_limit tt r with
        | Some network -> Some { network; gates = r }
        | None -> go (r + 1)
    in
    go 1

let minimum_gates ?max_gates ?conflict_limit tt =
  Option.map (fun r -> r.gates) (synthesize ?max_gates ?conflict_limit tt)
