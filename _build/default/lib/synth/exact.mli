(** SAT-based exact synthesis of minimum AIGs for small functions.

    A per-call [conflict_limit] turns long UNSAT proofs into give-ups —
    the rewriting pass runs with a modest budget. Given a truth table
    over up to ~5 variables, finds an AND-inverter
    implementation with the minimum number of AND gates (output
    complementation is free, as everywhere in the AIG). The encoding is
    the classic selection-variable scheme: gate [g] picks an ordered
    fanin pair with polarities among the inputs and earlier gates;
    per-minterm value variables tie the selections to the target
    function; gate counts are tried in increasing order.

    This is the repository's rendition of the authors' companion "exact
    synthesis with an STP circuit solver" line of work and the engine
    behind {!Rewrite}. *)

type result = {
  network : Aig.Network.t; (** inputs in variable order, single PO *)
  gates : int;
}

val synthesize :
  ?max_gates:int -> ?conflict_limit:int -> Tt.Truth_table.t -> result option
(** Minimum-gate implementation, or [None] if none exists within
    [max_gates] (default 12). Constants and (complemented) projections
    synthesize to zero gates. *)

val minimum_gates :
  ?max_gates:int -> ?conflict_limit:int -> Tt.Truth_table.t -> int option
