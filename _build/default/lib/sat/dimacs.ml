exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_int v =
    if v = 0 then begin
      clauses := List.rev !current :: !clauses;
      current := []
    end
    else begin
      let var = abs v - 1 in
      if !num_vars >= 0 && var >= !num_vars then
        fail "literal %d out of declared range" v;
      current := Solver.lit_of var (v < 0) :: !current
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ "p"; "cnf"; v; c ] ->
          (match (int_of_string_opt v, int_of_string_opt c) with
           | Some v, Some c ->
             num_vars := v;
             num_clauses := c
           | _ -> fail "bad p line: %s" line)
        | _ -> fail "bad p line: %s" line
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some v -> handle_int v
               | None -> fail "not an integer: %s" tok))
    lines;
  if !current <> [] then fail "clause not terminated by 0";
  if !num_vars < 0 then fail "missing p cnf header";
  (!num_vars, List.rev !clauses)

let load solver text =
  let num_vars, clauses = parse text in
  for _ = 1 to num_vars - Solver.num_vars solver do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses

let print ~num_vars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let v = (l lsr 1) + 1 in
          Buffer.add_string buf
            (Printf.sprintf "%d " (if l land 1 = 1 then -v else v)))
        clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf
