lib/sat/tseitin.ml: Aig Array Solver
