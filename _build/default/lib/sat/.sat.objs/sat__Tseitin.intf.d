lib/sat/tseitin.mli: Aig Solver
