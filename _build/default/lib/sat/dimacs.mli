(** DIMACS CNF parsing and printing.

    Bridges the solver's packed literals and the textual convention
    (1-based variables, sign = polarity). Used by the test suite and the
    [sat] CLI. *)

exception Parse_error of string

val parse : string -> int * int list list
(** [parse text] is [(num_vars, clauses)] with solver-packed literals
    (variable [i] of the file becomes solver variable [i - 1]). *)

val load : Solver.t -> string -> unit
(** Parses and adds everything to the solver, creating variables as
    needed. *)

val print : num_vars:int -> int list list -> string
(** Solver-packed clauses back to DIMACS text. *)
