(** Signal activity statistics over simulation signatures.

    Section IV-A of the paper characterizes initial-pattern quality by
    signature properties: constants (all zeros/ones) and high toggle
    rates (the footnote defines toggle rate as bit-toggles over the
    bit-string length). These metrics drive the SAT-guided pattern
    rounds and are reported by the tour example. *)

type t = {
  ones : int;  (** bits set in the signature *)
  toggles : int;  (** positions where consecutive patterns differ *)
  num_patterns : int;
}

val of_signature : num_patterns:int -> int array -> t

val of_table : num_patterns:int -> Signature.table -> t array
(** Per-node statistics; constant/empty rows yield zeros. *)

val toggle_rate : t -> float
(** The paper's footnote: toggles / (length - 1); 0 for length <= 1. *)

val bias : t -> float
(** Fraction of ones, in [0, 1]. *)

val is_constant : t -> bool
(** All-zeros or all-ones signature. *)

val near_constant : ?threshold:float -> t -> bool
(** Bias within [threshold] (default 0.02) of 0 or 1 — round two of the
    guided-pattern generation targets these. *)
