module A = Aig.Network
module L = Aig.Lit
module T = Tt.Truth_table

let signatures ?(node_budget = 600) net ~targets ~max_leaves =
  let max_leaves = min max_leaves 16 in
  let cone, truncated = Aig.Cone.tfi_bounded net targets ~limit:node_budget in
  if truncated then None
  else begin
    let leaves = List.filter (A.is_pi net) cone in
    if List.length leaves > max_leaves then None
    else begin
      let k = List.length leaves in
      let tts = Hashtbl.create 64 in
      Hashtbl.replace tts 0 (T.const0 k);
      List.iteri (fun i l -> Hashtbl.replace tts l (T.nth_var k i)) leaves;
      List.iter
        (fun nd ->
          if A.is_and net nd then begin
            let f l =
              let t = Hashtbl.find tts (L.node l) in
              if L.is_compl l then T.not_ t else t
            in
            Hashtbl.replace tts nd
              (T.and_ (f (A.fanin0 net nd)) (f (A.fanin1 net nd)))
          end)
        cone;
      let out =
        Array.of_list
          (List.map
             (fun t ->
               match Hashtbl.find_opt tts t with
               | Some tt -> tt
               | None ->
                 (* A target outside its own cone list can only be the
                    constant node. *)
                 assert (t = 0);
                 T.const0 k)
             targets)
      in
      Some (leaves, out)
    end
  end

let equivalent_in_window ?node_budget net a b ~max_leaves =
  match signatures ?node_budget net ~targets:[ a; b ] ~max_leaves with
  | None -> `Unknown
  | Some (_, [| ta; tb |]) ->
    if T.equal ta tb then `Equal
    else if T.equal ta (T.not_ tb) then `Compl
    else `Different
  | Some _ -> assert false
