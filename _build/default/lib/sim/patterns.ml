module Rng = Sutil.Rng

let word_bits = 32
let word_mask = 0xFFFFFFFF

type t = {
  num_pis : int;
  mutable n : int; (* patterns *)
  mutable words : int array array; (* pi -> packed bits; shared capacity *)
}

let words_for n = (n + word_bits - 1) / word_bits

let create ~num_pis =
  { num_pis; n = 0; words = Array.init num_pis (fun _ -> Array.make 1 0) }

let num_pis t = t.num_pis
let num_patterns t = t.n
let num_words t = words_for t.n

let ensure t n =
  let need = max 1 (words_for n) in
  if t.num_pis > 0 && Array.length t.words.(0) < need then begin
    let cap = max need (2 * Array.length t.words.(0)) in
    t.words <-
      Array.map
        (fun old ->
          let w = Array.make cap 0 in
          Array.blit old 0 w 0 (Array.length old);
          w)
        t.words
  end

let get t ~pi ~pattern =
  if pattern < 0 || pattern >= t.n then invalid_arg "Patterns.get";
  (t.words.(pi).(pattern lsr 5) lsr (pattern land 31)) land 1 = 1

let word t ~pi w =
  if w < 0 || w >= num_words t then invalid_arg "Patterns.word";
  t.words.(pi).(w)

let set_bit t pi pattern b =
  let w = pattern lsr 5 and off = pattern land 31 in
  if b then t.words.(pi).(w) <- t.words.(pi).(w) lor (1 lsl off)
  else t.words.(pi).(w) <- t.words.(pi).(w) land lnot (1 lsl off)

let add_pattern t x =
  if Array.length x <> t.num_pis then invalid_arg "Patterns.add_pattern";
  ensure t (t.n + 1);
  let i = t.n in
  t.n <- t.n + 1;
  Array.iteri (fun pi b -> set_bit t pi i b) x

let add_pattern_randomized t rng forced =
  if Array.length forced <> t.num_pis then
    invalid_arg "Patterns.add_pattern_randomized";
  ensure t (t.n + 1);
  let i = t.n in
  t.n <- t.n + 1;
  Array.iteri
    (fun pi v ->
      let b = match v with Some b -> b | None -> Rng.bool rng in
      set_bit t pi i b)
    forced

let random ~seed ~num_pis ~num_patterns =
  let t = create ~num_pis in
  ensure t num_patterns;
  t.n <- num_patterns;
  let rng = Rng.create seed in
  let nw = words_for num_patterns in
  for pi = 0 to num_pis - 1 do
    for w = 0 to nw - 1 do
      t.words.(pi).(w) <- Rng.bits32 rng
    done;
    (* Mask the tail so unused bits stay zero. *)
    let tail = num_patterns land 31 in
    if tail <> 0 then
      t.words.(pi).(nw - 1) <- t.words.(pi).(nw - 1) land ((1 lsl tail) - 1)
  done;
  t

let exhaustive ~num_pis =
  if num_pis < 0 || num_pis > 20 then invalid_arg "Patterns.exhaustive";
  let n = 1 lsl num_pis in
  let t = create ~num_pis in
  ensure t n;
  t.n <- n;
  (* PI b toggles with period 2^b: this is exactly Truth_table.nth_var's
     bit layout, so windowed signatures are truth tables directly. *)
  for pi = 0 to num_pis - 1 do
    for i = 0 to n - 1 do
      if (i lsr pi) land 1 = 1 then set_bit t pi i true
    done
  done;
  t

let of_rows rows =
  match rows with
  | [] -> invalid_arg "Patterns.of_rows: no rows"
  | first :: _ ->
    let len = String.length first in
    if not (List.for_all (fun r -> String.length r = len) rows) then
      invalid_arg "Patterns.of_rows: unequal lengths";
    let t = create ~num_pis:(List.length rows) in
    ensure t len;
    t.n <- len;
    List.iteri
      (fun pi row ->
        String.iteri
          (fun i c ->
            match c with
            | '1' -> set_bit t pi i true
            | '0' -> ()
            | _ -> invalid_arg "Patterns.of_rows: not binary")
          row)
      rows;
    t

let pattern t i =
  if i < 0 || i >= t.n then invalid_arg "Patterns.pattern";
  Array.init t.num_pis (fun pi -> get t ~pi ~pattern:i)

let copy t = { t with words = Array.map Array.copy t.words }

let _ = word_mask
