(** Incremental AIG simulation.

    The paper attributes mockturtle's speed on AIGs to incremental
    simulation: when patterns are appended, only the trailing block of
    each signature is recomputed. This module provides that capability —
    it is the machinery behind counter-example resimulation at word
    granularity, and the ablation benches compare it against full
    resimulation.

    The simulator owns its pattern set; append patterns, then call
    {!refresh} (or any accessor, which refreshes on demand). *)

type t

val create : Aig.Network.t -> Patterns.t -> t
(** Simulates fully once. The pattern set is used in place — appending
    through {!add_pattern} keeps signatures consistent; mutating the set
    behind the simulator's back is not supported. *)

val num_patterns : t -> int

val add_pattern : t -> bool array -> unit
(** Appends one assignment; signatures become stale until refresh. *)

val refresh : t -> unit
(** Recomputes exactly the stale trailing words of every signature. *)

val signature : t -> int -> int array
(** Signature of a node (refreshing first if needed). The returned array
    is live until the next [add_pattern]+[refresh]; copy to retain. *)

val signatures : t -> Signature.table

val words_recomputed : t -> int
(** Total signature words recomputed since creation (excluding the
    initial full simulation) — the quantity incrementality minimizes. *)
