module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table

let word_mask = 0xFFFFFFFF

let simulate_aig net pats =
  let n = A.num_nodes net in
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i ->
        tbl.(nd) <- Array.init nw (fun w -> Patterns.word pats ~pi:i w)
      | A.And ->
        let f0 = A.fanin0 net nd and f1 = A.fanin1 net nd in
        let s0 = tbl.(L.node f0) and s1 = tbl.(L.node f1) in
        let c0 = L.is_compl f0 and c1 = L.is_compl f1 in
        let out = Array.make nw 0 in
        for w = 0 to nw - 1 do
          let a = Array.unsafe_get s0 w in
          let a = if c0 then lnot a land word_mask else a in
          let b = Array.unsafe_get s1 w in
          let b = if c1 then lnot b land word_mask else b in
          Array.unsafe_set out w (a land b)
        done;
        tbl.(nd) <- out);
  (* Complemented inputs leak set bits beyond num_patterns; clear them so
     signature comparison stays meaningful. *)
  let np = Patterns.num_patterns pats in
  Array.iter (fun s -> if Array.length s > 0 then Signature.num_patterns_mask np s) tbl;
  tbl

let simulate_klut net pats =
  let n = K.num_nodes net in
  let np = Patterns.num_patterns pats in
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  K.iter_nodes net (fun nd ->
      if K.is_pi net nd then
        tbl.(nd) <-
          Array.init nw (fun w -> Patterns.word pats ~pi:(K.pi_index net nd) w)
      else if K.is_lut net nd then begin
        let fanins = K.fanins net nd in
        let f = K.func net nd in
        let k = Array.length fanins in
        let out = Array.make nw 0 in
        let inputs = Array.map (fun fi -> tbl.(fi)) fanins in
        (* Per-pattern bit extraction and table lookup — what an
           off-the-shelf bitwise simulator does with a k-LUT. *)
        for p = 0 to np - 1 do
          let w = p lsr 5 and off = p land 31 in
          let idx = ref 0 in
          for j = k - 1 downto 0 do
            idx := (!idx lsl 1) lor ((inputs.(j).(w) lsr off) land 1)
          done;
          if T.get f !idx then out.(w) <- out.(w) lor (1 lsl off)
        done;
        tbl.(nd) <- out
      end);
  tbl

let po_signature tbl ~num_patterns ~lit =
  let s = tbl.(L.node lit) in
  if L.is_compl lit then Signature.complement_of ~num_patterns s
  else Array.copy s
