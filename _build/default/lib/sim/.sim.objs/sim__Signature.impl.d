lib/sim/signature.ml: Array Hashtbl Tt
