lib/sim/signature.mli: Tt
