lib/sim/window.mli: Aig Tt
