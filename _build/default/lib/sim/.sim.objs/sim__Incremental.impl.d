lib/sim/incremental.ml: Aig Array Patterns
