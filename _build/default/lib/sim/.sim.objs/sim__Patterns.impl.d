lib/sim/patterns.ml: Array List String Sutil
