lib/sim/activity.mli: Signature
