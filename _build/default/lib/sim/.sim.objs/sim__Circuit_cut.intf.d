lib/sim/circuit_cut.mli: Klut
