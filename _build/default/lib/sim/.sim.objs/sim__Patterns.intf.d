lib/sim/patterns.mli: Sutil
