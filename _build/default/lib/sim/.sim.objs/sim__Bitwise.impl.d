lib/sim/bitwise.ml: Aig Array Klut Patterns Signature Tt
