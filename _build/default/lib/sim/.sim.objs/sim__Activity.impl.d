lib/sim/activity.ml: Array
