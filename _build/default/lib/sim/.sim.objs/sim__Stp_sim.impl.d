lib/sim/stp_sim.ml: Aig Array Circuit_cut Hashtbl Klut List Patterns Signature Tt
