lib/sim/stp_sim.mli: Aig Klut Patterns Signature
