lib/sim/circuit_cut.ml: Array Hashtbl Klut List Queue Tt
