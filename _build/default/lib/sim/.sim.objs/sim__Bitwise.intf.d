lib/sim/bitwise.mli: Aig Klut Patterns Signature
