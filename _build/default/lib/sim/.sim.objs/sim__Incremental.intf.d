lib/sim/incremental.mli: Aig Patterns Signature
