lib/sim/window.ml: Aig Array Hashtbl List Tt
