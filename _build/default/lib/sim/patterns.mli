(** Simulation pattern sets.

    A pattern set assigns a Boolean sequence to every PI; pattern [i] is
    the assignment formed by bit [i] of each PI's sequence (the paper's
    Section III-C layout). Bits are packed 32 per word so simulators work
    word-parallel. Sets are mutable and growable: counter-example
    refinement appends patterns during sweeping. *)

type t

val create : num_pis:int -> t
(** Empty set. *)

val random : seed:int64 -> num_pis:int -> num_patterns:int -> t

val exhaustive : num_pis:int -> t
(** All [2^num_pis] assignments; [num_pis <= 20]. Pattern [i] assigns bit
    [b] of [i] to PI [b]. *)

val of_rows : string list -> t
(** One string of ['0']/['1'] per PI, as printed in the paper's example:
    row [p] character [i] is the value of that PI in pattern [i]. All rows
    must have equal length. *)

val num_pis : t -> int
val num_patterns : t -> int
val num_words : t -> int
(** Words per PI; the last word's surplus bits are zero. *)

val get : t -> pi:int -> pattern:int -> bool
val word : t -> pi:int -> int -> int
(** [word t ~pi w] is the [w]-th 32-bit block of that PI's sequence. *)

val add_pattern : t -> bool array -> unit
(** Appends one assignment (length [num_pis]). *)

val add_pattern_randomized : t -> Sutil.Rng.t -> bool option array -> unit
(** Appends one assignment where [Some b] positions are forced and [None]
    positions are drawn from the RNG — used to pad a counter-example into
    a full word of useful patterns. The array has one entry per PI. *)

val pattern : t -> int -> bool array
(** The full assignment of pattern [i]. *)

val copy : t -> t
