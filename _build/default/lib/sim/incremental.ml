module A = Aig.Network
module L = Aig.Lit

let word_mask = 0xFFFFFFFF

type t = {
  net : A.t;
  pats : Patterns.t;
  mutable sigs : int array array; (* per node; capacity >= needed words *)
  mutable valid_words : int; (* signature words currently up to date *)
  mutable valid_np : int; (* patterns covered by those words *)
  mutable recomputed : int;
}

let words_for np = max 1 ((np + 31) / 32)

(* Compute signature words [from_w .. to_w] of every node in place.
   Node-major (words inner) so fanin rows stay cache-resident. *)
let compute_range t from_w to_w =
  A.iter_nodes t.net (fun nd ->
      match A.kind t.net nd with
      | A.Const ->
        for w = from_w to to_w do
          t.sigs.(nd).(w) <- 0
        done
      | A.Pi i ->
        for w = from_w to to_w do
          t.sigs.(nd).(w) <- Patterns.word t.pats ~pi:i w
        done
      | A.And ->
        let f0 = A.fanin0 t.net nd and f1 = A.fanin1 t.net nd in
        let s0 = t.sigs.(L.node f0) and s1 = t.sigs.(L.node f1) in
        let m0 = if L.is_compl f0 then word_mask else 0 in
        let m1 = if L.is_compl f1 then word_mask else 0 in
        let row = t.sigs.(nd) in
        for w = from_w to to_w do
          Array.unsafe_set row w
            ((Array.unsafe_get s0 w lxor m0) land (Array.unsafe_get s1 w lxor m1))
        done);
  t.recomputed <- t.recomputed + (A.num_nodes t.net * (to_w - from_w + 1));
  (* Mask the tail bits of the final word. *)
  let np = Patterns.num_patterns t.pats in
  if to_w = words_for np - 1 && np land 31 <> 0 then begin
    let mask = (1 lsl (np land 31)) - 1 in
    A.iter_nodes t.net (fun nd ->
        t.sigs.(nd).(to_w) <- t.sigs.(nd).(to_w) land mask)
  end

(* Arrays are kept at exactly the needed length so [signatures] is
   directly comparable with the full simulators' tables; growth happens
   once per 32 appended patterns. *)
let ensure_capacity t need =
  if Array.length t.sigs.(0) <> need then
    t.sigs <-
      Array.map
        (fun old ->
          let fresh = Array.make need 0 in
          Array.blit old 0 fresh 0 (min need (Array.length old));
          fresh)
        t.sigs

let create net pats =
  let nw = words_for (Patterns.num_patterns pats) in
  let t =
    {
      net;
      pats;
      sigs = Array.init (A.num_nodes net) (fun _ -> Array.make nw 0);
      valid_words = 0;
      valid_np = 0;
      recomputed = 0;
    }
  in
  compute_range t 0 (nw - 1);
  t.recomputed <- 0;
  t.valid_words <- nw;
  t.valid_np <- Patterns.num_patterns pats;
  t

let num_patterns t = Patterns.num_patterns t.pats

let add_pattern t x = Patterns.add_pattern t.pats x

let refresh t =
  let np = Patterns.num_patterns t.pats in
  if np <> t.valid_np then begin
    let nw = words_for np in
    ensure_capacity t nw;
    (* Recompute from the word containing the first new pattern: its old
       tail bits were masked off and are now live. *)
    let from_w = if t.valid_np = 0 then 0 else t.valid_np lsr 5 in
    compute_range t from_w (nw - 1);
    t.valid_words <- nw;
    t.valid_np <- np
  end

let signature t nd =
  refresh t;
  t.sigs.(nd)

let signatures t =
  refresh t;
  t.sigs

let words_recomputed t = t.recomputed
