(** Exhaustive window simulation over AIGs (Section IV-A).

    For a set of target nodes whose combined transitive fanin reaches at
    most [max_leaves] PIs, simulates the window under {e all} leaf
    assignments and returns the targets' truth tables. Signatures from
    such a window are exact: two targets are functionally equivalent
    (up to complementation) iff their tables are — so the sweeper can
    refine candidate equivalence classes without any SAT call. *)

val signatures :
  ?node_budget:int ->
  Aig.Network.t ->
  targets:int list ->
  max_leaves:int ->
  (int list * Tt.Truth_table.t array) option
(** [signatures net ~targets ~max_leaves] is [Some (leaves, tts)] — the PI
    nodes of the window (ascending; table variable [i] = leaf [i]) and one
    table per target, in the order given — or [None] when the window
    exceeds [max_leaves] PIs ([max_leaves] is capped at 16 as in the
    paper) or when the cone holds more than [node_budget] nodes (default
    600), which bounds the cost of a refusal. *)

val equivalent_in_window :
  ?node_budget:int ->
  Aig.Network.t ->
  int ->
  int ->
  max_leaves:int ->
  [ `Equal | `Compl | `Different | `Unknown ]
(** Pairwise exact check: [`Unknown] when the window is too wide. *)
