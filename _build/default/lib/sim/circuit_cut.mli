(** The circuit-cut algorithm (Section III-B).

    Cuts a k-LUT network, keeping as boundaries the nodes whose signatures
    are requested plus every multi-fanout node, and collapses each
    remaining single-fanout tree region into one LUT whose function is the
    STP composition of the member matrices. Each produced cut is a tree
    with at most [limit] leaves; regions that would exceed [limit] are
    split. The result is a smaller k-LUT network over the same PIs in
    which every requested node is present. *)

type result = {
  network : Klut.Network.t;
  node_map : int array;
  (** original node id -> node id in [network]; [-1] for collapsed
      interior nodes. PIs and requested nodes always map. *)
  roots : int list;
  (** original ids of all cut roots, topological order. *)
}

val cut : Klut.Network.t -> limit:int -> targets:int list -> result
(** [limit >= 1]; targets must be valid nodes. PIs in [targets] are
    allowed and simply map through. *)
