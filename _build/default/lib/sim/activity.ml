type t = { ones : int; toggles : int; num_patterns : int }

let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let of_signature ~num_patterns s =
  if num_patterns = 0 || Array.length s = 0 then
    { ones = 0; toggles = 0; num_patterns }
  else begin
    let ones = ref 0 in
    let toggles = ref 0 in
    let nw = Array.length s in
    for w = 0 to nw - 1 do
      ones := !ones + popcount32 s.(w);
      (* Toggles inside the word: bit i vs bit i+1. *)
      let x = s.(w) lxor (s.(w) lsr 1) in
      (* Exclude the transition out of bit 31 (handled across words) and
         any transitions beyond the pattern count. *)
      let in_word =
        let last_bit =
          if w = nw - 1 && num_patterns land 31 <> 0 then
            (num_patterns land 31) - 1
          else 31
        in
        x land ((1 lsl last_bit) - 1)
      in
      toggles := !toggles + popcount32 in_word;
      (* Transition from the last bit of this word to the first of the
         next. *)
      if w + 1 < nw then begin
        let next_valid =
          (w + 1) * 32 < num_patterns
        in
        if next_valid && (s.(w) lsr 31) land 1 <> s.(w + 1) land 1 then
          incr toggles
      end
    done;
    { ones = !ones; toggles = !toggles; num_patterns }
  end

let of_table ~num_patterns tbl =
  Array.map (of_signature ~num_patterns) tbl

let toggle_rate t =
  if t.num_patterns <= 1 then 0.
  else float_of_int t.toggles /. float_of_int (t.num_patterns - 1)

let bias t =
  if t.num_patterns = 0 then 0.
  else float_of_int t.ones /. float_of_int t.num_patterns

let is_constant t = t.ones = 0 || t.ones = t.num_patterns

let near_constant ?(threshold = 0.02) t =
  let b = bias t in
  b <= threshold || b >= 1. -. threshold
