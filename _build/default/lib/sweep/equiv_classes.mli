(** Candidate equivalence classes over simulation signatures.

    Nodes whose normalized signatures (complementation folded away, see
    {!Sim.Signature.normalize}) coincide form one candidate class; only
    intra-class pairs ever reach the SAT solver. The manager is rebuilt
    after every resimulation — signatures are the keys, so refinement is
    just reinsertion. *)

type t

val create : num_patterns:int -> t

val num_patterns : t -> int

val add : t -> int -> int array -> unit
(** [add t node sig_] registers a node under its signature. Nodes must be
    added in ascending id order; the earliest node of a class is its
    representative. *)

val candidates : t -> int array -> int list
(** Earlier nodes whose normalized signature equals that of the given
    signature — SAT-check candidates in id order. *)

val class_count : t -> int
(** Number of classes with at least two members. *)

val candidate_nodes : t -> int list
(** All nodes belonging to a class of two or more members, ascending. *)

val clear : t -> num_patterns:int -> unit
