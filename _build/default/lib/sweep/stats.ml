type t = {
  mutable sat_sat : int;
  mutable sat_unsat : int;
  mutable sat_undet : int;
  mutable merges : int;
  mutable const_merges : int;
  mutable window_merges : int;
  mutable window_splits : int;
  mutable ce_patterns : int;
  mutable initial_patterns : int;
  mutable resimulations : int;
  mutable sim_time : float;
  mutable total_time : float;
}

let create () =
  {
    sat_sat = 0;
    sat_unsat = 0;
    sat_undet = 0;
    merges = 0;
    const_merges = 0;
    window_merges = 0;
    window_splits = 0;
    ce_patterns = 0;
    initial_patterns = 0;
    resimulations = 0;
    sim_time = 0.;
    total_time = 0.;
  }

let total_sat_calls t = t.sat_sat + t.sat_unsat + t.sat_undet

let pp ppf t =
  Format.fprintf ppf
    "sat=%d unsat=%d undet=%d merges=%d const=%d win_merge=%d win_split=%d \
     ce=%d sim=%.3fs total=%.3fs"
    t.sat_sat t.sat_unsat t.sat_undet t.merges t.const_merges t.window_merges
    t.window_splits t.ce_patterns t.sim_time t.total_time
