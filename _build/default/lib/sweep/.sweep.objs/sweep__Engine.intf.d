lib/sweep/engine.mli: Aig Stats
