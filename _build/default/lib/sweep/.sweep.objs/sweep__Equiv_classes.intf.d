lib/sweep/equiv_classes.mli:
