lib/sweep/stp_sweep.ml: Engine Option
