lib/sweep/guided_patterns.mli: Aig Sim
