lib/sweep/cec.mli: Aig
