lib/sweep/engine.ml: Aig Array Equiv_classes Guided_patterns List Sat Sim Stats Sutil Sys Tt
