lib/sweep/cec.ml: Aig Array Engine Sat Sim
