lib/sweep/stats.ml: Format
