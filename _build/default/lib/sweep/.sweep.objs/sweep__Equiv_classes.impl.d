lib/sweep/equiv_classes.ml: Hashtbl List Sim
