lib/sweep/fraig.mli: Aig Engine Stats
