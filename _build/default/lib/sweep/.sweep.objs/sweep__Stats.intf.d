lib/sweep/stats.mli: Format
