lib/sweep/guided_patterns.ml: Aig Array List Sat Sim Sutil
