lib/sweep/fraig.ml: Engine Option
