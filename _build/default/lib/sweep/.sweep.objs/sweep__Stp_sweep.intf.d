lib/sweep/stp_sweep.mli: Aig Engine Stats
