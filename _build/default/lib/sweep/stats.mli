(** Sweeping statistics — the quantities Table II reports.

    "SAT calls" in the paper counts satisfiable outcomes; "Total SAT
    calls" adds unsatisfiable and undetermined ones. Simulation time
    covers initial-pattern generation and counter-example resimulation.
    Window refinements are the STP engine's SAT-free merge/split
    decisions. *)

type t = {
  mutable sat_sat : int;  (** satisfiable SAT calls *)
  mutable sat_unsat : int;
  mutable sat_undet : int;
  mutable merges : int;  (** node-to-node merges proven *)
  mutable const_merges : int;  (** nodes proven constant *)
  mutable window_merges : int;  (** merges decided by exhaustive windows *)
  mutable window_splits : int;  (** candidate pairs split by windows *)
  mutable ce_patterns : int;  (** counter-example patterns appended *)
  mutable initial_patterns : int;
  mutable resimulations : int;
  mutable sim_time : float;  (** seconds, CPU *)
  mutable total_time : float;
}

val create : unit -> t
val total_sat_calls : t -> int
val pp : Format.formatter -> t -> unit
