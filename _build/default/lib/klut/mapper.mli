(** AIG to k-LUT mapping.

    {!map} is a depth-oriented structural mapper over the k-feasible cuts
    of {!Cuts}: each AND node picks the cut minimizing mapped depth (ties:
    fewer leaves), then the chosen cuts are traced from the POs to derive
    the cover, and each covered node becomes one LUT whose function is the
    cut function. {!of_aig_2lut} is the degenerate translation the paper
    mentions ("bitwise operation is 2-LUT"): one 2-input LUT per AND with
    complemented edges folded into the LUT functions. *)

val map : ?k:int -> ?area_recovery:bool -> Aig.Network.t -> Network.t
(** Default [k = 6], the paper's Table I configuration. With
    [area_recovery] (default true) the depth-optimal choice is followed
    by two area-flow passes that re-pick cuts wherever slack allows,
    reducing LUT count without degrading depth. *)

val of_aig_2lut : Aig.Network.t -> Network.t

val check_equivalent_small : Aig.Network.t -> Network.t -> bool
(** Exhaustive functional comparison for networks with at most 16 PIs;
    used by tests. Raises [Invalid_argument] above that. *)
