lib/klut/str_replace.ml: Buffer String
