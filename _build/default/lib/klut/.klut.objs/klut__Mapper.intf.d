lib/klut/mapper.mli: Aig Network
