lib/klut/mapper.ml: Aig Array Cuts List Network Tt
