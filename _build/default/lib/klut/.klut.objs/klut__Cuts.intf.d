lib/klut/cuts.mli: Aig Tt
