lib/klut/cuts.ml: Aig Array Hashtbl List Tt
