lib/klut/network.mli: Format Tt
