lib/klut/blif.mli: Network
