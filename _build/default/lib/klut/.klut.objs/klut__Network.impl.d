lib/klut/network.ml: Array Format Sutil Tt
