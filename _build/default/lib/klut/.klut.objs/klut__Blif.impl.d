lib/klut/blif.ml: Array Buffer Fun Hashtbl List Network Printf Str_replace String Tt
