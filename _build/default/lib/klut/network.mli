(** k-LUT networks.

    Nodes are dense ids in topological creation order: node 0 is constant
    false, then PIs and LUTs in any interleaving. Each LUT stores its
    fanin nodes and its function as a truth table over exactly those
    fanins (fanin [i] = table variable [i], least significant). Edges are
    plain node ids — unlike the AIG there are no complemented edges; the
    inversion is folded into the LUT functions, with one complement flag
    per PO for the boundary. *)

type t

val create : ?capacity:int -> unit -> t

val add_pi : t -> int
val add_lut : t -> int array -> Tt.Truth_table.t -> int
(** [add_lut t fanins f] — [f] must have exactly [Array.length fanins]
    variables and all fanins must be existing nodes. Returns the node. *)

val add_po : t -> int -> bool -> int
(** [add_po t node compl] — output is the node's value, complemented iff
    [compl]. *)

val num_nodes : t -> int
val num_pis : t -> int
val num_pos : t -> int
val num_luts : t -> int

val is_pi : t -> int -> bool
val is_lut : t -> int -> bool
val is_const : t -> int -> bool

val pi_index : t -> int -> int
(** For a PI node, its PI position. *)

val pi_node : t -> int -> int

val fanins : t -> int -> int array
(** Fanins of a LUT node (empty array for PIs and the constant). The
    returned array must not be mutated. *)

val func : t -> int -> Tt.Truth_table.t
(** Function of a LUT node. *)

val po : t -> int -> int * bool

val level : t -> int -> int
val depth : t -> int
val fanout_count : t -> int -> int

val max_fanin : t -> int
(** Largest LUT arity in the network — the [k] of the k-LUT network. *)

val iter_luts : t -> (int -> unit) -> unit
(** LUT nodes in topological order. *)

val iter_nodes : t -> (int -> unit) -> unit

val pp_stats : Format.formatter -> t -> unit
