(** BLIF reading and writing for k-LUT networks.

    The Berkeley Logic Interchange Format is the lingua franca for LUT
    netlists. The writer emits one [.names] block per LUT (cover rows in
    on-set form); the reader accepts the combinational single-model
    subset: [.model]/[.inputs]/[.outputs]/[.names]/[.end], with cover
    rows over inputs in {0,1,-} and output value 1 or 0 (off-set covers
    are complemented into on-set functions). Signals must be defined
    before use; latches and subcircuits are rejected. *)

exception Parse_error of string

val write : Network.t -> string
(** Signals are named [n<i>] for internal nodes, [pi<i>] / [po<i>] at
    the boundary. *)

val write_file : string -> Network.t -> unit

val read : string -> Network.t
val read_file : string -> Network.t
