module A = Aig.Network
module L = Aig.Lit
module T = Tt.Truth_table

let map ?(k = 6) ?(area_recovery = true) net =
  let n = A.num_nodes net in
  let cuts = Cuts.enumerate net ~k () in
  (* Pass 1: minimize mapped depth, breaking ties on leaf count. *)
  let arrival = Array.make n 0 in
  let best = Array.make n None in
  let candidates_of nd =
    List.filter (fun c -> Cuts.leaves c <> [| nd |]) cuts.(nd)
  in
  let cut_depth c =
    Array.fold_left (fun acc leaf -> max acc arrival.(leaf)) 0 (Cuts.leaves c)
    + 1
  in
  A.iter_ands net (fun nd ->
      match candidates_of nd with
      | [] -> invalid_arg "Mapper.map: node without a usable cut"
      | first :: rest ->
        let cost c = (cut_depth c, Array.length (Cuts.leaves c)) in
        let bc, (bd, _) =
          List.fold_left
            (fun (bc, (bd, bl)) c ->
              let d, l = cost c in
              if d < bd || (d = bd && l < bl) then (c, (d, l)) else (bc, (bd, bl)))
            (first, cost first) rest
        in
        arrival.(nd) <- bd;
        best.(nd) <- Some bc);
  (* Cover computation used after each pass. *)
  let needed = Array.make n false in
  let compute_cover () =
    Array.fill needed 0 n false;
    let stack = ref [] in
    let require nd =
      if nd > 0 && A.is_and net nd && not needed.(nd) then begin
        needed.(nd) <- true;
        stack := nd :: !stack
      end
    in
    Array.iter (fun l -> require (L.node l)) (A.pos net);
    let rec drain () =
      match !stack with
      | [] -> ()
      | nd :: rest ->
        stack := rest;
        (match best.(nd) with
         | None -> assert false
         | Some c -> Array.iter require (Cuts.leaves c));
        drain ()
    in
    drain ()
  in
  compute_cover ();
  (* Passes 2..3: area recovery. Where slack allows, re-pick cuts to
     minimize area flow — estimated LUT area divided by fanout so shared
     logic is priced fairly — without increasing the mapped depth. *)
  if area_recovery then begin
    (* Snapshot the depth-oriented solution: area flow is a heuristic
       and can lose; keep whichever cover is smaller. *)
    let cover_size () =
      let c = ref 0 in
      Array.iter (fun b -> if b then incr c) needed;
      !c
    in
    let best_before = Array.copy best in
    let size_before = cover_size () in
    let max_required =
      Array.fold_left
        (fun acc l -> max acc arrival.(L.node l))
        0 (A.pos net)
    in
    for _pass = 1 to 2 do
      (* Required times over the current cover. *)
      let required = Array.make n max_int in
      Array.iter
        (fun l ->
          let nd = L.node l in
          if A.is_and net nd then required.(nd) <- max_required)
        (A.pos net);
      for nd = n - 1 downto 1 do
        if needed.(nd) && required.(nd) < max_int then
          match best.(nd) with
          | Some c ->
            Array.iter
              (fun leaf ->
                if A.is_and net leaf then
                  required.(leaf) <- min required.(leaf) (required.(nd) - 1))
              (Cuts.leaves c)
          | None -> ()
      done;
      (* Area flow, recomputed in topological order with the new picks. *)
      let aflow = Array.make n 0. in
      A.iter_ands net (fun nd ->
          let refs = float_of_int (max 1 (A.fanout_count net nd)) in
          let flow c =
            Array.fold_left
              (fun acc leaf -> acc +. aflow.(leaf))
              1. (Cuts.leaves c)
          in
          let deadline =
            if needed.(nd) && required.(nd) < max_int then required.(nd)
            else max_required
          in
          let feasible =
            List.filter (fun c -> cut_depth c <= deadline) (candidates_of nd)
          in
          match feasible with
          | [] -> aflow.(nd) <- (match best.(nd) with
              | Some c -> flow c /. refs
              | None -> 0.)
          | first :: rest ->
            let cost c = (flow c, Array.length (Cuts.leaves c)) in
            let bc, (bf, _) =
              List.fold_left
                (fun (bc, (bf, bl)) c ->
                  let f, l = cost c in
                  if f < bf || (f = bf && l < bl) then (c, (f, l))
                  else (bc, (bf, bl)))
                (first, cost first) rest
            in
            best.(nd) <- Some bc;
            arrival.(nd) <- cut_depth bc;
            aflow.(nd) <- bf /. refs);
      compute_cover ()
    done;
    if cover_size () > size_before then begin
      Array.blit best_before 0 best 0 n;
      compute_cover ()
    end
  end;
  (* Build the LUT network in topological (id) order. *)
  let out = Network.create ~capacity:n () in
  let klut_of = Array.make n (-1) in
  klut_of.(0) <- 0;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ -> klut_of.(nd) <- Network.add_pi out
      | A.And ->
        if needed.(nd) then begin
          let c = match best.(nd) with Some c -> c | None -> assert false in
          let f = Cuts.cut_function net nd c in
          let fanins =
            Array.map
              (fun leaf ->
                assert (klut_of.(leaf) >= 0);
                klut_of.(leaf))
              (Cuts.leaves c)
          in
          klut_of.(nd) <- Network.add_lut out fanins f
        end);
  Array.iter
    (fun l ->
      let nd = L.node l in
      assert (klut_of.(nd) >= 0);
      ignore (Network.add_po out klut_of.(nd) (L.is_compl l)))
    (A.pos net);
  out

let of_aig_2lut net =
  let n = A.num_nodes net in
  let out = Network.create ~capacity:n () in
  let klut_of = Array.make n (-1) in
  klut_of.(0) <- 0;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ -> klut_of.(nd) <- Network.add_pi out
      | A.And ->
        let f0 = A.fanin0 net nd and f1 = A.fanin1 net nd in
        let base = T.and_ (T.nth_var 2 0) (T.nth_var 2 1) in
        let f = if L.is_compl f0 then T.compose base [| T.not_ (T.nth_var 2 0); T.nth_var 2 1 |] else base in
        let f = if L.is_compl f1 then T.compose f [| T.nth_var 2 0; T.not_ (T.nth_var 2 1) |] else f in
        let fanins = [| klut_of.(L.node f0); klut_of.(L.node f1) |] in
        if Array.exists (( = ) (-1)) fanins then
          invalid_arg "Mapper.of_aig_2lut: dangling fanin"
        else klut_of.(nd) <- Network.add_lut out fanins f);
  Array.iter
    (fun l -> ignore (Network.add_po out klut_of.(L.node l) (L.is_compl l)))
    (A.pos net);
  out

let eval_aig net inputs =
  let n = A.num_nodes net in
  let v = Array.make n false in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi i -> v.(nd) <- inputs.(i)
      | A.And ->
        let f l = v.(L.node l) <> L.is_compl l in
        v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
  Array.map (fun l -> v.(L.node l) <> L.is_compl l) (A.pos net)

let eval_klut net inputs =
  let n = Network.num_nodes net in
  let v = Array.make n false in
  Network.iter_nodes net (fun nd ->
      if Network.is_pi net nd then v.(nd) <- inputs.(Network.pi_index net nd)
      else if Network.is_lut net nd then begin
        let fanins = Network.fanins net nd in
        let x = Array.map (fun fi -> v.(fi)) fanins in
        v.(nd) <- T.eval (Network.func net nd) x
      end);
  Array.init (Network.num_pos net) (fun i ->
      let nd, compl = Network.po net i in
      v.(nd) <> compl)

let check_equivalent_small aig lut =
  let pis = A.num_pis aig in
  if pis > 16 then invalid_arg "check_equivalent_small: too many PIs";
  if pis <> Network.num_pis lut || A.num_pos aig <> Network.num_pos lut then
    false
  else begin
    let ok = ref true in
    for i = 0 to (1 lsl pis) - 1 do
      let inputs = Array.init pis (fun b -> (i lsr b) land 1 = 1) in
      if eval_aig aig inputs <> eval_klut lut inputs then ok := false
    done;
    !ok
  end
