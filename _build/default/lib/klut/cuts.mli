(** k-feasible cut enumeration on AIGs.

    A cut of node [n] is a set of nodes (leaves) such that every path from
    the PIs to [n] passes through a leaf; it is k-feasible when it has at
    most [k] leaves. Cuts are enumerated bottom-up by merging fanin cuts,
    with a per-node priority bound to keep the sets small — the standard
    technology-mapping algorithm the paper's cut-based simulation reuses. *)

type cut = private {
  leaves : int array; (** ascending node ids *)
  sign : int; (** 63-bit Bloom signature for fast subset tests *)
}

val leaves : cut -> int array

val enumerate : Aig.Network.t -> k:int -> ?max_cuts:int -> unit -> cut list array
(** [enumerate net ~k ()] computes, for every node id, its k-feasible
    cuts: the trivial cut [{n}] first, then up to [max_cuts - 1] merged
    cuts (default 12). Constant node gets the empty cut only. *)

val cut_function : Aig.Network.t -> int -> cut -> Tt.Truth_table.t
(** Truth table of the node in terms of the cut leaves: leaf at position
    [i] of [leaves] is table variable [i]. The cut must be a valid cut of
    the node. *)

val cone_nodes : Aig.Network.t -> int -> cut -> int list
(** AND nodes strictly inside the cut cone (root included, leaves
    excluded), topological order. *)
