module T = Tt.Truth_table
module Vec = Sutil.Vec

type node = {
  fanins : int array; (* empty for const and PIs *)
  func : T.t; (* const0 0 for const node; projection for PIs unused *)
  tag : int; (* -2 const, -1 LUT, >= 0 PI index *)
}

type t = {
  nodes : node array ref;
  mutable len : int;
  pis : Vec.t;
  outs : Vec.t; (* packed: node * 2 + compl *)
  lvl : Vec.t;
  fanouts : Vec.t;
  mutable max_fanin : int;
}

let dummy = { fanins = [||]; func = T.const0 0; tag = -2 }

let create ?(capacity = 1024) () =
  let t =
    {
      nodes = ref (Array.make (max capacity 1) dummy);
      len = 0;
      pis = Vec.create ();
      outs = Vec.create ();
      lvl = Vec.create ();
      fanouts = Vec.create ();
      max_fanin = 0;
    }
  in
  (* Node 0: constant false, a 0-ary LUT. *)
  t.len <- 1;
  !(t.nodes).(0) <- { dummy with tag = -2 };
  Vec.push t.lvl 0;
  Vec.push t.fanouts 0;
  t

let push_node t n =
  if t.len = Array.length !(t.nodes) then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit !(t.nodes) 0 bigger 0 t.len;
    t.nodes := bigger
  end;
  !(t.nodes).(t.len) <- n;
  t.len <- t.len + 1;
  t.len - 1

let num_nodes t = t.len
let num_pis t = Vec.length t.pis
let num_pos t = Vec.length t.outs
let num_luts t = t.len - num_pis t - 1

let node t n =
  if n < 0 || n >= t.len then invalid_arg "Klut: node out of range";
  !(t.nodes).(n)

let is_pi t n = (node t n).tag >= 0
let is_const _t n = n = 0
let is_lut t n = n > 0 && (node t n).tag = -1
let pi_index t n =
  let tag = (node t n).tag in
  if tag < 0 then invalid_arg "Klut.pi_index: not a PI";
  tag

let pi_node t i = Vec.get t.pis i
let fanins t n = (node t n).fanins
let func t n = (node t n).func
let po t i =
  let packed = Vec.get t.outs i in
  (packed lsr 1, packed land 1 = 1)

let level t n = Vec.get t.lvl n
let fanout_count t n = Vec.get t.fanouts n
let max_fanin t = t.max_fanin

let add_pi t =
  let id = push_node t { fanins = [||]; func = T.const0 0; tag = num_pis t } in
  Vec.push t.pis id;
  Vec.push t.lvl 0;
  Vec.push t.fanouts 0;
  id

let add_lut t fanins f =
  if T.num_vars f <> Array.length fanins then
    invalid_arg "Klut.add_lut: function arity does not match fanins";
  Array.iter
    (fun fi ->
      if fi < 0 || fi >= t.len then invalid_arg "Klut.add_lut: bad fanin")
    fanins;
  let id = push_node t { fanins = Array.copy fanins; func = f; tag = -1 } in
  let lv = Array.fold_left (fun acc fi -> max acc (Vec.get t.lvl fi)) 0 fanins in
  Vec.push t.lvl (lv + 1);
  Vec.push t.fanouts 0;
  Array.iter (fun fi -> Vec.set t.fanouts fi (Vec.get t.fanouts fi + 1)) fanins;
  t.max_fanin <- max t.max_fanin (Array.length fanins);
  id

let add_po t n compl =
  if n < 0 || n >= t.len then invalid_arg "Klut.add_po: bad node";
  Vec.push t.outs ((n lsl 1) lor (if compl then 1 else 0));
  Vec.set t.fanouts n (Vec.get t.fanouts n + 1);
  num_pos t - 1

let depth t =
  let d = ref 0 in
  for i = 0 to num_pos t - 1 do
    let n, _ = po t i in
    d := max !d (level t n)
  done;
  !d

let iter_nodes t f =
  for n = 0 to t.len - 1 do
    f n
  done

let iter_luts t f =
  for n = 1 to t.len - 1 do
    if is_lut t n then f n
  done

let pp_stats ppf t =
  Format.fprintf ppf "pi=%d po=%d lut=%d k=%d lev=%d" (num_pis t)
    (num_pos t) (num_luts t) (max_fanin t) (depth t)
