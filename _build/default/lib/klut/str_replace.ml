(* Tiny text helper for the BLIF reader: BLIF lines may end in '\'
   to continue on the next line. *)

let join_continuations text =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '\\' && !i + 1 < n && text.[!i + 1] = '\n' then i := !i + 2
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf
