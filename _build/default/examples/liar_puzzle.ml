(* Example 2 of the paper: the liar puzzle, solved with STP canonical
   forms.

   Three persons a, b, c; each is honest (always truthful) or a liar
   (always lying). a says "b is a liar", b says "c is a liar", c says
   "both a and b are liars". Who lies?

     dune exec examples/liar_puzzle.exe
*)

open Stp_sweep

let () =
  let phi = Stp.Expr.of_string "(a <-> !b) & (b <-> !c) & (c <-> !a & !b)" in
  Format.printf "Phi = %a@." Stp.Expr.pp phi;

  (* Canonical form via the fast logic-matrix path. *)
  let m, order = Stp.Canonical.of_expr phi in
  Format.printf "variable order: %s@." (String.concat " " order);
  Format.printf "M_Phi (dense 2 x 8):@.%a@." Stp.Matrix.pp
    (Stp.Logic_matrix.to_matrix m);

  (* The same canonical form via the honest algebraic normalization:
     structural matrices pushed to the front with swap matrices, variable
     powers reduced with M_r — and the two must agree. *)
  let m_alg, _ = Stp.Canonical.of_expr_algebraic phi in
  assert (Stp.Matrix.equal m_alg (Stp.Logic_matrix.to_matrix m));
  Format.printf "algebraic normalization agrees.@.@.";

  (* Simulate the pattern 010 (a liar, b honest, c liar), as the paper
     does: a cascade of STPs with elements of the Boolean pair domain. *)
  let value = Stp.Canonical.simulate m [ false; true; false ] in
  Format.printf "simulate Phi(0,1,0) = %b@." value;

  (* Enumerate all models: there is exactly one. *)
  (match Stp.Reasoning.satisfying_assignments phi with
   | [ model ] ->
     Format.printf "unique model:@.";
     List.iter
       (fun (v, honest) ->
         Format.printf "  %s is %s@." v (if honest then "honest" else "a liar"))
       model
   | models -> Format.printf "unexpected: %d models@." (List.length models));

  (* Bonus: Example 1's identity, proved by structural matrices. *)
  let lhs = Stp.Expr.of_string "a -> b" and rhs = Stp.Expr.of_string "!a | b" in
  Format.printf "@.(a -> b) <-> (!a | b) holds: %b@."
    (Stp.Reasoning.equivalent lhs rhs)
