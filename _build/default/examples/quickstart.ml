(* Quickstart: build a small circuit, map it to LUTs, simulate it with
   both engines, sweep it, and check the result.

     dune exec examples/quickstart.exe
*)

open Stp_sweep

let () =
  (* 1. Build an AIG: a 4-bit equality comparator with a deliberately
     redundant second implementation feeding another output. *)
  let net = Aig.Network.create () in
  let a = Array.init 4 (fun _ -> Aig.Network.add_pi net) in
  let b = Array.init 4 (fun _ -> Aig.Network.add_pi net) in
  let eq_bits = Array.map2 (fun x y -> Aig.Lit.not_ (Aig.Network.add_xor net x y)) a b in
  let eq = Array.fold_left (Aig.Network.add_and net) Aig.Lit.true_ eq_bits in
  (* The same function, built the long way: !(a<b) & !(b<a) via
     subtractor borrows. *)
  let borrow x y =
    (* borrow of x - y, rippled *)
    let c = ref Aig.Lit.false_ in
    Array.iteri
      (fun i xi ->
        let yi = y.(i) in
        (* borrow' = (!x & y) | (!x & c) | (y & c) *)
        let nx = Aig.Lit.not_ xi in
        let t1 = Aig.Network.add_and net nx yi in
        let t2 = Aig.Network.add_and net nx !c in
        let t3 = Aig.Network.add_and net yi !c in
        c := Aig.Network.add_or net (Aig.Network.add_or net t1 t2) t3)
      x;
    !c
  in
  let eq2 =
    Aig.Network.add_and net
      (Aig.Lit.not_ (borrow a b))
      (Aig.Lit.not_ (borrow b a))
  in
  ignore (Aig.Network.add_po net eq);
  ignore (Aig.Network.add_po net eq2);
  Format.printf "built:    %a@." Aig.Network.pp_stats net;

  (* 2. Map to 4-LUTs and simulate with both engines. *)
  let lut = Klut.Mapper.map ~k:4 net in
  Format.printf "mapped:   %a@." Klut.Network.pp_stats lut;
  let pats = Sim.Patterns.random ~seed:7L ~num_pis:8 ~num_patterns:1024 in
  let bitwise = Sim.Bitwise.simulate_klut lut pats in
  let stp = Sim.Stp_sim.simulate_klut lut pats in
  assert (bitwise = stp);
  Format.printf "simulated 1024 patterns; engines agree on all %d nodes@."
    (Klut.Network.num_nodes lut);

  (* 3. Sweep: the two equality implementations must merge. *)
  let swept, stats = sweep ~engine:`Stp net in
  Format.printf "swept:    %a@." Aig.Network.pp_stats swept;
  Format.printf "stats:    %a@." Sweep.Stats.pp stats;

  (* 4. Verify the sweep. *)
  (match Sweep.Cec.check net swept with
   | Sweep.Cec.Equivalent -> Format.printf "cec:      equivalent@."
   | _ -> failwith "sweeping changed the function!");

  (* Both outputs now come from one cone. *)
  let d0 = Aig.Lit.node (Aig.Network.po swept 0) in
  let d1 = Aig.Lit.node (Aig.Network.po swept 1) in
  Format.printf "outputs share a driver: %b@." (d0 = d1)
