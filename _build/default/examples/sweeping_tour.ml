(* A tour of the SAT-sweeping ecosystem (the paper's Fig. 2): take a
   redundancy-laden circuit, walk it through both sweeping engines, and
   show where the STP machinery earns its keep.

     dune exec examples/sweeping_tour.exe
*)

open Stp_sweep

let () =
  (* A carry-lookahead adder spliced with extra equivalent logic: the
     kind of structural redundancy synthesis leaves behind. *)
  let base = Gen.Arith.carry_lookahead_adder ~width:24 in
  let net = Gen.Redundant.inject ~seed:11L ~fraction:0.35 base in
  Format.printf "input:          %a@." Aig.Network.pp_stats net;
  Format.printf "  (%d gates of injected redundancy)@.@."
    (Aig.Network.num_ands net - Aig.Network.num_ands base);

  (* Step 1 of the ecosystem: initial simulation. Random patterns give
     candidate equivalence classes. *)
  let pats = Sim.Patterns.random ~seed:1L ~num_pis:(Aig.Network.num_pis net)
      ~num_patterns:256 in
  let tbl = Sim.Bitwise.simulate_aig net pats in
  let classes = Sweep.Equiv_classes.create ~num_patterns:256 in
  Aig.Network.iter_nodes net (fun nd -> Sweep.Equiv_classes.add classes nd tbl.(nd));
  Format.printf "after 256 random patterns: %d candidate classes, %d nodes in them@."
    (Sweep.Equiv_classes.class_count classes)
    (List.length (Sweep.Equiv_classes.candidate_nodes classes));

  (* Step 2: SAT-guided patterns thin the false candidates. *)
  let guided = Sweep.Guided_patterns.generate net pats ~seed:2L in
  let tbl = Sim.Bitwise.simulate_aig net pats in
  let classes = Sweep.Equiv_classes.create ~num_patterns:(Sim.Patterns.num_patterns pats) in
  Aig.Network.iter_nodes net (fun nd -> Sweep.Equiv_classes.add classes nd tbl.(nd));
  Format.printf
    "after %d guided patterns (%d SAT queries): %d classes, %d nodes@.@."
    guided.Sweep.Guided_patterns.patterns_added
    guided.Sweep.Guided_patterns.queries
    (Sweep.Equiv_classes.class_count classes)
    (List.length (Sweep.Equiv_classes.candidate_nodes classes));

  (* Step 3: the full engines. *)
  let swept_f, st_f = Sweep.Fraig.sweep net in
  Format.printf "&fraig-style:   %a@." Aig.Network.pp_stats swept_f;
  Format.printf "                %a@." Sweep.Stats.pp st_f;
  let swept_s, st_s = Sweep.Stp_sweep.sweep net in
  Format.printf "STP sweeper:    %a@." Aig.Network.pp_stats swept_s;
  Format.printf "                %a@.@." Sweep.Stats.pp st_s;

  Format.printf "satisfiable SAT calls: %d (baseline) vs %d (STP)@."
    st_f.Sweep.Stats.sat_sat st_s.Sweep.Stats.sat_sat;
  Format.printf "total SAT calls:       %d vs %d@."
    (Sweep.Stats.total_sat_calls st_f) (Sweep.Stats.total_sat_calls st_s);

  (* Step 4: both engines must preserve the function — &cec. *)
  (match Sweep.Cec.check net swept_f, Sweep.Cec.check net swept_s with
   | Sweep.Cec.Equivalent, Sweep.Cec.Equivalent ->
     Format.printf "cec: both results equivalent to the input@."
   | _ -> failwith "sweeping broke the circuit");

  (* And against the original pre-injection adder as well. *)
  match Sweep.Cec.check base swept_s with
  | Sweep.Cec.Equivalent ->
    Format.printf "cec: swept result equals the original adder@."
  | _ -> failwith "result differs from the original adder"
