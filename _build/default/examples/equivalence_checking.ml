(* Equivalence checking two implementations of the same arithmetic:
   a ripple-carry adder against a carry-lookahead adder, first with
   simulation as a fast filter, then with the CEC engine; and a negative
   case showing counter-example extraction.

     dune exec examples/equivalence_checking.exe
*)

open Stp_sweep

let () =
  let rca = Gen.Arith.ripple_adder ~width:32 in
  let cla = Gen.Arith.carry_lookahead_adder ~width:32 in
  Format.printf "ripple-carry:    %a@." Aig.Network.pp_stats rca;
  Format.printf "carry-lookahead: %a@.@." Aig.Network.pp_stats cla;

  (* Fast path: random simulation comparing output signatures. *)
  let pats = Sim.Patterns.random ~seed:3L ~num_pis:64 ~num_patterns:4096 in
  let t_r = Sim.Bitwise.simulate_aig rca pats in
  let t_c = Sim.Bitwise.simulate_aig cla pats in
  let sig_of net tbl o =
    Sim.Bitwise.po_signature tbl ~num_patterns:4096 ~lit:(Aig.Network.po net o)
  in
  let mismatches = ref 0 in
  for o = 0 to Aig.Network.num_pos rca - 1 do
    if sig_of rca t_r o <> sig_of cla t_c o then incr mismatches
  done;
  Format.printf "4096 random patterns: %d output mismatches@." !mismatches;

  (* Complete check: SAT-backed CEC. *)
  (match Sweep.Cec.check rca cla with
   | Sweep.Cec.Equivalent -> Format.printf "cec: adders are equivalent@.@."
   | _ -> failwith "adders must be equivalent");

  (* Negative case: break the CLA's bit 17 and extract a witness. *)
  let broken = Aig.Network.create () in
  let pis = Array.init 64 (fun _ -> Aig.Network.add_pi broken) in
  let map = Array.make (Aig.Network.num_nodes cla) (-1) in
  map.(0) <- Aig.Lit.false_;
  Aig.Network.iter_nodes cla (fun nd ->
      match Aig.Network.kind cla nd with
      | Aig.Network.Const -> ()
      | Aig.Network.Pi i -> map.(nd) <- pis.(i)
      | Aig.Network.And ->
        let tr l = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
        map.(nd) <-
          Aig.Network.add_and broken
            (tr (Aig.Network.fanin0 cla nd))
            (tr (Aig.Network.fanin1 cla nd)));
  Array.iteri
    (fun o l ->
      let tl = Aig.Lit.xor_compl map.(Aig.Lit.node l) (Aig.Lit.is_compl l) in
      ignore (Aig.Network.add_po broken (if o = 17 then Aig.Lit.not_ tl else tl)))
    (Aig.Network.pos cla);
  match Sweep.Cec.check rca broken with
  | Sweep.Cec.Different { po; counterexample } ->
    let word lo =
      let v = ref 0 in
      for i = 31 downto 0 do
        v := (!v lsl 1) lor (if counterexample.(lo + i) then 1 else 0)
      done;
      !v
    in
    Format.printf "broken adder caught at output %d@." po;
    Format.printf "counterexample: a=%d b=%d@." (word 0) (word 32)
  | _ -> failwith "the broken adder must be caught"
