(* Section III-C / Fig. 1 of the paper: specified-node simulation with
   the circuit-cut algorithm.

   The network: five PIs, six 2-input NAND LUTs
       6 = NAND(1,3)   7 = NAND(2,3)   8 = NAND(7,4)
       9 = NAND(4,5)  10 = NAND(6,7)  11 = NAND(8,9)
   with po1 = 10, po2 = 11, and the paper's ten simulation patterns.

     dune exec examples/window_sim.exe
*)

open Stp_sweep
module K = Klut.Network

let () =
  let net = K.create () in
  let pi = Array.init 5 (fun _ -> K.add_pi net) in
  let nand = Tt.Truth_table.of_bin "0111" in
  let n6 = K.add_lut net [| pi.(0); pi.(2) |] nand in
  let n7 = K.add_lut net [| pi.(1); pi.(2) |] nand in
  let n8 = K.add_lut net [| n7; pi.(3) |] nand in
  let n9 = K.add_lut net [| pi.(3); pi.(4) |] nand in
  let n10 = K.add_lut net [| n6; n7 |] nand in
  let n11 = K.add_lut net [| n8; n9 |] nand in
  ignore (K.add_po net n10 false);
  ignore (K.add_po net n11 false);
  Format.printf "network: %a@." K.pp_stats net;
  let label =
    let tbl =
      [ (n6, "6"); (n7, "7"); (n8, "8"); (n9, "9"); (n10, "10"); (n11, "11") ]
      @ Array.to_list (Array.mapi (fun i p -> (p, string_of_int (i + 1))) pi)
    in
    fun n -> List.assoc n tbl
  in

  (* The paper's ten patterns (row p = values of PI p across patterns). *)
  let pats =
    Sim.Patterns.of_rows
      [ "0101010101"; "1010101010"; "1111100000"; "0000011111"; "0011001100" ]
  in
  Format.printf "patterns: %d  =>  cut limit log2(10) = 3@.@."
    (Sim.Patterns.num_patterns pats);

  (* Cut the whole circuit as the figure does (targets: the two POs plus
     the specified nodes 7 and 8). *)
  let { Sim.Circuit_cut.network = cut_net; node_map; roots } =
    Sim.Circuit_cut.cut net ~limit:3 ~targets:[ n10; n11; n7; n8 ]
  in
  Format.printf "cuts (root <- leaves):@.";
  List.iter
    (fun root ->
      let fanins = K.fanins cut_net node_map.(root) in
      let orig new_id =
        let found = ref "?" in
        Array.iteri (fun o m -> if m = new_id then found := label o) node_map;
        !found
      in
      Format.printf "  %s <- {%s}@." (label root)
        (String.concat ", " (Array.to_list (Array.map orig fanins))))
    roots;

  (* Mode s: signatures of the specified nodes 7 and 8 only. *)
  let specified = Sim.Stp_sim.simulate_specified net pats ~targets:[ n7; n8 ] in
  let show (node, s) =
    let bits =
      String.init
        (Sim.Patterns.num_patterns pats)
        (fun i -> if Sim.Signature.get s i then '1' else '0')
    in
    Format.printf "  node %s: %s@." (label node) bits
  in
  Format.printf "@.specified-node signatures under the ten patterns:@.";
  List.iter show specified;

  (* Exhaustive windows: node 7 depends on 2 PIs (4 patterns suffice),
     node 8 on 3 PIs (8 patterns) — the paper's 2^2 / 2^3 observation. *)
  Format.printf "@.exhaustive window truth tables:@.";
  List.iter
    (fun (n, pis) ->
      let e = Sim.Patterns.exhaustive ~num_pis:pis in
      (* Build the sub-network view through the cut over those PIs by
         simulating the full network on patterns that only vary the
         node's support. *)
      ignore e;
      let tbl =
        Sim.Stp_sim.simulate_klut net (Sim.Patterns.exhaustive ~num_pis:5)
      in
      let bits =
        String.init (1 lsl pis) (fun i ->
            (* The support of node 7 is PIs 2,3; of node 8 PIs 2,3,4 —
               expand index i onto those positions. *)
            let assignment =
              match (n, pis) with
              | _, 2 -> (i land 1) lsl 1 lor ((i lsr 1) land 1) lsl 2
              | _ -> (i land 1) lsl 1 lor ((i lsr 1) land 1) lsl 2 lor ((i lsr 2) land 1) lsl 3
            in
            if Sim.Signature.get tbl.(n) assignment then '1' else '0')
      in
      Format.printf "  node %s over %d leaves: %s@." (label n) pis bits)
    [ (n7, 2); (n8, 3) ]
