examples/liar_puzzle.ml: Format List Stp Stp_sweep String
