examples/quickstart.ml: Aig Array Format Klut Sim Stp_sweep Sweep
