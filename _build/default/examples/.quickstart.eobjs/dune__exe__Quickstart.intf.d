examples/quickstart.mli:
