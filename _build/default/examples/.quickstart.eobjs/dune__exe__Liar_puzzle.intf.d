examples/liar_puzzle.mli:
