examples/sweeping_tour.ml: Aig Array Format Gen List Sim Stp_sweep Sweep
