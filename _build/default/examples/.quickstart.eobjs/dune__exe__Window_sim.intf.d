examples/window_sim.mli:
