examples/equivalence_checking.ml: Aig Array Format Gen Sim Stp_sweep Sweep
