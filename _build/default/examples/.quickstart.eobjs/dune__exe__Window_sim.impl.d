examples/window_sim.ml: Array Format Klut List Sim Stp_sweep String Tt
