examples/synthesis_flow.ml: Aig Format Gen Stp_sweep Sweep Synth
