examples/sweeping_tour.mli:
