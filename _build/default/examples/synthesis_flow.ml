(* A complete optimization flow on top of the paper's machinery:

     redundant netlist
       -> SAT sweep (STP engine)      remove functional redundancy
       -> exact rewrite               restructure 4-cuts minimally
       -> balance                     reduce depth
       -> CEC                         prove nothing broke

     dune exec examples/synthesis_flow.exe
*)

open Stp_sweep

let stage name net =
  Format.printf "%-16s %s@." name (Format.asprintf "%a" Aig.Network.pp_stats net);
  net

let () =
  let base = Gen.Suites.epfl_by_name "voter" in
  let dirty = Gen.Redundant.inject ~seed:9L ~fraction:0.3 base in
  let _ = stage "input" dirty in

  let swept, sweep_stats = Sweep.Stp_sweep.sweep dirty in
  let _ = stage "after sweep" swept in
  Format.printf "  %a@." Sweep.Stats.pp sweep_stats;

  let rewritten, rw = Synth.Rewrite.rewrite swept in
  let _ = stage "after rewrite" rewritten in
  Format.printf
    "  candidates=%d applied=%d classes-synthesized=%d cache-hits=%d@."
    rw.Synth.Rewrite.candidates rw.Synth.Rewrite.applied
    rw.Synth.Rewrite.classes_synthesized rw.Synth.Rewrite.cache_hits;

  let balanced, _ = Aig.Balance.balance rewritten in
  let final = stage "after balance" balanced in

  (match Sweep.Cec.check dirty final with
   | Sweep.Cec.Equivalent -> Format.printf "cec vs input:    equivalent@."
   | _ -> failwith "flow broke the circuit");
  (match Sweep.Cec.check base final with
   | Sweep.Cec.Equivalent -> Format.printf "cec vs original: equivalent@."
   | _ -> failwith "flow differs from the original");

  Format.printf "@.total: %d -> %d gates, depth %d -> %d@."
    (Aig.Network.num_ands dirty)
    (Aig.Network.num_ands final)
    (Aig.Network.depth dirty)
    (Aig.Network.depth final)
