(* STP reasoning CLI: parse a Boolean expression, print its canonical
   logic matrix (Property 3), enumerate models, or prove an identity.

     dune exec bin/reasoner.exe -- "(a <-> !b) & (b <-> !c)"
     dune exec bin/reasoner.exe -- --equiv "a -> b" "!a | b"
     dune exec bin/reasoner.exe -- --models "a ^ b ^ c"
     dune exec bin/reasoner.exe -- --algebraic "a & (b | !a)"
*)

open Stp_sweep

let show_canonical ~algebraic text =
  let e = Stp.Expr.of_string text in
  Format.printf "Phi = %a@." Stp.Expr.pp e;
  let dense, order =
    if algebraic then Stp.Canonical.of_expr_algebraic e
    else
      let m, order = Stp.Canonical.of_expr e in
      (Stp.Logic_matrix.to_matrix m, order)
  in
  Format.printf "variable order (leading factor first): %s@."
    (String.concat " " order);
  Format.printf "M_Phi:@.%a@." Stp.Matrix.pp dense;
  Format.printf "tautology: %b   satisfiable: %b@."
    (Stp.Reasoning.is_tautology e)
    (Stp.Reasoning.is_satisfiable e)

let show_models text =
  let e = Stp.Expr.of_string text in
  let models = Stp.Reasoning.satisfying_assignments e in
  Format.printf "%d model(s)@." (List.length models);
  List.iter
    (fun model ->
      Format.printf "  %s@."
        (String.concat ", "
           (List.map (fun (v, b) -> Printf.sprintf "%s=%d" v (if b then 1 else 0)) model)))
    models

let show_equiv a b =
  let ea = Stp.Expr.of_string a and eb = Stp.Expr.of_string b in
  if Stp.Reasoning.equivalent ea eb then
    Format.printf "equivalent: %a  <=>  %a@." Stp.Expr.pp ea Stp.Expr.pp eb
  else begin
    Format.printf "NOT equivalent.@.";
    (* Print one distinguishing assignment. *)
    let diff = Stp.Expr.Xor (ea, eb) in
    match Stp.Reasoning.satisfying_assignments diff with
    | model :: _ ->
      Format.printf "witness: %s@."
        (String.concat ", "
           (List.map (fun (v, b) -> Printf.sprintf "%s=%d" v (if b then 1 else 0)) model))
    | [] -> assert false
  end

open Cmdliner

let exprs = Arg.(value & pos_all string [] & info [] ~docv:"EXPR")
let models = Arg.(value & flag & info [ "models" ] ~doc:"Enumerate satisfying assignments.")
let equiv = Arg.(value & flag & info [ "equiv" ] ~doc:"Prove/refute equivalence of two expressions.")
let algebraic =
  Arg.(value & flag & info [ "algebraic" ]
       ~doc:"Use the dense swap-matrix normalization instead of the fast path.")

let run exprs models_f equiv_f algebraic_f =
  match (exprs, models_f, equiv_f) with
  | [ a; b ], _, true -> show_equiv a b
  | [ e ], true, false -> show_models e
  | [ e ], false, false -> show_canonical ~algebraic:algebraic_f e
  | _ ->
    prerr_endline "usage: reasoner EXPR | --models EXPR | --equiv EXPR EXPR";
    exit 2

let cmd =
  Cmd.v
    (Cmd.info "reasoner" ~doc:"STP canonical forms and Boolean reasoning")
    Term.(const run $ exprs $ models $ equiv $ algebraic)

let () = exit (Cmd.eval cmd)
