bin/simulator.ml: Aig Arg Array Cmd Cmdliner Filename Format Gen Int64 Klut Printf Report Sim Stp_sweep Term
