bin/sweep_cli.mli:
