bin/table1.ml: Aig Arg Cmd Cmdliner Gen Klut List Printf Report Sim Stp_sweep Term
