bin/reasoner.mli:
