bin/sat_cli.mli:
