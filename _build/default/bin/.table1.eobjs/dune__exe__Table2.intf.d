bin/table2.mli:
