bin/reasoner.ml: Arg Cmd Cmdliner Format List Printf Stp Stp_sweep String Term
