bin/cec_cli.ml: Aig Arg Array Cmd Cmdliner Format Printf Stp_sweep Sweep Term
