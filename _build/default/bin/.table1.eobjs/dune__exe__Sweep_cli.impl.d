bin/sweep_cli.ml: Aig Arg Cmd Cmdliner Filename Format Gen Printf Stp_sweep Sweep Term
