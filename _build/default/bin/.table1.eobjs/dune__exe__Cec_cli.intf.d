bin/cec_cli.mli:
