bin/sat_cli.ml: Arg Buffer Cmd Cmdliner Format Fun Printf Sat Stp_sweep Term
