bin/flow.ml: Aig Arg Cmd Cmdliner Filename Format Gen Printf Stp_sweep Sweep Synth Term
