bin/table2.ml: Aig Arg Cmd Cmdliner Float Gen List Printf Report Stp_sweep Sweep Term
