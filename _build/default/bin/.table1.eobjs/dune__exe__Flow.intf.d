bin/flow.mli:
