bin/simulator.mli:
