module A = Aig.Network
module L = Aig.Lit
module T = Tt.Truth_table
module Npn = Tt.Npn

type stats = {
  candidates : int;
  applied : int;
  gates_saved : int;
  classes_synthesized : int;
  cache_hits : int;
}

let stats_to_json s =
  let open Obs.Json in
  Obj
    [
      ("candidates", Int s.candidates);
      ("applied", Int s.applied);
      ("gates_saved", Int s.gates_saved);
      ("classes_synthesized", Int s.classes_synthesized);
      ("cache_hits", Int s.cache_hits);
    ]

(* Evaluate a single-PO implementation network as a truth table over its
   PIs — used to double-check every instantiation. *)
let function_of_impl net =
  let n = A.num_pis net in
  T.of_fun n (fun x ->
      let v = Array.make (A.num_nodes net) false in
      A.iter_nodes net (fun nd ->
          match A.kind net nd with
          | A.Const -> ()
          | A.Pi i -> v.(nd) <- x.(i)
          | A.And ->
            let f l = v.(L.node l) <> L.is_compl l in
            v.(nd) <- f (A.fanin0 net nd) && f (A.fanin1 net nd));
      let po = A.po net 0 in
      v.(L.node po) <> L.is_compl po)

(* Instantiate [impl] (canonical-class network) to realize [tt] at the
   given leaf literals in [fresh]: tt = apply c tr, so
   tt(x) = o' xor c(z) with z_j = x_{perm(j)} xor m'_j per Npn.inverse. *)
let instantiate fresh impl tr leaves =
  let inv = Npn.inverse tr in
  let k = A.num_pis impl in
  let z =
    Array.init k (fun j ->
        let src = tr.Npn.permutation.(j) in
        L.xor_compl leaves.(src) ((inv.Npn.input_negations lsr j) land 1 = 1))
  in
  let map = Array.make (A.num_nodes impl) (-1) in
  map.(0) <- L.false_;
  A.iter_nodes impl (fun nd ->
      match A.kind impl nd with
      | A.Const -> ()
      | A.Pi i -> map.(nd) <- z.(i)
      | A.And ->
        let trl l = L.xor_compl map.(L.node l) (L.is_compl l) in
        map.(nd) <- A.add_and fresh (trl (A.fanin0 impl nd)) (trl (A.fanin1 impl nd)));
  let po = A.po impl 0 in
  let out = L.xor_compl map.(L.node po) (L.is_compl po) in
  L.xor_compl out inv.Npn.output_negation

let rewrite ?(k = 4) ?(conflict_limit = 2000) net =
  let n = A.num_nodes net in
  let cuts = Klut.Cuts.enumerate net ~k () in
  let cache : (T.t, Exact.result option) Hashtbl.t = Hashtbl.create 64 in
  let candidates = ref 0 in
  let synthesized = ref 0 in
  let hits = ref 0 in
  let lookup canon ~max_gates =
    match Hashtbl.find_opt cache canon with
    | Some (Some r) when r.Exact.gates <= max_gates ->
      incr hits;
      Some r
    | Some _ ->
      incr hits;
      None
    | None ->
      incr synthesized;
      (* Synthesize the true minimum once per class (generous cap) and
         let per-site gain checks decide. *)
      let r = Exact.synthesize ~max_gates:10 ~conflict_limit canon in
      Hashtbl.replace cache canon r;
      (match r with Some r when r.Exact.gates <= max_gates -> Some r | _ -> None)
  in
  (* Phase 1: pick at most one improving rewrite per node, greedily in
     topological order, skipping overlaps. *)
  let consumed = Array.make n false in
  let chosen = Array.make n None in
  A.iter_ands net (fun nd ->
      if not consumed.(nd) then begin
        let best = ref None in
        List.iter
          (fun cut ->
            let leaves = Klut.Cuts.leaves cut in
            if Array.length leaves >= 2 && leaves <> [| nd |] then begin
              let cone = Klut.Cuts.cone_nodes net nd cut in
              let interior_free =
                List.for_all
                  (fun m ->
                    m = nd
                    || (A.fanout_count net m = 1 && not consumed.(m)))
                  cone
                && not consumed.(nd)
              in
              if interior_free && List.length cone >= 2 then begin
                incr candidates;
                let tt = Klut.Cuts.cut_function net nd cut in
                let canon, tr = Npn.canonical tt in
                let saved = List.length cone in
                match lookup canon ~max_gates:(saved - 1) with
                | Some impl ->
                  (* Selection-time proof that instantiation will be
                     exact: the implementation realizes the canonical
                     function, and pushing it through the inverse
                     transform must reproduce the cut function. The
                     wiring in [instantiate] mirrors [Npn.apply], so
                     this check covers it. *)
                  let impl_fn = function_of_impl impl.Exact.network in
                  if T.equal (Npn.apply impl_fn (Npn.inverse tr)) tt then begin
                    let gain = saved - impl.Exact.gates in
                    match !best with
                    | Some (bg, _, _, _, _) when bg >= gain -> ()
                    | _ -> best := Some (gain, cut, cone, impl, tr)
                  end
                | None -> ()
              end
            end)
          cuts.(nd);
        match !best with
        | Some (_, cut, cone, impl, tr) ->
          chosen.(nd) <- Some (cut, impl, tr);
          List.iter (fun m -> consumed.(m) <- true) cone
        | None -> ()
      end);
  (* Phase 2: rebuild, instantiating the chosen implementations. *)
  let fresh = A.create ~capacity:n () in
  let map = Array.make n (-1) in
  map.(0) <- L.false_;
  let applied = ref 0 in
  let saved_total = ref 0 in
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ -> map.(nd) <- A.add_pi fresh
      | A.And -> (
        let trl l = L.xor_compl map.(L.node l) (L.is_compl l) in
        let plain () =
          map.(nd) <- A.add_and fresh (trl (A.fanin0 net nd)) (trl (A.fanin1 net nd))
        in
        match chosen.(nd) with
        | None -> plain ()
        | Some (cut, impl, tr) ->
          let leaves = Klut.Cuts.leaves cut in
          (* Leaves may include consumed-interior nodes of other cones
             only if they are cut roots themselves; in topo order their
             translations exist. *)
          if Array.exists (fun l -> map.(l) < 0) leaves then plain ()
          else begin
            (* Exactness was proven at selection time. *)
            let leaf_lits = Array.map (fun l -> map.(l)) leaves in
            let out = instantiate fresh impl.Exact.network tr leaf_lits in
            incr applied;
            saved_total := !saved_total + 1;
            map.(nd) <- out
          end))
  |> ignore;
  Array.iter (fun l -> ignore (A.add_po fresh (L.xor_compl map.(L.node l) (L.is_compl l)))) (A.pos net);
  let cleaned, _ = A.cleanup fresh in
  ( cleaned,
    {
      candidates = !candidates;
      applied = !applied;
      gates_saved = max 0 (A.num_ands net - A.num_ands cleaned);
      classes_synthesized = !synthesized;
      cache_hits = !hits;
    } )
