(** Cut-based AIG rewriting with exact resynthesis.

    For every AND node, enumerate its k-feasible cuts (k = 4 by
    default); for cuts whose cone is fanout-free (a tree rooted at the
    node), NPN-canonize the cut function, synthesize a minimum
    implementation with {!Exact} (memoized per NPN class, bounded by the
    cone size so only genuine improvements are searched), and greedily
    apply non-overlapping replacements in topological order. Exactness
    is belt-and-braces: every instantiated replacement is re-simulated
    against the cut function before being accepted, and the whole pass
    preserves the network function.

    This is the standard synthesis step that follows SAT-sweeping in a
    real flow (sweeping removes redundancy, rewriting restructures); the
    examples chain the two. *)

type stats = {
  candidates : int;  (** cuts examined *)
  applied : int;  (** replacements accepted *)
  gates_saved : int;
  classes_synthesized : int;
  cache_hits : int;
}

val stats_to_json : stats -> Obs.Json.t
(** The rewrite section of a pass record: one flat object with the five
    counters — what the pass manager embeds instead of ad-hoc printing. *)

val rewrite :
  ?k:int ->
  ?conflict_limit:int ->
  Aig.Network.t ->
  Aig.Network.t * stats
(** [conflict_limit] (default 2000) bounds each exact-synthesis SAT
    call; classes that blow the budget are skipped, never guessed. *)
