(** Composable resource budgets: a wall-clock deadline ({!Clock} scale)
    plus optional conflict and propagation caps, with a cheap
    stride-counted check and a typed exhaustion reason.

    This is the repo's rendition of MiniSat's [set_conf_budget] /
    [set_prop_budget] / [within_budget] machinery, extended with a
    deadline: anytime algorithms (the sweeping engine, the solver's
    search loop) call {!check} from their hot loop; the budget reads the
    clock only every [stride] calls, so the steady-state cost is one
    integer decrement. Once a budget reports exhaustion it stays
    exhausted — the owner is expected to degrade gracefully, never to
    resume.

    A budget never interrupts anything by itself: exhaustion is a value
    the caller acts on, which is what makes "finish the in-flight merge,
    then stop" degradation possible.

    Thread safety: one budget may be shared across OCaml domains (the
    sweep engine's parallel SAT dispatch hands the pipeline budget to
    every solver worker). The sticky exhaustion flag and the stride
    countdown are atomics — any domain's {!check} can trip exhaustion
    and every other domain observes it on its next check. Countdown
    races are benign: a lost decrement only shifts which call pays the
    next clock read. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Conflicts  (** the cumulative conflict cap was reached *)
  | Propagations  (** the cumulative propagation cap was reached *)

type t

val unlimited : unit -> t
(** A budget that never exhausts. *)

val create :
  ?deadline:float ->
  ?timeout:float ->
  ?conflicts:int ->
  ?propagations:int ->
  ?stride:int ->
  unit ->
  t
(** [deadline] is an absolute {!Clock.now} timestamp; [timeout] is
    seconds from now (ignored when [deadline] is given). [conflicts] /
    [propagations] cap the cumulative counter values passed to {!check}.
    [stride] (default 64) is how many {!check} calls go between
    wall-clock reads. *)

val is_limited : t -> bool
(** Whether any resource is capped. *)

val deadline : t -> float option
(** The absolute deadline, if one is set — the value to hand to
    [Sat.Solver.solve ?deadline] so a single long query also respects
    the global budget. *)

val remaining_s : t -> float option
(** Seconds left until the deadline ([None] when unlimited); can be
    negative once expired. *)

val check : ?conflicts:int -> ?propagations:int -> t -> reason option
(** The hot-loop check. Counter caps are compared on every call; the
    clock is read only every [stride] calls. Returns the exhaustion
    reason once any resource runs out, and keeps returning it (sticky). *)

val check_now : ?conflicts:int -> ?propagations:int -> t -> reason option
(** Like {!check} but always reads the clock — for phase boundaries
    where a strided check could overshoot. *)

val charge : ?conflicts:int -> ?propagations:int -> t -> reason option
(** [charge ~conflicts ~propagations t] adds {e deltas} (work done since
    the caller's previous charge) to the budget's internal consumption
    meters and compares the accumulated totals against the caps —
    unlike {!check}, whose counter arguments are caller-cumulative
    values. Charging lets one budget be shared by parties that each
    count from zero: the pipeline's successive sweep passes, or the
    dispatch pool's per-domain solvers. Sticky like {!check}; a trip
    here is observed by every later {!check} on any domain. *)

val consumed : t -> int * int
(** [(conflicts, propagations)] accumulated through {!charge} — what an
    {!Pool} lease deducts from the shared pool at release time. *)

val exhausted : t -> reason option
(** The sticky exhaustion state, without performing a new check. *)

val reason_to_string : reason -> string
(** ["deadline" | "conflicts" | "propagations"] — the spelling used in
    JSON run reports. *)

val pp_reason : Format.formatter -> reason -> unit
