(** A daemon-wide budget pool: one shared allowance of wall-clock
    seconds, SAT conflicts and propagations, leased out in fair-share
    slices to concurrent requests.

    Without a pool, N concurrent requests each carving their own
    {!Budget} multiply the process's effective resource ceiling by N.
    With one, every admitted request {!lease}s a slice of what is
    actually left — [min(request cap, remaining / inflight)] per
    resource — runs under a {!Budget} built from that slice, and
    {!release}s the unspent allowance back when it completes.

    Exhaustion is graceful by construction: a lease taken from an empty
    pool is still granted, but its budget is born exhausted (a sliver of
    wall, zero conflicts), so the pipeline running under it degrades to
    a proven partial result — the same fail-safe discipline a single
    budgeted sweep has — rather than failing the request. The pool
    never interrupts in-flight work; it only bounds what each request
    was ever allowed to spend.

    Accounting is conservative and exact at quiescence: a lease deducts
    its whole slice up front (concurrent leases cannot over-commit),
    release refunds [slice - consumed] with consumption clamped to the
    slice, so [remaining = total - consumed] once every lease is
    released. Consumption comes from the lease budget's {!Budget.charge}
    meters (conflicts/propagations) and the lease's wall-clock span.

    Thread safety: all operations are mutex-guarded; the handed-out
    budgets are themselves domain-safe. *)

type t

val create :
  ?wall_s:float ->
  ?conflicts:int ->
  ?propagations:int ->
  ?min_wall_slice:float ->
  unit ->
  t
(** Omitted resources are unlimited (leases pass the request's own cap
    through untouched). [min_wall_slice] (default 0.01 s) is the sliver
    an exhausted pool still grants so degradation, not failure, is the
    overload behaviour. *)

val is_limited : t -> bool

type lease

val lease :
  ?wall_cap:float -> ?conflicts_cap:int -> ?propagations_cap:int -> t -> lease
(** Admit one request: per capped resource, grant
    [min(cap, remaining / inflight)] (the fair share counts this
    request), deduct it from the pool, and build the lease's budget.
    Caps are the request's own limits; for uncapped pool resources they
    pass through to the budget unchanged. Never blocks, never fails. *)

val budget : lease -> Budget.t
(** The budget to run the leased request under. Charge SAT work to it
    with {!Budget.charge} — that is what {!release} reclaims unspent
    allowance from. *)

val release : t -> lease -> unit
(** Return the lease: refunds [slice - consumed] per resource (consumed
    clamped to the slice) and decrements the in-flight count.
    Idempotent — a second release of the same lease is a no-op. *)

type stats = {
  s_wall_total : float option;
  s_wall_remaining : float;
  s_wall_consumed : float;
  s_conflicts_total : int option;
  s_conflicts_remaining : int;
  s_conflicts_consumed : int;
  s_props_total : int option;
  s_props_remaining : int;
  s_props_consumed : int;
  s_inflight : int;
  s_leases : int;  (** leases ever granted *)
  s_starved : int;
      (** leases whose wall sliver exceeded what the pool could cover —
          grants made from an effectively empty pool *)
}

val stats : t -> stats

val stats_json : t -> Json.t
(** The [pool] object of the daemon's [health] response; schema in
    EXPERIMENTS.md. *)
