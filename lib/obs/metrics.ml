(* A mutex (rather than lock-free cells) keeps the table itself safe to
   grow from any domain; every operation is a handful of instructions
   under the lock, far off any hot path. *)
type t = {
  m : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
}

let create () =
  {
    m = Mutex.create ();
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let cell tbl make name =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add tbl name c;
    c

let incr ?(by = 1) t name =
  locked t (fun () ->
      let c = cell t.counters (fun () -> ref 0) name in
      c := !c + by)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0)

let add_time t name secs =
  locked t (fun () ->
      let c = cell t.timers (fun () -> ref 0.) name in
      c := !c +. secs)

let time t name f =
  let t0 = Clock.now () in
  let r = f () in
  add_time t name (Clock.now () -. t0);
  r

let phase_time t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.timers name with Some c -> !c | None -> 0.)

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = locked t (fun () -> sorted t.counters)
let phases t = locked t (fun () -> sorted t.timers)

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("phases_s", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (phases t)));
    ]
