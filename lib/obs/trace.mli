(** Opt-in progress stream for long runs.

    Disabled by default; enabled by the [STP_SWEEP_TRACE=1] environment
    variable or a CLI [--trace] flag calling {!enable}. Lines go to
    stderr as [[trace +SECONDS] message] with seconds relative to the
    first emission, so a stalled sweep shows where it stalled without
    perturbing stdout reports. *)

val enabled : unit -> bool

val enable : unit -> unit

val emitf : ('a, unit, string, unit) format4 -> 'a
(** Formats and emits one line when enabled; when disabled the
    formatting still evaluates its arguments, so keep call sites off the
    per-node hot path (guard batches with {!enabled} if needed). *)
