(** Named counters and phase timers.

    One [t] per run (a sweep, a table regeneration): counters count
    events, phases accumulate wall-clock seconds per named stage. Both
    export to {!Json} for the run report. Synchronized with an internal
    mutex — safe to record from worker domains (the sweep engine's
    parallel SAT dispatch shares the pipeline metrics); every operation
    is a few instructions under the lock, so keep it off per-word hot
    loops all the same. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bumps a counter, creating it at zero on first use. *)

val counter : t -> string -> int
(** Current value; 0 if never incremented. *)

val add_time : t -> string -> float -> unit
(** Adds seconds to a named phase. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk and bills its wall-clock span to the phase. *)

val phase_time : t -> string -> float
(** Accumulated seconds; 0. if the phase never ran. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val phases : t -> (string * float) list
(** All phase timers, sorted by name. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "phases_s": {...}}], keys sorted. *)
