(** Monotonic wall-clock timing.

    Every timer in the repo goes through this module. The distinction it
    exists to enforce: [Sys.time] is process CPU time summed over all
    running domains, so a perfectly-scaling 4-domain run reports ~4x the
    sequential number — wall clock is the only meaningful metric for
    parallel engines (and the one the paper's tables report).

    Timestamps come from [Unix.gettimeofday], clamped to be
    non-decreasing across all domains, so spans are never negative even
    if the system clock steps backwards mid-measurement. *)

val now : unit -> float
(** Wall-clock seconds since the Unix epoch, monotonically
    non-decreasing within the process. Safe to call from any domain. *)

val span : (unit -> 'a) -> float * 'a
(** Wall seconds spent in the thunk, and its result. *)

val accumulate : float ref -> (unit -> 'a) -> 'a
(** Runs the thunk and adds its wall-clock span to the cell — the
    building block for phase accounting. *)
