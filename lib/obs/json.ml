type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal repr that parses back to the same IEEE double; force
   a '.' or 'e' into it so the parser reads it back as Float, not Int. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s15 = Printf.sprintf "%.15g" f in
    let s = if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string b (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin Buffer.add_char b ','; nl () end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if pretty then ": " else ":");
          go (depth + 1) x)
        kvs;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')

exception Parse_error of int * string

(* Hostile-input bound: the recursive-descent parser consumes stack
   proportional to the nesting depth, so an adversarial "[[[[..." frame
   on the cache/wire path would otherwise be a Stack_overflow crash
   instead of a typed parse error. 512 is far beyond any report. *)
let max_depth = 512

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    (* By hand, not [int_of_string "0x..."]: that accepts '_' and raises
       Failure (not Parse_error) on anything else — a crash on hostile
       input like "\uZZZZ". *)
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v lsl 4) lor d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           let cp = hex4 () in
           (* UTF-8 encode; surrogate pairs are not combined. *)
           if cp < 0x80 then Buffer.add_char b (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when number_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* integer token too wide for int: keep the value as a float *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then fail "nesting too deep";
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
