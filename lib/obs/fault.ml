type site = {
  site_name : string;
  mutable prob : float; (* < 0.0 means disarmed *)
  mutable hit_count : int;
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let any_armed = ref false

(* Pending probabilities for sites configured before their defining
   module registered them (env spec is parsed at obs's own init, which
   can precede the solver/engine/parser modules). *)
let pending : (string, float) Hashtbl.t = Hashtbl.create 16

(* Deterministic splitmix64, self-contained so obs keeps its tiny
   dependency footprint. Fault draws are test-only, never security. *)
let rng_state = ref 0x9E3779B97F4A7C15L

let seed_rng n = rng_state := Int64.logxor 0x9E3779B97F4A7C15L n

let next64 () =
  let open Int64 in
  rng_state := add !rng_state 0x9E3779B97F4A7C15L;
  let z = !rng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_float () =
  (* 53 uniform bits into [0,1). *)
  Int64.to_float (Int64.shift_right_logical (next64 ()) 11) *. 0x1p-53

let next_int bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 ()) 1)
                       (Int64.of_int bound))

let register name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let prob =
      match Hashtbl.find_opt pending name with Some p -> p | None -> -1.0
    in
    let s = { site_name = name; prob; hit_count = 0 } in
    if prob >= 0.0 then any_armed := true;
    Hashtbl.replace registry name s;
    s

let name s = s.site_name
let hits s = s.hit_count
let enabled () = !any_armed

let fires s =
  !any_armed && s.prob >= 0.0
  && next_float () < s.prob
  &&
  (s.hit_count <- s.hit_count + 1;
   true)

let truncate s text =
  if fires s && String.length text > 0 then
    String.sub text 0 (next_int (String.length text))
  else text

let bypass f =
  (* [fires] short-circuits on [any_armed], so flipping the flag
     suspends every site without touching probabilities or counters. *)
  let armed = !any_armed in
  any_armed := false;
  Fun.protect ~finally:(fun () -> any_armed := armed) f

let reset () =
  any_armed := false;
  Hashtbl.reset pending;
  Hashtbl.iter
    (fun _ s ->
      s.prob <- -1.0;
      s.hit_count <- 0)
    registry

let configure spec =
  reset ();
  let arm name prob =
    (match Hashtbl.find_opt registry name with
    | Some s -> s.prob <- prob
    | None -> Hashtbl.replace pending name prob);
    any_armed := true
  in
  let entry e =
    match String.index_opt e '=' with
    | Some i when String.sub e 0 i = "seed" -> (
      let v = String.sub e (i + 1) (String.length e - i - 1) in
      match Int64.of_string_opt v with
      | Some n ->
        seed_rng n;
        Ok ()
      | None -> Error (Printf.sprintf "bad seed %S" v))
    | Some _ -> Error (Printf.sprintf "bad entry %S (use name, name:prob or seed=N)" e)
    | None -> (
      match String.index_opt e ':' with
      | None ->
        arm e 1.0;
        Ok ()
      | Some i -> (
        let name = String.sub e 0 i in
        let p = String.sub e (i + 1) (String.length e - i - 1) in
        match float_of_string_opt p with
        | Some f when f >= 0.0 && f <= 1.0 ->
          arm name f;
          Ok ()
        | _ -> Error (Printf.sprintf "bad probability %S for site %s" p name)))
  in
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun e -> e <> "")
  |> List.fold_left
       (fun acc e -> match acc with Error _ -> acc | Ok () -> entry e)
       (Ok ())

let catalog () =
  Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort compare

(* Environment activation: a malformed spec is a warning, not a crash —
   fault injection must never take the tool down by itself. *)
let () =
  match Sys.getenv_opt "STP_SWEEP_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure spec with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "STP_SWEEP_FAULTS ignored: %s\n%!" msg)
