(* gettimeofday can step backwards (NTP adjustments); clamp through an
   atomic high-water mark so [now] is non-decreasing process-wide. *)
let high_water = Atomic.make neg_infinity

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get high_water in
  if t <= prev then prev
  else if Atomic.compare_and_set high_water prev t then t
  else now ()

let span f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let accumulate cell f =
  let t0 = now () in
  let r = f () in
  cell := !cell +. (now () -. t0);
  r
