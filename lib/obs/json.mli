(** Minimal JSON — just enough for machine-readable run reports.

    The container has no JSON library, so this is a small self-contained
    value type with a printer and a parser that round-trip each other:
    [of_string (to_string v) = Ok v] for any finite value. Reports stay
    greppable and any external tool can consume them.

    Deviations from full RFC 8259, chosen for report use: non-finite
    floats print as [null]; parsed [\uXXXX] escapes are decoded to UTF-8
    without surrogate-pair combining. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents two spaces per level.
    Floats print with the shortest digit string that parses back to the
    same IEEE value, always containing ['.'] or ['e'] so they stay
    floats through a round-trip. *)

val to_file : string -> t -> unit
(** Pretty-prints to a file with a trailing newline. *)

exception Parse_error of int * string
(** Character offset plus message. The only exception the parser raises,
    whatever the input: hostile bytes on the cache/wire path become a
    typed, positioned error, never [Failure] or [Stack_overflow]
    (nesting is capped). *)

val parse : string -> t
(** Parses one JSON value (surrounding whitespace allowed); raises
    [Parse_error]. Entry point for wire/cache payloads where the caller
    maps the exception to a protocol-level error response. *)

val of_string : string -> (t, string) result
(** [parse] with the error rendered as a message carrying the character
    offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)

val to_float : t -> float option
(** Numeric access: [Int] and [Float] both convert. *)
