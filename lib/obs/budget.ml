type reason = Deadline | Conflicts | Propagations

(* [countdown] and [exhausted] are atomics so solver domains can share
   one budget: any worker's check may trip exhaustion, and the sticky
   flag is immediately visible to every other worker. The countdown
   races benignly — a lost decrement only shifts which call pays the
   clock read. *)
type t = {
  deadline : float option;
  max_conflicts : int option;
  max_propagations : int option;
  stride : int;
  countdown : int Atomic.t; (* check calls until the next clock read *)
  exhausted : reason option Atomic.t;
  (* Internal consumption meters fed by {!charge} deltas. They let one
     budget be shared across callers that each count from zero (the
     pipeline's several sweep passes, the dispatch pool's per-domain
     solvers) and let an [Obs.Pool] lease reclaim unspent allowance at
     release time. *)
  acc_conflicts : int Atomic.t;
  acc_propagations : int Atomic.t;
}

let make ~deadline ~conflicts ~propagations ~stride =
  {
    deadline;
    max_conflicts = conflicts;
    max_propagations = propagations;
    stride = max 1 stride;
    countdown = Atomic.make 0; (* first check reads the clock *)
    exhausted = Atomic.make None;
    acc_conflicts = Atomic.make 0;
    acc_propagations = Atomic.make 0;
  }

let unlimited () =
  make ~deadline:None ~conflicts:None ~propagations:None ~stride:64

let create ?deadline ?timeout ?conflicts ?propagations ?(stride = 64) () =
  let deadline =
    match (deadline, timeout) with
    | (Some _ as d), _ -> d
    | None, Some s -> Some (Clock.now () +. s)
    | None, None -> None
  in
  make ~deadline ~conflicts ~propagations ~stride

let is_limited t =
  t.deadline <> None || t.max_conflicts <> None || t.max_propagations <> None

let deadline t = t.deadline

let remaining_s t =
  match t.deadline with Some d -> Some (d -. Clock.now ()) | None -> None

let exhausted t = Atomic.get t.exhausted

let over cap v = match cap with Some c -> v >= c | None -> false

let check_gen ~force ?(conflicts = 0) ?(propagations = 0) t =
  match Atomic.get t.exhausted with
  | Some _ as r -> r
  | None ->
    let r =
      if over t.max_conflicts conflicts then Some Conflicts
      else if over t.max_propagations propagations then Some Propagations
      else
        match t.deadline with
        | None -> None
        | Some d ->
          let c = Atomic.fetch_and_add t.countdown (-1) in
          if force || c <= 1 then begin
            Atomic.set t.countdown t.stride;
            if Clock.now () > d then Some Deadline else None
          end
          else None
    in
    if r <> None then Atomic.set t.exhausted r;
    r

let check ?conflicts ?propagations t =
  check_gen ~force:false ?conflicts ?propagations t

let check_now ?conflicts ?propagations t =
  check_gen ~force:true ?conflicts ?propagations t

let charge ?(conflicts = 0) ?(propagations = 0) t =
  let c = Atomic.fetch_and_add t.acc_conflicts conflicts + conflicts in
  let p = Atomic.fetch_and_add t.acc_propagations propagations + propagations in
  match Atomic.get t.exhausted with
  | Some _ as r -> r
  | None ->
    let r =
      if over t.max_conflicts c then Some Conflicts
      else if over t.max_propagations p then Some Propagations
      else None
    in
    if r <> None then Atomic.set t.exhausted r;
    r

let consumed t = (Atomic.get t.acc_conflicts, Atomic.get t.acc_propagations)

let reason_to_string = function
  | Deadline -> "deadline"
  | Conflicts -> "conflicts"
  | Propagations -> "propagations"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)
