type reason = Deadline | Conflicts | Propagations

type t = {
  deadline : float option;
  max_conflicts : int option;
  max_propagations : int option;
  stride : int;
  mutable countdown : int; (* check calls until the next clock read *)
  mutable exhausted : reason option;
}

let make ~deadline ~conflicts ~propagations ~stride =
  {
    deadline;
    max_conflicts = conflicts;
    max_propagations = propagations;
    stride = max 1 stride;
    countdown = 0; (* first check reads the clock *)
    exhausted = None;
  }

let unlimited () =
  make ~deadline:None ~conflicts:None ~propagations:None ~stride:64

let create ?deadline ?timeout ?conflicts ?propagations ?(stride = 64) () =
  let deadline =
    match (deadline, timeout) with
    | (Some _ as d), _ -> d
    | None, Some s -> Some (Clock.now () +. s)
    | None, None -> None
  in
  make ~deadline ~conflicts ~propagations ~stride

let is_limited t =
  t.deadline <> None || t.max_conflicts <> None || t.max_propagations <> None

let deadline t = t.deadline

let remaining_s t =
  match t.deadline with Some d -> Some (d -. Clock.now ()) | None -> None

let exhausted t = t.exhausted

let over cap v = match cap with Some c -> v >= c | None -> false

let check_gen ~force ?(conflicts = 0) ?(propagations = 0) t =
  match t.exhausted with
  | Some _ as r -> r
  | None ->
    let r =
      if over t.max_conflicts conflicts then Some Conflicts
      else if over t.max_propagations propagations then Some Propagations
      else
        match t.deadline with
        | None -> None
        | Some d ->
          t.countdown <- t.countdown - 1;
          if force || t.countdown <= 0 then begin
            t.countdown <- t.stride;
            if Clock.now () > d then Some Deadline else None
          end
          else None
    in
    if r <> None then t.exhausted <- r;
    r

let check ?conflicts ?propagations t =
  check_gen ~force:false ?conflicts ?propagations t

let check_now ?conflicts ?propagations t =
  check_gen ~force:true ?conflicts ?propagations t

let reason_to_string = function
  | Deadline -> "deadline"
  | Conflicts -> "conflicts"
  | Propagations -> "propagations"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)
