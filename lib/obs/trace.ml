let on =
  ref
    (match Sys.getenv_opt "STP_SWEEP_TRACE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () = !on
let enable () = on := true

let epoch = ref None

let emitf fmt =
  Printf.ksprintf
    (fun msg ->
      if !on then begin
        let now = Clock.now () in
        let t0 =
          match !epoch with
          | Some t -> t
          | None ->
            epoch := Some now;
            now
        in
        Printf.eprintf "[trace +%.3fs] %s\n%!" (now -. t0) msg
      end)
    fmt
