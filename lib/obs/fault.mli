(** Named fault-injection sites for robustness testing.

    Library code declares a site once at module initialization:

    {[ let fault_drop_ce = Obs.Fault.register "sweep.drop_ce" ]}

    and asks {!fires} at the point where the fault would strike. With no
    configuration every site is dormant and [fires] is a single [bool]
    read — safe to leave in production paths.

    Sites are armed by a spec string, either programmatically
    ({!configure}) or through the [STP_SWEEP_FAULTS] environment
    variable read at startup. The spec is a comma-separated list of
    entries:

    - [seed=N] — reseed the (deterministic) fault PRNG;
    - [site.name] — arm the site, firing on every opportunity;
    - [site.name:P] — arm it with probability [P] (0..1) per
      opportunity.

    Example: [STP_SWEEP_FAULTS="seed=3,sat.force_unknown:0.5"].

    The contract every registered site must honor: an injected fault may
    degrade results (fewer merges, a parse error, an [Unknown] answer)
    but must never crash the process, never let an unproven merge
    through, and never change a committed result — the fault-injection
    test matrix asserts exactly that. Consequently sites may only force
    the {e pessimistic} branch of a decision (drop information, report
    failure), never fabricate success.

    Exempted from that contract are the adversarial {e lying-solver}
    sites ([sat.flip_unsat], [sat.corrupt_proof], [sat.bogus_model]):
    they deliberately fabricate wrong answers so tests can demonstrate
    that certified mode ([config.certify], {!Sat.Drup}) catches a
    malicious solver. Arm them only against certified runs — an
    uncertified run has no checker and will believe the lie. The
    catalog of sites is documented in DESIGN.md. *)

type site

val register : string -> site
(** Declares (or retrieves — registration is idempotent by name) a fault
    site. Arbitrary cost at startup, zero cost afterwards. *)

val name : site -> string

val fires : site -> bool
(** Whether the fault strikes at this opportunity. Always [false] when
    fault injection is disabled or the site is not armed; otherwise a
    draw from the seeded PRNG against the site's probability. Each call
    that returns [true] increments the site's hit counter. *)

val hits : site -> int
(** How many times the site has fired since the last {!configure} /
    {!reset} — lets tests assert a fault actually struck. *)

val truncate : site -> string -> string
(** [truncate site text]: if the site fires, cut [text] to a PRNG-chosen
    proper prefix — the parser-input fault. Otherwise [text] unchanged. *)

val configure : string -> (unit, string) result
(** Parses and applies a spec string (see above), replacing the previous
    configuration. [Error] describes the first malformed entry; the
    previous configuration is cleared either way. *)

val enabled : unit -> bool
(** Whether any site is armed. *)

val reset : unit -> unit
(** Disarms every site and clears hit counters. *)

val bypass : (unit -> 'a) -> 'a
(** [bypass f] runs [f] with every site suspended, then restores the
    previous arming. Verification oracles (post-sweep CEC, self-checks)
    run under [bypass]: injected faults must be able to degrade the
    system under test, never the judge that convicts it. *)

val catalog : unit -> string list
(** Names of all registered sites, sorted — the surface the
    fault-injection matrix iterates. Sites register as their defining
    module initializes, so the catalog is complete once the libraries
    under test are linked and used. *)
