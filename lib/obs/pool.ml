(* Daemon-wide budget pool. See pool.mli for the lease/release
   contract; the implementation notes here are about accounting.

   All pool state is guarded by one mutex — leases are taken a handful
   of times per request, never in a hot loop, so contention is
   irrelevant next to a single SAT query.

   Conservation is the invariant the stress tests assert: for every
   capped resource,

     remaining + (sum of outstanding deductions) + (sum of consumed)
       = total

   A lease deducts its whole slice up front (so concurrent leases can
   never over-commit the pool); release refunds [slice - consumed],
   clamping consumption to the deduction — a sweep that overshoots its
   slice (checks are strided) costs the pool at most what was
   granted. *)

type t = {
  lock : Mutex.t;
  wall_total : float option;
  mutable wall_remaining : float;
  mutable wall_consumed : float;
  conflicts_total : int option;
  mutable conflicts_remaining : int;
  mutable conflicts_consumed : int;
  props_total : int option;
  mutable props_remaining : int;
  mutable props_consumed : int;
  min_wall_slice : float;
  mutable inflight : int;
  mutable leases : int;
  mutable starved : int;
}

type lease = {
  l_budget : Budget.t;
  l_wall_deducted : float;
  l_conflicts_deducted : int;
  l_props_deducted : int;
  l_start : float;
  mutable l_released : bool;
}

let create ?wall_s ?conflicts ?propagations ?(min_wall_slice = 0.01) () =
  {
    lock = Mutex.create ();
    wall_total = wall_s;
    wall_remaining = Option.value wall_s ~default:0.0;
    wall_consumed = 0.0;
    conflicts_total = conflicts;
    conflicts_remaining = Option.value conflicts ~default:0;
    conflicts_consumed = 0;
    props_total = propagations;
    props_remaining = Option.value propagations ~default:0;
    props_consumed = 0;
    min_wall_slice = Float.max 1e-6 min_wall_slice;
    inflight = 0;
    leases = 0;
    starved = 0;
  }

let is_limited t =
  t.wall_total <> None || t.conflicts_total <> None || t.props_total <> None

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* min(request cap, fair share of remaining), where the fair share
   splits what is left across every in-flight request including this
   one. An exhausted pool still grants a sliver (wall) or a zero cap
   (conflicts/propagations): the request is admitted, its budget is
   born exhausted, and the pipeline degrades it to a proven partial
   result instead of erroring. *)
let slice_float ~remaining ~fair_over ~cap ~floor =
  let fair = remaining /. float_of_int (max 1 fair_over) in
  let want = match cap with Some c -> Float.min c fair | None -> fair in
  Float.max floor want

let slice_int ~remaining ~fair_over ~cap =
  let fair = remaining / max 1 fair_over in
  let want = match cap with Some c -> min c fair | None -> fair in
  max 0 want

let lease ?wall_cap ?conflicts_cap ?propagations_cap t =
  locked t @@ fun () ->
  t.inflight <- t.inflight + 1;
  t.leases <- t.leases + 1;
  let timeout, wall_deducted =
    match t.wall_total with
    | None -> (wall_cap, 0.0)
    | Some _ ->
      let s =
        slice_float ~remaining:t.wall_remaining ~fair_over:t.inflight
          ~cap:wall_cap ~floor:t.min_wall_slice
      in
      let d = Float.max 0.0 (Float.min s t.wall_remaining) in
      t.wall_remaining <- t.wall_remaining -. d;
      if d < s then t.starved <- t.starved + 1;
      (Some s, d)
  in
  let conflicts, conflicts_deducted =
    match t.conflicts_total with
    | None -> (conflicts_cap, 0)
    | Some _ ->
      let s =
        slice_int ~remaining:t.conflicts_remaining ~fair_over:t.inflight
          ~cap:conflicts_cap
      in
      t.conflicts_remaining <- t.conflicts_remaining - s;
      (Some s, s)
  in
  let propagations, props_deducted =
    match t.props_total with
    | None -> (propagations_cap, 0)
    | Some _ ->
      let s =
        slice_int ~remaining:t.props_remaining ~fair_over:t.inflight
          ~cap:propagations_cap
      in
      t.props_remaining <- t.props_remaining - s;
      (Some s, s)
  in
  {
    l_budget = Budget.create ?timeout ?conflicts ?propagations ();
    l_wall_deducted = wall_deducted;
    l_conflicts_deducted = conflicts_deducted;
    l_props_deducted = props_deducted;
    l_start = Clock.now ();
    l_released = false;
  }

let budget l = l.l_budget

let release t l =
  locked t @@ fun () ->
  if not l.l_released then begin
    l.l_released <- true;
    t.inflight <- t.inflight - 1;
    let wall_used =
      Float.min l.l_wall_deducted (Float.max 0.0 (Clock.now () -. l.l_start))
    in
    t.wall_remaining <- t.wall_remaining +. (l.l_wall_deducted -. wall_used);
    t.wall_consumed <- t.wall_consumed +. wall_used;
    let c, p = Budget.consumed l.l_budget in
    let c_used = min l.l_conflicts_deducted (max 0 c) in
    t.conflicts_remaining <-
      t.conflicts_remaining + (l.l_conflicts_deducted - c_used);
    t.conflicts_consumed <- t.conflicts_consumed + c_used;
    let p_used = min l.l_props_deducted (max 0 p) in
    t.props_remaining <- t.props_remaining + (l.l_props_deducted - p_used);
    t.props_consumed <- t.props_consumed + p_used
  end

type stats = {
  s_wall_total : float option;
  s_wall_remaining : float;
  s_wall_consumed : float;
  s_conflicts_total : int option;
  s_conflicts_remaining : int;
  s_conflicts_consumed : int;
  s_props_total : int option;
  s_props_remaining : int;
  s_props_consumed : int;
  s_inflight : int;
  s_leases : int;
  s_starved : int;
}

let stats t =
  locked t @@ fun () ->
  {
    s_wall_total = t.wall_total;
    s_wall_remaining = t.wall_remaining;
    s_wall_consumed = t.wall_consumed;
    s_conflicts_total = t.conflicts_total;
    s_conflicts_remaining = t.conflicts_remaining;
    s_conflicts_consumed = t.conflicts_consumed;
    s_props_total = t.props_total;
    s_props_remaining = t.props_remaining;
    s_props_consumed = t.props_consumed;
    s_inflight = t.inflight;
    s_leases = t.leases;
    s_starved = t.starved;
  }

let resource_json cap remaining consumed =
  Json.Obj
    ([ ("limited", Json.Bool (cap <> None)) ]
    @ (match cap with None -> [] | Some c -> [ ("total", c) ])
    @ [ ("remaining", remaining); ("consumed", consumed) ])

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ( "wall_s",
        resource_json
          (Option.map (fun f -> Json.Float f) s.s_wall_total)
          (Json.Float s.s_wall_remaining)
          (Json.Float s.s_wall_consumed) );
      ( "conflicts",
        resource_json
          (Option.map (fun i -> Json.Int i) s.s_conflicts_total)
          (Json.Int s.s_conflicts_remaining)
          (Json.Int s.s_conflicts_consumed) );
      ( "propagations",
        resource_json
          (Option.map (fun i -> Json.Int i) s.s_props_total)
          (Json.Int s.s_props_remaining)
          (Json.Int s.s_props_consumed) );
      ("inflight", Json.Int s.s_inflight);
      ("leases", Json.Int s.s_leases);
      ("starved_leases", Json.Int s.s_starved);
    ]
