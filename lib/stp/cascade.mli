(** Compiled STP selection cascades.

    The STP of a logic matrix with a Boolean factor is a column-half
    selection ({!Logic_matrix.stp_bvec}); applied word-parallel over
    packed simulation patterns it reads [out = (x & M_hi) | (~x & M_lo)].
    Compiling the cascade of selections once per truth table — sharing
    repeated sub-matrices through cofactor memoization — turns node
    simulation into a handful of word operations per 32 patterns.

    This is the instruction form the simulation kernel plans execute
    ({!Sim.Kernel}): slot 0 holds constant 0, slot 1 constant 1, and
    instruction [i] computes slot [i + 2] by selecting between two
    earlier slots under fanin [sel_var.(i)]'s pattern word. *)

type t = {
  sel_var : int array;  (** fanin position whose word selects *)
  sel_hi : int array;  (** slot of the var=1 cofactor matrix *)
  sel_lo : int array;
  root : int;  (** slot holding the node's column selection *)
}

val compile : Tt.Truth_table.t -> t
(** Compile a truth table's cascade of column-half selections. Roots 0
    and 1 denote the constant functions (no instructions needed). *)

val length : t -> int
(** Number of selection instructions. *)
