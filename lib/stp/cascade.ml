module T = Tt.Truth_table

type t = {
  sel_var : int array;
  sel_hi : int array;
  sel_lo : int array;
  root : int;
}

let length c = Array.length c.sel_var

let compile tt =
  let memo = Hashtbl.create 16 in
  let sel_var = ref [] and sel_hi = ref [] and sel_lo = ref [] in
  let count = ref 2 in
  let rec slot_of tt k =
    if T.is_const0 tt then 0
    else if T.is_const1 tt then 1
    else
      match Hashtbl.find_opt memo tt with
      | Some s -> s
      | None ->
        (* Top factor = most significant remaining variable. *)
        let v = k - 1 in
        let hi = slot_of (drop_top (T.cofactor tt v true) v) v in
        let lo = slot_of (drop_top (T.cofactor tt v false) v) v in
        let s = !count in
        incr count;
        sel_var := v :: !sel_var;
        sel_hi := hi :: !sel_hi;
        sel_lo := lo :: !sel_lo;
        Hashtbl.replace memo tt s;
        s
  and drop_top tt v =
    (* The cofactor no longer depends on variable v; re-express it over
       v variables so memoization hits across widths. *)
    T.of_words v
      (let words = T.to_words tt in
       let bits = 1 lsl v in
       if bits >= 32 then Array.sub words 0 (bits / 32)
       else [| words.(0) land ((1 lsl bits) - 1) |])
  in
  let root = slot_of tt (T.num_vars tt) in
  {
    sel_var = Array.of_list (List.rev !sel_var);
    sel_hi = Array.of_list (List.rev !sel_hi);
    sel_lo = Array.of_list (List.rev !sel_lo);
    root;
  }
