let available () = Domain.recommended_domain_count ()

let split ~chunks n =
  if n <= 0 then [||]
  else begin
    let chunks = max 1 (min chunks n) in
    Array.init chunks (fun i -> (i * n / chunks, (i + 1) * n / chunks))
  end

let reraise_first = function
  | [] -> ()
  | e :: _ -> raise e

let run ~domains f =
  if domains <= 1 then f 0
  else begin
    let spawned =
      Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
    in
    (* Join everything before re-raising so no domain leaks on failure. *)
    let caller = (try f 0; None with e -> Some e) in
    let failures =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with () -> acc | exception e -> e :: acc)
        [] spawned
    in
    (match caller with Some e -> raise e | None -> ());
    reraise_first (List.rev failures)
  end

let for_ranges ~domains n f =
  let ranges = split ~chunks:domains n in
  match Array.length ranges with
  | 0 -> ()
  | 1 ->
    let lo, hi = ranges.(0) in
    f ~lo ~hi
  | k ->
    run ~domains:k (fun i ->
        let lo, hi = ranges.(i) in
        f ~lo ~hi)

module Pool = struct
  type t = {
    domains : int;
    m : Mutex.t;
    work : Condition.t; (* workers sleep here between jobs *)
    idle : Condition.t; (* the caller sleeps here during a job *)
    mutable epoch : int; (* bumped once per posted job *)
    mutable job : (int -> unit) option;
    mutable pending : int; (* workers still inside the current job *)
    mutable failure : exn option;
    mutable stopped : bool;
    mutable workers : unit Domain.t list;
  }

  let worker t idx =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.m;
      while (not t.stopped) && t.epoch = !seen do
        Condition.wait t.work t.m
      done;
      if t.stopped then Mutex.unlock t.m
      else begin
        seen := t.epoch;
        let f = Option.get t.job in
        Mutex.unlock t.m;
        let err = (try f idx; None with e -> Some e) in
        Mutex.lock t.m;
        (match err with
        | Some e when t.failure = None -> t.failure <- Some e
        | _ -> ());
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.idle;
        Mutex.unlock t.m;
        loop ()
      end
    in
    loop ()

  let create ~domains =
    let domains = max 1 domains in
    let t =
      {
        domains;
        m = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        epoch = 0;
        job = None;
        pending = 0;
        failure = None;
        stopped = false;
        workers = [];
      }
    in
    t.workers <-
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let domains t = t.domains

  let run t f =
    if t.domains = 1 then f 0
    else begin
      Mutex.lock t.m;
      if t.stopped then begin
        Mutex.unlock t.m;
        invalid_arg "Par.Pool.run: pool is shut down"
      end;
      t.job <- Some f;
      t.failure <- None;
      t.pending <- t.domains - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      let caller = (try f 0; None with e -> Some e) in
      Mutex.lock t.m;
      while t.pending > 0 do
        Condition.wait t.idle t.m
      done;
      t.job <- None;
      let worker_failure = t.failure in
      Mutex.unlock t.m;
      match (caller, worker_failure) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ()
    end

  let for_ranges t n f =
    let ranges = split ~chunks:t.domains n in
    match Array.length ranges with
    | 0 -> ()
    | 1 ->
      let lo, hi = ranges.(0) in
      f ~lo ~hi
    | k ->
      (* Fewer ranges than pool members when n < domains: the extra
         members run an empty job. *)
      run t (fun i ->
          if i < k then begin
            let lo, hi = ranges.(i) in
            f ~lo ~hi
          end)

  let drain t n f =
    if n > 0 then
      if t.domains = 1 then
        for i = 0 to n - 1 do
          f ~domain:0 i
        done
      else begin
        (* A single atomic ticket counter is the whole queue: tasks are
           claimed in index order, so a caller that records results into
           slot [i] gets deterministic placement regardless of which
           domain ran the task. *)
        let next = Atomic.make 0 in
        run t (fun domain ->
            let rec go () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                f ~domain i;
                go ()
              end
            in
            go ())
      end

  let shutdown t =
    Mutex.lock t.m;
    let ws = t.workers in
    t.workers <- [];
    if not t.stopped then begin
      t.stopped <- true;
      Condition.broadcast t.work
    end;
    Mutex.unlock t.m;
    List.iter Domain.join ws

  let with_pool ~domains f =
    let t = create ~domains in
    match f t with
    | v ->
      shutdown t;
      v
    | exception e ->
      shutdown t;
      raise e
end
