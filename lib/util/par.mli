(** Fork-join parallelism over OCaml 5 domains.

    The simulators shard their packed pattern words into contiguous
    ranges and evaluate each range in its own domain; this module holds
    the shared machinery: balanced range splitting, a one-shot fork-join
    [run], and a persistent worker {!Pool} for call sites that fan out
    repeatedly (the sweep engine resimulates after every counter-example
    batch).

    Workers communicate only through disjoint slices of pre-allocated
    arrays, so no locking is needed in the parallel sections themselves. *)

val available : unit -> int
(** Domains the runtime recommends for this machine
    ([Domain.recommended_domain_count]). *)

val split : chunks:int -> int -> (int * int) array
(** [split ~chunks n] partitions [0, n) into at most [chunks] contiguous
    half-open [(lo, hi)] ranges of near-equal size. Never returns an
    empty range: fewer than [chunks] ranges come back when [n < chunks],
    and [n = 0] yields [[||]]. *)

val run : domains:int -> (int -> unit) -> unit
(** [run ~domains f] evaluates [f 0 .. f (domains - 1)] concurrently,
    index 0 in the calling domain, and joins. [domains <= 1] degrades to
    a plain call of [f 0]. If any [f i] raises, the first exception is
    re-raised after all domains have been joined. *)

val for_ranges : domains:int -> int -> (lo:int -> hi:int -> unit) -> unit
(** [for_ranges ~domains n f]: [split] [0, n) across [domains] and run
    [f ~lo ~hi] on each range in parallel. [f 0 n] directly when a single
    range results. *)

(** A persistent pool of worker domains, for repeated fan-outs without
    paying a spawn per call. Not reentrant: do not call {!Pool.run} from
    inside a job. *)
module Pool : sig
  type t

  val create : domains:int -> t
  (** [create ~domains] spawns [domains - 1] workers; the creating domain
      is the pool's member 0. [domains] is clamped to at least 1. *)

  val domains : t -> int

  val run : t -> (int -> unit) -> unit
  (** Like {!val:run} with the pool's width, reusing the pooled workers. *)

  val for_ranges : t -> int -> (lo:int -> hi:int -> unit) -> unit

  val drain : t -> int -> (domain:int -> int -> unit) -> unit
  (** [drain t n f] runs [f ~domain i] for every [i] in [0, n), the pool
      members claiming task indices from a shared atomic counter in
      ascending order — a work queue for tasks of uneven cost (the sweep
      engine's SAT dispatch). [domain] is the pool-member index running
      the task, for per-domain scratch state (each solver belongs to one
      member). Tasks must not touch shared mutable state except through
      their own [i]-indexed slots. Single-member pools degrade to a
      plain loop. *)

  val shutdown : t -> unit
  (** Joins the workers. The pool must not be used afterwards;
      [shutdown] twice is harmless. *)

  val with_pool : domains:int -> (t -> 'a) -> 'a
  (** [create], apply, then [shutdown] (also on exception). *)
end
