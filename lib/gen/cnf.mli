(** Deterministic CNF instance generators for the solver bench harness.

    Literals use the solver/AIG packing ([2v] positive, [2v + 1]
    negated). Every generator is a pure function of its parameters, so a
    suite run on two machines measures the same search — the bench
    harness ([bin/solver_bench.ml]) relies on this to make before/after
    tables comparable across checkouts.

    The named suites lean small on purpose: CI runs them on every push,
    so each instance must finish in at most a few seconds even on a
    cold container. *)

type instance = {
  name : string;
  num_vars : int;
  clauses : int list list;
  expect : [ `Sat | `Unsat | `Any ];
      (** Known answer, when the construction fixes one — the harness
          fails loudly on a wrong verdict, so a bench run doubles as a
          correctness check. [`Any] for random instances. *)
}

val php : pigeons:int -> holes:int -> instance
(** Pigeonhole principle; UNSAT iff [pigeons > holes]. Pure conflict
    throughput: resolution-hard, no satisfying shortcuts. *)

val xor_chain : n:int -> instance
(** Two Tseitin parity chains over the same [n] inputs asserted to
    opposite values — UNSAT, forces genuine clause learning. *)

val random3 : seed:int64 -> num_vars:int -> ratio:float -> instance
(** Uniform random 3-CNF with [ratio * num_vars] clauses. At ratio
    ~4.26 the instances straddle the phase transition. *)

val suites : (string * instance list) list
(** The named bench suites, in declaration order:
    ["php"], ["xor"], ["random3sat"]. *)

val suite : string -> instance list
(** Raises [Not_found] for unknown names. *)

val suite_names : string list
