module Rng = Sutil.Rng

type instance = {
  name : string;
  num_vars : int;
  clauses : int list list;
  expect : [ `Sat | `Unsat | `Any ];
}

let plit v = v lsl 1
let nlit v = (v lsl 1) lor 1

let php ~pigeons ~holes =
  (* p(i,j) = pigeon i sits in hole j. *)
  let v i j = (i * holes) + j in
  let at_least =
    List.init pigeons (fun i -> List.init holes (fun j -> plit (v i j)))
  in
  let at_most = ref [] in
  for j = holes - 1 downto 0 do
    for i1 = pigeons - 1 downto 0 do
      for i2 = pigeons - 1 downto i1 + 1 do
        at_most := [ nlit (v i1 j); nlit (v i2 j) ] :: !at_most
      done
    done
  done;
  {
    name = Printf.sprintf "php-%d-%d" pigeons holes;
    num_vars = pigeons * holes;
    clauses = at_least @ !at_most;
    expect = (if pigeons > holes then `Unsat else `Sat);
  }

let xor_chain ~n =
  (* Inputs x_0..x_{n-1}; two chains c_i <-> c_{i-1} xor x_i built from
     separate chain variables, asserted to opposite polarities. *)
  let clauses = ref [] in
  let next = ref n in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let add c = clauses := c :: !clauses in
  let xor_gate out a b =
    (* out <-> a xor b, on literals *)
    add [ out lxor 1; a; b ];
    add [ out lxor 1; a lxor 1; b lxor 1 ];
    add [ out; a lxor 1; b ];
    add [ out; a; b lxor 1 ]
  in
  let chain () =
    let acc = ref (plit 0) in
    for i = 1 to n - 1 do
      let c = plit (fresh ()) in
      xor_gate c !acc (plit i);
      acc := c
    done;
    !acc
  in
  let a = chain () and b = chain () in
  add [ a ];
  add [ b lxor 1 ];
  {
    name = Printf.sprintf "xor-%d" n;
    num_vars = !next;
    clauses = List.rev !clauses;
    expect = `Unsat;
  }

let random3 ~seed ~num_vars ~ratio =
  let rng = Rng.create seed in
  let num_clauses = int_of_float (ratio *. float_of_int num_vars) in
  let clause () =
    (* Three distinct variables, random polarity. *)
    let rec pick taken =
      let v = Rng.int rng num_vars in
      if List.memq v taken then pick taken else v
    in
    let a = pick [] in
    let b = pick [ a ] in
    let c = pick [ a; b ] in
    List.map
      (fun v -> if Rng.bool rng then plit v else nlit v)
      [ a; b; c ]
  in
  {
    name = Printf.sprintf "random3-v%d-s%Ld" num_vars seed;
    num_vars;
    clauses = List.init num_clauses (fun _ -> clause ());
    expect = `Any;
  }

let suites =
  [
    ("php", [ php ~pigeons:7 ~holes:6; php ~pigeons:8 ~holes:7 ]);
    ("xor", [ xor_chain ~n:14; xor_chain ~n:16; xor_chain ~n:18 ]);
    ( "random3sat",
      (* Phase-transition instances: a deterministic spread of seeds so
         the suite mixes SAT and UNSAT answers. *)
      List.init 20 (fun i ->
          random3 ~seed:(Int64.of_int (0x5EED + i)) ~num_vars:130 ~ratio:4.26)
    );
  ]

let suite name = List.assoc name suites
let suite_names = List.map fst suites
