module J = Obs.Json
module E = Sweep.Engine

(* Both sites force the same pessimistic outcome — an entry that fails
   its integrity checks on the next read and gets quarantined. Neither
   can fabricate a hit. *)
let fault_corrupt = Obs.Fault.register "cache.corrupt_entry"
let fault_torn = Obs.Fault.register "cache.torn_write"

type counters = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_quarantined : int;
}

type t = {
  dir : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable quarantined : int;
  mutable tmp_seq : int;
}

let counted t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let tmp_marker = ".tmp."

let sweep_stale_tmp dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun sub ->
        let subdir = Filename.concat dir sub in
        if Sys.is_directory subdir then
          Array.iter
            (fun f ->
              (* A temp file is a write that never committed — a crash
                 artifact by definition, safe to drop. *)
              if
                String.length f > String.length tmp_marker
                && String.sub f 0 (String.length tmp_marker) = tmp_marker
              then try Sys.remove (Filename.concat subdir f) with _ -> ())
            (Sys.readdir subdir))
      (Sys.readdir dir)

let open_ ~dir =
  mkdir_p dir;
  sweep_stale_tmp dir;
  {
    dir;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    quarantined = 0;
    tmp_seq = 0;
  }

let dir t = t.dir

(* Keys are hex digests, but never trust that: a hostile key must not
   escape the cache directory. *)
let safe_key key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
       key

let entry_path t key =
  let fan = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  let sub = Filename.concat t.dir fan in
  (sub, Filename.concat sub (key ^ ".json"))

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantine t path =
  (try Unix.rename path (path ^ ".quarantined")
   with Unix.Unix_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  counted t (fun t -> t.quarantined <- t.quarantined + 1);
  Obs.Trace.emitf "cache: quarantined %s" path

let checksum body = Digest.to_hex (Digest.string body)

let find t ~key =
  if not (safe_key key) then E.Cache_miss
  else begin
    let _, path = entry_path t key in
    if not (Sys.file_exists path) then begin
      counted t (fun t -> t.misses <- t.misses + 1);
      E.Cache_miss
    end
    else
      (* Everything below treats the file as untrusted bytes: any
         surprise — unreadable, unparsable, checksum or key mismatch —
         quarantines the entry and degrades to a counted miss. *)
      match read_all path with
      | exception (Sys_error _ | End_of_file) ->
        quarantine t path;
        E.Cache_corrupt
      | raw -> (
        match J.parse raw with
        | exception J.Parse_error _ ->
          quarantine t path;
          E.Cache_corrupt
        | payload -> (
          let stored_key = J.member "key" payload in
          let stored_sum = J.member "checksum" payload in
          let entry = J.member "entry" payload in
          match (stored_key, stored_sum, entry) with
          | Some (J.String k), Some (J.String sum), Some entry
            when k = key && sum = checksum (J.to_string entry) ->
            counted t (fun t -> t.hits <- t.hits + 1);
            E.Cache_hit entry
          | _ ->
            quarantine t path;
            E.Cache_corrupt))
  end

let apply_write_faults payload =
  let payload =
    if Obs.Fault.fires fault_corrupt && String.length payload > 0 then begin
      let b = Bytes.of_string payload in
      let i = String.length payload / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      Bytes.to_string b
    end
    else payload
  in
  if Obs.Fault.fires fault_torn then
    String.sub payload 0 (String.length payload / 2)
  else payload

let store t ~key entry =
  if safe_key key then begin
    let sub, path = entry_path t key in
    mkdir_p sub;
    let payload =
      J.to_string
        (J.Obj
           [
             ("key", J.String key);
             ("checksum", J.String (checksum (J.to_string entry)));
             ("entry", entry);
           ])
    in
    (* Faults strike the bytes, not the protocol: the write itself
       still goes through temp + rename, exactly like a torn sector or
       bit rot under a correct writer. *)
    let payload = apply_write_faults payload in
    let seq =
      Mutex.lock t.lock;
      let s = t.tmp_seq in
      t.tmp_seq <- s + 1;
      Mutex.unlock t.lock;
      s
    in
    let tmp =
      Filename.concat sub
        (Printf.sprintf "%s%d.%d" tmp_marker (Unix.getpid ()) seq)
    in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc payload);
      Unix.rename tmp path
    with
    | () -> counted t (fun t -> t.stores <- t.stores + 1)
    | exception (Sys_error _ | Unix.Unix_error _) ->
      (* A failed store is a lost entry, never a failed sweep. *)
      (try Sys.remove tmp with Sys_error _ -> ())
  end

let ops t =
  {
    E.cache_find = (fun ~key -> find t ~key);
    E.cache_store = (fun ~key body -> store t ~key body);
  }

let counters t =
  Mutex.lock t.lock;
  let c =
    {
      c_hits = t.hits;
      c_misses = t.misses;
      c_stores = t.stores;
      c_quarantined = t.quarantined;
    }
  in
  Mutex.unlock t.lock;
  c

let counters_json t =
  let c = counters t in
  J.Obj
    [
      ("hits", J.Int c.c_hits);
      ("misses", J.Int c.c_misses);
      ("stores", J.Int c.c_stores);
      ("quarantined", J.Int c.c_quarantined);
    ]
