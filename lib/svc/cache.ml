module J = Obs.Json
module E = Sweep.Engine

(* All three sites force the same pessimistic outcome — a miss (or a
   quarantined entry) on the next read. None can fabricate a hit.
   [cache.evict_race] removes the victim out from under the eviction's
   rename, simulating a concurrent remover — the tolerant-ENOENT path
   eviction must survive. *)
let fault_corrupt = Obs.Fault.register "cache.corrupt_entry"
let fault_torn = Obs.Fault.register "cache.torn_write"
let fault_evict_race = Obs.Fault.register "cache.evict_race"

type counters = {
  c_hits : int;
  c_misses : int;
  c_stores : int;
  c_quarantined : int;
  c_evictions : int;
  c_evicted_bytes : int;
}

(* Intrusive LRU list node: one per resident entry, linked
   most-recent-first. The sentinel-free option links keep the code
   short; the list is only ever touched under the cache mutex. *)
type node = {
  n_key : string;
  n_path : string;
  mutable n_size : int;
  mutable n_prev : node option;  (* towards MRU *)
  mutable n_next : node option;  (* towards LRU *)
}

type t = {
  dir : string;
  max_bytes : int option;
  max_entries : int option;
  lock : Mutex.t;
  index : (string, node) Hashtbl.t;
  mutable lru_head : node option;  (* most recently used *)
  mutable lru_tail : node option;  (* eviction victim *)
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable quarantined : int;
  mutable evictions : int;
  mutable evicted_bytes : int;
  mutable tmp_seq : int;
}

let counted t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let tmp_marker = ".tmp."
let quarantine_suffix = ".quarantined"

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

let iter_fan_files dir f =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun sub ->
        let subdir = Filename.concat dir sub in
        if Sys.is_directory subdir then
          Array.iter (fun name -> f (Filename.concat subdir name))
            (Sys.readdir subdir))
      (Sys.readdir dir)

(* Temp files are writes (or evictions) that never committed — crash
   artifacts by definition, safe to drop. Returns the count for
   {!compact}'s report. *)
let sweep_stale_tmp dir =
  let n = ref 0 in
  iter_fan_files dir (fun path ->
      if has_prefix tmp_marker (Filename.basename path) then
        try
          Sys.remove path;
          incr n
        with _ -> ());
  !n

(* ---- LRU list primitives (call with the lock held) ---- *)

let lru_unlink t n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.lru_head <- n.n_next);
  (match n.n_next with
  | Some x -> x.n_prev <- n.n_prev
  | None -> t.lru_tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let lru_push_front t n =
  n.n_prev <- None;
  n.n_next <- t.lru_head;
  (match t.lru_head with Some h -> h.n_prev <- Some n | None -> ());
  t.lru_head <- Some n;
  if t.lru_tail = None then t.lru_tail <- Some n

let index_add t key path size =
  (match Hashtbl.find_opt t.index key with
  | Some old ->
    lru_unlink t old;
    Hashtbl.remove t.index key;
    t.total_bytes <- t.total_bytes - old.n_size
  | None -> ());
  let n = { n_key = key; n_path = path; n_size = size; n_prev = None; n_next = None } in
  Hashtbl.replace t.index key n;
  lru_push_front t n;
  t.total_bytes <- t.total_bytes + size

let index_forget t n =
  match Hashtbl.find_opt t.index n.n_key with
  | Some cur when cur == n ->
    Hashtbl.remove t.index n.n_key;
    lru_unlink t n;
    t.total_bytes <- t.total_bytes - n.n_size
  | _ -> ()

(* Evict one entry, crash-safely: rename it to a temp name (atomically
   removing it from the entry namespace — a concurrent reader sees the
   entry or nothing, never a partial state), then remove the temp. A
   crash between the two leaves only a temp file, swept on the next
   open; a concurrent remover makes the rename ENOENT, which is the
   outcome we wanted anyway. Call with the lock held. *)
let evict_node t n =
  index_forget t n;
  if Obs.Fault.fires fault_evict_race then (
    try Sys.remove n.n_path with Sys_error _ -> ());
  let seq = t.tmp_seq in
  t.tmp_seq <- seq + 1;
  let tmp =
    Filename.concat
      (Filename.dirname n.n_path)
      (Printf.sprintf "%sevict.%d.%d" tmp_marker (Unix.getpid ()) seq)
  in
  (try
     Unix.rename n.n_path tmp;
     Sys.remove tmp
   with Unix.Unix_error _ | Sys_error _ -> ());
  t.evictions <- t.evictions + 1;
  t.evicted_bytes <- t.evicted_bytes + n.n_size;
  Obs.Trace.emitf "cache: evicted %s (%d bytes)" n.n_key n.n_size

(* Evict LRU-first until both budgets hold. A single oversized entry is
   evicted immediately after its own store — the byte budget is a hard
   ceiling on the resident set, not a suggestion. *)
let enforce_budget ?max_bytes ?max_entries t =
  let max_bytes = match max_bytes with Some _ as m -> m | None -> t.max_bytes in
  let max_entries =
    match max_entries with Some _ as m -> m | None -> t.max_entries
  in
  let over () =
    (match max_bytes with Some b -> t.total_bytes > b | None -> false)
    || match max_entries with
       | Some e -> Hashtbl.length t.index > e
       | None -> false
  in
  let n = ref 0 in
  while over () && t.lru_tail <> None do
    (match t.lru_tail with Some v -> evict_node t v | None -> ());
    incr n
  done;
  !n

let open_ ?max_bytes ?max_entries dir =
  mkdir_p dir;
  ignore (sweep_stale_tmp dir);
  let t =
    {
      dir;
      max_bytes;
      max_entries;
      lock = Mutex.create ();
      index = Hashtbl.create 1024;
      lru_head = None;
      lru_tail = None;
      total_bytes = 0;
      hits = 0;
      misses = 0;
      stores = 0;
      quarantined = 0;
      evictions = 0;
      evicted_bytes = 0;
      tmp_seq = 0;
    }
  in
  (* Rebuild the resident index from disk, oldest-first so the
     push-front insertions leave the newest entry at the MRU end.
     Recency survives restarts because hits touch the file times. *)
  let files = ref [] in
  iter_fan_files dir (fun path ->
      let base = Filename.basename path in
      if has_suffix ".json" base && not (has_prefix tmp_marker base) then
        match Unix.stat path with
        | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
          let key = Filename.chop_suffix base ".json" in
          files := (st_mtime, key, path, st_size) :: !files
        | _ -> ()
        | exception Unix.Unix_error _ -> ());
  List.iter
    (fun (_, key, path, size) -> index_add t key path size)
    (List.sort compare !files);
  ignore (enforce_budget t);
  t

let dir t = t.dir

(* Keys are hex digests, but never trust that: a hostile key must not
   escape the cache directory. *)
let safe_key key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
       key

let entry_path t key =
  let fan = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  let sub = Filename.concat t.dir fan in
  (sub, Filename.concat sub (key ^ ".json"))

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantine t path =
  (try Unix.rename path (path ^ quarantine_suffix)
   with Unix.Unix_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  counted t (fun t ->
      t.quarantined <- t.quarantined + 1;
      match Filename.chop_suffix_opt ~suffix:".json" (Filename.basename path) with
      | Some key -> (
        match Hashtbl.find_opt t.index key with
        | Some n -> index_forget t n
        | None -> ())
      | None -> ());
  Obs.Trace.emitf "cache: quarantined %s" path

(* A hit refreshes the entry's recency on disk too, so LRU order
   survives daemon restarts. [utimes 0 0] = "now". *)
let touch t key path =
  (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
  counted t (fun t ->
      t.hits <- t.hits + 1;
      match Hashtbl.find_opt t.index key with
      | Some n ->
        lru_unlink t n;
        lru_push_front t n
      | None -> (
        (* Stored by another process (cachectl, a previous daemon) —
           adopt it. *)
        match Unix.stat path with
        | { Unix.st_size; _ } ->
          index_add t key path st_size;
          ignore (enforce_budget t : int)
        | exception Unix.Unix_error _ -> ()))

let checksum body = Digest.to_hex (Digest.string body)

let find t ~key =
  if not (safe_key key) then E.Cache_miss
  else begin
    let _, path = entry_path t key in
    if not (Sys.file_exists path) then begin
      counted t (fun t ->
          t.misses <- t.misses + 1;
          match Hashtbl.find_opt t.index key with
          | Some n -> index_forget t n
          | None -> ());
      E.Cache_miss
    end
    else
      (* Everything below treats the file as untrusted bytes: any
         surprise — unreadable, unparsable, checksum or key mismatch —
         quarantines the entry and degrades to a counted miss. One
         exception: a file that vanished between the existence check
         and the read lost a race with an eviction or a concurrent
         compaction — that is a plain miss, not a corrupt entry. *)
      match read_all path with
      | exception (Sys_error _ | End_of_file) ->
        if not (Sys.file_exists path) then begin
          counted t (fun t ->
              t.misses <- t.misses + 1;
              match Hashtbl.find_opt t.index key with
              | Some n -> index_forget t n
              | None -> ());
          E.Cache_miss
        end
        else begin
          quarantine t path;
          E.Cache_corrupt
        end
      | raw -> (
        match J.parse raw with
        | exception J.Parse_error _ ->
          quarantine t path;
          E.Cache_corrupt
        | payload -> (
          let stored_key = J.member "key" payload in
          let stored_sum = J.member "checksum" payload in
          let entry = J.member "entry" payload in
          match (stored_key, stored_sum, entry) with
          | Some (J.String k), Some (J.String sum), Some entry
            when k = key && sum = checksum (J.to_string entry) ->
            touch t key path;
            E.Cache_hit entry
          | _ ->
            quarantine t path;
            E.Cache_corrupt))
  end

let apply_write_faults payload =
  let payload =
    if Obs.Fault.fires fault_corrupt && String.length payload > 0 then begin
      let b = Bytes.of_string payload in
      let i = String.length payload / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      Bytes.to_string b
    end
    else payload
  in
  if Obs.Fault.fires fault_torn then
    String.sub payload 0 (String.length payload / 2)
  else payload

let store t ~key entry =
  if safe_key key then begin
    let sub, path = entry_path t key in
    mkdir_p sub;
    let payload =
      J.to_string
        (J.Obj
           [
             ("key", J.String key);
             ("checksum", J.String (checksum (J.to_string entry)));
             ("entry", entry);
           ])
    in
    (* Faults strike the bytes, not the protocol: the write itself
       still goes through temp + rename, exactly like a torn sector or
       bit rot under a correct writer. *)
    let payload = apply_write_faults payload in
    let seq =
      Mutex.lock t.lock;
      let s = t.tmp_seq in
      t.tmp_seq <- s + 1;
      Mutex.unlock t.lock;
      s
    in
    let tmp =
      Filename.concat sub
        (Printf.sprintf "%s%d.%d" tmp_marker (Unix.getpid ()) seq)
    in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc payload);
      Unix.rename tmp path
    with
    | () ->
      counted t (fun t ->
          t.stores <- t.stores + 1;
          index_add t key path (String.length payload);
          ignore (enforce_budget t))
    | exception (Sys_error _ | Unix.Unix_error _) ->
      (* A failed store is a lost entry, never a failed sweep. *)
      (try Sys.remove tmp with Sys_error _ -> ())
  end

let ops t =
  {
    E.cache_find = (fun ~key -> find t ~key);
    E.cache_store = (fun ~key body -> store t ~key body);
  }

(* ---- maintenance ---- *)

type compact_stats = {
  k_tmp : int;
  k_quarantined : int;
  k_evicted : int;
  k_evicted_bytes : int;
}

let compact ?max_bytes ?max_entries t =
  locked t @@ fun t ->
  let tmp = sweep_stale_tmp t.dir in
  let quarantined = ref 0 in
  iter_fan_files t.dir (fun path ->
      if has_suffix quarantine_suffix (Filename.basename path) then
        try
          Sys.remove path;
          incr quarantined
        with _ -> ());
  let before_bytes = t.evicted_bytes in
  let evicted = enforce_budget ?max_bytes ?max_entries t in
  {
    k_tmp = tmp;
    k_quarantined = !quarantined;
    k_evicted = evicted;
    k_evicted_bytes = t.evicted_bytes - before_bytes;
  }

(* ---- stats ---- *)

let bytes t = locked t (fun t -> t.total_bytes)
let entries t = locked t (fun t -> Hashtbl.length t.index)

let counters t =
  locked t @@ fun t ->
  {
    c_hits = t.hits;
    c_misses = t.misses;
    c_stores = t.stores;
    c_quarantined = t.quarantined;
    c_evictions = t.evictions;
    c_evicted_bytes = t.evicted_bytes;
  }

let counters_json t =
  let c = counters t in
  let bytes, entries, max_bytes, max_entries =
    locked t (fun t ->
        (t.total_bytes, Hashtbl.length t.index, t.max_bytes, t.max_entries))
  in
  J.Obj
    ([
       ("hits", J.Int c.c_hits);
       ("misses", J.Int c.c_misses);
       ("stores", J.Int c.c_stores);
       ("quarantined", J.Int c.c_quarantined);
       ("evictions", J.Int c.c_evictions);
       ("evicted_bytes", J.Int c.c_evicted_bytes);
       ("bytes", J.Int bytes);
       ("entries", J.Int entries);
     ]
    @ (match max_bytes with
      | Some b -> [ ("max_bytes", J.Int b) ]
      | None -> [])
    @
    match max_entries with Some e -> [ ("max_entries", J.Int e) ] | None -> [])
