(** Content-addressed, crash-safe disk cache for proven equivalence
    results.

    Layout: one file per entry, [dir/<k0k1>/<key>.json] (two-hex-char
    fan-out), where [key] is the {!Sweep.Cone_cert} canonical cone-pair
    digest. The file holds [{key, checksum, entry}]: the key again (a
    misfiled entry must not be served), an MD5 checksum of the
    serialized entry body, and the body itself — an equivalence
    certificate or a counterexample ({!Sweep.Cone_cert.entry_to_json}).

    Invalidation is by hash, never by time: a key is a pure function of
    the cone pair's structure, so an entry can only ever be right for
    the query that computed its key — network edits simply stop
    producing that key.

    Crash safety is the rename discipline: entries are written to a
    unique temp file in the same directory and [rename]d into place, so
    a reader sees an old entry, a new entry, or nothing — never a torn
    one ([kill -9] mid-write leaves only a temp file, swept out on the
    next {!open_}). Whatever reaches disk is still treated as hostile
    on the way back in: a file that fails to parse, fails its checksum,
    or carries the wrong key is {e quarantined} (renamed to
    [*.quarantined], preserved for post-mortem) and reported as
    {!Sweep.Engine.Cache_corrupt} — a miss with a counter, never a
    crash, never an unproven hit. The proof-level defenses (certificate
    replay, counterexample re-evaluation) live above, in the engine.

    Fault sites [cache.corrupt_entry] (flips a payload byte before the
    write) and [cache.torn_write] (truncates the payload, simulating a
    torn sector) exercise exactly this path.

    Thread safety: counters are mutex-guarded; file operations rely on
    POSIX atomic rename, so concurrent readers/writers (the daemon's
    worker domains) need no further coordination. *)

type t

val open_ : dir:string -> t
(** Creates [dir] (and parents) if needed and sweeps out temp files
    left by a previous crash. Raises [Unix.Unix_error] if the directory
    cannot be created or is not writable. *)

val dir : t -> string

val find : t -> key:string -> Sweep.Engine.cache_found
val store : t -> key:string -> Obs.Json.t -> unit
(** [store] never raises on injected write faults — a failed store is a
    lost entry, not a failed sweep. *)

val ops : t -> Sweep.Engine.cache_ops
(** The record {!Sweep.Engine.config.cache} consumes. *)

type counters = {
  c_hits : int;  (** entries found and structurally intact *)
  c_misses : int;  (** no entry on disk *)
  c_stores : int;  (** entries written (after fault injection) *)
  c_quarantined : int;  (** corrupt/torn/misfiled entries set aside *)
}

val counters : t -> counters
val counters_json : t -> Obs.Json.t
