(** Content-addressed, crash-safe, size-bounded disk cache for proven
    equivalence results.

    Layout: one file per entry, [dir/<k0k1>/<key>.json] (two-hex-char
    fan-out), where [key] is the {!Sweep.Cone_cert} canonical cone-pair
    digest. The file holds [{key, checksum, entry}]: the key again (a
    misfiled entry must not be served), an MD5 checksum of the
    serialized entry body, and the body itself — an equivalence
    certificate or a counterexample ({!Sweep.Cone_cert.entry_to_json}).

    Invalidation is by hash, never by time: a key is a pure function of
    the cone pair's structure, so an entry can only ever be right for
    the query that computed its key — network edits simply stop
    producing that key.

    Crash safety is the rename discipline: entries are written to a
    unique temp file in the same directory and [rename]d into place, so
    a reader sees an old entry, a new entry, or nothing — never a torn
    one ([kill -9] mid-write leaves only a temp file, swept out on the
    next {!open_}). Whatever reaches disk is still treated as hostile
    on the way back in: a file that fails to parse, fails its checksum,
    or carries the wrong key is {e quarantined} (renamed to
    [*.quarantined], preserved for post-mortem) and reported as
    {!Sweep.Engine.Cache_corrupt} — a miss with a counter, never a
    crash, never an unproven hit. The proof-level defenses (certificate
    replay, counterexample re-evaluation) live above, in the engine.

    {b Bounding.} [max_bytes] / [max_entries] cap the resident set.
    Entries are ranked least-recently-used — every hit refreshes the
    entry's file times ([utimes]), so recency survives restarts — and
    evicted through the same rename discipline: the victim is renamed
    to a temp name (atomically leaving the entry namespace) and then
    removed, so a torn eviction is a crash artifact swept at the next
    open, and a reader racing an eviction sees a plain miss, never a
    partial entry. The byte budget is a hard ceiling: a store that
    lands over budget evicts immediately, inside the same store call.

    Fault sites: [cache.corrupt_entry] (flips a payload byte before the
    write), [cache.torn_write] (truncates the payload, simulating a
    torn sector), and [cache.evict_race] (removes the victim under the
    eviction's feet, simulating a concurrent remover) all force
    pessimistic outcomes — a miss or a quarantined entry, never a
    fabricated hit.

    Thread safety: the LRU index and counters are mutex-guarded; file
    operations rely on POSIX atomic rename, so concurrent
    readers/writers (the daemon's worker domains) need no further
    coordination. *)

type t

val open_ : ?max_bytes:int -> ?max_entries:int -> string -> t
(** [open_ dir] creates [dir] (and parents) if needed, sweeps out temp
    files left by a previous crash, and rebuilds the LRU index from the
    resident entries (oldest first, by file mtime). If the resident set
    already exceeds a given budget, it is evicted down before the cache
    is returned. Raises [Unix.Unix_error] if the directory cannot be
    created or is not writable. *)

val dir : t -> string

val find : t -> key:string -> Sweep.Engine.cache_found
val store : t -> key:string -> Obs.Json.t -> unit
(** [store] never raises on injected write faults — a failed store is a
    lost entry, not a failed sweep. A store that lands the cache over
    its byte or entry budget triggers synchronous LRU eviction. *)

val ops : t -> Sweep.Engine.cache_ops
(** The record {!Sweep.Engine.config.cache} consumes. *)

(** {1 Maintenance} *)

type compact_stats = {
  k_tmp : int;  (** stale temp files swept *)
  k_quarantined : int;  (** [*.quarantined] post-mortem files purged *)
  k_evicted : int;  (** entries evicted to meet the budget *)
  k_evicted_bytes : int;
}

val compact : ?max_bytes:int -> ?max_entries:int -> t -> compact_stats
(** Garbage-collect the store: sweep stale temp files, purge
    quarantined post-mortem files, and evict LRU entries until the
    budget holds. [max_bytes]/[max_entries] override the cache's own
    budgets for this call (a one-off shrink); omitted, the open-time
    budgets apply. This is [sweepd-cachectl compact]'s engine. *)

(** {1 Statistics} *)

val bytes : t -> int
(** Total payload bytes of resident entries. *)

val entries : t -> int

type counters = {
  c_hits : int;  (** entries found and structurally intact *)
  c_misses : int;  (** no entry on disk (including eviction races) *)
  c_stores : int;  (** entries written (after fault injection) *)
  c_quarantined : int;  (** corrupt/torn/misfiled entries set aside *)
  c_evictions : int;  (** entries evicted to meet the size budget *)
  c_evicted_bytes : int;
}

val counters : t -> counters

val counters_json : t -> Obs.Json.t
(** Counters plus [bytes], [entries] and the configured
    [max_bytes]/[max_entries] (present only when bounded) — the
    [cache] object of the daemon's [health] response; schema in
    EXPERIMENTS.md. *)
