(** Wire protocol of the sweep service: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON — one {!request} or {!response} per frame, several
    frames per connection. JSON keeps the payloads greppable and
    versionable; the binary length prefix makes framing unambiguous
    without any in-band escaping (AIGER payloads travel inside JSON
    strings, which the {!Obs.Json} codec round-trips byte-exactly).

    Every way a frame can be malformed — truncated length, truncated
    payload, an oversized length announcing a memory bomb, hostile
    JSON, a missing or mistyped field — raises the one typed
    {!Parse_error}, with a message locating the offending field. The
    server maps it to a ["parse_error"] response (or drops the
    connection when the stream itself is unusable); the process never
    dies on input. *)

exception Parse_error of string

val max_frame_bytes : int
(** Frames larger than this (64 MiB) are rejected before allocation —
    a length prefix is attacker-controlled input. *)

type request = {
  req_id : int;  (** echoed verbatim in the response *)
  script : string;  (** PR 5 pipeline script, e.g. ["sweep -e stp; verify"] *)
  aiger : string;  (** the input network, ASCII AIGER ([aag]) *)
  req_timeout : float option;
      (** per-request budget in seconds; the server clamps it against
          its own per-request and global budgets *)
  req_verify : bool;  (** engine self-check ({!Sweep.Selfcheck}) *)
  req_certify : bool;  (** DRUP-certified solver answers *)
}

type client_msg =
  | M_run of request
      (** a run request — the original protocol, a frame with no ["op"]
          field, so pre-existing clients need no change *)
  | M_health of { h_id : int }
      (** [{"id": N, "op": "health"}] — an operational query answered
          with {!R_health} without touching the sweep pipeline; cheap
          enough to serve even when the daemon is shedding load *)

type response =
  | R_ok of { rsp_id : int; report : Obs.Json.t }
      (** the request ran; [report] is the schema-2 run report (pass
          records, CEC verdict, result AIGER) *)
  | R_error of { rsp_id : int; kind : string; message : string }
      (** the request failed in isolation. [kind] is one of
          ["parse_error"] (script/AIGER/frame), ["verification_failed"],
          ["internal"]. The connection — and the daemon — live on. *)
  | R_overloaded of { rsp_id : int; retry_after_s : float }
      (** admission control shed this connection: the accept queue is
          beyond its high-water mark (or the daemon is draining). Sent
          with [rsp_id = 0] before the client's first frame is read;
          the connection is then closed. [retry_after_s] is the
          server's backoff hint — {!Client} honors it. *)
  | R_health of { rsp_id : int; health : Obs.Json.t }
      (** answer to {!M_health}; schema documented in EXPERIMENTS.md
          ("health response") *)

val read_frame : in_channel -> string option
(** [None] on clean EOF at a frame boundary; {!Parse_error} on a
    truncated or oversized frame. *)

val write_frame : out_channel -> string -> unit
(** Writes and flushes one frame; {!Parse_error} if the payload exceeds
    {!max_frame_bytes}. *)

val read_frame_fd : Unix.file_descr -> string option
(** Unbuffered [read_frame] straight off a descriptor, for the server:
    its accept loop multiplexes connections with [select], and a
    buffering [in_channel] would make "readable" lie (a frame already
    slurped into the buffer looks like an idle socket). Blocking,
    [EINTR]-safe. *)

val write_frame_fd : Unix.file_descr -> string -> unit

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> request
(** Raises {!Parse_error} naming the missing/mistyped field. *)

val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> response

val read_request : in_channel -> request option
(** Frame + JSON + field decoding in one step; [None] on clean EOF. *)

val write_request : out_channel -> request -> unit
val read_response : in_channel -> response option
val write_response : out_channel -> response -> unit

val client_msg_to_json : client_msg -> Obs.Json.t
val client_msg_of_json : Obs.Json.t -> client_msg
val write_client_msg : out_channel -> client_msg -> unit

val request_of_string : string -> request
(** Decode one frame payload; raises {!Parse_error} on hostile JSON or
    missing/mistyped fields. *)

val client_msg_of_string : string -> client_msg
(** Decode one frame payload as a {!client_msg}; a payload without an
    ["op"] field decodes as {!M_run}. *)

val response_to_string : response -> string
