module J = Obs.Json

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let max_frame_bytes = 64 * 1024 * 1024

(* ---- framing ---- *)

let read_frame ic =
  (* Clean EOF is only an EOF {e before} the first header byte; dying
     anywhere inside a frame is a protocol error. [really_input] cannot
     tell the two apart, so the first byte is read separately. *)
  match input_char ic with
  | exception End_of_file -> None
  | b0 ->
    let hdr = Bytes.create 4 in
    Bytes.set hdr 0 b0;
    (try really_input ic hdr 1 3
     with End_of_file -> fail "truncated frame header");
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame_bytes then
      fail "frame length %d out of range (max %d)" len max_frame_bytes;
    let payload = Bytes.create len in
    (try really_input ic payload 0 len
     with End_of_file -> fail "truncated frame: %d bytes announced" len);
    Some (Bytes.unsafe_to_string payload)

let write_frame oc payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    fail "frame length %d out of range (max %d)" len max_frame_bytes;
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

(* Fd-level framing for the server: its accept loop multiplexes
   connections with [select], and a buffering [in_channel] on top of
   the same fd would make "readable" lie (frames already slurped into
   the buffer look like an idle socket). Channels remain the right
   interface for clients, which do one blocking round-trip. *)

let rec really_read fd buf ofs len =
  if len > 0 then
    match Unix.read fd buf ofs len with
    | 0 -> raise End_of_file
    | n -> really_read fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      really_read fd buf ofs len

let read_frame_fd fd =
  let hdr = Bytes.create 4 in
  let first =
    match Unix.read fd hdr 0 1 with
    | 0 -> None
    | _ -> Some ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
      match Unix.read fd hdr 0 1 with 0 -> None | _ -> Some ())
  in
  match first with
  | None -> None
  | Some () ->
    (try really_read fd hdr 1 3
     with End_of_file -> fail "truncated frame header");
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame_bytes then
      fail "frame length %d out of range (max %d)" len max_frame_bytes;
    let payload = Bytes.create len in
    (try really_read fd payload 0 len
     with End_of_file -> fail "truncated frame: %d bytes announced" len);
    Some (Bytes.unsafe_to_string payload)

let write_frame_fd fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    fail "frame length %d out of range (max %d)" len max_frame_bytes;
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  let rec push ofs remaining =
    if remaining > 0 then
      match Unix.write fd buf ofs remaining with
      | n -> push (ofs + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push ofs remaining
  in
  push 0 (4 + len)

(* ---- field access ---- *)

let field what j name =
  match J.member name j with
  | Some v -> v
  | None -> fail "%s: missing field '%s'" what name

let string_field what j name =
  match field what j name with
  | J.String s -> s
  | _ -> fail "%s field '%s': expected a string" what name

let int_field what j name =
  match field what j name with
  | J.Int i -> i
  | _ -> fail "%s field '%s': expected an integer" what name

let bool_field_opt what j name ~default =
  match J.member name j with
  | None | Some J.Null -> default
  | Some (J.Bool b) -> b
  | Some _ -> fail "%s field '%s': expected a boolean" what name

let float_field_opt what j name =
  match J.member name j with
  | None | Some J.Null -> None
  | Some v -> (
    match J.to_float v with
    | Some f -> Some f
    | None -> fail "%s field '%s': expected a number" what name)

(* ---- request ---- *)

type request = {
  req_id : int;
  script : string;
  aiger : string;
  req_timeout : float option;
  req_verify : bool;
  req_certify : bool;
}

let request_to_json r =
  J.Obj
    ([
       ("id", J.Int r.req_id);
       ("script", J.String r.script);
       ("aiger", J.String r.aiger);
     ]
    @ (match r.req_timeout with
      | None -> []
      | Some s -> [ ("timeout_s", J.Float s) ])
    @ [ ("verify", J.Bool r.req_verify); ("certify", J.Bool r.req_certify) ])

let request_of_json j =
  let w = "request" in
  {
    req_id = int_field w j "id";
    script = string_field w j "script";
    aiger = string_field w j "aiger";
    req_timeout = float_field_opt w j "timeout_s";
    req_verify = bool_field_opt w j "verify" ~default:false;
    req_certify = bool_field_opt w j "certify" ~default:false;
  }

(* ---- client messages ---- *)

(* A frame from a client is either a run request (the original
   protocol, no "op" field — old clients keep working unchanged) or an
   operational query tagged by "op". *)
type client_msg = M_run of request | M_health of { h_id : int }

let client_msg_to_json = function
  | M_run r -> request_to_json r
  | M_health { h_id } -> J.Obj [ ("id", J.Int h_id); ("op", J.String "health") ]

let client_msg_of_json j =
  match J.member "op" j with
  | None | Some J.Null -> M_run (request_of_json j)
  | Some (J.String "health") ->
    M_health { h_id = int_field "health request" j "id" }
  | Some (J.String other) ->
    fail "request field 'op': unknown operation '%s'" other
  | Some _ -> fail "request field 'op': expected a string"

(* ---- response ---- *)

type response =
  | R_ok of { rsp_id : int; report : Obs.Json.t }
  | R_error of { rsp_id : int; kind : string; message : string }
  | R_overloaded of { rsp_id : int; retry_after_s : float }
  | R_health of { rsp_id : int; health : Obs.Json.t }

let response_to_json = function
  | R_ok { rsp_id; report } ->
    J.Obj [ ("id", J.Int rsp_id); ("status", J.String "ok"); ("report", report) ]
  | R_error { rsp_id; kind; message } ->
    J.Obj
      [
        ("id", J.Int rsp_id);
        ("status", J.String "error");
        ("kind", J.String kind);
        ("message", J.String message);
      ]
  | R_overloaded { rsp_id; retry_after_s } ->
    J.Obj
      [
        ("id", J.Int rsp_id);
        ("status", J.String "overloaded");
        ("retry_after_s", J.Float retry_after_s);
      ]
  | R_health { rsp_id; health } ->
    J.Obj
      [ ("id", J.Int rsp_id); ("status", J.String "health"); ("health", health) ]

let response_of_json j =
  let w = "response" in
  let id = int_field w j "id" in
  match string_field w j "status" with
  | "ok" -> R_ok { rsp_id = id; report = field w j "report" }
  | "error" ->
    R_error
      {
        rsp_id = id;
        kind = string_field w j "kind";
        message = string_field w j "message";
      }
  | "overloaded" ->
    R_overloaded
      {
        rsp_id = id;
        retry_after_s =
          (match float_field_opt w j "retry_after_s" with
          | Some f -> f
          | None -> fail "%s: missing field 'retry_after_s'" w);
      }
  | "health" -> R_health { rsp_id = id; health = field w j "health" }
  | other -> fail "%s field 'status': unknown value '%s'" w other

(* ---- channel helpers ---- *)

let parse_payload s =
  match J.parse s with
  | v -> v
  | exception J.Parse_error (at, msg) ->
    fail "frame payload: JSON parse error at offset %d: %s" at msg

let read_request ic =
  Option.map (fun s -> request_of_json (parse_payload s)) (read_frame ic)

let write_request oc r = write_frame oc (J.to_string (request_to_json r))

let read_response ic =
  Option.map (fun s -> response_of_json (parse_payload s)) (read_frame ic)

let write_response oc r = write_frame oc (J.to_string (response_to_json r))
let request_of_string s = request_of_json (parse_payload s)
let client_msg_of_string s = client_msg_of_json (parse_payload s)
let write_client_msg oc m = write_frame oc (J.to_string (client_msg_to_json m))
let response_to_string r = J.to_string (response_to_json r)
