module J = Obs.Json
module A = Aig.Network
module Pass = Stp_sweep.Pass
module Script = Stp_sweep.Script

let fault_drop_conn = Obs.Fault.register "svc.drop_conn"

type config = {
  socket_path : string;
  domains : int;
  cache : Cache.t option;
  paranoid : bool;
  request_timeout : float option;
  global_timeout : float option;
  echo : string -> unit;
}

type outcome = { served : int; errors : int; dropped : int }

(* ---- one request, fully isolated ---- *)

let request_timeout cfg global_deadline (req : Proto.request) =
  let candidates =
    List.filter_map Fun.id
      [
        req.req_timeout;
        cfg.request_timeout;
        Option.map (fun d -> d -. Obs.Clock.now ()) global_deadline;
      ]
  in
  match candidates with
  | [] -> None
  | l ->
    (* A deadline already in the past still gets a sliver of budget:
       the pipeline then skips its transform passes and reports them
       skipped, rather than the request failing outright. *)
    Some (Float.max 0.01 (List.fold_left Float.min Float.infinity l))

let process cfg global_deadline (req : Proto.request) =
  let id = req.req_id in
  match
    let net = Aig.Aiger.read req.aiger in
    let passes = Script.compile req.script in
    let ctx =
      Pass.create_ctx
        ?timeout:(request_timeout cfg global_deadline req)
        ~verify:req.req_verify ~certify:req.req_certify
        ?cache:(Option.map Cache.ops cfg.cache) ~cache_paranoid:cfg.paranoid
        ~echo:ignore net
    in
    let t0 = Obs.Clock.now () in
    let result, records = Pass.run_pipeline ctx passes net in
    let report =
      J.Obj
        ([
           ("request_id", J.Int id);
           ("script", J.String req.script);
           ("input_ands", J.Int (A.num_ands net));
           ("result_ands", J.Int (A.num_ands result));
           ("wall_s", J.Float (Obs.Clock.now () -. t0));
         ]
        @ Pass.summary_json ctx records
        @ (match cfg.cache with
          | None -> []
          | Some c -> [ ("cache", Cache.counters_json c) ])
        @ [ ("result_aiger", J.String (Aig.Aiger.write result)) ])
    in
    (report, A.num_ands net, A.num_ands result)
  with
  | report, before, after ->
    cfg.echo
      (Printf.sprintf "req %d: ok, %d -> %d ands" id before after);
    Proto.R_ok { rsp_id = id; report }
  | exception Proto.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = m }
  | exception Obs.Json.Parse_error (at, m) ->
    Proto.R_error
      {
        rsp_id = id;
        kind = "parse_error";
        message = Printf.sprintf "offset %d: %s" at m;
      }
  | exception Aig.Aiger.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = "aiger: " ^ m }
  | exception Script.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = "script: " ^ m }
  | exception Sweep.Engine.Verification_failed m ->
    Proto.R_error { rsp_id = id; kind = "verification_failed"; message = m }
  | exception exn ->
    Proto.R_error
      { rsp_id = id; kind = "internal"; message = Printexc.to_string exn }

(* ---- connection loop ---- *)

let rec wait_readable stop fd =
  if Atomic.get stop then false
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable stop fd
    | [], _, _ -> wait_readable stop fd
    | _ -> true

let handle_conn cfg global_deadline ~stop ~served ~errors ~dropped conn =
  (* Some systems hand accepted sockets the listener's O_NONBLOCK. *)
  Unix.clear_nonblock conn;
  let count r =
    match r with
    | Proto.R_ok _ -> Atomic.incr served
    | Proto.R_error _ -> Atomic.incr errors
  in
  let rec serve () =
    if wait_readable stop conn then
      match Proto.read_frame_fd conn with
      | None -> () (* clean EOF *)
      | Some payload -> (
        match Proto.request_of_string payload with
        | req ->
          let rsp = process cfg global_deadline req in
          if Obs.Fault.fires fault_drop_conn then (
            cfg.echo (Printf.sprintf "req %d: connection dropped (fault)"
                        req.req_id);
            Atomic.incr dropped (* close without responding *))
          else (
            Proto.write_frame_fd conn (Proto.response_to_string rsp);
            count rsp;
            serve ())
        | exception Proto.Parse_error m ->
          (* The frame arrived intact but its payload is garbage: the
             stream is still framed, so answer and keep serving. *)
          let rsp =
            Proto.R_error { rsp_id = 0; kind = "parse_error"; message = m }
          in
          Proto.write_frame_fd conn (Proto.response_to_string rsp);
          Atomic.incr errors;
          serve ())
      | exception Proto.Parse_error m ->
        (* Framing itself is broken; best-effort error, then hang up. *)
        let rsp =
          Proto.R_error { rsp_id = 0; kind = "parse_error"; message = m }
        in
        (try Proto.write_frame_fd conn (Proto.response_to_string rsp)
         with _ -> ());
        Atomic.incr errors
  in
  (* A peer that vanished mid-write (EPIPE, reset) is its own problem;
     the worker moves on to the next connection. *)
  (try serve () with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

(* ---- accept loop ---- *)

let run ?(stop = Atomic.make false) cfg =
  let served = Atomic.make 0
  and errors = Atomic.make 0
  and dropped = Atomic.make 0 in
  let global_deadline =
    Option.map (fun s -> Obs.Clock.now () +. s) cfg.global_timeout
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let domains = max 1 cfg.domains in
  cfg.echo
    (Printf.sprintf "listening on %s (%d worker domain%s)" cfg.socket_path
       domains
       (if domains = 1 then "" else "s"));
  let worker _i =
    let rec loop () =
      (match global_deadline with
      | Some d when Obs.Clock.now () >= d -> Atomic.set stop true
      | _ -> ());
      if not (Atomic.get stop) then (
        (match Unix.select [ listen_fd ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
          (* The listener is shared and non-blocking: a sibling domain
             may win the race for this connection — just go around. *)
          match Unix.accept ~cloexec:true listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
          | conn, _ ->
            handle_conn cfg global_deadline ~stop ~served ~errors ~dropped conn));
        loop ())
    in
    loop ()
  in
  Sutil.Par.run ~domains worker;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  {
    served = Atomic.get served;
    errors = Atomic.get errors;
    dropped = Atomic.get dropped;
  }
