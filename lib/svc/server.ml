module J = Obs.Json
module A = Aig.Network
module Pass = Stp_sweep.Pass
module Script = Stp_sweep.Script

(* Both force client-visible failures the protocol already owns:
   [svc.drop_conn] severs the connection after a request ran but before
   its response is written; [svc.slow_client] makes the server treat
   the connection as one that went silent (the idle-abort path) — the
   client sees EOF, never a fabricated response. *)
let fault_drop_conn = Obs.Fault.register "svc.drop_conn"
let fault_slow_client = Obs.Fault.register "svc.slow_client"

type config = {
  socket_path : string;
  domains : int;
  queue_depth : int;
  idle_timeout : float option;
  io_timeout : float option;
  retry_after_s : float;
  pool : Obs.Pool.t option;
  cache : Cache.t option;
  paranoid : bool;
  request_timeout : float option;
  global_timeout : float option;
  echo : string -> unit;
}

type outcome = {
  served : int;
  errors : int;
  dropped : int;
  shed : int;
  timeouts : int;
  write_aborts : int;
}

(* Everything a worker needs to serve, tally, and report health. *)
type state = {
  cfg : config;
  global_deadline : float option;
  stop : bool Atomic.t;
  start : float;
  queue : Unix.file_descr Queue.t;
  q_lock : Mutex.t;
  served : int Atomic.t;
  errors : int Atomic.t;
  dropped : int Atomic.t;
  shed : int Atomic.t;
  timeouts : int Atomic.t;
  write_aborts : int Atomic.t;
}

(* ---- one request, fully isolated ---- *)

let request_timeout cfg global_deadline (req : Proto.request) =
  let candidates =
    List.filter_map Fun.id
      [
        req.req_timeout;
        cfg.request_timeout;
        Option.map (fun d -> d -. Obs.Clock.now ()) global_deadline;
      ]
  in
  match candidates with
  | [] -> None
  | l ->
    (* A deadline already in the past still gets a sliver of budget:
       the pipeline then skips its transform passes and reports them
       skipped, rather than the request failing outright. *)
    Some (Float.max 0.01 (List.fold_left Float.min Float.infinity l))

let process st (req : Proto.request) =
  let cfg = st.cfg in
  let id = req.req_id in
  match
    let net = Aig.Aiger.read req.aiger in
    let passes = Script.compile req.script in
    let wall_cap = request_timeout cfg st.global_deadline req in
    (* With a pool armed, the request runs under a lease: its budget is
       min(request cap, fair share of what the daemon has left), the
       engine charges SAT work back to it, and release reclaims unspent
       allowance. An exhausted pool still grants a born-exhausted
       budget — the pipeline degrades to a proven partial result. *)
    let lease = Option.map (fun p -> Obs.Pool.lease ?wall_cap:wall_cap p) cfg.pool in
    Fun.protect
      ~finally:(fun () ->
        match (cfg.pool, lease) with
        | Some p, Some l -> Obs.Pool.release p l
        | _ -> ())
      (fun () ->
        let ctx =
          Pass.create_ctx ?timeout:wall_cap
            ?budget:(Option.map Obs.Pool.budget lease)
            ~verify:req.req_verify ~certify:req.req_certify
            ?cache:(Option.map Cache.ops cfg.cache)
            ~cache_paranoid:cfg.paranoid ~echo:ignore net
        in
        let t0 = Obs.Clock.now () in
        let result, records = Pass.run_pipeline ctx passes net in
        let report =
          J.Obj
            ([
               ("request_id", J.Int id);
               ("script", J.String req.script);
               ("input_ands", J.Int (A.num_ands net));
               ("result_ands", J.Int (A.num_ands result));
               ("wall_s", J.Float (Obs.Clock.now () -. t0));
             ]
            @ Pass.summary_json ctx records
            @ (match cfg.cache with
              | None -> []
              | Some c -> [ ("cache", Cache.counters_json c) ])
            @ [ ("result_aiger", J.String (Aig.Aiger.write result)) ])
        in
        (report, A.num_ands net, A.num_ands result))
  with
  | report, before, after ->
    cfg.echo (Printf.sprintf "req %d: ok, %d -> %d ands" id before after);
    Proto.R_ok { rsp_id = id; report }
  | exception Proto.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = m }
  | exception Obs.Json.Parse_error (at, m) ->
    Proto.R_error
      {
        rsp_id = id;
        kind = "parse_error";
        message = Printf.sprintf "offset %d: %s" at m;
      }
  | exception Aig.Aiger.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = "aiger: " ^ m }
  | exception Script.Parse_error m ->
    Proto.R_error { rsp_id = id; kind = "parse_error"; message = "script: " ^ m }
  | exception Sweep.Engine.Verification_failed m ->
    Proto.R_error { rsp_id = id; kind = "verification_failed"; message = m }
  | exception exn ->
    Proto.R_error
      { rsp_id = id; kind = "internal"; message = Printexc.to_string exn }

(* ---- health ---- *)

let queue_len st =
  Mutex.lock st.q_lock;
  let n = Queue.length st.queue in
  Mutex.unlock st.q_lock;
  n

let health_json st =
  J.Obj
    ([
       ( "status",
         J.String (if Atomic.get st.stop then "draining" else "ok") );
       ("uptime_s", J.Float (Obs.Clock.now () -. st.start));
       ( "queue",
         J.Obj
           [
             ("depth", J.Int (queue_len st));
             ("limit", J.Int st.cfg.queue_depth);
           ] );
       ("served", J.Int (Atomic.get st.served));
       ("errors", J.Int (Atomic.get st.errors));
       ("shed", J.Int (Atomic.get st.shed));
       ("timeouts", J.Int (Atomic.get st.timeouts));
       ("write_aborts", J.Int (Atomic.get st.write_aborts));
       ("dropped", J.Int (Atomic.get st.dropped));
     ]
    @ (match st.cfg.pool with
      | Some p -> [ ("pool", Obs.Pool.stats_json p) ]
      | None -> [ ("pool", J.Null) ])
    @ (match st.cfg.cache with
      | Some c -> [ ("cache", Cache.counters_json c) ]
      | None -> [ ("cache", J.Null) ])
    @
    (* The process-wide kernel compile cache: simulation plans compiled
       while serving requests share cascades through it, so hits here
       mean a request reused another request's compilations. *)
    let k = Sim.Kernel.Cache.shared () in
    [
      ( "sim_compile_cache",
        J.Obj
          [
            ("hits", J.Int (Sim.Kernel.Cache.hits k));
            ("misses", J.Int (Sim.Kernel.Cache.misses k));
            ("evictions", J.Int (Sim.Kernel.Cache.evictions k));
            ("entries", J.Int (Sim.Kernel.Cache.length k));
          ] );
    ])

(* ---- connection loop ---- *)

(* Wait for the next frame: ticks every 0.2s so the worker observes
   [stop] and the idle deadline while parked in [select]. *)
let rec wait_readable ?deadline stop fd =
  if Atomic.get stop then `Stop
  else if
    match deadline with Some d -> Obs.Clock.now () >= d | None -> false
  then `Idle
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_readable ?deadline stop fd
    | [], _, _ -> wait_readable ?deadline stop fd
    | _ -> `Ready

(* Best-effort response on a connection we are about to close anyway —
   the peer may already be gone. *)
let write_best_effort fd rsp =
  try Proto.write_frame_fd fd (Proto.response_to_string rsp) with _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let overload_rsp cfg =
  Proto.R_overloaded { rsp_id = 0; retry_after_s = cfg.retry_after_s }

let handle_conn st conn =
  let cfg = st.cfg in
  (* Some systems hand accepted sockets the listener's O_NONBLOCK. *)
  Unix.clear_nonblock conn;
  (* Read/write deadlines at the socket level: a peer that stalls
     mid-frame (slow loris) or stops draining its response trips
     EAGAIN, which aborts this connection — the worker is never parked
     on one peer forever. *)
  (match cfg.io_timeout with
  | Some t ->
    (try
       Unix.setsockopt_float conn Unix.SO_RCVTIMEO t;
       Unix.setsockopt_float conn Unix.SO_SNDTIMEO t
     with Unix.Unix_error _ -> ())
  | None -> ());
  let count r =
    match r with
    | Proto.R_ok _ -> Atomic.incr st.served
    | Proto.R_error _ -> Atomic.incr st.errors
    | Proto.R_overloaded _ -> Atomic.incr st.shed
    | Proto.R_health _ -> ()
  in
  let rec serve () =
    if Obs.Fault.fires fault_slow_client then begin
      (* Behave exactly as if the peer went silent past the idle
         deadline: count the timeout, hang up. *)
      cfg.echo "conn: idle-abort (svc.slow_client fault)";
      Atomic.incr st.timeouts
    end
    else
      let deadline =
        Option.map (fun t -> Obs.Clock.now () +. t) cfg.idle_timeout
      in
      match wait_readable ?deadline st.stop conn with
      | `Stop -> ()
      | `Idle -> Atomic.incr st.timeouts
      | `Ready -> (
        match Proto.read_frame_fd conn with
        | None -> () (* clean EOF *)
        | Some payload -> (
          match Proto.client_msg_of_string payload with
          | Proto.M_health { h_id } ->
            Proto.write_frame_fd conn
              (Proto.response_to_string
                 (Proto.R_health { rsp_id = h_id; health = health_json st }));
            serve ()
          | Proto.M_run req ->
            let rsp = process st req in
            if Obs.Fault.fires fault_drop_conn then (
              cfg.echo
                (Printf.sprintf "req %d: connection dropped (fault)" req.req_id);
              Atomic.incr st.dropped (* close without responding *))
            else (
              Proto.write_frame_fd conn (Proto.response_to_string rsp);
              count rsp;
              serve ())
          | exception Proto.Parse_error m ->
            (* The frame arrived intact but its payload is garbage: the
               stream is still framed, so answer and keep serving. *)
            let rsp =
              Proto.R_error { rsp_id = 0; kind = "parse_error"; message = m }
            in
            Proto.write_frame_fd conn (Proto.response_to_string rsp);
            Atomic.incr st.errors;
            serve ())
        | exception Proto.Parse_error m ->
          (* Framing itself is broken; best-effort error, then hang up. *)
          write_best_effort conn
            (Proto.R_error { rsp_id = 0; kind = "parse_error"; message = m });
          Atomic.incr st.errors)
  in
  (* A peer that vanished mid-write (EPIPE, reset — counted) or stalled
     past the socket deadline (EAGAIN — counted as a timeout) is its
     own problem; the worker moves on to the next connection. *)
  (try serve () with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    Atomic.incr st.write_aborts;
    cfg.echo "conn: write aborted (peer gone)"
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Atomic.incr st.timeouts;
    cfg.echo "conn: i/o deadline exceeded"
  | Unix.Unix_error _ | Sys_error _ -> ());
  close_quiet conn

(* ---- admission queue ---- *)

let try_dequeue st =
  Mutex.lock st.q_lock;
  let c = if Queue.is_empty st.queue then None else Some (Queue.pop st.queue) in
  Mutex.unlock st.q_lock;
  c

(* Admission control: beyond the high-water mark the connection is
   answered [R_overloaded] and closed — a typed answer in microseconds
   beats an unbounded queue that times every client out. *)
let enqueue_or_shed st conn =
  Mutex.lock st.q_lock;
  let depth = Queue.length st.queue in
  let admit = depth < st.cfg.queue_depth in
  if admit then Queue.push conn st.queue;
  Mutex.unlock st.q_lock;
  if not admit then begin
    write_best_effort conn (overload_rsp st.cfg);
    close_quiet conn;
    Atomic.incr st.shed;
    st.cfg.echo (Printf.sprintf "conn: shed (queue at %d)" depth)
  end

(* Drain: connections still queued when the daemon stops get the same
   typed answer, not a silent close. *)
let shed_queue st =
  let rec go () =
    match try_dequeue st with
    | None -> ()
    | Some conn ->
      write_best_effort conn (overload_rsp st.cfg);
      close_quiet conn;
      Atomic.incr st.shed;
      go ()
  in
  go ()

(* ---- accept loop ---- *)

let run ?(stop = Atomic.make false) cfg =
  (* A client that disappears mid-response must surface as EPIPE on the
     write, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let st =
    {
      cfg;
      global_deadline =
        Option.map (fun s -> Obs.Clock.now () +. s) cfg.global_timeout;
      stop;
      start = Obs.Clock.now ();
      queue = Queue.create ();
      q_lock = Mutex.create ();
      served = Atomic.make 0;
      errors = Atomic.make 0;
      dropped = Atomic.make 0;
      shed = Atomic.make 0;
      timeouts = Atomic.make 0;
      write_aborts = Atomic.make 0;
    }
  in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let workers = max 1 cfg.domains in
  cfg.echo
    (Printf.sprintf "listening on %s (%d worker domain%s, queue %d)"
       cfg.socket_path workers
       (if workers = 1 then "" else "s")
       cfg.queue_depth);
  (* Domain 0 is the acceptor: it owns the listener and the admission
     decision, so shedding happens at accept time, before a worker is
     committed. Domains 1..workers serve queued connections. *)
  let acceptor () =
    let rec loop () =
      (match st.global_deadline with
      | Some d when Obs.Clock.now () >= d -> Atomic.set stop true
      | _ -> ());
      if not (Atomic.get stop) then begin
        (match Unix.select [ listen_fd ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept ~cloexec:true listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
          | conn, _ -> enqueue_or_shed st conn));
        loop ()
      end
    in
    loop ()
  in
  let worker () =
    let rec loop () =
      if not (Atomic.get stop) then
        match try_dequeue st with
        | Some conn ->
          handle_conn st conn;
          loop ()
        | None ->
          Unix.sleepf 0.02;
          loop ()
    in
    loop ()
  in
  Sutil.Par.run ~domains:(workers + 1) (fun i ->
      if i = 0 then acceptor () else worker ());
  shed_queue st;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  {
    served = Atomic.get st.served;
    errors = Atomic.get st.errors;
    dropped = Atomic.get st.dropped;
    shed = Atomic.get st.shed;
    timeouts = Atomic.get st.timeouts;
    write_aborts = Atomic.get st.write_aborts;
  }
