(* Retrying client for the sweep service. See client.mli for the
   contract; the notes here are about retry semantics.

   The one retry-safety invariant: a request is re-sent only when the
   server provably did not start it. [R_overloaded] is exactly that —
   admission control answers before a worker reads the first frame —
   and a refused/absent connect never delivered anything. EOF
   mid-conversation is the opposite: the request may have run (the
   [svc.drop_conn] fault closes after processing), so it surfaces as
   [E_closed] and the caller decides. *)

type error =
  | E_refused of string
  | E_overloaded of float
  | E_closed
  | E_protocol of string
  | E_io of string

let error_to_string = function
  | E_refused m -> "connection refused: " ^ m
  | E_overloaded retry ->
    Printf.sprintf "server overloaded (retry_after %.3gs), retries exhausted"
      retry
  | E_closed -> "server closed the connection mid-conversation"
  | E_protocol m -> "protocol error: " ^ m
  | E_io m -> "i/o error: " ^ m

type policy = {
  retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  retry_budget_s : float;
  jitter : float;
}

let default_policy =
  {
    retries = 5;
    base_backoff_s = 0.05;
    max_backoff_s = 2.0;
    retry_budget_s = 30.0;
    jitter = 0.5;
  }

type t = {
  path : string;
  policy : policy;
  rng : Random.State.t;
  mutable chans : (in_channel * out_channel) option;
  mutable retried : int;  (* total backoff-retries performed, for tests *)
}

let retries_performed t = t.retried

(* Exponential backoff with multiplicative jitter: attempt [i] sleeps
   [base * 2^i] (capped), scaled by a random factor in
   [1 - jitter/2, 1 + jitter/2] so a flood of shed clients does not
   reconnect in lockstep. The server's [retry_after_s] hint acts as a
   floor. *)
let backoff_delay t ~attempt ~floor =
  let base =
    Float.min t.policy.max_backoff_s
      (t.policy.base_backoff_s *. Float.pow 2.0 (float_of_int attempt))
  in
  let factor =
    1.0 -. (t.policy.jitter /. 2.0)
    +. Random.State.float t.rng (Float.max 1e-9 t.policy.jitter)
  in
  Float.max floor (base *. factor)

let connect_once path =
  match Unix.open_connection (Unix.ADDR_UNIX path) with
  | chans -> Ok chans
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
    Error (E_refused "ECONNREFUSED")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    Error (E_refused "no such socket")
  | exception Unix.Unix_error (e, _, _) -> Error (E_io (Unix.error_message e))

let close t =
  match t.chans with
  | None -> ()
  | Some (ic, _) ->
    (* Closing the in_channel closes the shared fd; shutdown first is
       best-effort politeness. *)
    (try Unix.shutdown_connection ic with _ -> ());
    (try close_in ic with _ -> ());
    t.chans <- None

let ensure_conn t =
  match t.chans with
  | Some chans -> Ok chans
  | None -> (
    match connect_once t.path with
    | Ok chans ->
      t.chans <- Some chans;
      Ok chans
    | Error _ as e -> e)

(* One send/receive on an established connection. Any failure tears the
   connection down so the next attempt reconnects from scratch. *)
let roundtrip t msg =
  match ensure_conn t with
  | Error _ as e -> e
  | Ok (ic, oc) ->
    (* A write dying on EPIPE/ECONNRESET usually means the server hung
       up right after accept — but admission control writes its
       R_overloaded verdict *before* closing, so the typed answer may
       already sit in our receive buffer. Note the failure, read
       anyway, and only fall back to E_closed if nothing was there. *)
    let write_ok =
      match Proto.write_client_msg oc msg with
      | () -> true
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        false
      | exception Sys_error _ -> false
    in
    let result =
      match Proto.read_response ic with
      | Some (Proto.R_overloaded _ as rsp) -> Ok rsp
      | Some rsp when write_ok -> Ok rsp
      | Some _ -> Error (E_protocol "response to an undelivered request")
      | None -> Error E_closed
      | exception Proto.Parse_error m -> Error (E_protocol m)
      | exception End_of_file -> Error E_closed
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Error E_closed
      | exception Unix.Unix_error (e, _, _) ->
        Error (E_io (Unix.error_message e))
      | exception Sys_error m ->
        (* in_channel surfaces socket errors as Sys_error; a reset
           right after a failed write is the server hanging up on us,
           not i/o trouble worth a distinct report. *)
        if write_ok then Error (E_io m) else Error E_closed
    in
    (* The server always closes behind an R_overloaded, so tear our
       side down too; any failure likewise forces the next attempt to
       reconnect from scratch. *)
    (match result with
    | Ok (Proto.R_overloaded _) -> close t
    | Ok _ when write_ok -> ()
    | _ -> close t);
    result

let send t msg =
  let t0 = Obs.Clock.now () in
  let within_budget () =
    Obs.Clock.now () -. t0 < t.policy.retry_budget_s
  in
  let rec attempt i =
    let retryable floor =
      if i < t.policy.retries && within_budget () then begin
        close t;
        t.retried <- t.retried + 1;
        Unix.sleepf (backoff_delay t ~attempt:i ~floor);
        attempt (i + 1)
      end
      else None
    in
    match roundtrip t msg with
    | Ok (Proto.R_overloaded { retry_after_s; _ }) -> (
      match retryable retry_after_s with
      | Some _ as r -> r
      | None -> Some (Error (E_overloaded retry_after_s)))
    | Ok rsp -> Some (Ok rsp)
    | Error (E_refused _ as e) -> (
      (* The daemon may be restarting or its backlog momentarily full —
         the same backoff applies, without a server hint. *)
      match retryable 0.0 with
      | Some _ as r -> r
      | None -> Some (Error e))
    | Error e -> Some (Error e)
  in
  match attempt 0 with Some r -> r | None -> Error E_closed

let connect ?(policy = default_policy) path =
  (* The error mapping above only sees EPIPE as an exception if the
     process isn't killed by SIGPIPE first; embeddings rarely remember
     to ignore it themselves, so the library does. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      path;
      policy;
      rng = Random.State.make_self_init ();
      chans = None;
      retried = 0;
    }
  in
  (* Eager first connect so the caller learns about a dead daemon now,
     not at the first request; refusal here is not retried — "is there
     a daemon at all?" deserves a fast answer. *)
  match ensure_conn t with Ok _ -> Ok t | Error e -> Error e

let request t req = send t (Proto.M_run req)

let health ?(id = 0) t =
  match send t (Proto.M_health { h_id = id }) with
  | Ok (Proto.R_health { health; _ }) -> Ok health
  | Ok _ -> Error (E_protocol "expected a health response")
  | Error _ as e -> e

(* ---- liveness probe ---- *)

let probe path =
  if not (Sys.file_exists path) then `Absent
  else
    match connect_once path with
    | Ok (ic, _) ->
      (try Unix.shutdown_connection ic with _ -> ());
      (try close_in ic with _ -> ());
      `Live
    | Error (E_refused "no such socket") -> `Absent
    | Error (E_refused _) ->
      (* The file exists but nothing is listening: a daemon that died
         without cleaning up. *)
      `Stale
    | Error _ -> `Stale
