(** Retrying client library for the sweep service.

    Wraps the {!Proto} framing in a connection handle with typed
    errors and a bounded, jittered exponential-backoff retry loop.
    Retries happen only when the server provably did not start the
    request: an {!Proto.R_overloaded} answer (admission control sheds
    before a worker reads the first frame) or a refused connect. EOF
    mid-conversation is never retried — the request may have run — and
    surfaces as {!E_closed} for the caller to decide.

    The backoff for attempt [i] is [base * 2^i] capped at [max],
    scaled by a random factor in [1 ± jitter/2] (so a flood of shed
    clients does not reconnect in lockstep), floored at the server's
    [retry_after_s] hint. Two bounds stop the loop: [retries] attempts
    and [retry_budget_s] total wall time, whichever hits first. *)

type error =
  | E_refused of string  (** connect failed (daemon down, stale socket) *)
  | E_overloaded of float
      (** still shed after every retry; the payload is the server's
          last [retry_after_s] hint *)
  | E_closed
      (** the server closed mid-conversation — the request may or may
          not have run, so the client never retries this itself *)
  | E_protocol of string  (** malformed frame or unexpected response *)
  | E_io of string

val error_to_string : error -> string

type policy = {
  retries : int;  (** max retry attempts (initial try not counted) *)
  base_backoff_s : float;
  max_backoff_s : float;
  retry_budget_s : float;  (** total wall-clock across all retries *)
  jitter : float;  (** width of the multiplicative jitter band, 0..1 *)
}

val default_policy : policy
(** 5 retries, 50 ms base doubling to 2 s cap, 30 s budget, 0.5
    jitter. *)

type t

val connect : ?policy:policy -> string -> (t, error) result
(** [connect path] opens a connection to the daemon socket at [path].
    Refusal here is returned immediately (no retry): "is there a
    daemon at all?" deserves a fast answer. The handle reconnects
    lazily after any teardown, so one [t] can outlive many server-side
    connection closes. *)

val request : t -> Proto.request -> (Proto.response, error) result
(** Send one run request and await its response, retrying with backoff
    on {!Proto.R_overloaded} and refused reconnects. [Ok] carries
    {!Proto.R_ok} or {!Proto.R_error} — a typed failure from the
    server is a successful conversation. *)

val health : ?id:int -> t -> (Obs.Json.t, error) result
(** Query the daemon's health object (schema in EXPERIMENTS.md); same
    retry discipline as {!request}. *)

val close : t -> unit

val retries_performed : t -> int
(** Backoff-retries this handle has performed, for tests and the CLI's
    verbose reporting. *)

val probe : string -> [ `Live | `Stale | `Absent ]
(** Classify a daemon socket path without sending anything: [`Live] — a
    listener accepted; [`Stale] — the file exists but nothing is
    listening (a daemon died without cleanup; safe to unlink);
    [`Absent] — no file. [sweepd] start-up uses this to recover stale
    sockets and to refuse double starts. *)
