(** The sweep service loop: accept connections on a Unix-domain socket,
    run each framed request through the pass pipeline, stream back
    schema-2 reports.

    Concurrency is [domains] worker domains ({!Sutil.Par.run}), each
    alternating between accepting new connections and serving one
    connection to completion — so up to [domains] requests run truly in
    parallel, and further connections queue in the listen backlog.

    Per-request isolation is the core contract: a hostile frame, an
    unparsable script or AIGER payload, a failed verification, or any
    other exception inside one request produces a typed
    {!Proto.R_error} response on that connection — the worker, the
    other connections and the daemon itself live on. The only
    process-fatal errors are the ones before serving starts (socket
    bind failures), which the CLI maps to exit 2.

    Shutdown is cooperative: setting [stop] (the daemon's signal
    handlers do) makes every worker finish its in-flight request,
    close its connection at the next frame boundary, and join. {!run}
    then removes the socket and returns its tallies — a drained
    daemon exits 0.

    Fault site [svc.drop_conn] severs a connection after the request
    ran but before the response is written — the client sees EOF
    mid-conversation, never a half frame. *)

type config = {
  socket_path : string;
  domains : int;  (** worker domains; clamped to at least 1 *)
  cache : Cache.t option;
      (** shared equivalence cache handed to every request's pipeline *)
  paranoid : bool;  (** replay stored certificates before serving hits *)
  request_timeout : float option;
      (** server-side per-request budget cap, seconds; a request's own
          [timeout_s] can only shrink it *)
  global_timeout : float option;
      (** lifetime cap for the whole daemon, seconds; on expiry the
          server stops as if signalled *)
  echo : string -> unit;  (** one progress line per request served *)
}

type outcome = {
  served : int;  (** requests answered [R_ok] *)
  errors : int;  (** requests answered [R_error] *)
  dropped : int;  (** connections severed by [svc.drop_conn] *)
}

val run : ?stop:bool Atomic.t -> config -> outcome
(** Binds, serves until [stop] is set (or [global_timeout] expires),
    drains, unlinks the socket, returns the tallies. Raises
    [Unix.Unix_error] only for pre-serving failures (bind/listen). *)
