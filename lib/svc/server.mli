(** The sweep service loop: accept connections on a Unix-domain socket,
    run each framed request through the pass pipeline, stream back
    schema-2 reports.

    Concurrency is an acceptor domain plus [domains] worker domains
    ({!Sutil.Par.run}). The acceptor owns the listener and the
    admission decision: an accepted connection either enters the
    bounded queue (at most [queue_depth] waiting) or — beyond the
    high-water mark — is answered a typed {!Proto.R_overloaded} with a
    [retry_after_s] hint and closed, in microseconds. Workers pull
    queued connections and serve each to completion, so up to [domains]
    requests run truly in parallel and overload degrades to fast typed
    shedding instead of unbounded queueing.

    Per-request isolation is the core contract: a hostile frame, an
    unparsable script or AIGER payload, a failed verification, or any
    other exception inside one request produces a typed
    {!Proto.R_error} response on that connection — the worker, the
    other connections and the daemon itself live on. The only
    process-fatal errors are the ones before serving starts (socket
    bind failures), which the CLI maps to exit 2. SIGPIPE is ignored
    for the process inside {!run}: a peer that vanishes mid-response
    surfaces as EPIPE on the write, aborts that connection, and is
    counted in [write_aborts].

    Hostile or stalled peers are bounded in time as well as space:
    [io_timeout] arms socket-level read/write deadlines (a peer
    stalling mid-frame or not draining its response trips EAGAIN and
    the connection is aborted), [idle_timeout] closes connections that
    hold a worker without sending the next request. Both count into
    [timeouts].

    With [pool] armed, every run request executes under an
    {!Obs.Pool} lease: its budget is min(its own cap, a fair share of
    the daemon's remaining allowance), the engine charges SAT work
    back to the lease, and unspent allowance returns to the pool on
    completion. Pool exhaustion degrades requests to proven partial
    results (transform passes skipped, every applied merge proven) —
    never an error, never an unproven merge.

    A [{"op": "health"}] frame is answered with {!Proto.R_health}
    carrying queue depth, tallies, pool and cache statistics (schema in
    EXPERIMENTS.md) without touching the sweep pipeline.

    Shutdown is cooperative: setting [stop] (the daemon's signal
    handlers do) makes the acceptor stop admitting, every worker finish
    its in-flight request and close at the next frame boundary; still-
    queued connections are shed with {!Proto.R_overloaded}, the socket
    is removed and {!run} returns its tallies — a drained daemon exits
    0.

    Fault sites: [svc.drop_conn] severs a connection after the request
    ran but before the response is written (the client sees EOF
    mid-conversation, never a half frame); [svc.slow_client] forces
    the idle-abort path on a connection, as if the peer went silent. *)

type config = {
  socket_path : string;
  domains : int;  (** serving worker domains; clamped to at least 1.
                      The acceptor runs on its own domain on top. *)
  queue_depth : int;
      (** accepted connections waiting for a worker before admission
          control sheds with {!Proto.R_overloaded} *)
  idle_timeout : float option;
      (** seconds a connection may sit between frames before the server
          hangs up (counted in [timeouts]) *)
  io_timeout : float option;
      (** socket-level read/write deadline, seconds: a peer stalling
          mid-frame or not draining its response aborts the connection
          (counted in [timeouts]) *)
  retry_after_s : float;
      (** backoff hint carried by every {!Proto.R_overloaded} *)
  pool : Obs.Pool.t option;
      (** daemon-wide budget pool; every run request executes under a
          {!Obs.Pool.lease} of it *)
  cache : Cache.t option;
      (** shared equivalence cache handed to every request's pipeline *)
  paranoid : bool;  (** replay stored certificates before serving hits *)
  request_timeout : float option;
      (** server-side per-request budget cap, seconds; a request's own
          [timeout_s] can only shrink it *)
  global_timeout : float option;
      (** lifetime cap for the whole daemon, seconds; on expiry the
          server stops as if signalled *)
  echo : string -> unit;  (** one progress line per request served *)
}

type outcome = {
  served : int;  (** requests answered [R_ok] *)
  errors : int;  (** requests answered [R_error] *)
  dropped : int;  (** connections severed by [svc.drop_conn] *)
  shed : int;  (** connections answered [R_overloaded] (admission or drain) *)
  timeouts : int;
      (** connections aborted on idle or i/o deadline (including
          [svc.slow_client] firings) *)
  write_aborts : int;  (** responses aborted by EPIPE/ECONNRESET *)
}

val run : ?stop:bool Atomic.t -> config -> outcome
(** Binds, serves until [stop] is set (or [global_timeout] expires),
    drains, unlinks the socket, returns the tallies. Raises
    [Unix.Unix_error] only for pre-serving failures (bind/listen). *)
