(** Small helpers shared by the table harnesses and benches: wall-clock
    timing, geometric means, and fixed-width table rendering. *)

val time : (unit -> 'a) -> float * 'a
(** Wall-clock seconds spent in the thunk ({!Obs.Clock}; [Sys.time]
    would sum CPU time over domains and invert parallel speedups). *)

val time_repeat : ?min_time:float -> (unit -> unit) -> float
(** Runs the thunk enough times to accumulate [min_time] wall-clock
    seconds (default 0.2) and returns the per-run mean — stabilizes
    short measurements. *)

val geomean : float list -> float
(** Geometric mean; zero entries are clamped to a small epsilon so a
    single zero row cannot zero the whole summary. *)

val render_table : header:string list -> string list list -> string
(** Pads columns, separates with two spaces, underlines the header. *)

val fmt_time : float -> string
(** Seconds with three decimals. *)

val fmt_ratio : float -> string

val cli_guard : (unit -> 'a) -> 'a
(** Wraps a CLI body. Malformed or unreadable inputs
    ([Aig.Aiger.Parse_error], [Klut.Blif.Parse_error],
    [Sat.Dimacs.Parse_error], [Script.Parse_error],
    [Obs.Json.Parse_error], [Sys_error]) and [Unix.Unix_error] (socket
    and file paths — a refused connection, a missing socket, an address
    in use — rendered with a human hint) become a one-line stderr
    message and exit code 2; [Sweep.Engine.Verification_failed] becomes
    one and exit code 3. Anything else propagates (Cmdliner reports it
    as exit 125). *)

val load_network :
  ?circuit:string -> ?file:string -> unit -> string * Aig.Network.t
(** The shared [--circuit NAME | --aig FILE] loader: a named generated
    benchmark (HWMCC family first, then EPFL) or an ASCII AIGER file.
    Returns the display name (basename for files) and the network.
    Exactly one source must be given; violations and unknown benchmark
    names print to stderr and exit 2 — combine with {!cli_guard} so
    unreadable files share the same exit surface. *)

val run_meta : tool:string -> (string * Obs.Json.t) list
(** The header fields every [--json] run report starts with:
    [schema_version], [tool], [generated_at_unix_s], [argv]. Schema
    documented in EXPERIMENTS.md. *)
