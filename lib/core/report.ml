(* Wall clock, not [Sys.time]: CPU time sums over domains, so it would
   report a parallel engine as ~N x slower under perfect scaling. *)
let time f = Obs.Clock.span f

let time_repeat ?(min_time = 0.2) f =
  let t0 = Obs.Clock.now () in
  let rec go runs =
    f ();
    let elapsed = Obs.Clock.now () -. t0 in
    if elapsed >= min_time then elapsed /. float_of_int runs else go (runs + 1)
  in
  go 1

let geomean xs =
  match xs with
  | [] -> 0.
  | _ ->
    let eps = 1e-9 in
    let log_sum =
      List.fold_left (fun acc x -> acc +. log (Float.max x eps)) 0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let render_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row -> Stdlib.max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.map2
         (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
         row widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"

let fmt_time t = Printf.sprintf "%.3f" t
let fmt_ratio r = Printf.sprintf "%.2f" r

(* Inside the run function, not around [Cmd.eval]: Cmdliner catches
   stray exceptions itself and turns them into exit 125 with a
   backtrace, which is the wrong surface for a mistyped file path. *)
let cli_guard f =
  try f () with
  | Aig.Aiger.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 2
  | Script.Parse_error msg ->
    Printf.eprintf "script error: %s\n" msg;
    exit 2
  | Klut.Blif.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 2
  | Sat.Dimacs.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 2
  | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | Obs.Json.Parse_error (at, msg) ->
    Printf.eprintf "parse error: offset %d: %s\n" at msg;
    exit 2
  | Unix.Unix_error (err, fn, arg) ->
    (* The daemon/client paths surface socket errors here; a refused
       connection or a stale socket path is an input problem, not a
       crash, so it shares the parse-error exit surface. *)
    let what = if arg = "" then fn else Printf.sprintf "%s %s" fn arg in
    let hint =
      match err with
      | Unix.ECONNREFUSED ->
        " (is the daemon running? start it with sweepd --socket PATH)"
      | Unix.ENOENT -> " (no such file or socket)"
      | Unix.EADDRINUSE ->
        " (socket already in use — another daemon, or a stale path)"
      | _ -> ""
    in
    Printf.eprintf "error: %s: %s%s\n" what (Unix.error_message err) hint;
    exit 2
  | Sweep.Engine.Verification_failed msg ->
    Printf.eprintf "verification failed: %s\n" msg;
    exit 3

(* The one benchmark/AIGER loader behind every CLI's --circuit/--aig
   pair (it used to be copy-pasted per binary). Unknown names and
   missing/extra flags exit 2, matching cli_guard's surface for
   malformed files. *)
let load_network ?circuit ?file () =
  match (circuit, file) with
  | Some name, None -> (
    ( name,
      try Gen.Suites.hwmcc_by_name name
      with Not_found -> (
        try Gen.Suites.epfl_by_name name
        with Not_found ->
          Printf.eprintf
            "unknown benchmark '%s' (the named HWMCC/EPFL-family suites are \
             listed in Gen.Suites)\n"
            name;
          exit 2) ))
  | None, Some path -> (Filename.basename path, Aig.Aiger.read_file path)
  | _ ->
    prerr_endline "exactly one of --circuit or --aig is required";
    exit 2

let run_meta ~tool =
  [
    (* 2: flow/sweep reports carry per-pass records ("passes") instead
       of the ad-hoc "stages"/top-level "sweep" sections. *)
    ("schema_version", Obs.Json.Int 2);
    ("tool", Obs.Json.String tool);
    ("generated_at_unix_s", Obs.Json.Float (Obs.Clock.now ()));
    ( "argv",
      Obs.Json.List
        (Array.to_list (Array.map (fun a -> Obs.Json.String a) Sys.argv)) );
  ]
