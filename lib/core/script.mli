(** ABC-style flow scripts.

    Grammar (whitespace-insensitive):

    {v script  ::= command (';' command)*
command ::= NAME flagarg*
flagarg ::= FLAG VALUE? v}

    where [NAME] matches [[A-Za-z_][A-Za-z0-9_-]*], flags start with
    ['-'] and whether a flag consumes a value is decided by the pass's
    {!Pass.spec}. Example:

    {v sweep -e stp --retry-schedule 100,1000; rewrite -k 4; balance; verify v}

    Every error — bad pass name, unknown flag, malformed flag value,
    dangling [';'] — raises {!Parse_error} carrying the 1-based column
    of the offending token; [Report.cli_guard] maps it to exit 2, the
    same surface as a malformed input file. *)

exception Parse_error of string
(** Message always starts with ["col N: "]. *)

type token = { text : string; pos : int }  (** [pos] is 1-based. *)

val parse : string -> (token * token list) list
(** Grammar-level parse: one [(name, argument tokens)] pair per command.
    Raises {!Parse_error} on empty scripts, empty commands, dangling
    [';'], or a command not starting with a name. *)

val compile : string -> Pass.t list
(** [parse] plus registry lookup and flag validation: unknown passes,
    unknown flags, missing or malformed flag values all raise positioned
    {!Parse_error}s. The result is ready for {!Pass.run_pipeline}. *)
