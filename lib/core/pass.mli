(** The pass manager: named, first-class network transforms composed
    into pipelines over one shared context.

    A {e pass} is [ctx -> network -> network * report]: it transforms an
    AIG and returns a pass-specific JSON record. The {e context} carries
    everything a production flow shares across stages — the seed policy,
    the simulation-domain count, one {!Obs.Budget} for the whole
    pipeline, the verify/certify policy, {!Obs.Metrics}, and a snapshot
    of the pipeline input for equivalence checkpoints. The {e registry}
    provides the built-in passes ([sweep], [rewrite], [balance],
    [cleanup], [verify], [ps]); {!Script} turns an ABC-style command
    string into a pipeline of them.

    Budget semantics are pipeline-wide (PR 3's degradation contract,
    lifted from the sweep call to the whole script): the runner checks
    the shared budget before every transform pass and the sweep engine
    honors the same absolute deadline internally; on exhaustion the
    remaining transform passes are skipped and reported, while [verify]
    and [ps] still run. Certification ([ctx.certify]) likewise applies
    to every sweep {e and} every verify CEC in the script. *)

type ctx = {
  seed : int64 option;
      (** [None] — each engine uses its own default seed (the legacy
          CLI behaviour); [Some s] overrides every pass. *)
  sim_domains : int;
  sat_domains : int;
      (** default solver-domain count for every sweep pass's parallel
          SAT dispatch ([0] = inline sequential queries); a per-pass
          [--sat-domains] flag overrides it *)
  budget : Obs.Budget.t;  (** one budget for the whole pipeline *)
  verify : bool;  (** self-verify policy for sweeps ({!Sweep.Selfcheck}) *)
  certify : bool;  (** DRUP-certified solver answers, pipeline-wide *)
  cache : Sweep.Engine.cache_ops option;
      (** cross-run equivalence cache for every sweep pass — the daemon
          hands each request the same store, so proven merges flow
          between requests; see {!Sweep.Engine.cache_ops} *)
  cache_paranoid : bool;
      (** replay stored certificates before serving cache hits *)
  metrics : Obs.Metrics.t;
  input : Aig.Network.t;  (** snapshot of the pipeline input *)
  mutable checkpoint : Aig.Network.t;
      (** last network a [verify] pass proved equivalent; starts as
          [input] *)
  mutable verdicts : string list;
      (** CEC verdicts recorded by [verify] passes, newest first *)
  echo : string -> unit;  (** human-readable progress sink *)
}

val create_ctx :
  ?seed:int64 ->
  ?sim_domains:int ->
  ?sat_domains:int ->
  ?timeout:float ->
  ?budget:Obs.Budget.t ->
  ?verify:bool ->
  ?certify:bool ->
  ?cache:Sweep.Engine.cache_ops ->
  ?cache_paranoid:bool ->
  ?echo:(string -> unit) ->
  Aig.Network.t ->
  ctx
(** [timeout] (seconds from now) arms the shared pipeline budget;
    [budget] installs an externally owned one instead (an {!Obs.Pool}
    lease's budget, in the daemon) and wins over [timeout]; omitted,
    the budget is unlimited. [echo] defaults to stdout — pass [ignore]
    for quiet runs (tests). *)

type t = {
  name : string;
  args : (string * string) list;
      (** canonical flag key -> rendered value, for the report *)
  transform : bool;
      (** transform passes are skipped once the budget is exhausted;
          reporting/verification passes still run *)
  run : ctx -> Aig.Network.t -> Aig.Network.t * Obs.Json.t;
}

(** {1 Registry} *)

type arity = Unit | Value

type flag = {
  keys : string list;
      (** aliases, long form first — it names the canonical key, e.g.
          [["--engine"; "-e"]] canonicalizes to ["engine"] *)
  arity : arity;
  flag_doc : string;
}

type spec = {
  pass : string;
  doc : string;
  flags : flag list;
  transform : bool;
  make :
    (string * string) list -> ctx -> Aig.Network.t -> Aig.Network.t * Obs.Json.t;
      (** builds the pass body from canonicalized flag/value pairs; may
          raise {!Bad_arg} on a malformed value — {!Script.compile}
          converts it into a positioned parse error *)
}

exception Bad_arg of string * string
(** [(canonical flag key, message)] — raised by a spec's [make] when a
    flag value does not parse. *)

val canonical_key : flag -> string
(** First alias with leading dashes stripped — the key under which the
    flag appears in [t.args] and is passed to [make]. *)

val register : spec -> unit
val find : string -> spec option
val names : unit -> string list

(** {1 Running pipelines} *)

type record = {
  r_name : string;
  r_args : (string * string) list;
  r_skipped : string option;  (** budget reason, when skipped *)
  r_ands_before : int;
  r_depth_before : int;
  r_ands_after : int;
  r_depth_after : int;
  r_wall_s : float;
  r_detail : Obs.Json.t;  (** pass-specific stats; [Null] when skipped *)
}

val record_json : record -> Obs.Json.t
(** One per-pass report object: [pass], [args], [skipped],
    [ands_before]/[depth_before], [ands_after]/[depth_after], [wall_s],
    [stats]. Schema documented in EXPERIMENTS.md. *)

val run_pipeline : ctx -> t list -> Aig.Network.t -> Aig.Network.t * record list
(** Threads one network through the passes, checking the shared budget
    between passes, timing each pass and echoing a per-pass stage line.
    Returns the final network and one record per pass (skipped passes
    included). *)

val skipped_count : record list -> int
val last_verdict : ctx -> string option
(** Most recent [verify] verdict, if any. *)

val any_different : ctx -> bool
(** Whether any [verify] pass returned [Different] — the CLI exit-1
    condition. *)

val summary_json : ctx -> record list -> (string * Obs.Json.t) list
(** Aggregate report fields: [passes] (records), [skipped_passes],
    [cec] (last verify verdict or null). *)
