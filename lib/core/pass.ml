(* The pass manager: named, first-class network transforms over a shared
   pipeline context, a registry of built-in passes, and the runner that
   threads one network through a pipeline under a single budget.

   This is the architecture move from "bin/flow.ml hardcodes
   sweep -> rewrite -> balance" to ABC-style composable flows: every CLI
   compiles its flags into a script (see {!Script}), every script
   becomes a list of passes, and budget / degradation / certification
   semantics hold for the whole pipeline instead of per call. *)

module A = Aig.Network

type ctx = {
  seed : int64 option;
      (* None -> each engine keeps its own default seed, which is what
         makes the legacy flow byte-identical to the pre-pass-manager
         binaries *)
  sim_domains : int;
  sat_domains : int;
  budget : Obs.Budget.t;
  verify : bool;
  certify : bool;
  cache : Sweep.Engine.cache_ops option;
      (* cross-run equivalence cache handed to every sweep pass; the
         daemon shares one store across all requests *)
  cache_paranoid : bool;
  metrics : Obs.Metrics.t;
  input : A.t;
  mutable checkpoint : A.t;
  mutable verdicts : string list;
  echo : string -> unit;
}

let create_ctx ?seed ?(sim_domains = 1) ?(sat_domains = 0) ?timeout ?budget
    ?(verify = false) ?(certify = false) ?cache ?(cache_paranoid = false)
    ?(echo = print_string) input =
  let budget =
    match (budget, timeout) with
    | Some b, _ -> b (* externally owned (a pool lease's); wins over timeout *)
    | None, Some s -> Obs.Budget.create ~timeout:s ()
    | None, None -> Obs.Budget.unlimited ()
  in
  {
    seed;
    sim_domains;
    sat_domains;
    budget;
    verify;
    certify;
    cache;
    cache_paranoid;
    metrics = Obs.Metrics.create ();
    input;
    checkpoint = input;
    verdicts = [];
    echo;
  }

type t = {
  name : string;
  args : (string * string) list;
  transform : bool;
  run : ctx -> A.t -> A.t * Obs.Json.t;
}

(* ---- registry ---- *)

type arity = Unit | Value

type flag = { keys : string list; arity : arity; flag_doc : string }

type spec = {
  pass : string;
  doc : string;
  flags : flag list;
  transform : bool;
  make : (string * string) list -> ctx -> A.t -> A.t * Obs.Json.t;
}

exception Bad_arg of string * string

let canonical_key f =
  let k = List.hd f.keys in
  let i = ref 0 in
  while !i < String.length k && k.[!i] = '-' do
    incr i
  done;
  String.sub k !i (String.length k - !i)

let registry : (string, spec) Hashtbl.t = Hashtbl.create 16

let register spec = Hashtbl.replace registry spec.pass spec

let find name = Hashtbl.find_opt registry name

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry []
  |> List.sort String.compare

(* ---- built-in passes ---- *)

let int_arg key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> raise (Bad_arg (key, Printf.sprintf "expected an integer, got '%s'" v))

let sweep_make args =
  let engine =
    match List.assoc_opt "engine" args with
    | None | Some "stp" -> `Stp
    | Some "fraig" -> `Fraig
    | Some other ->
      raise
        (Bad_arg ("engine", Printf.sprintf "unknown engine '%s' (stp|fraig)" other))
  in
  let retry_schedule =
    Option.map
      (fun v ->
        String.split_on_char ',' v
        |> List.map (fun s -> int_arg "retry-schedule" (String.trim s)))
      (List.assoc_opt "retry-schedule" args)
  in
  let conflict_limit =
    Option.map (int_arg "conflict-limit") (List.assoc_opt "conflict-limit" args)
  in
  let sat_domains_arg =
    Option.map (int_arg "sat-domains") (List.assoc_opt "sat-domains" args)
  in
  fun ctx net ->
    (* The whole pipeline budget is handed to the sweep: it honors the
       shared deadline plus any conflict/propagation caps, charges its
       SAT work back (so an Obs.Pool lease can reclaim unspent
       allowance), and its sticky exhaustion is visible to the runner's
       between-pass checks. Degradation (PR 3) handles mid-pass
       exhaustion. *)
    (* Per-pass --sat-domains wins over the pipeline-level default. *)
    let sat_domains =
      match sat_domains_arg with Some d -> d | None -> ctx.sat_domains
    in
    let swept, stats =
      match engine with
      | `Stp ->
        Sweep.Stp_sweep.sweep ?seed:ctx.seed ?conflict_limit ?retry_schedule
          ~sim_domains:ctx.sim_domains ~sat_domains ~budget:ctx.budget
          ~verify:ctx.verify ~certify:ctx.certify ?cache:ctx.cache
          ~cache_paranoid:ctx.cache_paranoid net
      | `Fraig ->
        Sweep.Fraig.sweep ?seed:ctx.seed ?conflict_limit ?retry_schedule
          ~sim_domains:ctx.sim_domains ~sat_domains ~budget:ctx.budget
          ~verify:ctx.verify ~certify:ctx.certify ?cache:ctx.cache
          ~cache_paranoid:ctx.cache_paranoid net
    in
    ctx.echo
      (Printf.sprintf "  %s\n" (Format.asprintf "%a" Sweep.Stats.pp stats));
    if ctx.certify then
      ctx.echo
        (Printf.sprintf "  certificates: unsat=%d models=%d rejected=%d\n"
           stats.Sweep.Stats.certified_unsat stats.Sweep.Stats.certified_models
           stats.Sweep.Stats.certificate_rejected);
    (match stats.Sweep.Stats.budget_exhausted with
    | Some { Sweep.Stats.reason; phase } ->
      ctx.echo
        (Printf.sprintf
           "  budget exhausted (%s) during %s — partial sweep, every applied \
            merge is proven\n"
           reason phase)
    | None -> ());
    let fields =
      match Sweep.Stats.to_json stats with
      | Obs.Json.Obj fields -> fields
      | other -> [ ("sweep", other) ]
    in
    ( swept,
      Obs.Json.Obj
        (("engine", Obs.Json.String (match engine with `Stp -> "stp" | `Fraig -> "fraig"))
        :: fields) )

let rewrite_make args =
  let k = Option.map (int_arg "k") (List.assoc_opt "k" args) in
  let conflict_limit =
    Option.map (int_arg "conflict-limit") (List.assoc_opt "conflict-limit" args)
  in
  fun ctx net ->
    let r, st = Synth.Rewrite.rewrite ?k ?conflict_limit net in
    ctx.echo
      (Printf.sprintf "  applied=%d classes=%d\n" st.Synth.Rewrite.applied
         st.Synth.Rewrite.classes_synthesized);
    (r, Synth.Rewrite.stats_to_json st)

let balance_make _args _ctx net =
  let b, map = Aig.Balance.balance net in
  let dropped =
    Array.fold_left (fun acc l -> if l = -1 then acc + 1 else acc) 0 map
  in
  (b, Obs.Json.Obj [ ("dropped_nodes", Obs.Json.Int dropped) ])

let cleanup_make _args _ctx net =
  let c, _ = A.cleanup net in
  ( c,
    Obs.Json.Obj
      [ ("removed_nodes", Obs.Json.Int (A.num_nodes net - A.num_nodes c)) ] )

let verify_make args =
  let against_input = List.mem_assoc "input" args in
  fun ctx net ->
    let baseline = if against_input then ctx.input else ctx.checkpoint in
    (* The verification oracle judges the (possibly fault-degraded)
       pipeline, so it runs with injection suspended — same contract as
       Selfcheck and the pre-pass-manager flow. *)
    let verdict =
      Obs.Fault.bypass (fun () ->
          Sweep.Cec.check ~certify:ctx.certify baseline net)
    in
    let s, po =
      match verdict with
      | Sweep.Cec.Equivalent ->
        ctx.echo "cec: equivalent\n";
        (* A proven network becomes the reference for the next verify
           pass, so long scripts can checkpoint intermediate states. *)
        ctx.checkpoint <- net;
        ("equivalent", None)
      | Sweep.Cec.Different { po; _ } ->
        ctx.echo (Printf.sprintf "cec: DIFFERENT at output %d\n" po);
        ("different", Some po)
      | Sweep.Cec.Undetermined po ->
        ctx.echo (Printf.sprintf "cec: undetermined at output %d\n" po);
        ("undetermined", Some po)
    in
    ctx.verdicts <- s :: ctx.verdicts;
    ( net,
      Obs.Json.Obj
        [
          ("cec", Obs.Json.String s);
          ( "against",
            Obs.Json.String (if against_input then "input" else "checkpoint") );
          ("po", match po with None -> Obs.Json.Null | Some p -> Obs.Json.Int p);
        ] )

let ps_make _args _ctx net = (net, A.stats_json net)

let () =
  List.iter register
    [
      {
        pass = "sweep";
        doc = "SAT-sweep the network (engines: stp, fraig)";
        flags =
          [
            (* Long alias first: it names the canonical key ("engine")
               that make receives and the report renders. *)
            { keys = [ "--engine"; "-e" ]; arity = Value; flag_doc = "stp|fraig" };
            {
              keys = [ "--retry-schedule" ];
              arity = Value;
              flag_doc = "escalating conflict limits, comma-separated";
            };
            {
              keys = [ "--conflict-limit" ];
              arity = Value;
              flag_doc = "per-query conflict cap";
            };
            {
              keys = [ "--sat-domains" ];
              arity = Value;
              flag_doc = "solver domains for parallel SAT dispatch (0 = inline)";
            };
          ];
        transform = true;
        make = sweep_make;
      };
      {
        pass = "rewrite";
        doc = "cut-based rewriting with exact resynthesis";
        flags =
          [
            { keys = [ "-k" ]; arity = Value; flag_doc = "cut size (default 4)" };
            {
              keys = [ "--conflict-limit" ];
              arity = Value;
              flag_doc = "per-class exact-synthesis conflict cap";
            };
          ];
        transform = true;
        make = rewrite_make;
      };
      {
        pass = "balance";
        doc = "AND-tree balancing";
        flags = [];
        transform = true;
        make = (fun args -> balance_make args);
      };
      {
        pass = "cleanup";
        doc = "drop dead nodes";
        flags = [];
        transform = true;
        make = (fun args -> cleanup_make args);
      };
      {
        pass = "verify";
        doc = "CEC against the pipeline input (or the last checkpoint)";
        flags =
          [
            {
              keys = [ "--input" ];
              arity = Unit;
              flag_doc = "check against the pipeline input, not the last checkpoint";
            };
          ];
        transform = false;
        make = verify_make;
      };
      {
        pass = "ps";
        doc = "record network statistics";
        flags = [];
        transform = false;
        make = (fun args -> ps_make args);
      };
    ]

(* ---- runner ---- *)

type record = {
  r_name : string;
  r_args : (string * string) list;
  r_skipped : string option;
  r_ands_before : int;
  r_depth_before : int;
  r_ands_after : int;
  r_depth_after : int;
  r_wall_s : float;
  r_detail : Obs.Json.t;
}

let record_json r =
  let open Obs.Json in
  Obj
    [
      ("pass", String r.r_name);
      ("args", Obj (List.map (fun (k, v) -> (k, String v)) r.r_args));
      ("skipped", match r.r_skipped with None -> Null | Some s -> String s);
      ("ands_before", Int r.r_ands_before);
      ("depth_before", Int r.r_depth_before);
      ("ands_after", Int r.r_ands_after);
      ("depth_after", Int r.r_depth_after);
      ("wall_s", Float r.r_wall_s);
      ("stats", r.r_detail);
    ]

let run_pipeline ctx passes net0 =
  let records = ref [] in
  let net = ref net0 in
  List.iter
    (fun (p : t) ->
      let ands_before = A.num_ands !net and depth_before = A.depth !net in
      (* PR 3 degradation, pipeline-wide: once the shared budget is
         exhausted, remaining transform passes are skipped and reported;
         verify and ps still run — a degraded result must still be
         checkable. *)
      let skipped =
        if p.transform then
          match Obs.Budget.check_now ctx.budget with
          | Some reason -> Some (Obs.Budget.reason_to_string reason)
          | None -> None
        else None
      in
      match skipped with
      | Some reason ->
        ctx.echo
          (Printf.sprintf "%-14s skipped (budget exhausted: %s)\n" p.name
             reason);
        Obs.Metrics.incr ctx.metrics "passes.skipped";
        records :=
          {
            r_name = p.name;
            r_args = p.args;
            r_skipped = skipped;
            r_ands_before = ands_before;
            r_depth_before = depth_before;
            r_ands_after = ands_before;
            r_depth_after = depth_before;
            r_wall_s = 0.;
            r_detail = Obs.Json.Null;
          }
          :: !records
      | None ->
        let t0 = Obs.Clock.now () in
        let out, detail = p.run ctx !net in
        let dt = Obs.Clock.now () -. t0 in
        Obs.Metrics.add_time ctx.metrics ("pass." ^ p.name) dt;
        Obs.Metrics.incr ctx.metrics "passes.run";
        net := out;
        ctx.echo
          (Printf.sprintf "%-14s %s\n" p.name
             (Format.asprintf "%a" A.pp_stats out));
        records :=
          {
            r_name = p.name;
            r_args = p.args;
            r_skipped = None;
            r_ands_before = ands_before;
            r_depth_before = depth_before;
            r_ands_after = A.num_ands out;
            r_depth_after = A.depth out;
            r_wall_s = dt;
            r_detail = detail;
          }
          :: !records)
    passes;
  (!net, List.rev !records)

let skipped_count records =
  List.length (List.filter (fun r -> r.r_skipped <> None) records)

let last_verdict ctx =
  match ctx.verdicts with [] -> None | v :: _ -> Some v

let any_different ctx = List.mem "different" ctx.verdicts

let summary_json ctx records =
  let open Obs.Json in
  [
    ("passes", List (List.map record_json records));
    ("skipped_passes", Int (skipped_count records));
    ( "cec",
      match last_verdict ctx with None -> Null | Some v -> String v );
  ]
