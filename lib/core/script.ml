(* ABC-style flow scripts: "sweep -e stp; rewrite; balance; verify".

   The grammar is deliberately tiny — commands separated by ';', each a
   pass name followed by flags — and every error carries the 1-based
   column of the offending token, in the same Parse_error style as the
   AIGER / BLIF / DIMACS readers (Report.cli_guard maps it to exit 2). *)

exception Parse_error of string

let fail pos fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "col %d: %s" pos s)))
    fmt

type token = { text : string; pos : int }

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if is_space c then incr i
    else if c = ';' then begin
      toks := { text = ";"; pos = !i + 1 } :: !toks;
      incr i
    end
    else begin
      let start = !i in
      while !i < n && (not (is_space s.[!i])) && s.[!i] <> ';' do
        incr i
      done;
      toks := { text = String.sub s start (!i - start); pos = start + 1 } :: !toks
    end
  done;
  List.rev !toks

let is_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let parse s =
  let toks = tokenize s in
  if toks = [] then raise (Parse_error "col 1: empty script");
  (* Split on ';', rejecting empty commands — including the dangling
     trailing one, so "sweep;" is a hard error rather than a silent
     no-op pass. *)
  let rec split current acc last_sep = function
    | [] -> (
      match current with
      | [] ->
        let pos = match last_sep with Some p -> p | None -> 1 in
        fail pos "dangling ';' — a pass must follow"
      | c -> List.rev (List.rev c :: acc))
    | t :: rest when t.text = ";" -> (
      match current with
      | [] -> fail t.pos "empty command before ';'"
      | c -> split [] (List.rev c :: acc) (Some t.pos) rest)
    | t :: rest -> split (t :: current) acc last_sep rest
  in
  let cmds = split [] [] None toks in
  List.map
    (fun toks ->
      match toks with
      | [] -> assert false
      | name :: args ->
        if not (is_name name.text) then
          fail name.pos "expected a pass name, got '%s'" name.text;
        (name, args))
    cmds

let compile s =
  let cmds = parse s in
  List.map
    (fun ((name : token), args) ->
      match Pass.find name.text with
      | None ->
        fail name.pos "unknown pass '%s' (known: %s)" name.text
          (String.concat ", " (Pass.names ()))
      | Some spec ->
        let find_flag t =
          List.find_opt (fun f -> List.mem t.text f.Pass.keys) spec.Pass.flags
        in
        let rec pair acc = function
          | [] -> List.rev acc
          | t :: rest when String.length t.text > 0 && t.text.[0] = '-' -> (
            match find_flag t with
            | None ->
              fail t.pos "unknown flag '%s' for pass '%s'" t.text name.text
            | Some f -> (
              let key = Pass.canonical_key f in
              match f.Pass.arity with
              | Pass.Unit -> pair ((key, "true", t.pos) :: acc) rest
              | Pass.Value -> (
                match rest with
                | v :: rest' -> pair ((key, v.text, t.pos) :: acc) rest'
                | [] -> fail t.pos "flag '%s' expects a value" t.text)))
          | t :: _ ->
            fail t.pos "unexpected argument '%s' for pass '%s' (flags only)"
              t.text name.text
        in
        let triples = pair [] args in
        let kvs = List.map (fun (k, v, _) -> (k, v)) triples in
        let run =
          try spec.Pass.make kvs
          with Pass.Bad_arg (key, msg) ->
            let pos =
              match List.find_opt (fun (k, _, _) -> k = key) triples with
              | Some (_, _, p) -> p
              | None -> name.pos
            in
            fail pos "%s" msg
        in
        {
          Pass.name = name.text;
          args = kvs;
          transform = spec.Pass.transform;
          run;
        })
    cmds
