(** Semi-tensor-product circuit simulation and SAT-sweeping.

    Umbrella module: re-exports every sub-library under one namespace and
    offers the two high-level entry points most users want — simulate a
    k-LUT network with a chosen engine, and sweep an AIG with a chosen
    engine. See the README for a tour and DESIGN.md for the paper
    mapping. *)

module Util = Sutil
module Obs = Obs
module Tt = Tt
module Stp = Stp
module Aig = Aig
module Klut = Klut
module Sim = Sim
module Sat = Sat
module Sweep = Sweep
module Gen = Gen
module Synth = Synth
module Report = Report
module Pass = Pass
module Script = Script

let version = "1.0.0"

type sim_engine = [ `Stp | `Bitwise ]
type sweep_engine = [ `Stp | `Fraig ]

let simulate_klut ?(engine = `Stp) network patterns =
  match (engine : sim_engine) with
  | `Stp -> Sim.Stp_sim.simulate_klut network patterns
  | `Bitwise -> Sim.Bitwise.simulate_klut network patterns

let simulate_aig ?(engine = `Stp) network patterns =
  match (engine : sim_engine) with
  | `Stp -> Sim.Stp_sim.simulate_aig network patterns
  | `Bitwise -> Sim.Bitwise.simulate_aig network patterns

let sweep ?(engine = `Stp) network =
  match (engine : sweep_engine) with
  | `Stp -> Sweep.Stp_sweep.sweep network
  | `Fraig -> Sweep.Fraig.sweep network
