module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table

let word_mask = 0xFFFFFFFF

(* Parallel decomposition (shared by every engine in this library): the
   pattern axis is embarrassingly parallel, so the packed words are split
   into contiguous [lo, hi) ranges and each range is simulated by its own
   domain. Every domain walks the whole network in topological order but
   reads and writes only its word slice of each node's signature, so the
   slices are disjoint, no synchronization is needed inside the pass, and
   the result is bit-identical to the sequential engine. Rows are
   allocated up front (single-domain allocation keeps the shape
   identical), and the num_patterns tail fix-up runs once at the end. *)

let simulate_aig ?(domains = 1) net pats =
  let n = A.num_nodes net in
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ | A.And -> tbl.(nd) <- Array.make nw 0);
  let fill ~lo ~hi =
    A.iter_nodes net (fun nd ->
        match A.kind net nd with
        | A.Const -> ()
        | A.Pi i ->
          let row = tbl.(nd) in
          for w = lo to hi - 1 do
            Array.unsafe_set row w (Patterns.word pats ~pi:i w)
          done
        | A.And ->
          let f0 = A.fanin0 net nd and f1 = A.fanin1 net nd in
          let s0 = tbl.(L.node f0) and s1 = tbl.(L.node f1) in
          let c0 = L.is_compl f0 and c1 = L.is_compl f1 in
          let out = tbl.(nd) in
          for w = lo to hi - 1 do
            let a = Array.unsafe_get s0 w in
            let a = if c0 then lnot a land word_mask else a in
            let b = Array.unsafe_get s1 w in
            let b = if c1 then lnot b land word_mask else b in
            Array.unsafe_set out w (a land b)
          done)
  in
  Sutil.Par.for_ranges ~domains nw fill;
  (* Complemented inputs leak set bits beyond num_patterns; clear them so
     signature comparison stays meaningful. *)
  let np = Patterns.num_patterns pats in
  Array.iter (fun s -> if Array.length s > 0 then Signature.num_patterns_mask np s) tbl;
  tbl

let simulate_klut ?(domains = 1) net pats =
  let n = K.num_nodes net in
  let np = Patterns.num_patterns pats in
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  K.iter_nodes net (fun nd ->
      if K.is_pi net nd || K.is_lut net nd then tbl.(nd) <- Array.make nw 0);
  let fill ~lo ~hi =
    (* Patterns living in words [lo, hi). *)
    let p_lo = lo * 32 and p_hi = min np (hi * 32) in
    K.iter_nodes net (fun nd ->
        if K.is_pi net nd then begin
          let row = tbl.(nd) and pi = K.pi_index net nd in
          for w = lo to hi - 1 do
            Array.unsafe_set row w (Patterns.word pats ~pi w)
          done
        end
        else if K.is_lut net nd then begin
          let fanins = K.fanins net nd in
          let f = K.func net nd in
          let k = Array.length fanins in
          let out = tbl.(nd) in
          let inputs = Array.map (fun fi -> tbl.(fi)) fanins in
          (* Per-pattern bit extraction and table lookup — what an
             off-the-shelf bitwise simulator does with a k-LUT. *)
          for p = p_lo to p_hi - 1 do
            let w = p lsr 5 and off = p land 31 in
            let idx = ref 0 in
            for j = k - 1 downto 0 do
              idx := (!idx lsl 1) lor ((inputs.(j).(w) lsr off) land 1)
            done;
            if T.get f !idx then out.(w) <- out.(w) lor (1 lsl off)
          done
        end)
  in
  Sutil.Par.for_ranges ~domains nw fill;
  tbl

let po_signature tbl ~num_patterns ~lit =
  let s = tbl.(L.node lit) in
  if L.is_compl lit then Signature.complement_of ~num_patterns s
  else Array.copy s
