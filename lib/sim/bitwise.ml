(* Baseline engines, as thin wrappers over the compiled kernel plan
   ({!Kernel}): the AIG path compiles to AND kernels, the k-LUT path to
   matrix passes — the per-bit fanin gather + table lookup an
   off-the-shelf bitwise simulator does ("extracting individual bits of
   the LUT and simulating them separately"). Domain sharding, block
   tiling and tail masking all live in the kernel executor, so these
   tables are bit-identical to every other engine's for the same
   function. *)

let simulate_aig ?(domains = 1) net pats =
  Kernel.execute ~domains (Kernel.compile_aig net) pats

let simulate_klut ?(domains = 1) net pats =
  Kernel.execute ~domains (Kernel.compile_klut ~style:`Bitblast net) pats

let po_signature tbl ~num_patterns ~lit =
  let module L = Aig.Lit in
  let s = tbl.(L.node lit) in
  if L.is_compl lit then Signature.complement_of ~num_patterns s
  else Array.copy s
