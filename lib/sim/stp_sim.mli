(** The STP-based simulator (Section III of the paper).

    Each LUT's function is held as a logic matrix — concretely the packed
    words of its truth table — and a node's signature is produced by one
    matrix pass per 32-pattern block: the fanin bits are gathered into
    column indices and the matrix columns are selected directly. No
    per-pattern Boolean evaluation, no bit-by-bit LUT decomposition.

    Both entry points are thin wrappers over the compiled kernel plan
    ({!Kernel}): narrow LUTs (k <= 8) execute as compiled selection
    cascades ({!Stp.Cascade}), wide LUTs as matrix passes, ANDs as word
    kernels. The tables are bit-identical to the {!Bitwise} engines'.

    [simulate_specified] is Algorithm 1's mode [s]: the network is first
    restructured by the circuit-cut algorithm (multi-fanout-free regions
    collapse into single k-LUTs whose matrices are composed by STP), then
    only the cut roots are simulated.

    [?domains] (default 1) shards the packed pattern words into
    contiguous ranges simulated in independent OCaml domains; plans are
    compiled sequentially first, so the parallel tables are bit-identical
    to the sequential ones. *)

(** Compiled selection-cascade matrices, memoized by truth table — an
    alias of the kernel's bounded {!Kernel.Cache}. By default
    simulations share the process-wide instance ({!Kernel.Cache.shared});
    pass your own to isolate or to observe hit/miss counts. *)
module Compile_cache : sig
  type t = Kernel.Cache.t

  val create : ?max_entries:int -> unit -> t
  (** FIFO-bounded at [max_entries] (default 4096) resident tables. *)

  val hits : t -> int
  (** LUT nodes whose matrix was found already compiled. *)

  val misses : t -> int
  (** Distinct truth tables actually compiled. *)

  val evictions : t -> int
  val length : t -> int
end

val simulate_klut :
  ?domains:int ->
  ?cache:Compile_cache.t ->
  Klut.Network.t ->
  Patterns.t ->
  Signature.table
(** Mode [a]: all nodes, topological order, one matrix pass per node. *)

val simulate_aig : ?domains:int -> Aig.Network.t -> Patterns.t -> Signature.table
(** AIG simulation through 2-input structural matrices. Word-parallel like
    the bitwise engine (an AND's logic matrix selection over packed words
    {e is} the AND of the words), hence the paper's [T_A ~ 1x]. *)

val simulate_specified :
  ?domains:int ->
  Klut.Network.t ->
  Patterns.t ->
  targets:int list ->
  (int * int array) list
(** Mode [s]: signatures of the target nodes only, via circuit cut with
    [limit = max 2 (log2 num_patterns)] (capped at 16). Returns
    association list target node -> signature. *)
