module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table
module C = Stp.Cascade

let word_mask = 0xFFFFFFFF

(* Words per executor block: 16 words = 512 patterns. Small enough that
   a block's slice of every live row stays cache-resident while the
   instruction stream walks the network, large enough to amortize the
   per-instruction dispatch. *)
let block_words = 16

(* Opcodes. One instruction per node, instruction index = node id. *)
let op_const = 0
let op_pi = 1
let op_and = 2
let op_matrix = 3
let op_cascade = 4

(* k-LUT networks reuse a small set of functions (a 6-LUT mapping of a
   big adder is mostly a handful of carry/sum shapes), so a cascade is
   compiled once per distinct truth table and shared across nodes, plan
   compilations, and — through {!Cache.shared} — across passes and
   daemon requests in the same process. Bounded FIFO: the oldest entry
   is dropped once [max_entries] distinct tables are resident, so a
   long-lived daemon cannot grow it without limit. *)
module Cache = struct
  type t = {
    tbl : (T.t, C.t) Hashtbl.t;
    order : T.t Queue.t;
    max_entries : int;
    lock : Mutex.t;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?(max_entries = 4096) () =
    {
      tbl = Hashtbl.create 64;
      order = Queue.create ();
      max_entries = max 1 max_entries;
      lock = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let hits c = c.hits
  let misses c = c.misses
  let evictions c = c.evictions
  let length c = Hashtbl.length c.tbl

  (* Plan compilation is sequential, but two daemon workers may compile
     plans concurrently against the shared cache; the mutex covers the
     whole lookup-or-compile so an entry is compiled at most once per
     residency. *)
  let get c tt =
    Mutex.lock c.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
    match Hashtbl.find_opt c.tbl tt with
    | Some comp ->
      c.hits <- c.hits + 1;
      comp
    | None ->
      let comp = C.compile tt in
      c.misses <- c.misses + 1;
      if Hashtbl.length c.tbl >= c.max_entries then begin
        let oldest = Queue.pop c.order in
        Hashtbl.remove c.tbl oldest;
        c.evictions <- c.evictions + 1
      end;
      Hashtbl.replace c.tbl tt comp;
      Queue.push tt c.order;
      comp

  let shared_instance = lazy (create ())
  let shared () = Lazy.force shared_instance
end

(* The plan: one instruction per node in a flat arena of int arrays —
   no per-node OCaml blocks, so executing it touches only the code
   arrays, the shared pools and the signature rows. Growable in place:
   [extend_*] appends instructions for nodes created since the last
   compilation, which is how the sweep engine patches its plan as the
   fresh network grows. *)
type t = {
  mutable n : int; (* instructions = nodes compiled so far *)
  mutable op : int array;
  mutable x0 : int array; (* operands, meaning per opcode below *)
  mutable x1 : int array;
  mutable x2 : int array;
  mutable x3 : int array;
  mutable x4 : int array;
  (* pools *)
  mutable fanin_pool : int array; (* concatenated fanin node ids *)
  mutable fanin_len : int;
  mutable tt_pool : int array; (* concatenated packed truth tables *)
  mutable tt_len : int;
  mutable casc_pool : int array; (* (var, hi, lo) triples, flattened *)
  mutable casc_len : int;
  mutable max_slots : int; (* scratch slots of the longest cascade *)
  mutable max_k : int; (* widest fanin list *)
}
(* Operands:
   - op_const:   none (row is all zeros)
   - op_pi:      x0 = PI index
   - op_and:     x0/x1 = fanin nodes, x2/x3 = complement masks
   - op_matrix:  x0 = fanin_pool offset, x1 = k, x2 = tt_pool offset
   - op_cascade: x0 = fanin_pool offset, x1 = casc_pool triple base,
                 x2 = instruction count, x3 = root slot, x4 = k *)

let num_instructions t = t.n

let create_empty ?(hint = 64) () =
  let hint = max 16 hint in
  {
    n = 0;
    op = Array.make hint 0;
    x0 = Array.make hint 0;
    x1 = Array.make hint 0;
    x2 = Array.make hint 0;
    x3 = Array.make hint 0;
    x4 = Array.make hint 0;
    fanin_pool = Array.make 64 0;
    fanin_len = 0;
    tt_pool = Array.make 64 0;
    tt_len = 0;
    casc_pool = Array.make 64 0;
    casc_len = 0;
    max_slots = 2;
    max_k = 1;
  }

let grow_to arr len =
  if Array.length arr >= len then arr
  else begin
    let bigger = Array.make (max len (2 * Array.length arr)) 0 in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let ensure_code t n =
  if n > Array.length t.op then begin
    t.op <- grow_to t.op n;
    t.x0 <- grow_to t.x0 n;
    t.x1 <- grow_to t.x1 n;
    t.x2 <- grow_to t.x2 n;
    t.x3 <- grow_to t.x3 n;
    t.x4 <- grow_to t.x4 n
  end

let pool_add_fanins t fanins =
  let off = t.fanin_len in
  t.fanin_pool <- grow_to t.fanin_pool (off + Array.length fanins);
  Array.blit fanins 0 t.fanin_pool off (Array.length fanins);
  t.fanin_len <- off + Array.length fanins;
  off

let pool_add_tt t words =
  let off = t.tt_len in
  t.tt_pool <- grow_to t.tt_pool (off + Array.length words);
  Array.blit words 0 t.tt_pool off (Array.length words);
  t.tt_len <- off + Array.length words;
  off

let pool_add_cascade t (c : C.t) =
  let ni = C.length c in
  let base = t.casc_len in
  t.casc_pool <- grow_to t.casc_pool (3 * (base + ni));
  for i = 0 to ni - 1 do
    let at = 3 * (base + i) in
    t.casc_pool.(at) <- c.C.sel_var.(i);
    t.casc_pool.(at + 1) <- c.C.sel_hi.(i);
    t.casc_pool.(at + 2) <- c.C.sel_lo.(i)
  done;
  t.casc_len <- base + ni;
  if ni + 2 > t.max_slots then t.max_slots <- ni + 2;
  base

(* ---- plan compilers ---- *)

(* Instruction order is node creation order, which both network types
   guarantee is topological — a levelization by topological index. The
   executor only needs fanin instructions to precede their readers
   within each word, so no separate level schedule is kept. *)

let extend_aig t net =
  let n = A.num_nodes net in
  ensure_code t n;
  for nd = t.n to n - 1 do
    (match A.kind net nd with
    | A.Const -> t.op.(nd) <- op_const
    | A.Pi i ->
      t.op.(nd) <- op_pi;
      t.x0.(nd) <- i
    | A.And ->
      let f0 = A.fanin0 net nd and f1 = A.fanin1 net nd in
      t.op.(nd) <- op_and;
      t.x0.(nd) <- L.node f0;
      t.x1.(nd) <- L.node f1;
      t.x2.(nd) <- (if L.is_compl f0 then word_mask else 0);
      t.x3.(nd) <- (if L.is_compl f1 then word_mask else 0));
    t.n <- nd + 1
  done

let compile_aig ?hint net =
  let t = create_empty ?hint () in
  extend_aig t net;
  t

(* KLUT instruction selection: [`Stp] compiles each narrow LUT (k <= 8)
   into its selection cascade — the paper's engine — and falls back to
   a matrix pass for wide LUTs (cut-composed cones). [`Bitblast] is the
   baseline off-the-shelf treatment: every LUT is a matrix pass, i.e.
   per-bit fanin gather + table lookup, which is exactly what extracting
   individual bits of the LUT costs. *)
let extend_klut t ?cache ~style net =
  let cache = match cache with Some c -> c | None -> Cache.shared () in
  let n = K.num_nodes net in
  ensure_code t n;
  for nd = t.n to n - 1 do
    (if K.is_pi net nd then begin
       t.op.(nd) <- op_pi;
       t.x0.(nd) <- K.pi_index net nd
     end
     else if K.is_lut net nd then begin
       let fanins = K.fanins net nd in
       let k = Array.length fanins in
       if k > t.max_k then t.max_k <- k;
       let fo = pool_add_fanins t fanins in
       let narrow = match style with `Stp -> k <= 8 | `Bitblast -> false in
       if narrow then begin
         let c = Cache.get cache (K.func net nd) in
         t.op.(nd) <- op_cascade;
         t.x0.(nd) <- fo;
         t.x1.(nd) <- pool_add_cascade t c;
         t.x2.(nd) <- C.length c;
         t.x3.(nd) <- c.C.root;
         t.x4.(nd) <- k
       end
       else begin
         t.op.(nd) <- op_matrix;
         t.x0.(nd) <- fo;
         t.x1.(nd) <- k;
         t.x2.(nd) <- pool_add_tt t (T.to_words (K.func net nd))
       end
     end
     else t.op.(nd) <- op_const);
    t.n <- nd + 1
  done

let compile_klut ?hint ?cache ~style net =
  let t = create_empty ?hint () in
  extend_klut t ?cache ~style net;
  t

(* ---- block executor ---- *)

(* Run instructions [inst_lo, inst_hi) over pattern words [lo, hi),
   block-tiled: the outer loop takes [block_words]-wide word blocks, the
   inner loop streams the instruction arena over each block. Rows are
   caller-allocated ([tbl], indexed by node id) and only words in
   [lo, hi) of rows [inst_lo, inst_hi) are written, so disjoint word
   ranges can run in separate domains and instruction suffixes can be
   patched in isolation. No tail masking here — callers mask once per
   execution. *)
let run t pats (tbl : int array array) ~inst_lo ~inst_hi ~lo ~hi =
  let op = t.op
  and x0 = t.x0
  and x1 = t.x1
  and x2 = t.x2
  and x3 = t.x3
  and x4 = t.x4 in
  let fanin_pool = t.fanin_pool
  and tt_pool = t.tt_pool
  and casc_pool = t.casc_pool in
  (* Per-call scratch (per domain when sharded): cascade slots and fanin
     row bindings. Slot 0 is constant 0, slot 1 constant 1. *)
  let slots = Array.make (max 2 t.max_slots) 0 in
  slots.(1) <- word_mask;
  let rows = Array.make (max 1 t.max_k) [||] in
  let b_lo = ref lo in
  while !b_lo < hi do
    let blo = !b_lo in
    let bhi = min hi (blo + block_words) in
    for i = inst_lo to inst_hi - 1 do
      let o = Array.unsafe_get op i in
      if o = op_and then begin
        let s0 = tbl.(x0.(i)) and s1 = tbl.(x1.(i)) in
        let m0 = x2.(i) and m1 = x3.(i) in
        let out = tbl.(i) in
        for w = blo to bhi - 1 do
          Array.unsafe_set out w
            ((Array.unsafe_get s0 w lxor m0)
            land (Array.unsafe_get s1 w lxor m1))
        done
      end
      else if o = op_pi then begin
        let out = tbl.(i) and pi = x0.(i) in
        for w = blo to bhi - 1 do
          Array.unsafe_set out w (Patterns.word pats ~pi w)
        done
      end
      else if o = op_cascade then begin
        let out = tbl.(i) in
        let root = x3.(i) in
        if root = 0 then Array.fill out blo (bhi - blo) 0
        else if root = 1 then Array.fill out blo (bhi - blo) word_mask
        else begin
          let fo = x0.(i) and base = 3 * x1.(i) and ni = x2.(i) in
          let k = x4.(i) in
          for j = 0 to k - 1 do
            rows.(j) <- tbl.(fanin_pool.(fo + j))
          done;
          for w = blo to bhi - 1 do
            for ic = 0 to ni - 1 do
              let at = base + (3 * ic) in
              let x =
                Array.unsafe_get
                  (Array.unsafe_get rows (Array.unsafe_get casc_pool at))
                  w
              in
              Array.unsafe_set slots (ic + 2)
                ((x
                 land Array.unsafe_get slots
                        (Array.unsafe_get casc_pool (at + 1)))
                lor (lnot x
                    land Array.unsafe_get slots
                           (Array.unsafe_get casc_pool (at + 2))))
            done;
            Array.unsafe_set out w (Array.unsafe_get slots root land word_mask)
          done
        end
      end
      else if o = op_matrix then begin
        (* The one fanin-bit gather loop in the library: build the
           column index bit by bit and select the packed-table column.
           Both the baseline bit-blast treatment and the STP wide-LUT
           pass execute through here. *)
        let fo = x0.(i) and k = x1.(i) and tto = x2.(i) in
        for j = 0 to k - 1 do
          rows.(j) <- tbl.(fanin_pool.(fo + j))
        done;
        let out = tbl.(i) in
        for w = blo to bhi - 1 do
          let acc = ref 0 in
          let bit = ref 0 in
          while !bit < 32 do
            let idx = ref 0 in
            for j = k - 1 downto 0 do
              idx :=
                (!idx lsl 1)
                lor ((Array.unsafe_get (Array.unsafe_get rows j) w lsr !bit)
                    land 1)
            done;
            let c = !idx in
            acc :=
              !acc
              lor (((Array.unsafe_get tt_pool (tto + (c lsr 5)) lsr (c land 31))
                   land 1)
                  lsl !bit);
            incr bit
          done;
          Array.unsafe_set out w !acc
        done
      end
      else begin
        (* op_const *)
        let out = tbl.(i) in
        Array.fill out blo (bhi - blo) 0
      end
    done;
    b_lo := bhi
  done

(* Domain sharding at plan granularity: split the word range into
   contiguous per-domain sub-ranges; each domain runs the whole
   instruction stream (block-tiled) over its own slice, writing a
   disjoint word slice of every row — bit-identical to sequential. *)
let run_sharded ?(domains = 1) t pats tbl ~inst_lo ~inst_hi ~lo ~hi =
  if domains <= 1 || hi - lo <= block_words then
    run t pats tbl ~inst_lo ~inst_hi ~lo ~hi
  else
    Sutil.Par.for_ranges ~domains (hi - lo) (fun ~lo:l ~hi:h ->
        run t pats tbl ~inst_lo ~inst_hi ~lo:(lo + l) ~hi:(lo + h))

let alloc_table t nw = Array.init t.n (fun _ -> Array.make nw 0)

let execute ?(domains = 1) t pats =
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = alloc_table t nw in
  run_sharded ~domains t pats tbl ~inst_lo:0 ~inst_hi:t.n ~lo:0 ~hi:nw;
  let np = Patterns.num_patterns pats in
  Array.iter (fun s -> Signature.num_patterns_mask np s) tbl;
  tbl
