type table = int array array

let word_mask = 0xFFFFFFFF

let num_patterns_mask n sig_ =
  let tail = n land 31 in
  if tail <> 0 then begin
    let last = Array.length sig_ - 1 in
    sig_.(last) <- sig_.(last) land ((1 lsl tail) - 1)
  end

(* Monomorphic word loop: the polymorphic [=] walks the runtime
   representation tag-by-tag and shows up in sweep profiles — signature
   comparison is the inner loop of candidate filtering. *)
let equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n
    || (Array.unsafe_get a i = (Array.unsafe_get b i : int) && go (i + 1))
  in
  go 0

(* [a = ~b] over the first [num_patterns] bits, without materializing the
   complement signature. Tail bits of [a] are zero by invariant, so the
   last word compares against the masked complement. *)
let equal_complement ~num_patterns a b =
  let n = Array.length a in
  n = Array.length b
  && (n = 0
     ||
     let tail = num_patterns land 31 in
     let last = n - 1 in
     let rec go i =
       i >= last
       || (Array.unsafe_get a i
           = lnot (Array.unsafe_get b i) land word_mask
          && go (i + 1))
     in
     go 0
     &&
     let m = if tail = 0 then word_mask else (1 lsl tail) - 1 in
     a.(last) = lnot b.(last) land m)

let complement_of ~num_patterns s =
  let out = Array.map (fun w -> lnot w land word_mask) s in
  num_patterns_mask num_patterns out;
  out

let equal_up_to_compl ~num_patterns a b =
  equal a b || equal_complement ~num_patterns a b

let normalize ~num_patterns s =
  if s.(0) land 1 = 1 then (complement_of ~num_patterns s, true)
  else (Array.copy s, false)

let is_const0 s = Array.for_all (fun w -> w = 0) s

(* Bits at positions >= num_patterns are ignored, matching what the
   complement-then-mask formulation computed — without allocating the
   complement signature. *)
let is_const1 ~num_patterns s =
  let nw = Array.length s in
  if nw = 0 then true
  else begin
    let tail = num_patterns land 31 in
    let full = if tail = 0 then nw else nw - 1 in
    let ok = ref true in
    for w = 0 to full - 1 do
      if Array.unsafe_get s w <> word_mask then ok := false
    done;
    if tail <> 0 then begin
      let m = (1 lsl tail) - 1 in
      if s.(nw - 1) land m <> m then ok := false
    end;
    !ok
  end

(* FNV-style word fold; any deterministic function of the words works
   for bucketing, and this one allocates nothing. *)
let hash s =
  let h = ref 0x811C9DC5 in
  for i = 0 to Array.length s - 1 do
    h := (!h lxor Array.unsafe_get s i) * 0x01000193
  done;
  !h land max_int

let get s i = (s.(i lsr 5) lsr (i land 31)) land 1 = 1

let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let count_ones s = Array.fold_left (fun acc w -> acc + popcount32 w) 0 s

let to_tt ~num_vars s =
  let module T = Tt.Truth_table in
  let bits = 1 lsl num_vars in
  let need_words = max 1 (bits / 32) in
  if Array.length s < need_words then invalid_arg "Signature.to_tt";
  if bits < 32 then T.of_words num_vars [| s.(0) land ((1 lsl bits) - 1) |]
  else T.of_words num_vars (Array.sub s 0 need_words)
