(** Compiled simulation kernel plans — the unified engine behind every
    simulator in this library.

    A {e plan} is the network compiled once into a flat instruction
    arena (parallel int arrays, no per-node OCaml blocks): one
    instruction per node, in creation order (topological, so the arena
    is its own levelization). Three kernel shapes cover all four public
    simulators:

    - an {b AND kernel} — word AND with complement masks folded in
      (both AIG engines);
    - a {b compiled STP selection cascade} ({!Stp.Cascade}) — the
      paper's column-half selections, shared per distinct truth table
      through a bounded {!Cache} (STP engine, narrow LUTs);
    - a {b matrix pass} — per-bit fanin gather into a column index of
      the packed truth table. The baseline bit-blast LUT treatment and
      the STP wide-LUT fallback are the same gather loop, so the
      library has exactly one audited inner loop for it.

    The {e block executor} runs a plan over contiguous multi-word
    pattern blocks: instruction-major within each block so row slices
    stay cache-resident, sharded across domains at plan granularity
    (each domain executes the whole plan over its own word slice).
    Plans are growable in place — {!extend_aig} appends instructions
    for nodes created since the last compilation, and {!run} accepts
    instruction and word sub-ranges, which is what the sweep engine's
    incremental patching (append nodes / refresh stale trailing words)
    is built from. *)

(** Bounded cascade-compilation cache, shared across plans. *)
module Cache : sig
  type t

  val create : ?max_entries:int -> unit -> t
  (** FIFO-bounded: once [max_entries] (default 4096) distinct truth
      tables are resident, the oldest is evicted. *)

  val hits : t -> int
  (** LUT nodes whose cascade was found already compiled. *)

  val misses : t -> int
  (** Distinct truth tables actually compiled. *)

  val evictions : t -> int

  val length : t -> int
  (** Resident entries, always [<= max_entries]. *)

  val shared : unit -> t
  (** The process-wide cache (mutex-guarded): plan compilations that do
      not pass their own cache share this one, so repeated simulations —
      across passes, and across requests in a daemon — reuse each
      other's cascades. *)
end

type t
(** A compiled plan. Mutable (growable); not shared across domains
    while being extended. *)

val num_instructions : t -> int
(** Nodes compiled so far — instruction index = node id. *)

val compile_aig : ?hint:int -> Aig.Network.t -> t
val extend_aig : t -> Aig.Network.t -> unit
(** Append instructions for nodes [num_instructions t ..
    num_nodes net - 1]. The network must be the plan's own network
    grown append-only. *)

val compile_klut :
  ?hint:int ->
  ?cache:Cache.t ->
  style:[ `Stp | `Bitblast ] ->
  Klut.Network.t ->
  t
(** [`Stp]: narrow LUTs (k <= 8) become selection cascades, wide LUTs
    matrix passes. [`Bitblast]: every LUT is a matrix pass — the
    baseline per-bit extraction an off-the-shelf simulator does.
    [cache] defaults to {!Cache.shared}. *)

val execute : ?domains:int -> t -> Patterns.t -> Signature.table
(** Allocate a fresh table, run the whole plan over all pattern words
    ([domains] contiguous word shards), mask tails. Bit-identical for
    every [domains] value. *)

val run :
  t ->
  Patterns.t ->
  Signature.table ->
  inst_lo:int ->
  inst_hi:int ->
  lo:int ->
  hi:int ->
  unit
(** The raw block executor: instructions [inst_lo, inst_hi) over words
    [lo, hi) into caller-owned rows (each row of length [>= hi]). Reads
    fanin rows in the same word range, writes nothing else, applies no
    tail masking. *)

val run_sharded :
  ?domains:int ->
  t ->
  Patterns.t ->
  Signature.table ->
  inst_lo:int ->
  inst_hi:int ->
  lo:int ->
  hi:int ->
  unit
(** {!run} with the word range split into contiguous per-domain
    sub-ranges. *)

val alloc_table : t -> int -> Signature.table
(** [alloc_table t nw] — one zeroed row of [nw] words per instruction. *)
