module A = Aig.Network
module L = Aig.Lit
module K = Klut.Network
module T = Tt.Truth_table

let word_mask = 0xFFFFFFFF

(* One matrix pass for a LUT node over one 32-pattern block: gather the
   fanin bits into column indices and select the matrix columns. The
   matrix is the packed truth table [ttw]. Used for wide LUTs where the
   compiled selection cascade below would blow up. *)
let matrix_pass_word ttw (inputs : int array array) k w =
  let acc = ref 0 in
  let bit = ref 0 in
  while !bit < 32 do
    let idx = ref 0 in
    for j = k - 1 downto 0 do
      idx :=
        (!idx lsl 1)
        lor ((Array.unsafe_get (Array.unsafe_get inputs j) w lsr !bit) land 1)
    done;
    let i = !idx in
    acc :=
      !acc
      lor (((Array.unsafe_get ttw (i lsr 5) lsr (i land 31)) land 1) lsl !bit);
    incr bit
  done;
  !acc

(* The fast path: the STP of a logic matrix with a Boolean factor is a
   column-half selection (Logic_matrix.stp_bvec); applied word-parallel
   it reads [out = (x & M_hi) | (~x & M_lo)]. Compiling the cascade of
   selections once per LUT — sharing repeated sub-matrices — turns node
   simulation into a handful of word operations per 32 patterns. Slot 0
   holds constant 0, slot 1 constant 1; instruction i computes slot
   (i + 2) from a fanin word and two earlier slots. *)
type compiled = {
  sel_var : int array; (* fanin position whose word selects *)
  sel_hi : int array; (* slot of the var=1 cofactor matrix *)
  sel_lo : int array;
  root : int; (* slot holding the node's column selection *)
}

let compile_matrix tt =
  let memo = Hashtbl.create 16 in
  let sel_var = ref [] and sel_hi = ref [] and sel_lo = ref [] in
  let count = ref 2 in
  let rec slot_of tt k =
    if T.is_const0 tt then 0
    else if T.is_const1 tt then 1
    else
      match Hashtbl.find_opt memo tt with
      | Some s -> s
      | None ->
        (* Top factor = most significant remaining variable. *)
        let v = k - 1 in
        let hi = slot_of (drop_top (T.cofactor tt v true) v) v in
        let lo = slot_of (drop_top (T.cofactor tt v false) v) v in
        let s = !count in
        incr count;
        sel_var := v :: !sel_var;
        sel_hi := hi :: !sel_hi;
        sel_lo := lo :: !sel_lo;
        Hashtbl.replace memo tt s;
        s
  and drop_top tt v =
    (* The cofactor no longer depends on variable v; re-express it over
       v variables so memoization hits across widths. *)
    T.of_words v
      (let words = T.to_words tt in
       let bits = 1 lsl v in
       if bits >= 32 then Array.sub words 0 (bits / 32)
       else [| words.(0) land ((1 lsl bits) - 1) |])
  in
  let root = slot_of tt (T.num_vars tt) in
  {
    sel_var = Array.of_list (List.rev !sel_var);
    sel_hi = Array.of_list (List.rev !sel_hi);
    sel_lo = Array.of_list (List.rev !sel_lo);
    root;
  }

(* k-LUT networks reuse a small set of functions (a 6-LUT mapping of a
   big adder is mostly a handful of carry/sum shapes), so the selection
   cascade is compiled once per distinct truth table and shared across
   nodes — and, when the caller passes the cache around, across repeated
   simulations of the same network. *)
module Compile_cache = struct
  type t = {
    tbl : (T.t, compiled) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }
  let hits c = c.hits
  let misses c = c.misses

  let get c tt =
    match Hashtbl.find_opt c.tbl tt with
    | Some comp ->
      c.hits <- c.hits + 1;
      comp
    | None ->
      let comp = compile_matrix tt in
      c.misses <- c.misses + 1;
      Hashtbl.replace c.tbl tt comp;
      comp
end

let run_compiled c (inputs : int array array) ~lo ~hi out =
  let n = Array.length c.sel_var in
  if c.root = 0 then Array.fill out lo (hi - lo) 0
  else if c.root = 1 then Array.fill out lo (hi - lo) word_mask
  else begin
    let slots = Array.make (n + 2) 0 in
    slots.(1) <- word_mask;
    for w = lo to hi - 1 do
      for i = 0 to n - 1 do
        let x =
          Array.unsafe_get (Array.unsafe_get inputs (Array.unsafe_get c.sel_var i)) w
        in
        Array.unsafe_set slots (i + 2)
          ((x land Array.unsafe_get slots (Array.unsafe_get c.sel_hi i))
           lor (lnot x land Array.unsafe_get slots (Array.unsafe_get c.sel_lo i)));
      done;
      Array.unsafe_set out w (Array.unsafe_get slots c.root land word_mask)
    done
  end

(* What a LUT node executes per word range. Planned sequentially (the
   compile cache is a plain Hashtbl) so the parallel fill phase touches
   only immutable plans and disjoint signature slices. *)
type plan = Narrow of compiled | Wide of int array

let simulate_klut ?(domains = 1) ?cache net pats =
  let n = K.num_nodes net in
  let nw = max 1 (Patterns.num_words pats) in
  let cache =
    match cache with Some c -> c | None -> Compile_cache.create ()
  in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  let plans = Array.make n None in
  K.iter_nodes net (fun nd ->
      if K.is_pi net nd then tbl.(nd) <- Array.make nw 0
      else if K.is_lut net nd then begin
        tbl.(nd) <- Array.make nw 0;
        let k = Array.length (K.fanins net nd) in
        plans.(nd) <-
          Some
            (if k <= 8 then Narrow (Compile_cache.get cache (K.func net nd))
             else
               (* Wide LUT (cut-composed cones): column-index gather. *)
               Wide (T.to_words (K.func net nd)))
      end);
  let fill ~lo ~hi =
    K.iter_nodes net (fun nd ->
        if K.is_pi net nd then begin
          let row = tbl.(nd) and pi = K.pi_index net nd in
          for w = lo to hi - 1 do
            Array.unsafe_set row w (Patterns.word pats ~pi w)
          done
        end
        else
          match plans.(nd) with
          | None -> ()
          | Some plan ->
            let inputs = Array.map (fun f -> tbl.(f)) (K.fanins net nd) in
            let out = tbl.(nd) in
            (match plan with
            | Narrow c -> run_compiled c inputs ~lo ~hi out
            | Wide ttw ->
              let k = Array.length inputs in
              for w = lo to hi - 1 do
                Array.unsafe_set out w (matrix_pass_word ttw inputs k w)
              done))
  in
  Sutil.Par.for_ranges ~domains nw fill;
  let np = Patterns.num_patterns pats in
  Array.iter
    (fun s -> if Array.length s > 0 then Signature.num_patterns_mask np s)
    tbl;
  tbl

let simulate_aig ?(domains = 1) net pats =
  (* The 2-input structural matrix of an AND with complement flags folded
     in reduces to word logic; this engine matches the bitwise one and
     exists so Table I's T_A column can be measured for "STP" too. *)
  let n = A.num_nodes net in
  let nw = max 1 (Patterns.num_words pats) in
  let tbl = Array.make n [||] in
  tbl.(0) <- Array.make nw 0;
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ | A.And -> tbl.(nd) <- Array.make nw 0);
  let fill ~lo ~hi =
    A.iter_nodes net (fun nd ->
        match A.kind net nd with
        | A.Const -> ()
        | A.Pi i ->
          let row = tbl.(nd) in
          for w = lo to hi - 1 do
            Array.unsafe_set row w (Patterns.word pats ~pi:i w)
          done
        | A.And ->
          let f0 = A.fanin0 net nd and f1 = A.fanin1 net nd in
          let s0 = tbl.(L.node f0) and s1 = tbl.(L.node f1) in
          let m0 = if L.is_compl f0 then word_mask else 0 in
          let m1 = if L.is_compl f1 then word_mask else 0 in
          let out = tbl.(nd) in
          for w = lo to hi - 1 do
            Array.unsafe_set out w
              ((Array.unsafe_get s0 w lxor m0) land (Array.unsafe_get s1 w lxor m1))
          done)
  in
  Sutil.Par.for_ranges ~domains nw fill;
  let np = Patterns.num_patterns pats in
  Array.iter
    (fun s -> if Array.length s > 0 then Signature.num_patterns_mask np s)
    tbl;
  tbl

let floor_log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let simulate_specified ?domains net pats ~targets =
  let limit = min 16 (max 2 (floor_log2 (max 2 (Patterns.num_patterns pats)))) in
  let { Circuit_cut.network = cut_net; node_map; roots = _ } =
    Circuit_cut.cut net ~limit ~targets
  in
  let tbl = simulate_klut ?domains cut_net pats in
  List.map
    (fun t ->
      let mapped = node_map.(t) in
      assert (mapped >= 0);
      (t, tbl.(mapped)))
    targets
