module T = Tt.Truth_table

(* The STP engine, as thin wrappers over the compiled kernel plan
   ({!Kernel}): narrow LUTs (k <= 8) run as compiled selection cascades
   ({!Stp.Cascade}), wide LUTs (cut-composed cones) as matrix passes.
   The cascade compilation cache is the kernel's bounded one; by default
   the process-wide shared instance, so repeated simulations — across
   passes, and across daemon requests — reuse each other's cascades. *)

module Compile_cache = struct
  type t = Kernel.Cache.t

  let create ?max_entries () = Kernel.Cache.create ?max_entries ()
  let hits = Kernel.Cache.hits
  let misses = Kernel.Cache.misses
  let evictions = Kernel.Cache.evictions
  let length = Kernel.Cache.length
end

let simulate_klut ?(domains = 1) ?cache net pats =
  Kernel.execute ~domains (Kernel.compile_klut ?cache ~style:`Stp net) pats

let simulate_aig ?(domains = 1) net pats =
  (* The 2-input structural matrix of an AND with complement flags folded
     in reduces to word logic; this engine matches the bitwise one and
     exists so Table I's T_A column can be measured for "STP" too. *)
  Kernel.execute ~domains (Kernel.compile_aig net) pats

let floor_log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let simulate_specified ?domains net pats ~targets =
  let limit = min 16 (max 2 (floor_log2 (max 2 (Patterns.num_patterns pats)))) in
  let { Circuit_cut.network = cut_net; node_map; roots = _ } =
    Circuit_cut.cut net ~limit ~targets
  in
  let tbl = simulate_klut ?domains cut_net pats in
  List.map
    (fun t ->
      let mapped = node_map.(t) in
      assert (mapped >= 0);
      (t, tbl.(mapped)))
    targets
