(** Bit-parallel reference simulators (the paper's baseline).

    [simulate_aig] is the standard word-parallel AIG simulation every
    modern package has: one AND/XOR word operation per node per word —
    Table I's "Mockturtle [T_A]" column.

    [simulate_klut] is the way an off-the-shelf bitwise simulator handles
    k-LUT networks ("most simulators are limited to extracting individual
    bits of the LUT and simulating them separately"): for every pattern it
    pulls one bit out of each fanin signature, forms the LUT index and
    looks the value up — Table I's "Mockturtle [T_L]" column.

    Both engines are thin wrappers over the compiled kernel plan
    ({!Kernel}): the AIG path compiles to AND kernels, the k-LUT path to
    matrix passes, executed block-tiled by the shared executor.

    Both engines accept [?domains]: with [n > 1] the packed pattern words
    are split into [n] contiguous ranges and each range is simulated in
    its own domain (each domain writes a disjoint word slice of every
    node's signature), so the tables are bit-identical to the sequential
    run. Default 1 = sequential. *)

val simulate_aig : ?domains:int -> Aig.Network.t -> Patterns.t -> Signature.table
(** Signature per node id. PIs take their pattern rows; constant node is
    all zeros; complemented edges are free word inversions. *)

val simulate_klut : ?domains:int -> Klut.Network.t -> Patterns.t -> Signature.table

val po_signature :
  Signature.table -> num_patterns:int -> lit:Aig.Lit.t -> int array
(** Output-literal view of an AIG signature table. *)
