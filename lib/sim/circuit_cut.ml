module K = Klut.Network
module T = Tt.Truth_table

type result = {
  network : K.t;
  node_map : int array;
  roots : int list;
}

(* Grow the cone of [root] downwards: a fanin joins the cone when it is a
   LUT, not itself a requested boundary, feeds only this cone (fanout 1),
   and the leaf budget allows it. Returns the cone's interior nodes
   (including the root) and its leaves, both ascending. *)
let grow_cone net ~limit ~is_target root =
  let interior = Hashtbl.create 8 in
  Hashtbl.replace interior root ();
  let leaves = Hashtbl.create 8 in
  Array.iter (fun f -> Hashtbl.replace leaves f ()) (K.fanins net root);
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates = Hashtbl.fold (fun l () acc -> l :: acc) leaves [] in
    List.iter
      (fun l ->
        if
          K.is_lut net l && (not (is_target l)) && K.fanout_count net l = 1
        then begin
          (* Tentatively expand l: its fanins replace it among leaves. *)
          let added =
            Array.to_list (K.fanins net l)
            |> List.filter (fun f ->
                   (not (Hashtbl.mem leaves f)) && not (Hashtbl.mem interior f))
          in
          let new_count = Hashtbl.length leaves - 1 + List.length added in
          if new_count <= limit && new_count >= 1 then begin
            Hashtbl.remove leaves l;
            List.iter (fun f -> Hashtbl.replace leaves f ()) added;
            Hashtbl.replace interior l ();
            progress := true
          end
        end)
      candidates
  done;
  let sorted tbl =
    List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
  in
  (sorted interior, sorted leaves)

(* Function of the cone root over the cone leaves, by STP composition of
   the member logic matrices in topological order. *)
let cone_function net interior leaves root =
  let k = List.length leaves in
  if k > 20 then invalid_arg "Circuit_cut: cone with more than 20 leaves";
  let tts = Hashtbl.create 8 in
  List.iteri (fun i l -> Hashtbl.replace tts l (T.nth_var k i)) leaves;
  List.iter
    (fun nd ->
      let fanins = K.fanins net nd in
      let args = Array.map (fun f ->
          match Hashtbl.find_opt tts f with
          | Some t -> t
          | None ->
            (* Fanin outside leaves: only the constant node can occur. *)
            assert (f = 0);
            T.const0 k)
          fanins
      in
      Hashtbl.replace tts nd (T.compose (K.func net nd) args))
    interior;
  Hashtbl.find tts root

let cut net ~limit ~targets =
  if limit < 1 then invalid_arg "Circuit_cut.cut: limit must be positive";
  let n = K.num_nodes net in
  let is_target =
    let mark = Array.make n false in
    List.iter
      (fun t ->
        if t < 0 || t >= n then invalid_arg "Circuit_cut.cut: bad target";
        mark.(t) <- true)
      targets;
    fun nd -> mark.(nd)
  in
  (* Collect roots: targets plus every LUT leaf of a grown cone,
     recursively. Worklist over original ids; record cones. *)
  let cones = Hashtbl.create 64 in (* root -> interior, leaves *)
  let pending = Queue.create () in
  let queued = Array.make n false in
  let enqueue nd =
    if K.is_lut net nd && not queued.(nd) then begin
      queued.(nd) <- true;
      Queue.add nd pending
    end
  in
  List.iter (fun t -> enqueue t) targets;
  while not (Queue.is_empty pending) do
    let root = Queue.pop pending in
    let interior, leaves = grow_cone net ~limit ~is_target root in
    Hashtbl.replace cones root (interior, leaves);
    List.iter enqueue leaves
  done;
  (* Build the cut network in topological order of the original ids. *)
  let out = K.create ~capacity:n () in
  let node_map = Array.make n (-1) in
  node_map.(0) <- 0;
  for i = 0 to K.num_pis net - 1 do
    node_map.(K.pi_node net i) <- K.add_pi out
  done;
  let roots =
    Hashtbl.fold (fun r _ acc -> r :: acc) cones [] |> List.sort Int.compare
  in
  List.iter
    (fun root ->
      let interior, leaves = Hashtbl.find cones root in
      let f = cone_function net interior leaves root in
      let fanins =
        Array.of_list
          (List.map
             (fun l ->
               assert (node_map.(l) >= 0);
               node_map.(l))
             leaves)
      in
      node_map.(root) <- K.add_lut out fanins f)
    roots;
  { network = out; node_map; roots }
