(** Node signatures produced by the simulators.

    A signature table holds one packed bit sequence per node (the node's
    value under each pattern). Equivalence-class computation needs
    signature comparison up to complementation, so normalization helpers
    live here too. *)

type table = int array array
(** [table.(node).(w)] — 32 patterns per word, tail bits zero. *)

val num_patterns_mask : int -> int array -> unit
(** [num_patterns_mask n sig_] clears bits at positions >= [n] in the last
    word (in place). *)

val equal : int array -> int array -> bool
(** Word-by-word comparison (monomorphic — avoids the polymorphic [=]
    dispatch in the sweeper's candidate-filter inner loop). *)

val complement_of : num_patterns:int -> int array -> int array

val equal_complement : num_patterns:int -> int array -> int array -> bool
(** [equal_complement ~num_patterns a b] is [equal a (complement_of
    ~num_patterns b)] without allocating the complement. *)

val equal_up_to_compl : num_patterns:int -> int array -> int array -> bool

val normalize : num_patterns:int -> int array -> int array * bool
(** Canonical representative of {sig, ~sig}: complements so bit 0 is 0.
    Returns the normalized copy and whether complementation happened. *)

val is_const0 : int array -> bool
val is_const1 : num_patterns:int -> int array -> bool

val hash : int array -> int

val get : int array -> int -> bool
(** Bit accessor. *)

val count_ones : int array -> int

val to_tt : num_vars:int -> int array -> Tt.Truth_table.t
(** Reinterprets an exhaustive-window signature as a truth table. The
    signature must span exactly [2^num_vars] patterns. *)
