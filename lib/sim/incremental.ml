(* Incremental simulation as kernel plan patches: the network is
   compiled once ({!Kernel.compile_aig}) and pattern appends re-execute
   the whole plan over only the stale trailing words — starting at the
   word containing the first new pattern, whose old tail bits were
   masked off and are now live. *)

type t = {
  plan : Kernel.t;
  pats : Patterns.t;
  mutable sigs : int array array; (* per node; exactly the needed words *)
  mutable valid_np : int; (* patterns covered by the current rows *)
  mutable recomputed : int;
}

let words_for np = max 1 ((np + 31) / 32)

(* Arrays are kept at exactly the needed length so [signatures] is
   directly comparable with the full simulators' tables; growth happens
   once per 32 appended patterns. *)
let ensure_capacity t need =
  if Array.length t.sigs.(0) <> need then
    t.sigs <-
      Array.map
        (fun old ->
          let fresh = Array.make need 0 in
          Array.blit old 0 fresh 0 (min need (Array.length old));
          fresh)
        t.sigs

let create net pats =
  let plan = Kernel.compile_aig net in
  let np = Patterns.num_patterns pats in
  let nw = words_for np in
  let sigs = Kernel.alloc_table plan nw in
  Kernel.run plan pats sigs ~inst_lo:0
    ~inst_hi:(Kernel.num_instructions plan)
    ~lo:0 ~hi:nw;
  Array.iter (fun s -> Signature.num_patterns_mask np s) sigs;
  { plan; pats; sigs; valid_np = np; recomputed = 0 }

let num_patterns t = Patterns.num_patterns t.pats

let add_pattern t x = Patterns.add_pattern t.pats x

let refresh t =
  let np = Patterns.num_patterns t.pats in
  if np <> t.valid_np then begin
    let nw = words_for np in
    ensure_capacity t nw;
    (* Recompute from the word containing the first new pattern. *)
    let from_w = if t.valid_np = 0 then 0 else t.valid_np lsr 5 in
    Kernel.run t.plan t.pats t.sigs ~inst_lo:0
      ~inst_hi:(Kernel.num_instructions t.plan)
      ~lo:from_w ~hi:nw;
    t.recomputed <-
      t.recomputed + (Kernel.num_instructions t.plan * (nw - from_w));
    Array.iter (fun s -> Signature.num_patterns_mask np s) t.sigs;
    t.valid_np <- np
  end

let signature t nd =
  refresh t;
  t.sigs.(nd)

let signatures t =
  refresh t;
  t.sigs

let words_recomputed t = t.recomputed
