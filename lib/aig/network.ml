module Vec = Sutil.Vec

type node_kind = Const | Pi of int | And

type t = {
  fan0 : Vec.t; (* per node: fanin0 literal; -1 for PI, -2 for const *)
  fan1 : Vec.t; (* per node: fanin1 literal; PI index for PIs *)
  lvl : Vec.t;
  fanouts : Vec.t; (* reference counts, updated on add *)
  pis : Vec.t; (* node ids of PIs in creation order *)
  outs : Vec.t; (* PO driver literals *)
  strash : (int, int) Hashtbl.t; (* (f0, f1) packed -> node *)
}

let pi_tag = -1
let const_tag = -2

let create ?(capacity = 1024) () =
  let t =
    {
      fan0 = Vec.create ~capacity ();
      fan1 = Vec.create ~capacity ();
      lvl = Vec.create ~capacity ();
      fanouts = Vec.create ~capacity ();
      pis = Vec.create ();
      outs = Vec.create ();
      strash = Hashtbl.create (max capacity 64);
    }
  in
  (* Node 0: constant false. *)
  Vec.push t.fan0 const_tag;
  Vec.push t.fan1 0;
  Vec.push t.lvl 0;
  Vec.push t.fanouts 0;
  t

let num_nodes t = Vec.length t.fan0
let num_pis t = Vec.length t.pis
let num_pos t = Vec.length t.outs
let num_ands t = num_nodes t - num_pis t - 1

let kind t n =
  match Vec.get t.fan0 n with
  | x when x = const_tag -> Const
  | x when x = pi_tag -> Pi (Vec.get t.fan1 n)
  | _ -> And

let is_and t n = n < num_nodes t && Vec.get t.fan0 n >= 0
let is_pi t n = n < num_nodes t && Vec.get t.fan0 n = pi_tag

let fanin0 t n =
  let f = Vec.get t.fan0 n in
  if f < 0 then invalid_arg "Network.fanin0: not an AND node";
  f

let fanin1 t n =
  if Vec.get t.fan0 n < 0 then invalid_arg "Network.fanin1: not an AND node";
  Vec.get t.fan1 n

let pi_node t i = Vec.get t.pis i
let po t i = Vec.get t.outs i
let pos t = Vec.to_array t.outs
let level t n = Vec.get t.lvl n

let add_pi t =
  let n = num_nodes t in
  Vec.push t.fan0 pi_tag;
  Vec.push t.fan1 (num_pis t);
  Vec.push t.lvl 0;
  Vec.push t.fanouts 0;
  Vec.push t.pis n;
  Lit.of_node n false

(* Strash key: fanins fit in 30 bits each on 64-bit OCaml for networks of
   < 2^29 nodes, far beyond anything here. *)
let key f0 f1 = (f0 lsl 30) lor f1

let order f0 f1 = if f0 > f1 then (f1, f0) else (f0, f1)

let incr_fanout t n = Vec.set t.fanouts n (Vec.get t.fanouts n + 1)

let find_and t f0 f1 =
  let f0, f1 = order f0 f1 in
  if f0 = Lit.false_ then Some Lit.false_
  else if f0 = Lit.true_ then Some f1
  else if f0 = f1 then Some f0
  else if f0 = Lit.not_ f1 then Some Lit.false_
  else
    match Hashtbl.find_opt t.strash (key f0 f1) with
    | Some n -> Some (Lit.of_node n false)
    | None -> None

let add_and t f0 f1 =
  let f0, f1 = order f0 f1 in
  match find_and t f0 f1 with
  | Some l -> l
  | None ->
    let n = num_nodes t in
    Vec.push t.fan0 f0;
    Vec.push t.fan1 f1;
    Vec.push t.lvl (1 + max (Vec.get t.lvl (Lit.node f0)) (Vec.get t.lvl (Lit.node f1)));
    Vec.push t.fanouts 0;
    incr_fanout t (Lit.node f0);
    incr_fanout t (Lit.node f1);
    Hashtbl.replace t.strash (key f0 f1) n;
    Lit.of_node n false

let add_or t a b = Lit.not_ (add_and t (Lit.not_ a) (Lit.not_ b))

let add_xor t a b =
  (* a xor b = !(a & b) & !(!a & !b) *)
  let both = add_and t a b in
  let neither = add_and t (Lit.not_ a) (Lit.not_ b) in
  add_and t (Lit.not_ both) (Lit.not_ neither)

let add_mux t s a b =
  let sa = add_and t s a in
  let nsb = add_and t (Lit.not_ s) b in
  add_or t sa nsb

let add_maj t a b c =
  let ab = add_and t a b in
  let bc = add_and t b c in
  let ca = add_and t c a in
  add_or t (add_or t ab bc) ca

let add_po t l =
  Vec.push t.outs l;
  incr_fanout t (Lit.node l);
  num_pos t - 1

let fanout_count t n = Vec.get t.fanouts n

let iter_nodes t f =
  for n = 0 to num_nodes t - 1 do
    f n
  done

let iter_ands t f =
  for n = 0 to num_nodes t - 1 do
    if Vec.get t.fan0 n >= 0 then f n
  done

let depth t =
  let d = ref 0 in
  Sutil.Vec.iter (fun l -> d := max !d (level t (Lit.node l))) t.outs;
  !d

let rebuild ?map t =
  let n = num_nodes t in
  let map = match map with Some m -> m | None -> Array.make n (-1) in
  if Array.length map <> n then invalid_arg "Network.rebuild: map length";
  (* Resolve replacement chains. Replacements must point strictly
     backwards in topological order, which every sweeper here guarantees
     (a node merges onto an earlier representative). *)
  let rec resolve l =
    let nd = Lit.node l in
    let r = map.(nd) in
    if r < 0 then l
    else begin
      if Lit.node r >= nd then
        invalid_arg "Network.rebuild: replacement does not point backwards";
      resolve (Lit.xor_compl r (Lit.is_compl l))
    end
  in
  let fresh = create ~capacity:n () in
  (* Mark reachable old nodes from POs through resolved literals. *)
  let reach = Array.make n false in
  let stack = Vec.create () in
  let push_lit l =
    let nd = Lit.node (resolve l) in
    if not reach.(nd) then begin
      reach.(nd) <- true;
      Vec.push stack nd
    end
  in
  Sutil.Vec.iter push_lit t.outs;
  while Vec.length stack > 0 do
    let nd = Vec.pop stack in
    if Vec.get t.fan0 nd >= 0 then begin
      push_lit (Vec.get t.fan0 nd);
      push_lit (Vec.get t.fan1 nd)
    end
  done;
  (* Translate in topological (id) order. PIs are always kept so that PI
     indices line up between old and new networks. *)
  let out = Array.make n (-1) in
  out.(0) <- Lit.false_;
  let tr l =
    let r = resolve l in
    let m = out.(Lit.node r) in
    assert (m >= 0);
    Lit.xor_compl m (Lit.is_compl r)
  in
  for nd = 0 to n - 1 do
    match kind t nd with
    | Const -> ()
    | Pi _ -> out.(nd) <- add_pi fresh
    | And ->
      if reach.(nd) && map.(nd) < 0 then
        out.(nd) <- add_and fresh (tr (Vec.get t.fan0 nd)) (tr (Vec.get t.fan1 nd))
  done;
  Sutil.Vec.iter (fun l -> ignore (add_po fresh (tr l))) t.outs;
  (* Final translation including replaced nodes, for callers that track
     old literals. *)
  let final = Array.init n (fun nd ->
      let r = resolve (Lit.of_node nd false) in
      let m = out.(Lit.node r) in
      if m < 0 then -1 else Lit.xor_compl m (Lit.is_compl r))
  in
  (fresh, final)

let cleanup t = rebuild t

let pp_stats ppf t =
  Format.fprintf ppf "pi=%d po=%d and=%d lev=%d" (num_pis t) (num_pos t)
    (num_ands t) (depth t)

let stats_json t =
  Obs.Json.Obj
    [
      ("pis", Obs.Json.Int (num_pis t));
      ("pos", Obs.Json.Int (num_pos t));
      ("ands", Obs.Json.Int (num_ands t));
      ("depth", Obs.Json.Int (depth t));
    ]
