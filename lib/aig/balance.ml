

(* Collect the leaves of the maximal AND tree rooted at [nd]: descend
   through positive AND edges whose node has a single fanout (so the
   collapse duplicates nothing). *)
let collect_leaves net nd =
  let leaves = ref [] in
  let rec go l root =
    let n = Lit.node l in
    if
      (not (Lit.is_compl l))
      && Network.is_and net n
      && (root || Network.fanout_count net n = 1)
    then begin
      go (Network.fanin0 net n) false;
      go (Network.fanin1 net n) false
    end
    else leaves := l :: !leaves
  in
  go (Lit.of_node nd false) true;
  !leaves

let balance net =
  let n = Network.num_nodes net in
  let fresh = Network.create ~capacity:n () in
  let map = Array.make n (-1) in
  map.(0) <- Lit.false_;
  let tr l =
    let m = map.(Lit.node l) in
    assert (m >= 0);
    Lit.xor_compl m (Lit.is_compl l)
  in
  (* Nodes inside collapsed trees never get their own translation unless
     some other fanout needs them; translate on demand. *)
  let rec translate nd =
    if map.(nd) >= 0 then map.(nd)
    else begin
      assert (Network.is_and net nd);
      let leaves = collect_leaves net nd in
      let translated =
        List.map
          (fun l -> Lit.xor_compl (translate (Lit.node l)) (Lit.is_compl l))
          leaves
      in
      (* Balanced n-ary AND: repeatedly pair the two shallowest
         operands (Huffman-style on level). *)
      let by_level =
        List.sort
          (fun a b ->
            Int.compare
              (Network.level fresh (Lit.node a))
              (Network.level fresh (Lit.node b)))
          translated
      in
      let rec reduce = function
        | [] -> Lit.true_
        | [ x ] -> x
        | x :: y :: rest ->
          let one = Network.add_and fresh x y in
          (* Re-insert keeping the level order. *)
          let rec insert l = function
            | [] -> [ l ]
            | h :: t ->
              if Network.level fresh (Lit.node l) <= Network.level fresh (Lit.node h)
              then l :: h :: t
              else h :: insert l t
          in
          reduce (insert one rest)
      in
      let result = reduce by_level in
      map.(nd) <- result;
      result
    end
  in
  for i = 0 to Network.num_pis net - 1 do
    map.(Network.pi_node net i) <- Network.add_pi fresh
  done;
  Array.iter
    (fun l -> ignore (translate (Lit.node l)))
    (Network.pos net);
  Array.iter (fun l -> ignore (Network.add_po fresh (tr l))) (Network.pos net);
  let cleaned, trans = Network.cleanup fresh in
  let final =
    Array.map (fun m -> if m < 0 then -1
                else
                  let t = trans.(Lit.node m) in
                  if t < 0 then -1 else Lit.xor_compl t (Lit.is_compl m))
      map
  in
  (cleaned, final)
