(** And-Inverter Graphs.

    Nodes are dense integers in creation order, which is also a valid
    topological order (fanins always precede their fanouts). Node 0 is the
    constant-false node; primary inputs and AND nodes follow in any
    interleaving. Edges are {!Lit.t} values, so inverters are free.

    [add_and] performs constant folding, unit rules, and structural
    hashing: two calls with the same (canonically ordered) fanin pair
    return the same node. Networks are append-only — simplification
    produces a new network (see {!rebuild} and the sweepers), which keeps
    every index array in the simulators and sweepers trivially valid. *)

type t

type node_kind = Const | Pi of int  (** PI index *) | And

val create : ?capacity:int -> unit -> t

(** {1 Construction} *)

val add_pi : t -> Lit.t
(** A fresh primary input, returned as a positive literal. *)

val add_and : t -> Lit.t -> Lit.t -> Lit.t
val add_or : t -> Lit.t -> Lit.t -> Lit.t
val add_xor : t -> Lit.t -> Lit.t -> Lit.t
(** XOR costs 3 AND nodes. *)

val add_mux : t -> Lit.t -> Lit.t -> Lit.t -> Lit.t
(** [add_mux t s a b] is [if s then a else b]. *)

val add_maj : t -> Lit.t -> Lit.t -> Lit.t -> Lit.t
(** Majority of three. *)

val add_po : t -> Lit.t -> int
(** Registers a primary output; returns its index. *)

(** {1 Structure} *)

val num_nodes : t -> int
(** Total nodes including the constant node. Valid node ids are
    [0 .. num_nodes - 1]. *)

val num_pis : t -> int
val num_pos : t -> int
val num_ands : t -> int

val kind : t -> int -> node_kind
val is_and : t -> int -> bool
val is_pi : t -> int -> bool

val fanin0 : t -> int -> Lit.t
(** Fanin of an AND node. Raises [Invalid_argument] for non-AND nodes. *)

val fanin1 : t -> int -> Lit.t

val pi_node : t -> int -> int
(** [pi_node t i] is the node id of PI [i]. *)

val po : t -> int -> Lit.t
(** Driver literal of output [i]. *)

val pos : t -> Lit.t array

val level : t -> int -> int
(** Logic depth: 0 for constants and PIs. *)

val depth : t -> int
(** Maximum level over all PO drivers. *)

val fanout_count : t -> int -> int
(** Number of AND fanin slots plus PO slots referring to the node. *)

val iter_ands : t -> (int -> unit) -> unit
(** All AND nodes in topological order. *)

val iter_nodes : t -> (int -> unit) -> unit
(** All nodes (constant, PIs, ANDs) in topological order. *)

val find_and : t -> Lit.t -> Lit.t -> Lit.t option
(** Structural-hash lookup without creating: the literal an [add_and]
    call would return if the node (or a simplification) already exists. *)

(** {1 Whole-network operations} *)

val rebuild : ?map:Lit.t array -> t -> t * Lit.t array
(** [rebuild ~map t] copies [t] into a fresh network while applying node
    replacements and dropping logic no longer reachable from the POs.
    [map.(n)] is a replacement literal {e in the old network} whose node
    must precede [n] topologically, or [-1] to keep [n]; chains of
    replacements are followed. Omitting [map] performs a plain dead-node
    cleanup. Returns the new network and the old-node -> new-literal
    translation ([-1] for dropped nodes). PIs are always kept, preserving
    PI indices. *)

val cleanup : t -> t * Lit.t array
(** [rebuild] without replacements: drops dead nodes. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line [pi/po/and/level] summary. *)

val stats_json : t -> Obs.Json.t
(** The same summary as a flat object ([pis]/[pos]/[ands]/[depth]) —
    the record the pass manager embeds per pipeline stage. *)
