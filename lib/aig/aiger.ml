exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let fail_at line fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

(* Robustness-test hook: randomly truncate the raw text before parsing.
   The contract is that the parser then raises Parse_error (or succeeds
   on a still-well-formed prefix) — never anything else. *)
let fault_truncate = Obs.Fault.register "parse.truncate"

(* Header fields are counts/indices; cap them well below array-size
   limits so a malicious header can neither overflow sums nor provoke
   [Array.make] into Invalid_argument/Out_of_memory. *)
let max_header_field = 1 lsl 30

let read_gen ~allow_latches text =
  let text = Obs.Fault.truncate fault_truncate text in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) ->
           String.trim l <> ""
           && not (String.length l > 0 && l.[0] = 'c'))
  in
  match lines with
  | [] -> fail "line 1: empty file"
  | (hline, header) :: rest ->
    let ints_of_line (ln, line) =
      String.split_on_char ' ' line
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some v -> v
             | None -> fail_at ln "not an integer: %s" s)
    in
    let m, i, l, o, a =
      match String.split_on_char ' ' (String.trim header) with
      | [ "aag"; m; i; l; o; a ] ->
        let p s =
          match int_of_string_opt s with
          | Some v when v >= 0 && v <= max_header_field -> v
          | Some v -> fail_at hline "header field out of range: %d" v
          | None -> fail_at hline "bad header field %s" s
        in
        (p m, p i, p l, p o, p a)
      | _ -> fail_at hline "bad header: %s" header
    in
    if l <> 0 && not allow_latches then fail_at hline "latches are not supported";
    if m > i + l + a then
      fail_at hline "header declares %d variables but only %d definitions" m
        (i + l + a);
    let expected_lines = i + l + o + a in
    let body = List.filteri (fun idx _ -> idx < expected_lines) rest in
    if List.length body < expected_lines then fail "truncated file";
    let net = Network.create ~capacity:(m + 1) () in
    (* node_of_var.(v) = our node id for AIGER variable v *)
    let node_of_var = Array.make (m + 1) (-1) in
    node_of_var.(0) <- 0;
    (* node_of_var entries: -1 undefined; >= 0 a plain node id; <= -2 a
       definition that structural hashing collapsed to the literal
       [-(entry + 2)]. *)
    let tr ln lit =
      let v = lit lsr 1 in
      (* negative [lit] also lands here: lsr maps it above [m] *)
      if v > m then fail_at ln "literal %d out of range" lit;
      let n = node_of_var.(v) in
      if n = -1 then fail_at ln "forward or undefined reference to variable %d" v
      else if n <= -2 then Lit.xor_compl (-(n + 2)) (lit land 1 = 1)
      else Lit.of_node n (lit land 1 = 1)
    in
    let rec take k xs =
      if k = 0 then ([], xs)
      else
        match xs with
        | [] -> fail "truncated"
        | x :: rest ->
          let a, b = take (k - 1) rest in
          (x :: a, b)
    in
    let inputs, rest1 = take i body in
    let latches, rest2 = take l rest1 in
    let outputs, ands = take o rest2 in
    let define_pi ln lit =
      if lit land 1 = 1 || lit <= 0 || lit lsr 1 > m then
        fail_at ln "bad input literal %d" lit;
      if node_of_var.(lit lsr 1) <> -1 then fail_at ln "redefinition of %d" lit;
      node_of_var.(lit lsr 1) <- Lit.node (Network.add_pi net)
    in
    List.iter
      (fun ((ln, raw) as line) ->
        match ints_of_line line with
        | [ lit ] -> define_pi ln lit
        | _ -> fail_at ln "bad input line: %s" raw)
      inputs;
    (* Latch outputs become extra PIs; next-state literals are collected
       and emitted as extra POs after the real ones. *)
    let next_states =
      List.map
        (fun ((ln, raw) as line) ->
          match ints_of_line line with
          | [ q; next ] ->
            define_pi ln q;
            (ln, next)
          | _ -> fail_at ln "bad latch line: %s" raw)
        latches
    in
    List.iter
      (fun ((ln, raw) as line) ->
        match ints_of_line line with
        | [ out; f0; f1 ] ->
          if out land 1 = 1 || out <= 0 || out lsr 1 > m then
            fail_at ln "bad AND literal %d" out;
          let lit = Network.add_and net (tr ln f0) (tr ln f1) in
          (* Structural hashing may simplify; record whatever literal the
             definition resolves to. A complemented result is legal. *)
          if node_of_var.(out lsr 1) >= 0 then fail_at ln "redefinition of %d" out;
          if Lit.is_compl lit then node_of_var.(out lsr 1) <- -2 - lit
          else node_of_var.(out lsr 1) <- Lit.node lit
        | _ -> fail_at ln "bad AND line: %s" raw)
      ands;
    List.iter
      (fun ((ln, raw) as line) ->
        match ints_of_line line with
        | [ lit ] -> ignore (Network.add_po net (tr ln lit))
        | _ -> fail_at ln "bad output line: %s" raw)
      outputs;
    List.iter
      (fun (ln, next) -> ignore (Network.add_po net (tr ln next)))
      next_states;
    (net, l)

let read text = fst (read_gen ~allow_latches:false text)
let read_sequential text = read_gen ~allow_latches:true text

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read (really_input_string ic (in_channel_length ic)))

let read_sequential_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read_sequential (really_input_string ic (in_channel_length ic)))

let write net =
  let buf = Buffer.create 4096 in
  let m = Network.num_nodes net - 1 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (Network.num_pis net)
       (Network.num_pos net) (Network.num_ands net));
  for i = 0 to Network.num_pis net - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (Lit.of_node (Network.pi_node net i) false))
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" (l : Lit.t)))
    (Network.pos net);
  Network.iter_ands net (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n"
           (Lit.of_node n false)
           (Network.fanin0 net n) (Network.fanin1 net n)));
  Buffer.contents buf

let write_file path net =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write net))
