(** Standalone DRUP proof checker: reverse-unit-propagation replay of a
    solver's clausal proof stream, plus model validation for [Sat]
    answers.

    {b Trusted base.} This module shares {e no} propagation code with
    {!Solver} — it owns its clause table, watch lists, assignment array
    and trail, and implements unit propagation from scratch. The point
    of certification is that a soundness bug in the solver's CDCL
    machinery cannot also hide here: to accept a wrong [Unsat] both the
    solver's search {e and} this checker's ~200 lines of propagation
    would have to fail in compatible ways. What remains trusted is:

    - this module's own unit propagation and clause bookkeeping;
    - the shared literal encoding ([2*var], [+1] for negation) and the
      {!Sutil.Vec} growable-array container (data structure, not
      deduction);
    - the OCaml runtime and the caller wiring the stream faithfully.

    The checker is {e online}: {!attach} it to a solver and every
    learnt clause is RUP-verified against the checker's own database
    the moment it is emitted. A derivation that fails the check is
    rejected (counted, never added), so later certifications cannot
    silently lean on it. Deletions that would erase the reason of a
    root-level propagation are skipped — forgetting a reason clause is
    the classic unsoundness of naive DRUP checkers.

    Verdict discipline: [Ok] means the certificate replayed against
    this checker's database; [Error] carries a human-readable reason.
    A rejected certificate must be treated like a resource-budget
    failure — degrade, don't trust. *)

type t

val create : unit -> t

val feed : t -> Solver.proof_step -> unit
(** Consume one proof step: inputs are recorded as axioms, learnt
    clauses are RUP-checked (and dropped if the check fails), deletions
    remove clauses from the database. Use directly when teeing the
    stream to several consumers; otherwise {!attach}. *)

val attach : t -> Solver.t -> unit
(** [attach t solver] installs {!feed} as the solver's proof logger.
    Attach before the first [add_clause]. *)

val add_input : t -> int list -> unit
(** Record an axiom clause directly — for replaying a DIMACS file
    without a solver. *)

val add_derived : t -> int list -> (unit, string) result
(** RUP-check a derived clause against the current database; add it if
    the check succeeds. [Error] rejects the derivation (the clause is
    not added). The standalone proof replay of [sat_cli --check-proof]
    feeds every proof line through this. *)

val delete : t -> int list -> unit
(** Remove a clause (matched as a literal set) from the database. A
    no-op if the clause is unknown; skipped if the clause is currently
    the reason of a root-level propagation (soundness). *)

val conflicting : t -> bool
(** The database has been refuted: some addition produced a root-level
    conflict. From here every derivation is trivially implied. *)

val certify_unsat : t -> assumptions:int list -> (unit, string) result
(** Certifies an [Unsat] answer: unit propagation on the checker's own
    database, from the given assumption literals, must reach a
    conflict. With no assumptions this demands the database itself be
    refuted (a complete DRUP proof ending in the empty clause). *)

val certify_model : t -> value:(int -> bool) -> (unit, string) result
(** Certifies a [Sat] answer: [value lit] (the solver's claimed model)
    must satisfy every live clause of the checker's database. *)

val num_checked : t -> int
(** Derivations that passed the RUP check. *)

val num_rejected : t -> int
(** Derivations that failed the RUP check and were dropped. *)

val num_deleted : t -> int

val last_error : t -> string option
(** The most recent rejection reason, for diagnostics. *)
