module A = Aig.Network
module L = Aig.Lit

type env = {
  net : A.t;
  solver : Solver.t;
  mutable vars : int array; (* node -> solver var, -1 unencoded *)
}

let create net solver =
  { net; solver; vars = Array.make (max 1 (A.num_nodes net)) (-1) }

let is_encoded env n =
  n < Array.length env.vars && env.vars.(n) >= 0

let rec var_of_node env n =
  if n >= Array.length env.vars then begin
    (* The network may have grown since [create]. *)
    let bigger = Array.make (max (A.num_nodes env.net) (n + 1)) (-1) in
    Array.blit env.vars 0 bigger 0 (Array.length env.vars);
    env.vars <- bigger
  end;
  if env.vars.(n) >= 0 then env.vars.(n)
  else begin
    let v = Solver.new_var env.solver in
    (match A.kind env.net n with
     | A.Const ->
       Solver.add_clause env.solver [ Solver.lit_of v true ]
     | A.Pi _ -> ()
     | A.And ->
       let f0 = A.fanin0 env.net n and f1 = A.fanin1 env.net n in
       let a = lit_of_rec env f0 and b = lit_of_rec env f1 in
       let pv = Solver.lit v in
       (* v <-> a & b *)
       Solver.add_clause env.solver [ Solver.neg pv; a ];
       Solver.add_clause env.solver [ Solver.neg pv; b ];
       Solver.add_clause env.solver [ pv; Solver.neg a; Solver.neg b ]);
    env.vars.(n) <- v;
    v
  end

and lit_of_rec env l =
  Solver.lit_of (var_of_node env (L.node l)) (L.is_compl l)

let lit_of = lit_of_rec

type equiv_result =
  | Equivalent
  | Counterexample of bool array
  | Undetermined
  | Uncertified of string

let extract_ce env =
  Array.init (A.num_pis env.net) (fun i ->
      let n = A.pi_node env.net i in
      if is_encoded env n then Solver.value env.solver (Solver.lit env.vars.(n))
      else false)

let check_diff ?conflict_limit ?deadline ?certify ?(assume = []) env mk_diff =
  (* Selector s: s -> (difference holds). Assume s; retire s after.
     Certification happens before retirement: the retire clause [~s]
     would make UNSAT-under-[s] vacuous and falsify any model. Extra
     [assume] literals (cube-and-conquer) join the selector in both the
     solve and the UNSAT certification, so a cube refutation is only
     certified under its own cube. *)
  let s = Solver.new_var env.solver in
  let sl = Solver.lit s in
  mk_diff sl;
  let assumptions = sl :: assume in
  let r = Solver.solve ?conflict_limit ?deadline ~assumptions env.solver in
  let verdict =
    match r with
    | Solver.Sat -> (
      match certify with
      | None -> Counterexample (extract_ce env)
      | Some checker -> (
        match Drup.certify_model checker ~value:(Solver.value env.solver) with
        | Ok () -> Counterexample (extract_ce env)
        | Error why -> Uncertified why))
    | Solver.Unsat -> (
      match certify with
      | None -> Equivalent
      | Some checker -> (
        match Drup.certify_unsat checker ~assumptions with
        | Ok () -> Equivalent
        | Error why -> Uncertified why))
    | Solver.Unknown -> Undetermined
  in
  Solver.add_clause env.solver [ Solver.neg sl ];
  verdict

let check_equiv ?conflict_limit ?deadline ?certify ?assume env la lb =
  let a = lit_of env la and b = lit_of env lb in
  check_diff ?conflict_limit ?deadline ?certify ?assume env (fun sl ->
      (* s -> (a xor b): encode via a fresh miter output m with
         m <-> a xor b, then clause (~s | m). *)
      let m = Solver.lit (Solver.new_var env.solver) in
      Solver.add_clause env.solver [ Solver.neg m; a; b ];
      Solver.add_clause env.solver [ Solver.neg m; Solver.neg a; Solver.neg b ];
      Solver.add_clause env.solver [ m; Solver.neg a; b ];
      Solver.add_clause env.solver [ m; a; Solver.neg b ];
      Solver.add_clause env.solver [ Solver.neg sl; m ])

let check_const ?conflict_limit ?deadline ?certify ?assume env l b =
  let a = lit_of env l in
  check_diff ?conflict_limit ?deadline ?certify ?assume env (fun sl ->
      (* s -> (l <> b), i.e. assume l takes the other value. *)
      let target = if b then Solver.neg a else a in
      Solver.add_clause env.solver [ Solver.neg sl; target ])
