(* Independent reverse-unit-propagation (RUP) checker.

   Deliberately shares no propagation code with Solver: its own clause
   table, its own watch scheme (watch lists are indexed by the watched
   literal itself, scanned when that literal becomes false — the
   opposite convention from the solver's), its own trail. The overlap
   is limited to the literal packing and the Vec container; see the
   trusted-base statement in drup.mli.

   Layout invariants:
   - the trail is a pure root trail between operations ([qhead] fully
     caught up); RUP checks and certifications push a temporary suffix
     and roll it back;
   - the root assignment only ever grows: deletions that would erase
     the reason clause of a root propagation are skipped, so a
     root-true literal stays true forever;
   - watched literals live at positions 0 and 1 of each clause's
     literal array (permuted in place);
   - clauses satisfied at root, and root unit clauses once propagated,
     are left unwatched — by monotonicity they can never propagate
     anything new. *)

module Vec = Sutil.Vec

type clause = { lits : int array; mutable dead : bool }

type t = {
  mutable clauses : clause array;
  mutable num_clauses : int;
  mutable watches : Vec.t array; (* per literal: ids watching it *)
  mutable assign : int array; (* per var: -1 unassigned / 0 false / 1 true *)
  mutable reason : int array; (* per var: clause id or -1 *)
  mutable nvars : int;
  trail : Vec.t;
  mutable qhead : int;
  index : (int list, int list) Hashtbl.t; (* sorted lits -> live ids *)
  mutable conflicting : bool;
  mutable checked : int;
  mutable rejected : int;
  mutable deleted : int;
  mutable last_error : string option;
}

let dead_clause = { lits = [||]; dead = true }

let create () =
  {
    clauses = Array.make 64 dead_clause;
    num_clauses = 0;
    watches = [||];
    assign = [||];
    reason = [||];
    nvars = 0;
    trail = Vec.create ();
    qhead = 0;
    index = Hashtbl.create 64;
    conflicting = false;
    checked = 0;
    rejected = 0;
    deleted = 0;
    last_error = None;
  }

let var_of l = l lsr 1

let grow_vars t nvars =
  if nvars > t.nvars then begin
    let old = Array.length t.assign in
    if nvars > old then begin
      let n = max nvars (max 16 (2 * old)) in
      let extend a fill =
        let b = Array.make n fill in
        Array.blit a 0 b 0 old;
        b
      in
      t.assign <- extend t.assign (-1);
      t.reason <- extend t.reason (-1);
      let oldw = Array.length t.watches in
      let neww = Array.make (2 * n) (Vec.create ()) in
      Array.blit t.watches 0 neww 0 oldw;
      for i = oldw to (2 * n) - 1 do
        neww.(i) <- Vec.create ~capacity:4 ()
      done;
      t.watches <- neww
    end;
    t.nvars <- nvars
  end

let grow_for_lits t lits =
  List.iter
    (fun l ->
      if l < 0 then invalid_arg "Drup: negative literal";
      grow_vars t (var_of l + 1))
    lits

let val_lit t l =
  let a = t.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let enqueue t l reason =
  t.assign.(var_of l) <- 1 lxor (l land 1);
  t.reason.(var_of l) <- reason;
  Vec.push t.trail l

let rollback t mark =
  for i = Vec.length t.trail - 1 downto mark do
    let v = var_of (Vec.get t.trail i) in
    t.assign.(v) <- -1;
    t.reason.(v) <- -1
  done;
  Vec.shrink t.trail mark;
  t.qhead <- mark

(* Exhaustive unit propagation from the current queue position.
   Returns [false] on conflict (queue left mid-way; caller rolls back
   or records refutation). *)
let propagate t =
  let ok = ref true in
  while !ok && t.qhead < Vec.length t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    let f = p lxor 1 in
    (* every clause watching [f] just lost that watch *)
    let ws = t.watches.(f) in
    let n = Vec.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let cid = Vec.get ws !i in
      incr i;
      let c = t.clauses.(cid) in
      if not c.dead then begin
        let lits = c.lits in
        if lits.(0) = f then begin
          lits.(0) <- lits.(1);
          lits.(1) <- f
        end;
        if val_lit t lits.(0) = 1 then begin
          Vec.set ws !j cid;
          incr j
        end
        else begin
          let len = Array.length lits in
          let k = ref 2 in
          let moved = ref false in
          while (not !moved) && !k < len do
            if val_lit t lits.(!k) <> 0 then begin
              lits.(1) <- lits.(!k);
              lits.(!k) <- f;
              Vec.push t.watches.(lits.(1)) cid;
              moved := true
            end;
            incr k
          done;
          if not !moved then begin
            Vec.set ws !j cid;
            incr j;
            match val_lit t lits.(0) with
            | 0 ->
              (* conflict: retain the rest of the watch list *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr i;
                incr j
              done;
              ok := false
            | _ -> enqueue t lits.(0) cid
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !ok

(* On sorted literals a variable's two polarities are adjacent (packed
   literals 2v and 2v+1 differ only in bit 0), so tautology is a linear
   adjacency scan — callers sort with [List.sort_uniq Int.compare]
   first. *)
let rec tautology = function
  | a :: (b :: _ as rest) -> a lxor b = 1 || tautology rest
  | _ -> false

(* Store a (sorted, non-tautological) clause and integrate it into the
   root state: conflict, unit propagation, or watches as appropriate. *)
let add_core t lits =
  if t.num_clauses = Array.length t.clauses then begin
    let c = Array.make (2 * t.num_clauses) dead_clause in
    Array.blit t.clauses 0 c 0 t.num_clauses;
    t.clauses <- c
  end;
  let id = t.num_clauses in
  let arr = Array.of_list lits in
  t.clauses.(id) <- { lits = arr; dead = false };
  t.num_clauses <- id + 1;
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.index lits) in
  Hashtbl.replace t.index lits (id :: prev);
  if not t.conflicting then begin
    (* move non-false literals to the front *)
    let nonfalse = ref 0 in
    Array.iteri
      (fun i l ->
        if val_lit t l <> 0 then begin
          arr.(i) <- arr.(!nonfalse);
          arr.(!nonfalse) <- l;
          incr nonfalse
        end)
      arr;
    if !nonfalse = 0 then t.conflicting <- true
    else if Array.exists (fun l -> val_lit t l = 1) arr then
      () (* satisfied at root, inert by monotonicity *)
    else if !nonfalse = 1 then begin
      enqueue t arr.(0) id;
      if not (propagate t) then t.conflicting <- true
    end
    else begin
      Vec.push t.watches.(arr.(0)) id;
      Vec.push t.watches.(arr.(1)) id
    end
  end

let add_input t lits =
  grow_for_lits t lits;
  let lits = List.sort_uniq Int.compare lits in
  if not (tautology lits) then add_core t lits

let pp_clause lits =
  if lits = [] then "<empty>"
  else
    String.concat " "
      (List.map
         (fun l ->
           string_of_int (if l land 1 = 1 then -(var_of l + 1) else var_of l + 1))
         lits)

(* Is [lits] implied by reverse unit propagation? Assume its negation
   on a temporary trail suffix; a conflict (or an immediate
   contradiction with the root state) proves implication. *)
let rup t lits =
  t.conflicting
  ||
  let mark = Vec.length t.trail in
  let verdict = ref None in
  List.iter
    (fun l ->
      if !verdict = None then
        match val_lit t l with
        | 1 -> verdict := Some true (* assuming ¬l contradicts the root *)
        | 0 -> ()
        | _ -> enqueue t (l lxor 1) (-1))
    lits;
  let r =
    match !verdict with Some r -> r | None -> not (propagate t)
  in
  rollback t mark;
  r

let add_derived t lits =
  grow_for_lits t lits;
  let lits = List.sort_uniq Int.compare lits in
  if tautology lits then begin
    t.checked <- t.checked + 1;
    Ok ()
  end
  else if rup t lits then begin
    t.checked <- t.checked + 1;
    add_core t lits;
    Ok ()
  end
  else begin
    t.rejected <- t.rejected + 1;
    let msg =
      Printf.sprintf "derived clause [%s] is not reverse-unit-propagation"
        (pp_clause lits)
    in
    t.last_error <- Some msg;
    Error msg
  end

(* A clause is the reason of a root propagation iff one of its literals
   is root-true with this clause recorded as its reason. *)
let is_root_reason t id c =
  Array.exists
    (fun l -> val_lit t l = 1 && t.reason.(var_of l) = id)
    c.lits

let delete t lits =
  grow_for_lits t lits;
  let key = List.sort_uniq Int.compare lits in
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some ids -> (
    let deletable id =
      let c = t.clauses.(id) in
      (not c.dead) && not (is_root_reason t id c)
    in
    match List.find_opt deletable ids with
    | None -> ()
    | Some id ->
      t.clauses.(id).dead <- true;
      t.deleted <- t.deleted + 1;
      Hashtbl.replace t.index key (List.filter (fun i -> i <> id) ids))

let feed t step =
  match step with
  | Solver.P_input a -> add_input t (Array.to_list a)
  | Solver.P_learn a -> ignore (add_derived t (Array.to_list a))
  | Solver.P_delete a -> delete t (Array.to_list a)

let attach t solver = Solver.set_proof_logger solver (Some (feed t))

let conflicting t = t.conflicting

let certify_unsat t ~assumptions =
  if t.conflicting then Ok ()
  else begin
    let mark = Vec.length t.trail in
    let conflict = ref false in
    List.iter
      (fun a ->
        if not !conflict then begin
          grow_vars t (var_of a + 1);
          match val_lit t a with
          | 0 -> conflict := true
          | 1 -> ()
          | _ ->
            enqueue t a (-1);
            if not (propagate t) then conflict := true
        end)
      assumptions;
    rollback t mark;
    if !conflict then Ok ()
    else
      Error
        (if assumptions = [] then
           "no refutation: the proof does not derive the empty clause"
         else
           "assumptions propagate without conflict on the checked database")
  end

let certify_model t ~value =
  if t.conflicting then Error "database is refuted; no model can exist"
  else begin
    let bad = ref None in
    (try
       for i = 0 to t.num_clauses - 1 do
         let c = t.clauses.(i) in
         if (not c.dead) && not (Array.exists value c.lits) then begin
           bad := Some c.lits;
           raise Exit
         end
       done
     with Exit -> ());
    match !bad with
    | None -> Ok ()
    | Some lits ->
      let msg =
        Printf.sprintf "claimed model falsifies clause [%s]"
          (pp_clause (Array.to_list lits))
      in
      t.last_error <- Some msg;
      Error msg
  end

let num_checked t = t.checked
let num_rejected t = t.rejected
let num_deleted t = t.deleted
let last_error t = t.last_error
