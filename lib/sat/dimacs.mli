(** DIMACS CNF parsing and printing.

    Bridges the solver's packed literals and the textual convention
    (1-based variables, sign = polarity). Used by the test suite and the
    [sat] CLI. *)

exception Parse_error of string

val parse : string -> int * int list list
(** [parse text] is [(num_vars, clauses)] with solver-packed literals
    (variable [i] of the file becomes solver variable [i - 1]). *)

val load : Solver.t -> string -> unit
(** Parses and adds everything to the solver, creating variables as
    needed. *)

val print : num_vars:int -> int list list -> string
(** Solver-packed clauses back to DIMACS text. *)

val proof_line : Solver.proof_step -> string option
(** One proof step as a line of standard DRUP text (zero-terminated
    DIMACS literals, deletions prefixed [d]) — the format drat-trim
    style tooling consumes. [None] for input steps: original clauses
    belong to the CNF file, not the proof. *)

val parse_proof : string -> [ `Add of int list | `Delete of int list ] list
(** Parses DRUP text back into proof steps with solver-packed literals.
    Comment lines ([c ...]) and blank lines are skipped; anything else
    raises {!Parse_error}. *)
