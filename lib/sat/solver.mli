(** CDCL SAT solver.

    A from-scratch conflict-driven solver with the standard machinery the
    sweeping engines need: two-watched-literal propagation, first-UIP
    conflict analysis with recursive clause minimization, EVSIDS variable
    activities, phase saving, Luby restarts, learnt-clause garbage
    collection, incremental solving under assumptions, and per-call
    conflict budgets (the paper's [unDET] outcome).

    Literals are ints: [2 * var] is the positive literal of [var],
    [2 * var + 1] its negation — the same packing as {!Aig.Lit}. *)

type t

type result = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  solve_calls : int;
}

val create : unit -> t

val new_var : t -> int
(** A fresh variable, returned as its index. *)

val num_vars : t -> int

val lit : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
val lit_of : int -> bool -> int
(** [lit_of v negated]. *)

val add_clause : t -> int list -> unit
(** Adds a clause of literals. Tautologies are dropped, duplicate literals
    merged. Adding the empty clause (or a clause falsified at level 0)
    makes the solver permanently unsatisfiable. *)

val solve :
  ?assumptions:int list -> ?conflict_limit:int -> ?deadline:float -> t -> result
(** Solves under the given assumption literals. [Unknown] when the
    conflict budget is exhausted or the wall-clock [deadline] (an
    absolute [Obs.Clock.now] timestamp) passes — the deadline is checked
    on entry and then every few thousand propagations, so an aborted
    call overshoots it by microseconds. The solver remains usable after
    any outcome, including an abort: clauses may be added and a later
    call with a larger (or no) budget reaches the same verdict an
    unbudgeted run would. *)

val value : t -> int -> bool
(** Model value of a literal after [Sat]. Unassigned variables (possible
    when they appear in no clause) read as false. *)

val var_value : t -> int -> bool option
(** Model value of a variable after [Sat]; [None] if never assigned. *)

val failed_assumptions : t -> int list
(** After an [Unsat] answer under assumptions: a subset of the assumptions
    sufficient for unsatisfiability (coarse: the falsified one, or all of
    them when the conflict is global). *)

val stats : t -> stats
(** Cumulative counters over the solver's lifetime (all solve calls). *)

val stats_assoc : t -> (string * int) list
(** The {!stats} counters as name/value pairs in declaration order — the
    shape structured run reports consume. *)

val pp_stats : Format.formatter -> t -> unit
