(** CDCL SAT solver.

    A from-scratch conflict-driven solver with the standard machinery the
    sweeping engines need: two-watched-literal propagation, first-UIP
    conflict analysis with recursive clause minimization, EVSIDS variable
    activities, phase saving, Luby restarts with glue-aware
    postponement, LBD-ranked learnt-clause reduction, incremental
    solving under assumptions, and per-call conflict budgets (the
    paper's [unDET] outcome).

    Clause storage is a single flat int arena (MiniSat's
    [ClauseAllocator]): every clause is a header word followed by its
    literals, learnt clauses carry two extra words (glue, activity).
    Watch lists hold [(clause, blocker)] pairs so propagation skips
    satisfied clauses without touching the arena. Killed clauses only
    set a dead bit; a compaction pass ([gc]) reclaims the space and
    rebuilds watches once a quarter of the arena is garbage. DESIGN.md
    §"Solver internals" documents the layout and invariants.

    Literals are ints: [2 * var] is the positive literal of [var],
    [2 * var + 1] its negation — the same packing as {!Aig.Lit}. *)

type t

type result = Sat | Unsat | Unknown

type proof_step =
  | P_input of int array  (** an original clause, as stated by the caller *)
  | P_learn of int array  (** a clause added to the database by conflict
                              analysis; the empty array refutes the formula *)
  | P_delete of int array  (** a learnt clause garbage-collected from the
                               database *)
(** One event in the clausal (DRUP) proof stream. Literals use this
    module's packing; arrays are fresh copies owned by the logger. *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  solve_calls : int;
  reductions : int;  (** learnt-DB reduction passes *)
  gcs : int;  (** arena compaction passes *)
}

val create : unit -> t

val new_var : t -> int
(** A fresh variable, returned as its index. *)

val num_vars : t -> int

val lit : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
val lit_of : int -> bool -> int
(** [lit_of v negated]. *)

val set_proof_logger : t -> (proof_step -> unit) option -> unit
(** Installs (or removes) a callback receiving every proof step from now
    on. Install it before adding clauses: a checker must see the inputs
    to judge the derivations. [Sat.Drup.attach] is the standard client;
    [sat_cli --proof] streams the same events to a DRUP text file. *)

val add_clause : t -> int list -> unit
(** Adds a clause of literals. Tautologies are dropped, duplicate literals
    merged. Adding the empty clause (or a clause falsified at level 0)
    makes the solver permanently unsatisfiable. *)

val solve :
  ?assumptions:int list -> ?conflict_limit:int -> ?deadline:float -> t -> result
(** Solves under the given assumption literals. [Unknown] when the
    conflict budget is exhausted or the wall-clock [deadline] (an
    absolute [Obs.Clock.now] timestamp) passes — the deadline is checked
    on entry and then every few thousand propagations, so an aborted
    call overshoots it by microseconds. The solver remains usable after
    any outcome, including an abort: clauses may be added and a later
    call with a larger (or no) budget reaches the same verdict an
    unbudgeted run would. *)

val value : t -> int -> bool
(** Model value of a literal after [Sat]. At [Sat] the assignment is
    total over the variables that existed when [solve] was called (the
    search only answers [Sat] once the branching heap is drained; the
    solver asserts this). Variables created {e after} the solve read as
    false — a defined default, not an assigned value. *)

val var_value : t -> int -> bool option
(** Model value of a variable after [Sat]; [None] if never assigned
    (only possible for variables created after the last solve). *)

val model : t -> bool array
(** The full model after [Sat], indexed by variable. Total for all
    variables that existed at solve time; see {!value}. *)

val failed_assumptions : t -> int list
(** After an [Unsat] answer under assumptions: a subset of the assumptions
    sufficient for unsatisfiability (coarse: the falsified one, or all of
    them when the conflict is global). *)

val set_max_learnts : t -> int -> unit
(** Overrides the learnt-clause ceiling that triggers {e reduce_db}
    (default 3000, grown by half after each reduction). Callers issuing
    many small budgeted queries on one solver — the sweep engine — set
    this from their conflict budgets so the learnt DB stays proportional
    to a query, not to the whole run. Clamped to at least 16. *)

val live_learnts : t -> int
(** Learnt clauses currently alive (allocated and not killed). *)

val arena_words : t -> int
(** Words of the clause arena in use (live + dead-but-unreclaimed). *)

val arena_wasted : t -> int
(** Words owned by killed clauses, reclaimable by the next compaction. *)

val gc_count : t -> int
(** Arena compaction passes run so far. *)

val debug_count_learnts : t -> int
(** O(arena) recount of live learnt clauses by walking the arena —
    test-only ground truth for the {!live_learnts} counter. *)

val stats : t -> stats
(** Cumulative counters over the solver's lifetime (all solve calls). *)

val stats_assoc : t -> (string * int) list
(** The {!stats} counters as name/value pairs in declaration order — the
    shape structured run reports consume. *)

val pp_stats : Format.formatter -> t -> unit
