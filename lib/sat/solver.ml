module Vec = Sutil.Vec

(* Robustness-test hook: when armed, a solve call answers [Unknown]
   without searching — the callers' degraded path must cope. *)
let fault_force_unknown = Obs.Fault.register "sat.force_unknown"

(* Adversarial lying-solver hooks, exempt from the pessimistic-only
   fault contract (see Obs.Fault): they fabricate wrong answers so the
   test suite can demonstrate that certification catches them. Only
   meaningful when a proof checker audits this solver. *)
let fault_flip_unsat = Obs.Fault.register "sat.flip_unsat"
let fault_corrupt_proof = Obs.Fault.register "sat.corrupt_proof"
let fault_bogus_model = Obs.Fault.register "sat.bogus_model"

type result = Sat | Unsat | Unknown

type proof_step =
  | P_input of int array
  | P_learn of int array
  | P_delete of int array

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  solve_calls : int;
  reductions : int;
  gcs : int;
}

(* ---- clause arena ----

   All clause literals live in one growable [int array]. A clause
   reference (cref) is the word index of its header:

     header word:  size lsl 2  |  dead lsl 1  |  learnt
     learnt only:  +1  LBD (glue) of the clause
                   +2  activity, IEEE-754 single bits (MiniSat stores
                       clause activity in single precision too; only
                       the ordering matters)
     then [size] literal words.

   Clauses are packed back to back with no gaps, so the arena can be
   walked linearly from 0 by decoding headers. Killing a clause only
   sets the dead bit (watchers drop dead crefs lazily); the space is
   reclaimed by [gc], a compaction pass that slides live clauses down,
   rebuilds every watch list, and remaps the trail's reason crefs via
   forwarding pointers written into the old headers. *)

type t = {
  mutable arena : int array;
  mutable arena_len : int; (* first free word *)
  mutable wasted : int; (* words owned by dead clauses *)
  learnts : Vec.t; (* crefs of live learnt clauses, for O(live) scans *)
  mutable orig_clauses : int; (* live originals, stats only *)
  mutable watches : Vec.t array;
  (* per literal: flat (cref, blocker) pairs — the blocker is some other
     literal of the clause (usually the other watch); if it is already
     true the clause is satisfied and the visit never touches the arena. *)
  (* per-variable state *)
  mutable assign : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable vlevel : int array;
  mutable reason : int array; (* cref or -1 *)
  mutable activity : float array;
  mutable phase : bool array; (* saved polarity *)
  mutable heap_pos : int array;
  mutable heap : int array;
  mutable heap_len : int;
  mutable seen : int array; (* analyze scratch *)
  mutable lbd_stamp : int array; (* per-level scratch for glue counting *)
  mutable lbd_epoch : int;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable unsat : bool;
  mutable failed : int list;
  mutable st_decisions : int;
  mutable st_conflicts : int;
  mutable st_props : int;
  mutable st_learned : int;
  mutable st_solves : int;
  mutable st_reduces : int;
  mutable st_gcs : int;
  mutable live_learnts : int;
  mutable max_learnts : int;
  mutable proof : (proof_step -> unit) option;
}

let lit v = v lsl 1
let neg l = l lxor 1
let lit_of v negated = (v lsl 1) lor (if negated then 1 else 0)
let var_of l = l lsr 1
let sign_of l = l land 1

(* header decoding *)
let h_learnt h = h land 1
let h_dead h = h land 2 <> 0
let h_size h = h lsr 2
let clause_words h = 1 + (2 * (h land 1)) + (h lsr 2)
let lits_off c h = c + 1 + (2 * (h land 1))

let create () =
  {
    arena = Array.make 1024 0;
    arena_len = 0;
    wasted = 0;
    learnts = Vec.create ();
    orig_clauses = 0;
    watches = [||];
    assign = [||];
    vlevel = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    heap_pos = [||];
    heap = Array.make 16 0;
    heap_len = 0;
    seen = [||];
    lbd_stamp = [||];
    lbd_epoch = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    nvars = 0;
    unsat = false;
    failed = [];
    st_decisions = 0;
    st_conflicts = 0;
    st_props = 0;
    st_learned = 0;
    st_solves = 0;
    st_reduces = 0;
    st_gcs = 0;
    live_learnts = 0;
    max_learnts = 3000;
    proof = None;
  }

let num_vars t = t.nvars

let set_proof_logger t f = t.proof <- f
let set_max_learnts t n = t.max_learnts <- max 16 n

(* ---- proof emission ----

   Every change to the clause database is streamed to the logger:
   original clauses as [P_input] (post-normalization, pre-filtering, so
   the log matches what the caller stated), learnt clauses as [P_learn],
   killed learnts as [P_delete]. A root-level conflict emits the empty
   [P_learn], terminating a DRUP refutation. Arrays handed to the logger
   are fresh copies: clause literals are permuted in place by
   propagation afterwards.

   Deletion is emitted at kill time — the moment the dead bit is set —
   because that is when the clause leaves the solver's logical database
   (a dead clause can no longer propagate). The arena compactor only
   reclaims storage of clauses whose deletion has already been emitted,
   so proofs stay in sync with the logical database no matter when (or
   whether) a GC pass runs. *)

let emit_input t lits =
  match t.proof with
  | None -> ()
  | Some f -> f (P_input (Array.of_list lits))

let emit_learn t lits =
  match t.proof with
  | None -> ()
  | Some f ->
    let lits = Array.copy lits in
    (* Lying-solver hook: corrupt the logged copy (never the solver's
       own clause) so tests can show the checker rejects the line. *)
    if Array.length lits > 0 && Obs.Fault.fires fault_corrupt_proof then
      lits.(0) <- lits.(0) lxor 1;
    f (P_learn lits)

let emit_delete_cref t c =
  match t.proof with
  | None -> ()
  | Some f ->
    let h = t.arena.(c) in
    f (P_delete (Array.sub t.arena (lits_off c h) (h_size h)))

(* ---- max-activity binary heap over variables ---- *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_len && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_len && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    if t.heap_len = Array.length t.heap then begin
      let h = Array.make (2 * t.heap_len) 0 in
      Array.blit t.heap 0 h 0 t.heap_len;
      t.heap <- h
    end;
    t.heap.(t.heap_len) <- v;
    t.heap_pos.(v) <- t.heap_len;
    t.heap_len <- t.heap_len + 1;
    heap_up t (t.heap_len - 1)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_len > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_len);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  v

let heap_decrease t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let old = Array.length t.assign in
  if t.nvars > old then begin
    let n = max t.nvars (max 16 (2 * old)) in
    let extend a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 old;
      b
    in
    t.assign <- extend t.assign (-1);
    t.vlevel <- extend t.vlevel 0;
    t.reason <- extend t.reason (-1);
    t.activity <- extend t.activity 0.;
    t.phase <- extend t.phase false;
    t.heap_pos <- extend t.heap_pos (-1);
    t.seen <- extend t.seen 0;
    t.lbd_stamp <- extend t.lbd_stamp 0;
    let oldw = Array.length t.watches in
    let neww = Array.make (2 * n) (Vec.create ()) in
    Array.blit t.watches 0 neww 0 oldw;
    for i = oldw to (2 * n) - 1 do
      neww.(i) <- Vec.create ~capacity:4 ()
    done;
    t.watches <- neww
  end;
  heap_insert t v;
  v

(* ---- assignment ---- *)

let value_lit t l =
  let a = t.assign.(var_of l) in
  if a < 0 then -1 else a lxor sign_of l

let decision_level t = Vec.length t.trail_lim

let enqueue t l reason =
  let v = var_of l in
  assert (t.assign.(v) < 0);
  t.assign.(v) <- 1 lxor sign_of l;
  t.vlevel.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- sign_of l = 0;
  Vec.push t.trail l

let cancel_until t level =
  if decision_level t > level then begin
    let keep = Vec.get t.trail_lim level in
    for i = Vec.length t.trail - 1 downto keep do
      let v = var_of (Vec.get t.trail i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    Vec.shrink t.trail keep;
    Vec.shrink t.trail_lim level;
    t.qhead <- keep
  end

(* ---- clause allocation ---- *)

let arena_ensure t need =
  if need > Array.length t.arena then begin
    let a = Array.make (max need (2 * Array.length t.arena)) 0 in
    Array.blit t.arena 0 a 0 t.arena_len;
    t.arena <- a
  end

let attach_watches t c l0 l1 =
  let w0 = t.watches.(neg l0) in
  Vec.push w0 c;
  Vec.push w0 l1;
  let w1 = t.watches.(neg l1) in
  Vec.push w1 c;
  Vec.push w1 l0

let alloc_clause t lits learnt lbd =
  let size = Array.length lits in
  let extra = if learnt then 2 else 0 in
  arena_ensure t (t.arena_len + 1 + extra + size);
  let c = t.arena_len in
  t.arena.(c) <- (size lsl 2) lor (if learnt then 1 else 0);
  if learnt then begin
    t.arena.(c + 1) <- lbd;
    t.arena.(c + 2) <- 0 (* activity 0.0 as float32 bits *)
  end;
  Array.blit lits 0 t.arena (c + 1 + extra) size;
  t.arena_len <- c + 1 + extra + size;
  if learnt then begin
    t.live_learnts <- t.live_learnts + 1;
    Vec.push t.learnts c
  end
  else t.orig_clauses <- t.orig_clauses + 1;
  attach_watches t c lits.(0) lits.(1);
  c

(* Clause activity lives in the arena as IEEE-754 single bits; the
   32-bit pattern round-trips exactly through the int word. *)
let act_get t c = Int32.float_of_bits (Int32.of_int t.arena.(c + 2))
let act_set t c v = t.arena.(c + 2) <- Int32.to_int (Int32.bits_of_float v)

let cla_bump t c =
  let a = act_get t c +. t.cla_inc in
  act_set t c a;
  if a > 1e20 then begin
    (* Rescale live learnts only — [t.learnts] holds exactly those, so
       the rescue is O(live learnts), not O(total clauses ever added). *)
    for i = 0 to Vec.length t.learnts - 1 do
      let d = Vec.get t.learnts i in
      act_set t d (act_get t d *. 1e-20)
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 0 to t.nvars - 1 do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_decrease t v

(* ---- LBD (glue): distinct nonzero decision levels in a clause ---- *)

let lbd_of_range t off size =
  t.lbd_epoch <- t.lbd_epoch + 1;
  let e = t.lbd_epoch in
  let n = ref 0 in
  for k = off to off + size - 1 do
    let lv = t.vlevel.(var_of t.arena.(k)) in
    if lv > 0 && t.lbd_stamp.(lv) <> e then begin
      t.lbd_stamp.(lv) <- e;
      incr n
    end
  done;
  max 1 !n

let lbd_of_lits t lits =
  t.lbd_epoch <- t.lbd_epoch + 1;
  let e = t.lbd_epoch in
  let n = ref 0 in
  Array.iter
    (fun q ->
      let lv = t.vlevel.(var_of q) in
      if lv > 0 && t.lbd_stamp.(lv) <> e then begin
        t.lbd_stamp.(lv) <- e;
        incr n
      end)
    lits;
  max 1 !n

(* ---- propagation ---- *)

exception Conflict of int

let propagate t =
  try
    while t.qhead < Vec.length t.trail do
      let l = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.st_props <- t.st_props + 1;
      let falsified = neg l in
      let ws = t.watches.(l) in
      let n = Vec.length ws in
      let i = ref 0 and j = ref 0 in
      let arena = t.arena in
      while !i < n do
        let c = Vec.unsafe_get ws !i in
        let blocker = Vec.unsafe_get ws (!i + 1) in
        i := !i + 2;
        (* Blocking literal: if some other literal of the clause is
           already true, keep the watcher and never touch the arena. *)
        if value_lit t blocker = 1 then begin
          Vec.unsafe_set ws !j c;
          Vec.unsafe_set ws (!j + 1) blocker;
          j := !j + 2
        end
        else begin
          let h = Array.unsafe_get arena c in
          if h_dead h then () (* lazily unhook killed clauses *)
          else begin
            let off = lits_off c h in
            let size = h_size h in
            if Array.unsafe_get arena off = falsified then begin
              Array.unsafe_set arena off (Array.unsafe_get arena (off + 1));
              Array.unsafe_set arena (off + 1) falsified
            end;
            let first = Array.unsafe_get arena off in
            if first <> blocker && value_lit t first = 1 then begin
              (* Satisfied by its other watch: keep, and remember that
                 literal as the new blocker. *)
              Vec.unsafe_set ws !j c;
              Vec.unsafe_set ws (!j + 1) first;
              j := !j + 2
            end
            else begin
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < size do
                if value_lit t (Array.unsafe_get arena (off + !k)) <> 0
                then begin
                  Array.unsafe_set arena (off + 1)
                    (Array.unsafe_get arena (off + !k));
                  Array.unsafe_set arena (off + !k) falsified;
                  let w = t.watches.(neg arena.(off + 1)) in
                  Vec.push w c;
                  Vec.push w first;
                  found := true
                end;
                incr k
              done;
              if not !found then begin
                Vec.unsafe_set ws !j c;
                Vec.unsafe_set ws (!j + 1) first;
                j := !j + 2;
                if value_lit t first = 0 then begin
                  while !i < n do
                    Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
                    incr i;
                    incr j
                  done;
                  Vec.shrink ws !j;
                  raise (Conflict c)
                end
                else enqueue t first c
              end
            end
          end
        end
      done;
      Vec.shrink ws !j
    done;
    None
  with Conflict c -> Some c

(* ---- first-UIP conflict analysis ---- *)

let lit_redundant t l =
  let r = t.reason.(var_of l) in
  r >= 0
  &&
  let h = t.arena.(r) in
  let off = lits_off r h in
  let rec go k =
    k >= off + h_size h
    ||
    let q = t.arena.(k) in
    (var_of q = var_of l
    || t.seen.(var_of q) = 1
    || t.vlevel.(var_of q) = 0)
    && go (k + 1)
  in
  go off

let analyze t conflict =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let pvar = ref (-1) in
  let idx = ref (Vec.length t.trail - 1) in
  let cid = ref conflict in
  let continue = ref true in
  while !continue do
    let c = !cid in
    let h = t.arena.(c) in
    if h_learnt h = 1 then begin
      cla_bump t c;
      (* Glue refresh on use: a clause involved in a conflict re-proves
         its worth; keep the smallest LBD ever observed for it. *)
      let g = lbd_of_range t (lits_off c h) (h_size h) in
      if g < t.arena.(c + 1) then t.arena.(c + 1) <- g
    end;
    let off = lits_off c h in
    for k = off to off + h_size h - 1 do
      let q = t.arena.(k) in
      (* Skip the literal whose reason we are expanding. *)
      if var_of q <> !pvar && t.seen.(var_of q) = 0 && t.vlevel.(var_of q) > 0
      then begin
        t.seen.(var_of q) <- 1;
        var_bump t (var_of q);
        if t.vlevel.(var_of q) >= decision_level t then incr path
        else learnt := q :: !learnt
      end
    done;
    while t.seen.(var_of (Vec.get t.trail !idx)) = 0 do
      decr idx
    done;
    let l = Vec.get t.trail !idx in
    decr idx;
    t.seen.(var_of l) <- 0;
    p := neg l;
    pvar := var_of l;
    decr path;
    if !path <= 0 then continue := false
    else begin
      assert (t.reason.(var_of l) >= 0);
      cid := t.reason.(var_of l)
    end
  done;
  let uip = !p in
  let minimized = List.filter (fun q -> not (lit_redundant t q)) !learnt in
  List.iter (fun q -> t.seen.(var_of q) <- 0) !learnt;
  let lits = Array.of_list (uip :: minimized) in
  let blevel =
    if Array.length lits = 1 then 0
    else begin
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if t.vlevel.(var_of lits.(i)) > t.vlevel.(var_of lits.(!best)) then
          best := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      t.vlevel.(var_of lits.(1))
    end
  in
  (* Glue is computed here, while the conflicting assignment's levels
     are still in place — [cancel_until] runs after. *)
  let glue = lbd_of_lits t lits in
  (lits, blevel, glue)

(* ---- learnt-clause DB reduction and arena compaction ---- *)

let locked t c =
  let h = t.arena.(c) in
  h_size h > 0
  &&
  let l = t.arena.(lits_off c h) in
  value_lit t l = 1 && t.reason.(var_of l) = c

let kill_clause t c =
  emit_delete_cref t c;
  t.arena.(c) <- t.arena.(c) lor 2;
  t.wasted <- t.wasted + clause_words t.arena.(c);
  t.live_learnts <- t.live_learnts - 1

(* Compaction: slide live clauses down over the dead ones, rebuild every
   watch list from the (still watched) first two literals, and remap the
   trail's reason crefs through forwarding pointers left in the old
   headers. Deletions were already emitted when the clauses died, so the
   proof stream needs nothing from this pass. Safe at any decision
   level: every reachable cref (watchers, reasons, learnt list) is
   rewritten here, and the two-watch invariant is positional, so
   re-attaching positions 0 and 1 preserves it. *)
let gc t =
  t.st_gcs <- t.st_gcs + 1;
  let live = t.arena_len - t.wasted in
  let narena = Array.make (max 1024 (2 * live)) 0 in
  let i = ref 0 and j = ref 0 in
  while !i < t.arena_len do
    let h = t.arena.(!i) in
    let w = clause_words h in
    if h_dead h then i := !i + w
    else begin
      Array.blit t.arena !i narena !j w;
      (* forwarding pointer *)
      t.arena.(!i) <- -1 - !j;
      i := !i + w;
      j := !j + w
    end
  done;
  (* Reasons: every recorded reason clause is live (locked clauses are
     never killed), so its old header now holds the forwarding cref. *)
  for k = 0 to Vec.length t.trail - 1 do
    let v = var_of (Vec.get t.trail k) in
    let r = t.reason.(v) in
    if r >= 0 then begin
      let f = t.arena.(r) in
      assert (f < 0);
      t.reason.(v) <- -f - 1
    end
  done;
  for k = 0 to Vec.length t.learnts - 1 do
    let f = t.arena.(Vec.get t.learnts k) in
    assert (f < 0);
    Vec.set t.learnts k (-f - 1)
  done;
  t.arena <- narena;
  t.arena_len <- !j;
  t.wasted <- 0;
  Array.iter Vec.clear t.watches;
  let c = ref 0 in
  while !c < t.arena_len do
    let h = t.arena.(!c) in
    let off = lits_off !c h in
    attach_watches t !c t.arena.(off) t.arena.(off + 1);
    c := !c + clause_words h
  done

let maybe_gc t =
  if t.wasted > 0 && t.wasted * 4 > t.arena_len then gc t

(* Reduction keeps: locked clauses (they are reasons on the trail),
   binary clauses, and glue <= 2 clauses (unconditionally — they encode
   near-implications and are the cheapest to have proven). The rest is
   ranked worst-first by (higher LBD, lower activity) and the worst half
   is killed. *)
let reduce_db t =
  t.st_reduces <- t.st_reduces + 1;
  let cands = ref [] in
  let ncands = ref 0 in
  for i = 0 to Vec.length t.learnts - 1 do
    let c = Vec.get t.learnts i in
    let h = t.arena.(c) in
    if (not (h_dead h)) && h_size h > 2 && t.arena.(c + 1) > 2
       && not (locked t c)
    then begin
      cands := c :: !cands;
      incr ncands
    end
  done;
  let arr = Array.make !ncands 0 in
  List.iteri (fun i c -> arr.(i) <- c) !cands;
  Array.sort
    (fun a b ->
      let ga = t.arena.(a + 1) and gb = t.arena.(b + 1) in
      if ga <> gb then Int.compare gb ga
      else Float.compare (act_get t a) (act_get t b))
    arr;
  let drop = Array.length arr / 2 in
  for i = 0 to drop - 1 do
    kill_clause t arr.(i)
  done;
  (* Compact the live-learnt list in place: O(live), and it keeps every
     later activity rescale and reduction O(live) too. *)
  if drop > 0 then begin
    let w = ref 0 in
    for i = 0 to Vec.length t.learnts - 1 do
      let c = Vec.get t.learnts i in
      if not (h_dead t.arena.(c)) then begin
        Vec.set t.learnts !w c;
        incr w
      end
    done;
    Vec.shrink t.learnts !w
  end;
  maybe_gc t

(* ---- clause addition (level 0 only) ---- *)

let add_clause t lits =
  cancel_until t 0;
  if not t.unsat then begin
    let lits = List.sort_uniq Int.compare lits in
    List.iter
      (fun l ->
        if l < 0 || var_of l >= t.nvars then
          invalid_arg "Solver.add_clause: unknown variable")
      lits;
    emit_input t lits;
    (* After sorting, a variable's two polarities are adjacent (2v and
       2v+1 differ only in bit 0), so tautology is one linear scan. *)
    let rec adjacent_taut = function
      | a :: (b :: _ as rest) -> a lxor b = 1 || adjacent_taut rest
      | _ -> false
    in
    let tauto =
      adjacent_taut lits || List.exists (fun l -> value_lit t l = 1) lits
    in
    if not tauto then begin
      (match List.filter (fun l -> value_lit t l <> 0) lits with
      | [] -> t.unsat <- true
      | [ l ] ->
        enqueue t l (-1);
        if propagate t <> None then t.unsat <- true
      | lits -> ignore (alloc_clause t (Array.of_list lits) false 0));
      if t.unsat then emit_learn t [||]
    end
  end

(* ---- search ---- *)

let luby i =
  (* Element i (0-based) of 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let k = ref 1 and size = ref 1 in
  while !size < i + 1 do
    incr k;
    size := (2 * !size) + 1
  done;
  let i = ref i in
  while !size - 1 <> !i do
    size := (!size - 1) / 2;
    decr k;
    i := !i mod !size
  done;
  float_of_int (1 lsl (!k - 1))

let pick_branch t =
  let rec go () =
    if t.heap_len = 0 then -1
    else
      let v = heap_pop t in
      if t.assign.(v) < 0 then v else go ()
  in
  go ()

let attach_learnt t lits glue =
  t.st_learned <- t.st_learned + 1;
  emit_learn t lits;
  if Array.length lits = 1 then enqueue t lits.(0) (-1)
  else begin
    let c = alloc_clause t lits true glue in
    cla_bump t c;
    enqueue t lits.(0) c
  end

(* Propagations between wall-clock reads while a deadline is set: rare
   enough that the clock never shows in profiles, frequent enough that a
   hard query overshoots its deadline by microseconds, not seconds. *)
let deadline_stride = 2048

(* Glue-aware restart postponement: when the exponential moving average
   of recent glue is clearly below the long-run average, the learnt
   clauses are unusually good — the search is digging somewhere
   productive, so a due Luby restart is deferred a short window instead
   of abandoning the spot. Both averages are per-call and deterministic. *)
let lbd_fast_horizon = 32.
let lbd_slow_horizon = 4096.
let postpone_factor = 0.9
let postpone_window = 50.
let postpone_warmup = 100

let search t ~assumptions ~conflict_limit ~deadline =
  let n_assumps = Array.length assumptions in
  let restart_base = 100. in
  let restarts = ref 0 in
  let conflicts_here = ref 0 in
  let next_restart = ref (restart_base *. luby 0) in
  let lbd_fast = ref 0. and lbd_slow = ref 0. in
  let result = ref None in
  let next_deadline_check =
    ref (match deadline with Some _ -> t.st_props + deadline_stride | None -> max_int)
  in
  while !result = None do
    if t.st_props >= !next_deadline_check then begin
      next_deadline_check := t.st_props + deadline_stride;
      match deadline with
      | Some d when Obs.Clock.now () > d -> result := Some Unknown
      | _ -> ()
    end;
    if !result = None then
    match propagate t with
    | Some cid ->
      t.st_conflicts <- t.st_conflicts + 1;
      incr conflicts_here;
      if decision_level t = 0 then begin
        t.unsat <- true;
        emit_learn t [||];
        result := Some Unsat
      end
      else begin
        let lits, blevel, glue = analyze t cid in
        lbd_fast := !lbd_fast +. ((float_of_int glue -. !lbd_fast) /. lbd_fast_horizon);
        lbd_slow := !lbd_slow +. ((float_of_int glue -. !lbd_slow) /. lbd_slow_horizon);
        if blevel < n_assumps && decision_level t <= n_assumps then begin
          (* The conflict clause is falsified by the assumptions alone:
             the assumption set is unsatisfiable. *)
          t.failed <- Array.to_list assumptions;
          cancel_until t blevel;
          attach_learnt t lits glue;
          result := Some Unsat
        end
        else begin
          cancel_until t blevel;
          attach_learnt t lits glue
        end;
        t.var_inc <- t.var_inc /. 0.95;
        t.cla_inc <- t.cla_inc /. 0.999;
        (match conflict_limit with
         | Some limit when !conflicts_here >= limit && !result = None ->
           result := Some Unknown
         | _ -> ());
        if !result = None && float_of_int !conflicts_here >= !next_restart
        then begin
          if
            !conflicts_here > postpone_warmup
            && !lbd_fast < postpone_factor *. !lbd_slow
          then
            (* Productive streak: check again shortly instead of
               restarting now. *)
            next_restart := float_of_int !conflicts_here +. postpone_window
          else begin
            incr restarts;
            next_restart :=
              float_of_int !conflicts_here +. (restart_base *. luby !restarts);
            cancel_until t (min n_assumps (decision_level t))
          end
        end;
        if !result = None && t.live_learnts > t.max_learnts then begin
          t.max_learnts <- t.max_learnts + (t.max_learnts / 2);
          reduce_db t
        end
      end
    | None ->
      if decision_level t < n_assumps then begin
        let a = assumptions.(decision_level t) in
        match value_lit t a with
        | 1 -> Vec.push t.trail_lim (Vec.length t.trail)
        | 0 ->
          t.failed <- [ a ];
          result := Some Unsat
        | _ ->
          t.st_decisions <- t.st_decisions + 1;
          Vec.push t.trail_lim (Vec.length t.trail);
          enqueue t a (-1)
      end
      else begin
        let v = pick_branch t in
        if v < 0 then result := Some Sat
        else begin
          t.st_decisions <- t.st_decisions + 1;
          Vec.push t.trail_lim (Vec.length t.trail);
          enqueue t (lit_of v (not t.phase.(v))) (-1)
        end
      end
  done;
  match !result with Some r -> r | None -> assert false

let solve ?(assumptions = []) ?conflict_limit ?deadline t =
  t.st_solves <- t.st_solves + 1;
  cancel_until t 0;
  t.failed <- [];
  (* Between queries is the cheapest moment to reclaim arena garbage:
     no deep trail to remap, and incremental callers (the sweep engine
     issues thousands of queries on one solver) would otherwise carry
     every dead slot forever. *)
  maybe_gc t;
  List.iter
    (fun a ->
      if a < 0 || var_of a >= t.nvars then
        invalid_arg "Solver.solve: unknown assumption variable")
    assumptions;
  if t.unsat then Unsat
  else if Obs.Fault.fires fault_force_unknown then Unknown
  else if
    (* An already-expired deadline answers [Unknown] immediately — tiny
       problems must not sneak a full search past the budget. *)
    match deadline with Some d -> Obs.Clock.now () > d | None -> false
  then Unknown
  else
    match propagate t with
    | Some _ ->
      t.unsat <- true;
      emit_learn t [||];
      Unsat
    | None ->
      let r =
        search t ~assumptions:(Array.of_list assumptions) ~conflict_limit
          ~deadline
      in
      let r =
        (* Lying-solver hook: report a satisfiable query as [Unsat]
           without marking the solver unsatisfiable. Uncertified callers
           believe the lie; a proof checker has no replayable conflict
           and rejects it. *)
        match r with
        | Sat when Obs.Fault.fires fault_flip_unsat -> Unsat
        | r -> r
      in
      (match r with
       | Sat ->
         (* The model is total by construction: every unassigned
            variable sits in the branching heap, and [Sat] is only
            reached once the heap is drained. *)
         assert (t.heap_len = 0);
         (* Lying-solver hook: flip the most recently propagated
            non-root variable, falsifying its reason clause — a bogus
            witness that model validation must catch. *)
         if Obs.Fault.fires fault_bogus_model then begin
           let i = ref (Vec.length t.trail - 1) in
           let v = ref (-1) in
           while !v < 0 && !i >= 0 do
             let u = var_of (Vec.get t.trail !i) in
             if t.reason.(u) >= 0 && t.vlevel.(u) > 0 then v := u;
             decr i
           done;
           if !v >= 0 then t.assign.(!v) <- 1 - t.assign.(!v)
         end
       | Unsat | Unknown -> cancel_until t 0);
      r

let value t l =
  let v = var_of l in
  if v >= t.nvars || t.assign.(v) < 0 then false
  else t.assign.(v) lxor sign_of l = 1

let var_value t v =
  if v >= t.nvars || t.assign.(v) < 0 then None else Some (t.assign.(v) = 1)

let model t = Array.init t.nvars (fun v -> t.assign.(v) = 1)

let failed_assumptions t = t.failed

(* ---- introspection ---- *)

let live_learnts t = t.live_learnts
let arena_words t = t.arena_len
let arena_wasted t = t.wasted
let gc_count t = t.st_gcs

let debug_count_learnts t =
  let n = ref 0 in
  let c = ref 0 in
  while !c < t.arena_len do
    let h = t.arena.(!c) in
    if h_learnt h = 1 && not (h_dead h) then incr n;
    c := !c + clause_words h
  done;
  !n

let stats t =
  {
    decisions = t.st_decisions;
    conflicts = t.st_conflicts;
    propagations = t.st_props;
    learned = t.st_learned;
    solve_calls = t.st_solves;
    reductions = t.st_reduces;
    gcs = t.st_gcs;
  }

let stats_assoc t =
  [
    ("decisions", t.st_decisions);
    ("conflicts", t.st_conflicts);
    ("propagations", t.st_props);
    ("learned", t.st_learned);
    ("solve_calls", t.st_solves);
    ("db_reductions", t.st_reduces);
    ("arena_gcs", t.st_gcs);
  ]

let pp_stats ppf t =
  Format.fprintf ppf "vars=%d clauses=%d decisions=%d conflicts=%d props=%d"
    t.nvars
    (t.orig_clauses + t.live_learnts)
    t.st_decisions t.st_conflicts t.st_props
