module Vec = Sutil.Vec

(* Robustness-test hook: when armed, a solve call answers [Unknown]
   without searching — the callers' degraded path must cope. *)
let fault_force_unknown = Obs.Fault.register "sat.force_unknown"

(* Adversarial lying-solver hooks, exempt from the pessimistic-only
   fault contract (see Obs.Fault): they fabricate wrong answers so the
   test suite can demonstrate that certification catches them. Only
   meaningful when a proof checker audits this solver. *)
let fault_flip_unsat = Obs.Fault.register "sat.flip_unsat"
let fault_corrupt_proof = Obs.Fault.register "sat.corrupt_proof"
let fault_bogus_model = Obs.Fault.register "sat.bogus_model"

type result = Sat | Unsat | Unknown

type proof_step =
  | P_input of int array
  | P_learn of int array
  | P_delete of int array

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  solve_calls : int;
}

(* Clauses live in a growable table addressed by id; watch lists hold
   clause ids. Learnt clauses carry an activity for garbage collection;
   dead clauses are skipped (and unhooked) lazily during propagation. *)
type clause = {
  lits : int array; (* content is permuted in place by propagation *)
  learnt : bool;
  mutable act : float;
  mutable dead : bool;
}

type t = {
  mutable clauses : clause array;
  mutable num_clauses : int;
  mutable watches : Vec.t array; (* per literal: clause ids watching it *)
  (* per-variable state *)
  mutable assign : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable vlevel : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable activity : float array;
  mutable phase : bool array; (* saved polarity *)
  mutable heap_pos : int array;
  mutable heap : int array;
  mutable heap_len : int;
  mutable seen : int array; (* analyze scratch *)
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable nvars : int;
  mutable unsat : bool;
  mutable failed : int list;
  mutable st_decisions : int;
  mutable st_conflicts : int;
  mutable st_props : int;
  mutable st_learned : int;
  mutable st_solves : int;
  mutable live_learnts : int;
  mutable max_learnts : int;
  mutable proof : (proof_step -> unit) option;
}

let lit v = v lsl 1
let neg l = l lxor 1
let lit_of v negated = (v lsl 1) lor (if negated then 1 else 0)
let var_of l = l lsr 1
let sign_of l = l land 1

let dead_clause = { lits = [||]; learnt = false; act = 0.; dead = true }

let create () =
  {
    clauses = Array.make 64 dead_clause;
    num_clauses = 0;
    watches = [||];
    assign = [||];
    vlevel = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    heap_pos = [||];
    heap = Array.make 16 0;
    heap_len = 0;
    seen = [||];
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    nvars = 0;
    unsat = false;
    failed = [];
    st_decisions = 0;
    st_conflicts = 0;
    st_props = 0;
    st_learned = 0;
    st_solves = 0;
    live_learnts = 0;
    max_learnts = 3000;
    proof = None;
  }

let num_vars t = t.nvars

let set_proof_logger t f = t.proof <- f

(* ---- proof emission ----

   Every change to the clause database is streamed to the logger:
   original clauses as [P_input] (post-normalization, pre-filtering, so
   the log matches what the caller stated), learnt clauses as [P_learn],
   garbage-collected learnts as [P_delete]. A root-level conflict emits
   the empty [P_learn], terminating a DRUP refutation. Arrays handed to
   the logger are fresh copies: clause literals are permuted in place by
   propagation afterwards. *)

let emit_input t lits =
  match t.proof with
  | None -> ()
  | Some f -> f (P_input (Array.of_list lits))

let emit_learn t lits =
  match t.proof with
  | None -> ()
  | Some f ->
    let lits = Array.copy lits in
    (* Lying-solver hook: corrupt the logged copy (never the solver's
       own clause) so tests can show the checker rejects the line. *)
    if Array.length lits > 0 && Obs.Fault.fires fault_corrupt_proof then
      lits.(0) <- lits.(0) lxor 1;
    f (P_learn lits)

let emit_delete t lits =
  match t.proof with
  | None -> ()
  | Some f -> f (P_delete (Array.copy lits))

(* ---- max-activity binary heap over variables ---- *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_len && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_len && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    if t.heap_len = Array.length t.heap then begin
      let h = Array.make (2 * t.heap_len) 0 in
      Array.blit t.heap 0 h 0 t.heap_len;
      t.heap <- h
    end;
    t.heap.(t.heap_len) <- v;
    t.heap_pos.(v) <- t.heap_len;
    t.heap_len <- t.heap_len + 1;
    heap_up t (t.heap_len - 1)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_len > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_len);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  v

let heap_decrease t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let old = Array.length t.assign in
  if t.nvars > old then begin
    let n = max t.nvars (max 16 (2 * old)) in
    let extend a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 old;
      b
    in
    t.assign <- extend t.assign (-1);
    t.vlevel <- extend t.vlevel 0;
    t.reason <- extend t.reason (-1);
    t.activity <- extend t.activity 0.;
    t.phase <- extend t.phase false;
    t.heap_pos <- extend t.heap_pos (-1);
    t.seen <- extend t.seen 0;
    let oldw = Array.length t.watches in
    let neww = Array.make (2 * n) (Vec.create ()) in
    Array.blit t.watches 0 neww 0 oldw;
    for i = oldw to (2 * n) - 1 do
      neww.(i) <- Vec.create ~capacity:4 ()
    done;
    t.watches <- neww
  end;
  heap_insert t v;
  v

(* ---- assignment ---- *)

let value_lit t l =
  let a = t.assign.(var_of l) in
  if a < 0 then -1 else a lxor sign_of l

let decision_level t = Vec.length t.trail_lim

let enqueue t l reason =
  let v = var_of l in
  assert (t.assign.(v) < 0);
  t.assign.(v) <- 1 lxor sign_of l;
  t.vlevel.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- sign_of l = 0;
  Vec.push t.trail l

let cancel_until t level =
  if decision_level t > level then begin
    let keep = Vec.get t.trail_lim level in
    for i = Vec.length t.trail - 1 downto keep do
      let v = var_of (Vec.get t.trail i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    Vec.shrink t.trail keep;
    Vec.shrink t.trail_lim level;
    t.qhead <- keep
  end

(* ---- clause management ---- *)

let alloc_clause t lits learnt =
  if t.num_clauses = Array.length t.clauses then begin
    let c = Array.make (2 * t.num_clauses) dead_clause in
    Array.blit t.clauses 0 c 0 t.num_clauses;
    t.clauses <- c
  end;
  let id = t.num_clauses in
  t.clauses.(id) <- { lits; learnt; act = 0.; dead = false };
  t.num_clauses <- id + 1;
  if learnt then t.live_learnts <- t.live_learnts + 1;
  Vec.push t.watches.(neg lits.(0)) id;
  Vec.push t.watches.(neg lits.(1)) id;
  id

let cla_bump t c =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to t.num_clauses - 1 do
      let d = t.clauses.(i) in
      if d.learnt && not d.dead then d.act <- d.act *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 0 to t.nvars - 1 do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_decrease t v

(* ---- propagation ---- *)

exception Conflict of int

let propagate t =
  try
    while t.qhead < Vec.length t.trail do
      let l = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.st_props <- t.st_props + 1;
      let ws = t.watches.(l) in
      let n = Vec.length ws in
      let i = ref 0 and j = ref 0 in
      (try
         while !i < n do
           let cid = Vec.get ws !i in
           incr i;
           let c = t.clauses.(cid) in
           if not c.dead then begin
             let lits = c.lits in
             let falsified = neg l in
             if lits.(0) = falsified then begin
               lits.(0) <- lits.(1);
               lits.(1) <- falsified
             end;
             if value_lit t lits.(0) = 1 then begin
               Vec.set ws !j cid;
               incr j
             end
             else begin
               let found = ref false in
               let k = ref 2 in
               let len = Array.length lits in
               while (not !found) && !k < len do
                 if value_lit t lits.(!k) <> 0 then begin
                   lits.(1) <- lits.(!k);
                   lits.(!k) <- falsified;
                   Vec.push t.watches.(neg lits.(1)) cid;
                   found := true
                 end;
                 incr k
               done;
               if not !found then begin
                 Vec.set ws !j cid;
                 incr j;
                 if value_lit t lits.(0) = 0 then begin
                   while !i < n do
                     Vec.set ws !j (Vec.get ws !i);
                     incr i;
                     incr j
                   done;
                   Vec.shrink ws !j;
                   raise (Conflict cid)
                 end
                 else enqueue t lits.(0) cid
               end
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict cid -> Some cid

(* ---- first-UIP conflict analysis ---- *)

let lit_redundant t l =
  let r = t.reason.(var_of l) in
  r >= 0
  && Array.for_all
       (fun q ->
         var_of q = var_of l
         || t.seen.(var_of q) = 1
         || t.vlevel.(var_of q) = 0)
       t.clauses.(r).lits

let analyze t conflict =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let pvar = ref (-1) in
  let idx = ref (Vec.length t.trail - 1) in
  let cid = ref conflict in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!cid) in
    if c.learnt then cla_bump t c;
    Array.iter
      (fun q ->
        (* Skip the literal whose reason we are expanding. *)
        if var_of q <> !pvar && t.seen.(var_of q) = 0 && t.vlevel.(var_of q) > 0
        then begin
          t.seen.(var_of q) <- 1;
          var_bump t (var_of q);
          if t.vlevel.(var_of q) >= decision_level t then incr path
          else learnt := q :: !learnt
        end)
      c.lits;
    while t.seen.(var_of (Vec.get t.trail !idx)) = 0 do
      decr idx
    done;
    let l = Vec.get t.trail !idx in
    decr idx;
    t.seen.(var_of l) <- 0;
    p := neg l;
    pvar := var_of l;
    decr path;
    if !path <= 0 then continue := false
    else begin
      assert (t.reason.(var_of l) >= 0);
      cid := t.reason.(var_of l)
    end
  done;
  let uip = !p in
  let minimized = List.filter (fun q -> not (lit_redundant t q)) !learnt in
  List.iter (fun q -> t.seen.(var_of q) <- 0) !learnt;
  let lits = Array.of_list (uip :: minimized) in
  let blevel =
    if Array.length lits = 1 then 0
    else begin
      let best = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if t.vlevel.(var_of lits.(i)) > t.vlevel.(var_of lits.(!best)) then
          best := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!best);
      lits.(!best) <- tmp;
      t.vlevel.(var_of lits.(1))
    end
  in
  (lits, blevel)

(* ---- learnt-clause DB reduction ---- *)

let locked t cid =
  let c = t.clauses.(cid) in
  Array.length c.lits > 0
  &&
  let l = c.lits.(0) in
  value_lit t l = 1 && t.reason.(var_of l) = cid

let reduce_db t =
  let learnts = ref [] in
  for i = 0 to t.num_clauses - 1 do
    let c = t.clauses.(i) in
    if c.learnt && (not c.dead) && (not (locked t i)) && Array.length c.lits > 2
    then learnts := i :: !learnts
  done;
  let arr = Array.of_list !learnts in
  Array.sort (fun a b -> compare t.clauses.(a).act t.clauses.(b).act) arr;
  let drop = Array.length arr / 2 in
  for i = 0 to drop - 1 do
    emit_delete t t.clauses.(arr.(i)).lits;
    t.clauses.(arr.(i)).dead <- true;
    t.live_learnts <- t.live_learnts - 1
  done

(* ---- clause addition (level 0 only) ---- *)

let add_clause t lits =
  cancel_until t 0;
  if not t.unsat then begin
    let lits = List.sort_uniq compare lits in
    List.iter
      (fun l ->
        if l < 0 || var_of l >= t.nvars then
          invalid_arg "Solver.add_clause: unknown variable")
      lits;
    emit_input t lits;
    let tauto =
      List.exists (fun l -> sign_of l = 0 && List.mem (neg l) lits) lits
      || List.exists (fun l -> value_lit t l = 1) lits
    in
    if not tauto then begin
      (match List.filter (fun l -> value_lit t l <> 0) lits with
      | [] -> t.unsat <- true
      | [ l ] ->
        enqueue t l (-1);
        if propagate t <> None then t.unsat <- true
      | lits -> ignore (alloc_clause t (Array.of_list lits) false));
      if t.unsat then emit_learn t [||]
    end
  end

(* ---- search ---- *)

let luby i =
  (* Element i (0-based) of 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let k = ref 1 and size = ref 1 in
  while !size < i + 1 do
    incr k;
    size := (2 * !size) + 1
  done;
  let i = ref i in
  while !size - 1 <> !i do
    size := (!size - 1) / 2;
    decr k;
    i := !i mod !size
  done;
  float_of_int (1 lsl (!k - 1))

let pick_branch t =
  let rec go () =
    if t.heap_len = 0 then -1
    else
      let v = heap_pop t in
      if t.assign.(v) < 0 then v else go ()
  in
  go ()

let attach_learnt t lits =
  t.st_learned <- t.st_learned + 1;
  emit_learn t lits;
  if Array.length lits = 1 then enqueue t lits.(0) (-1)
  else begin
    let id = alloc_clause t lits true in
    cla_bump t t.clauses.(id);
    enqueue t lits.(0) id
  end

(* Propagations between wall-clock reads while a deadline is set: rare
   enough that the clock never shows in profiles, frequent enough that a
   hard query overshoots its deadline by microseconds, not seconds. *)
let deadline_stride = 2048

let search t ~assumptions ~conflict_limit ~deadline =
  let n_assumps = Array.length assumptions in
  let restart_base = 100. in
  let restarts = ref 0 in
  let conflicts_here = ref 0 in
  let next_restart = ref (restart_base *. luby 0) in
  let result = ref None in
  let next_deadline_check =
    ref (match deadline with Some _ -> t.st_props + deadline_stride | None -> max_int)
  in
  while !result = None do
    if t.st_props >= !next_deadline_check then begin
      next_deadline_check := t.st_props + deadline_stride;
      match deadline with
      | Some d when Obs.Clock.now () > d -> result := Some Unknown
      | _ -> ()
    end;
    if !result = None then
    match propagate t with
    | Some cid ->
      t.st_conflicts <- t.st_conflicts + 1;
      incr conflicts_here;
      if decision_level t = 0 then begin
        t.unsat <- true;
        emit_learn t [||];
        result := Some Unsat
      end
      else begin
        let lits, blevel = analyze t cid in
        if blevel < n_assumps && decision_level t <= n_assumps then begin
          (* The conflict clause is falsified by the assumptions alone:
             the assumption set is unsatisfiable. *)
          t.failed <- Array.to_list assumptions;
          cancel_until t blevel;
          attach_learnt t lits;
          result := Some Unsat
        end
        else begin
          cancel_until t blevel;
          attach_learnt t lits
        end;
        t.var_inc <- t.var_inc /. 0.95;
        t.cla_inc <- t.cla_inc /. 0.999;
        (match conflict_limit with
         | Some limit when !conflicts_here >= limit && !result = None ->
           result := Some Unknown
         | _ -> ());
        if !result = None && float_of_int !conflicts_here >= !next_restart
        then begin
          incr restarts;
          next_restart :=
            float_of_int !conflicts_here +. (restart_base *. luby !restarts);
          cancel_until t (min n_assumps (decision_level t))
        end;
        if !result = None && t.live_learnts > t.max_learnts then begin
          t.max_learnts <- t.max_learnts + (t.max_learnts / 2);
          reduce_db t
        end
      end
    | None ->
      if decision_level t < n_assumps then begin
        let a = assumptions.(decision_level t) in
        match value_lit t a with
        | 1 -> Vec.push t.trail_lim (Vec.length t.trail)
        | 0 ->
          t.failed <- [ a ];
          result := Some Unsat
        | _ ->
          t.st_decisions <- t.st_decisions + 1;
          Vec.push t.trail_lim (Vec.length t.trail);
          enqueue t a (-1)
      end
      else begin
        let v = pick_branch t in
        if v < 0 then result := Some Sat
        else begin
          t.st_decisions <- t.st_decisions + 1;
          Vec.push t.trail_lim (Vec.length t.trail);
          enqueue t (lit_of v (not t.phase.(v))) (-1)
        end
      end
  done;
  match !result with Some r -> r | None -> assert false

let solve ?(assumptions = []) ?conflict_limit ?deadline t =
  t.st_solves <- t.st_solves + 1;
  cancel_until t 0;
  t.failed <- [];
  List.iter
    (fun a ->
      if a < 0 || var_of a >= t.nvars then
        invalid_arg "Solver.solve: unknown assumption variable")
    assumptions;
  if t.unsat then Unsat
  else if Obs.Fault.fires fault_force_unknown then Unknown
  else if
    (* An already-expired deadline answers [Unknown] immediately — tiny
       problems must not sneak a full search past the budget. *)
    match deadline with Some d -> Obs.Clock.now () > d | None -> false
  then Unknown
  else
    match propagate t with
    | Some _ ->
      t.unsat <- true;
      emit_learn t [||];
      Unsat
    | None ->
      let r =
        search t ~assumptions:(Array.of_list assumptions) ~conflict_limit
          ~deadline
      in
      let r =
        (* Lying-solver hook: report a satisfiable query as [Unsat]
           without marking the solver unsatisfiable. Uncertified callers
           believe the lie; a proof checker has no replayable conflict
           and rejects it. *)
        match r with
        | Sat when Obs.Fault.fires fault_flip_unsat -> Unsat
        | r -> r
      in
      (match r with
       | Sat ->
         (* The model is total by construction: every unassigned
            variable sits in the branching heap, and [Sat] is only
            reached once the heap is drained. *)
         assert (t.heap_len = 0);
         (* Lying-solver hook: flip the most recently propagated
            non-root variable, falsifying its reason clause — a bogus
            witness that model validation must catch. *)
         if Obs.Fault.fires fault_bogus_model then begin
           let i = ref (Vec.length t.trail - 1) in
           let v = ref (-1) in
           while !v < 0 && !i >= 0 do
             let u = var_of (Vec.get t.trail !i) in
             if t.reason.(u) >= 0 && t.vlevel.(u) > 0 then v := u;
             decr i
           done;
           if !v >= 0 then t.assign.(!v) <- 1 - t.assign.(!v)
         end
       | Unsat | Unknown -> cancel_until t 0);
      r

let value t l =
  let v = var_of l in
  if v >= t.nvars || t.assign.(v) < 0 then false
  else t.assign.(v) lxor sign_of l = 1

let var_value t v =
  if v >= t.nvars || t.assign.(v) < 0 then None else Some (t.assign.(v) = 1)

let model t = Array.init t.nvars (fun v -> t.assign.(v) = 1)

let failed_assumptions t = t.failed

let stats t =
  {
    decisions = t.st_decisions;
    conflicts = t.st_conflicts;
    propagations = t.st_props;
    learned = t.st_learned;
    solve_calls = t.st_solves;
  }

let stats_assoc t =
  [
    ("decisions", t.st_decisions);
    ("conflicts", t.st_conflicts);
    ("propagations", t.st_props);
    ("learned", t.st_learned);
    ("solve_calls", t.st_solves);
  ]

let pp_stats ppf t =
  Format.fprintf ppf "vars=%d clauses=%d decisions=%d conflicts=%d props=%d"
    t.nvars t.num_clauses t.st_decisions t.st_conflicts t.st_props
