(** Lazy Tseitin encoding of AIG cones into a {!Solver}.

    Nodes are encoded on demand: asking for a node's solver variable
    encodes exactly its transitive fanin, so sweeping queries over small
    cones never pay for the whole network. The environment is persistent
    across queries — the incremental-SAT usage pattern of the sweepers:
    one solver per network, cones accumulate, equivalence checks run
    under assumptions on fresh selector variables that are retired
    afterwards. *)

type env

val create : Aig.Network.t -> Solver.t -> env

val var_of_node : env -> int -> int
(** Solver variable of an AIG node (encoding its cone if needed).
    Node 0 yields a variable constrained to false. *)

val lit_of : env -> Aig.Lit.t -> int
(** Solver literal for an AIG literal. *)

val is_encoded : env -> int -> bool

type equiv_result =
  | Equivalent
  | Counterexample of bool array
      (** PI assignment (length [num_pis]) distinguishing the two
          literals; PIs outside the encoded cones default to [false]. *)
  | Undetermined  (** conflict budget exhausted — the paper's [unDET] *)
  | Uncertified of string
      (** certified mode only: the solver answered, but its certificate
          failed to replay — treat like a resource failure, never trust
          the answer *)

val check_equiv :
  ?conflict_limit:int ->
  ?deadline:float ->
  ?certify:Drup.t ->
  ?assume:int list ->
  env ->
  Aig.Lit.t ->
  Aig.Lit.t ->
  equiv_result
(** Miter query: satisfiable iff the two literals differ on some input.
    Each call uses a fresh selector variable retired afterwards, keeping
    the solver reusable. [deadline] (absolute wall clock) also yields
    [Undetermined], so one hard pair cannot blow a sweep's budget.
    [assume] adds extra solver literals (see {!lit_of}/{!var_of_node})
    to the query's assumptions — cube-and-conquer restricts a hard miter
    to one cube per call; [Equivalent] then only means "equivalent on
    this cube", and an UNSAT certificate replays under the same cube. *)

val check_const :
  ?conflict_limit:int ->
  ?deadline:float ->
  ?certify:Drup.t ->
  ?assume:int list ->
  env ->
  Aig.Lit.t ->
  bool ->
  equiv_result
(** [check_const env l b] — whether [l] is the constant [b]. *)
