exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let fail_at line fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

(* Robustness-test hook: randomly truncate the raw text before parsing. *)
let fault_truncate = Obs.Fault.register "parse.truncate"

(* Cap the header counts so a hostile [p cnf] line cannot make [load]
   allocate billions of solver variables. *)
let max_header_field = 1 lsl 30

let parse text =
  let text = Obs.Fault.truncate fault_truncate text in
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let num_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_int ln v =
    if v = 0 then begin
      clauses := List.rev !current :: !clauses;
      current := []
    end
    else begin
      (* [abs min_int] is still negative; reject it explicitly. *)
      if v = min_int then fail_at ln "literal out of range";
      let var = abs v - 1 in
      if var >= !num_vars then fail_at ln "literal %d out of declared range" v;
      current := Solver.lit_of var (v < 0) :: !current
    end
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ "p"; "cnf"; v; c ] ->
          if !num_vars >= 0 then fail_at ln "duplicate p cnf header";
          (match (int_of_string_opt v, int_of_string_opt c) with
           | Some v, Some c
             when v >= 0 && v <= max_header_field && c >= 0
                  && c <= max_header_field ->
             num_vars := v;
             num_clauses := c
           | _ -> fail_at ln "bad p line: %s" line)
        | _ -> fail_at ln "bad p line: %s" line
      end
      else begin
        if !num_vars < 0 then fail_at ln "clause before p cnf header";
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | Some v -> handle_int ln v
               | None -> fail_at ln "not an integer: %s" tok)
      end)
    lines;
  if !current <> [] then fail "clause not terminated by 0";
  if !num_vars < 0 then fail "missing p cnf header";
  (!num_vars, List.rev !clauses)

let load solver text =
  let num_vars, clauses = parse text in
  for _ = 1 to num_vars - Solver.num_vars solver do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses

(* ---- DRUP proof text ----

   The drat-trim lingua franca: one clause per line in DIMACS literal
   numbering, zero-terminated; deletions prefixed with [d]. Input
   clauses live in the CNF file, not the proof, so [P_input] renders to
   nothing. *)

let render_drup_lits buf lits =
  Array.iter
    (fun l ->
      let v = (l lsr 1) + 1 in
      Buffer.add_string buf
        (Printf.sprintf "%d " (if l land 1 = 1 then -v else v)))
    lits;
  Buffer.add_string buf "0\n"

let proof_line step =
  match step with
  | Solver.P_input _ -> None
  | Solver.P_learn lits ->
    let buf = Buffer.create 32 in
    render_drup_lits buf lits;
    Some (Buffer.contents buf)
  | Solver.P_delete lits ->
    let buf = Buffer.create 32 in
    Buffer.add_string buf "d ";
    render_drup_lits buf lits;
    Some (Buffer.contents buf)

let parse_proof text =
  let steps = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let ln = i + 1 in
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else begin
           let toks =
             String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
           in
           let deletion, toks =
             match toks with "d" :: rest -> (true, rest) | _ -> (false, toks)
           in
           let lits = ref [] in
           let terminated = ref false in
           List.iter
             (fun tok ->
               if !terminated then
                 fail_at ln "trailing tokens after the 0 terminator";
               match int_of_string_opt tok with
               | Some 0 -> terminated := true
               | Some v ->
                 if v = min_int then fail_at ln "literal out of range";
                 let var = abs v - 1 in
                 if var >= max_header_field then
                   fail_at ln "literal %d out of range" v;
                 lits := Solver.lit_of var (v < 0) :: !lits
               | None -> fail_at ln "not an integer: %s" tok)
             toks;
           if not !terminated then fail_at ln "clause not terminated by 0";
           let lits = List.rev !lits in
           steps := (if deletion then `Delete lits else `Add lits) :: !steps
         end);
  List.rev !steps

let print ~num_vars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let v = (l lsr 1) + 1 in
          Buffer.add_string buf
            (Printf.sprintf "%d " (if l land 1 = 1 then -v else v)))
        clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf
