module A = Aig.Network
module L = Aig.Lit
module T = Tt.Truth_table

type cut = { leaves : int array; sign : int }

let leaves c = c.leaves

let signature leaves =
  Array.fold_left (fun s n -> s lor (1 lsl (n mod 63))) 0 leaves

let cut_of_leaves leaves = { leaves; sign = signature leaves }

(* Merge two ascending leaf arrays; None if the union exceeds k. *)
let merge k a b =
  let la = Array.length a.leaves and lb = Array.length b.leaves in
  let out = Array.make (la + lb) 0 in
  let rec go i j o =
    if i < la && j < lb then begin
      let x = a.leaves.(i) and y = b.leaves.(j) in
      if x = y then begin
        out.(o) <- x;
        go (i + 1) (j + 1) (o + 1)
      end
      else if x < y then begin
        out.(o) <- x;
        go (i + 1) j (o + 1)
      end
      else begin
        out.(o) <- y;
        go i (j + 1) (o + 1)
      end
    end
    else begin
      let rem_src, rem_i, rem_len =
        if i < la then (a.leaves, i, la) else (b.leaves, j, lb)
      in
      let o = ref o in
      for p = rem_i to rem_len - 1 do
        out.(!o) <- rem_src.(p);
        incr o
      done;
      !o
    end
  in
  let len = go 0 0 0 in
  if len > k then None else Some (cut_of_leaves (Array.sub out 0 len))

let subset a b =
  (* whether a's leaves are a subset of b's (both ascending) *)
  a.sign land lnot b.sign = 0
  &&
  let la = Array.length a.leaves and lb = Array.length b.leaves in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.leaves.(i) = b.leaves.(j) then go (i + 1) (j + 1)
    else if a.leaves.(i) > b.leaves.(j) then go i (j + 1)
    else false
  in
  la <= lb && go 0 0

let equal_cut a b = a.sign = b.sign && a.leaves = b.leaves

let enumerate net ~k ?(max_cuts = 12) () =
  if k < 2 then invalid_arg "Cuts.enumerate: k must be at least 2";
  let n = A.num_nodes net in
  let cuts = Array.make n [] in
  cuts.(0) <- [ cut_of_leaves [||] ];
  A.iter_nodes net (fun nd ->
      match A.kind net nd with
      | A.Const -> ()
      | A.Pi _ -> cuts.(nd) <- [ cut_of_leaves [| nd |] ]
      | A.And ->
        let c0 = cuts.(L.node (A.fanin0 net nd)) in
        let c1 = cuts.(L.node (A.fanin1 net nd)) in
        let merged = ref [] in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                match merge k a b with
                | None -> ()
                | Some c ->
                  (* Drop dominated cuts: keep c only if no kept cut is a
                     subset of it; remove kept cuts it dominates. *)
                  if not (List.exists (fun d -> subset d c) !merged) then
                    merged :=
                      c :: List.filter (fun d -> not (subset c d)) !merged)
              c1)
          c0;
        let by_size =
          List.sort
            (fun a b ->
              Int.compare (Array.length a.leaves) (Array.length b.leaves))
            !merged
        in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: rest -> x :: take (n - 1) rest
        in
        let kept = take (max_cuts - 1) by_size in
        let trivial = cut_of_leaves [| nd |] in
        cuts.(nd) <-
          trivial :: List.filter (fun c -> not (equal_cut c trivial)) kept);
  cuts

let cone_nodes net root cut =
  let on_boundary n = Array.exists (( = ) n) cut.leaves in
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      if (not (on_boundary n)) && A.is_and net n then begin
        visit (L.node (A.fanin0 net n));
        visit (L.node (A.fanin1 net n));
        out := n :: !out
      end
    end
  in
  visit root;
  List.rev !out

let cut_function net root cut =
  let k = Array.length cut.leaves in
  let table = Hashtbl.create 16 in
  Array.iteri (fun i leaf -> Hashtbl.replace table leaf (T.nth_var k i)) cut.leaves;
  Hashtbl.replace table 0 (T.const0 k);
  let nodes = cone_nodes net root cut in
  List.iter
    (fun nd ->
      let f l =
        let t = Hashtbl.find table (L.node l) in
        if L.is_compl l then T.not_ t else t
      in
      Hashtbl.replace table nd (T.and_ (f (A.fanin0 net nd)) (f (A.fanin1 net nd))))
    nodes;
  match Hashtbl.find_opt table root with
  | Some t -> t
  | None -> invalid_arg "Cuts.cut_function: leaves do not cover the root"
