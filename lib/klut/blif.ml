module K = Network
module T = Tt.Truth_table

exception Parse_error of string

let fail_at line fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s)))
    fmt

(* Robustness-test hook: randomly truncate the raw text before parsing. *)
let fault_truncate = Obs.Fault.register "parse.truncate"

(* A [.names] block with [k] inputs materializes a 2^k-bit truth table;
   cap [k] so hostile input cannot demand gigabytes. Legitimate k-LUT
   networks in this repo use k <= 16. *)
let max_lut_fanins = 20

(* ---- writing ---- *)

let write net =
  let buf = Buffer.create 4096 in
  let name n =
    if K.is_pi net n then Printf.sprintf "pi%d" (K.pi_index net n)
    else Printf.sprintf "n%d" n
  in
  Buffer.add_string buf ".model klut\n";
  Buffer.add_string buf ".inputs";
  for i = 0 to K.num_pis net - 1 do
    Buffer.add_string buf (Printf.sprintf " pi%d" i)
  done;
  Buffer.add_string buf "\n.outputs";
  for o = 0 to K.num_pos net - 1 do
    Buffer.add_string buf (Printf.sprintf " po%d" o)
  done;
  Buffer.add_char buf '\n';
  K.iter_luts net (fun nd ->
      let fanins = K.fanins net nd in
      let f = K.func net nd in
      Buffer.add_string buf ".names";
      Array.iter (fun fi -> Buffer.add_string buf (" " ^ name fi)) fanins;
      Buffer.add_string buf (" " ^ name nd);
      Buffer.add_char buf '\n';
      (* On-set rows, one minterm per line (no cover minimization). *)
      let k = Array.length fanins in
      for i = 0 to (1 lsl k) - 1 do
        if T.get f i then begin
          for j = 0 to k - 1 do
            Buffer.add_char buf (if (i lsr j) land 1 = 1 then '1' else '0')
          done;
          Buffer.add_string buf " 1\n"
        end
      done);
  for o = 0 to K.num_pos net - 1 do
    let nd, compl = K.po net o in
    (* Output buffer/inverter as a 1-input .names. *)
    Buffer.add_string buf (Printf.sprintf ".names %s po%d\n" (name nd) o);
    Buffer.add_string buf (if compl then "0 1\n" else "1 1\n")
  done;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path net =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write net))

(* ---- reading ---- *)

type cover_row = { mask : string; value : bool }

let tt_of_cover ~ln k rows =
  (* Rows are in on-set or off-set form; BLIF requires uniform output
     values within one block. *)
  match rows with
  | [] -> T.const0 k
  | { value = v0; _ } :: _ ->
    if not (List.for_all (fun r -> r.value = v0) rows) then
      fail_at ln "mixed on-set and off-set rows in one .names block";
    let covered = ref (T.const0 k) in
    List.iter
      (fun { mask; _ } ->
        if String.length mask <> k then fail_at ln "cover row width mismatch";
        let cube = ref (T.const1 k) in
        String.iteri
          (fun j c ->
            match c with
            | '1' -> cube := T.and_ !cube (T.nth_var k j)
            | '0' -> cube := T.and_ !cube (T.not_ (T.nth_var k j))
            | '-' -> ()
            | _ -> fail_at ln "bad cover character %C" c)
          mask;
        covered := T.or_ !covered !cube)
      rows;
    if v0 then !covered else T.not_ !covered

(* A .names block with no input columns defines a constant. *)
let constant_block ~ln rows =
  match rows with
  | [] -> false
  | [ { mask = ""; value } ] -> value
  | _ -> fail_at ln "bad constant .names block"

let read text =
  let text = Obs.Fault.truncate fault_truncate text in
  (* Number physical lines 1-based, strip comments, then join
     continuation lines (trailing backslash) under the first line's
     number so diagnostics point at the start of the construct. *)
  let physical =
    String.split_on_char '\n' text
    |> List.mapi (fun i l ->
           let l =
             match String.index_opt l '#' with
             | Some j -> String.sub l 0 j
             | None -> l
           in
           (i + 1, String.trim l))
  in
  let lines =
    let rec join acc = function
      | [] -> List.rev acc
      | (ln, l) :: rest ->
        let rec absorb l rest =
          let k = String.length l in
          if k > 0 && l.[k - 1] = '\\' then
            let head = String.sub l 0 (k - 1) in
            match rest with
            | (_, l2) :: rest2 -> absorb (String.trim (head ^ " " ^ l2)) rest2
            | [] -> (String.trim head, [])
          else (l, rest)
        in
        let joined, rest = absorb l rest in
        if joined = "" then join acc rest else join ((ln, joined) :: acc) rest
    in
    join [] physical
  in
  let net = K.create () in
  let signals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let outputs = ref [] in
  let pending : (int * string list * string * cover_row list) option ref =
    ref None
  in
  let flush_pending () =
    match !pending with
    | None -> ()
    | Some (ln, inputs, out, rows_rev) ->
      pending := None;
      let rows = List.rev rows_rev in
      let node =
        match inputs with
        | [] ->
          (* constant *)
          let v = constant_block ~ln rows in
          let k = K.add_lut net [||] (if v then T.const1 0 else T.const0 0) in
          k
        | _ ->
          let fanins =
            Array.of_list
              (List.map
                 (fun s ->
                   match Hashtbl.find_opt signals s with
                   | Some n -> n
                   | None -> fail_at ln "undefined signal %s" s)
                 inputs)
          in
          K.add_lut net fanins (tt_of_cover ~ln (Array.length fanins) rows)
      in
      Hashtbl.replace signals out node
  in
  let words l =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  List.iter
    (fun (ln, line) ->
      match words line with
      | ".model" :: _ -> ()
      | ".inputs" :: names ->
        flush_pending ();
        List.iter
          (fun s ->
            if Hashtbl.mem signals s then fail_at ln "duplicate input %s" s;
            Hashtbl.replace signals s (K.add_pi net))
          names
      | ".outputs" :: names ->
        flush_pending ();
        outputs := !outputs @ List.map (fun s -> (ln, s)) names
      | ".names" :: rest ->
        flush_pending ();
        (match List.rev rest with
         | out :: inputs_rev ->
           let inputs = List.rev inputs_rev in
           if List.length inputs > max_lut_fanins then
             fail_at ln ".names block with %d inputs exceeds the %d-input limit"
               (List.length inputs) max_lut_fanins;
           pending := Some (ln, inputs, out, [])
         | [] -> fail_at ln ".names without signals")
      | [ ".end" ] -> flush_pending ()
      | (".latch" | ".subckt" | ".gate") :: _ ->
        fail_at ln "unsupported construct: %s" line
      | [ single ] when !pending <> None ->
        (* constant block row: just an output value *)
        (match !pending with
         | Some (bln, inputs, out, rows) ->
           let value =
             match single with
             | "1" -> true
             | "0" -> false
             | _ -> fail_at ln "bad cover row: %s" line
           in
           pending := Some (bln, inputs, out, { mask = ""; value } :: rows)
         | None -> assert false)
      | [ mask; v ] when !pending <> None ->
        (match !pending with
         | Some (bln, inputs, out, rows) ->
           let value =
             match v with
             | "1" -> true
             | "0" -> false
             | _ -> fail_at ln "bad cover output: %s" line
           in
           pending := Some (bln, inputs, out, { mask; value } :: rows)
         | None -> assert false)
      | _ -> fail_at ln "unrecognized line: %s" line)
    lines;
  flush_pending ();
  List.iter
    (fun (ln, s) ->
      match Hashtbl.find_opt signals s with
      | Some n -> ignore (K.add_po net n false)
      | None -> fail_at ln "undefined output %s" s)
    !outputs;
  net

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read (really_input_string ic (in_channel_length ic)))
