module Sg = Sim.Signature

type key = int array

type t = {
  mutable np : int;
  buckets : (key, int list ref) Hashtbl.t; (* normalized sig -> nodes, reversed *)
}

let create ~num_patterns = { np = num_patterns; buckets = Hashtbl.create 1024 }

let num_patterns t = t.np

let normalized t s = fst (Sg.normalize ~num_patterns:t.np s)

let add t node s =
  let k = normalized t s in
  match Hashtbl.find_opt t.buckets k with
  | Some cell -> cell := node :: !cell
  | None -> Hashtbl.replace t.buckets k (ref [ node ])

let candidates t s =
  match Hashtbl.find_opt t.buckets (normalized t s) with
  | Some cell -> List.rev !cell
  | None -> []

let class_count t =
  Hashtbl.fold
    (fun _ cell acc -> if List.length !cell >= 2 then acc + 1 else acc)
    t.buckets 0

let candidate_nodes t =
  Hashtbl.fold
    (fun _ cell acc ->
      match !cell with _ :: _ :: _ -> List.rev_append !cell acc | _ -> acc)
    t.buckets []
  |> List.sort Int.compare

let clear t ~num_patterns =
  Hashtbl.reset t.buckets;
  t.np <- num_patterns
