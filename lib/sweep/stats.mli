(** Sweeping statistics — the quantities Table II reports, plus the
    phase breakdown and SAT-solver internals the run reports expose.

    "SAT calls" in the paper counts satisfiable outcomes; "Total SAT
    calls" adds unsatisfiable and undetermined ones. Window refinements
    are the STP engine's SAT-free merge/split decisions.

    All times are wall-clock seconds ({!Obs.Clock}) — CPU time would sum
    over domains and misreport parallel runs. The phases partition the
    engine's instrumented work:

    - [sim_time] — incremental signature computation while rebuilding
      (the engine's "initial simulation" work);
    - [plan_compile_time] — compiling/extending the kernel simulation
      plan for the growing fresh network;
    - [guided_time] — SAT-guided initial pattern generation;
    - [resim_time] — batch counter-example resimulations;
    - [window_time] — exhaustive-window table construction/comparison;
    - [sat_time] — equivalence queries in the CDCL solver;
    - [total_time] — the whole sweep, including untimed glue, so the sum
      of the phases is always <= [total_time]. *)

type exhaustion = {
  reason : string;  (** [Obs.Budget.reason_to_string] spelling *)
  phase : string;  (** engine phase where exhaustion was detected *)
}
(** Why and where a budgeted sweep stopped proving and fell back to
    structural translation. *)

type t = {
  mutable sat_sat : int;  (** satisfiable SAT calls *)
  mutable sat_unsat : int;
  mutable sat_undet : int;
  mutable sat_retries : int;
      (** escalated re-queries of pairs that first came back undetermined *)
  mutable merges : int;  (** node-to-node merges proven *)
  mutable const_merges : int;  (** nodes proven constant *)
  mutable window_merges : int;  (** merges decided by exhaustive windows *)
  mutable window_splits : int;  (** candidate pairs split by windows *)
  mutable ce_patterns : int;  (** counter-example patterns appended *)
  mutable initial_patterns : int;
  mutable resimulations : int;
  mutable sim_time : float;
  mutable plan_compile_time : float;
      (** compiling/extending the kernel simulation plan as the fresh
          network grows ({!Sim.Kernel.extend_aig}) — kept apart from
          [sim_time] so compile cost stays visible *)
  mutable guided_time : float;
  mutable resim_time : float;
  mutable window_time : float;
  mutable sat_time : float;
  mutable total_time : float;
  mutable sat_decisions : int;  (** solver internals, whole sweep *)
  mutable sat_conflicts : int;
  mutable sat_propagations : int;
  mutable sat_learned : int;
  mutable certified_unsat : int;
      (** certified mode: UNSAT merges whose DRUP proof replayed — on a
          healthy certified run this equals [sat_unsat] *)
  mutable certified_models : int;
      (** certified mode: SAT answers whose model validated (satisfies
          the CNF and distinguishes the two cones on re-evaluation) *)
  mutable certificate_rejected : int;
      (** certified mode: solver answers whose certificate failed to
          replay; each one degrades its node to structural translation,
          exactly like budget exhaustion. Zero unless the solver lies. *)
  mutable guided_consts : int;
      (** nodes the guided-pattern initialization proved constant on the
          input network. The engine merges them through the ordinary
          class machinery (a constant node's signature always collides
          with node 0), so this records guided work rather than extra
          merges. *)
  mutable cube_splits : int;
      (** parallel dispatch: hard miters (retry schedule exhausted)
          split cube-and-conquer style across the solver domains *)
  mutable cube_queries : int;
      (** parallel dispatch: per-cube solver queries issued by splits;
          each also counts into the ordinary sat_* outcome counters *)
  mutable cache_hits : int;
      (** cross-run cache: entries served — a validated equivalence
          certificate (counted as a merge but not as a SAT call) or a
          distinguishing counterexample *)
  mutable cache_misses : int;
      (** cross-run cache: lookups that found no entry; each falls
          through to a fresh standalone solve whose result is stored *)
  mutable cache_rejected : int;
      (** cross-run cache: entries refused — quarantined as corrupt by
          the store, malformed bodies, certificates that failed paranoid
          replay, or counterexamples that do not distinguish the pair.
          Every rejection degrades to a miss, never to a trusted hit. *)
  mutable budget_exhausted : exhaustion option;
      (** set once, at the moment the engine's budget first reports
          exhaustion; [None] on an unbudgeted or in-budget run *)
}

val create : unit -> t
val total_sat_calls : t -> int

val simulation_time : t -> float
(** The scope of the paper's Table II "Simulation" column: all non-SAT
    instrumented work — [sim + plan_compile + guided + resim + window]. *)

val phase_times : t -> (string * float) list
(** The six instrumented phases, in a stable order (not including
    [total_time]). *)

val to_json : t -> Obs.Json.t
(** The sweep section of a run report: counters, [phases_s] (with
    [total]), a [sat_solver] object with decisions / conflicts /
    propagations / learned, and [budget_exhausted] ([null], or an object
    with [reason] and [phase]). Schema documented in EXPERIMENTS.md. *)

val pp : Format.formatter -> t -> unit
