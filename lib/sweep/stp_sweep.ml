let config ?seed ?initial_words ?conflict_limit ?window_max_leaves ?sim_domains () =
  let base = Engine.stp_config in
  {
    base with
    Engine.seed = Option.value seed ~default:base.Engine.seed;
    initial_words = Option.value initial_words ~default:base.Engine.initial_words;
    conflict_limit =
      (match conflict_limit with Some l -> Some l | None -> base.Engine.conflict_limit);
    window_max_leaves =
      Option.value window_max_leaves ~default:base.Engine.window_max_leaves;
    sim_domains = Option.value sim_domains ~default:base.Engine.sim_domains;
  }

let sweep ?seed ?initial_words ?conflict_limit ?window_max_leaves ?sim_domains net =
  Engine.run
    ~config:
      (config ?seed ?initial_words ?conflict_limit ?window_max_leaves ?sim_domains ())
    net
