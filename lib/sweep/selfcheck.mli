(** Self-verifying sweep: run the engine, then prove the result.

    {!Engine.run} with [config.verify] already cross-simulates the
    result against the input; this module adds the full SAT-backed
    equivalence check ({!Cec.check}) on top, turning "the sweep is
    sound by construction" into a checked runtime guarantee. The cost
    is roughly a second sweep, so it is opt-in — flows enable it with
    [--verify]. *)

val run :
  ?config:Engine.config -> Aig.Network.t -> Aig.Network.t * Stats.t
(** Sweeps like {!Engine.run} (the bitwise cross-check is forced on),
    then checks the result against the input with {!Cec.check}. Raises
    {!Engine.Verification_failed} if either check refutes — or cannot
    confirm — equivalence. *)
