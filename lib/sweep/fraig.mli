(** The baseline SAT sweeper — ABC's [&fraig -x] recipe on this
    code base: random initial simulation, candidate equivalence classes,
    topological SAT merging, counter-example resimulation. Table II's
    left columns. *)

val sweep :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?sim_domains:int ->
  Aig.Network.t ->
  Aig.Network.t * Stats.t

val config :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?sim_domains:int ->
  unit ->
  Engine.config
