(** The baseline SAT sweeper — ABC's [&fraig -x] recipe on this
    code base: random initial simulation, candidate equivalence classes,
    topological SAT merging, counter-example resimulation. Table II's
    left columns.

    Budgeting and verification knobs ([deadline] / [timeout] /
    [retry_schedule] / [verify]) behave exactly as in {!Stp_sweep}. *)

val sweep :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?retry_schedule:int list ->
  ?sim_domains:int ->
  ?sat_domains:int ->
  ?sat_wave:int ->
  ?deadline:float ->
  ?timeout:float ->
  ?budget:Obs.Budget.t ->
  ?verify:bool ->
  ?certify:bool ->
  ?cache:Engine.cache_ops ->
  ?cache_paranoid:bool ->
  Aig.Network.t ->
  Aig.Network.t * Stats.t

val config :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?retry_schedule:int list ->
  ?sim_domains:int ->
  ?sat_domains:int ->
  ?sat_wave:int ->
  ?deadline:float ->
  ?timeout:float ->
  ?budget:Obs.Budget.t ->
  ?verify:bool ->
  ?certify:bool ->
  ?cache:Engine.cache_ops ->
  ?cache_paranoid:bool ->
  unit ->
  Engine.config
