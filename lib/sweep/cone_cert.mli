(** Standalone, certificate-carrying equivalence queries over extracted
    cone pairs — the unit of work the cross-run cache stores.

    The engine's incremental solver is the wrong producer for cacheable
    certificates: its proofs lean on clauses from earlier queries and
    retired selectors, so they only replay inside the run that made
    them. This module instead extracts the two candidate literals'
    shared TFI into a fresh standalone network with a deterministic
    node numbering, derives a content key from that canonical form, and
    proves the pair on a throwaway solver whose input-clause stream is
    a pure function of the extraction. The recorded learnt clauses are
    therefore a self-contained DRUP certificate: any later process that
    rebuilds the same encoding can replay them ({!replay}) and re-check
    the refutation without trusting the producer. *)

type t = {
  pc_net : Aig.Network.t;  (** standalone copy of the pair's joint TFI *)
  pc_key : string;  (** hex digest of the canonical serialization *)
  pc_leaves : int array;
      (** extracted PI index -> PI index in the source network, for
          expanding counterexamples back to source-network patterns *)
  pc_a : Aig.Lit.t;  (** first root, as a literal of [pc_net] *)
  pc_b : Aig.Lit.t;
      (** second root in [pc_net]; the candidate's complement flag is
          baked in here, so it participates in {!t.pc_key} *)
}

val extract : Aig.Network.t -> Aig.Lit.t -> Aig.Lit.t -> t
(** [extract net a b] copies the joint TFI of [a] and [b] into a fresh
    network, nodes renumbered densely in (source) topological order.
    Structurally identical cone pairs extracted from any network — or
    any run — yield byte-identical serializations, hence equal keys. *)

type entry =
  | E_equiv of int array list
      (** proven equivalent; the payload is the DRUP certificate: every
          learnt clause of the refutation, in emission order, in the
          solver literal numbering induced by the canonical encoding *)
  | E_diff of bool array
      (** distinguished; the payload is the witness assignment over the
          {e extracted} PIs (index [i] = extracted PI [i]) *)

type outcome =
  | O_equiv of int array list
  | O_diff of bool array
  | O_undet  (** budget exhausted — never cached *)
  | O_uncert of string  (** certificate failed online replay *)

type stats = {
  s_retries : int;  (** extra solve calls beyond the first *)
  s_solver : Sat.Solver.stats;
}

val solve :
  ?conflict_limits:int list ->
  ?deadline:float ->
  certify:bool ->
  t ->
  outcome * stats
(** Proves the pair on a fresh solver. [conflict_limits] is the budget
    schedule: each limit is tried in order on the same (incremental)
    solver, [O_undet] only after the last; the empty/omitted list means
    one unbudgeted call. Learnt clauses are always recorded — they are
    the certificate an [E_equiv] cache entry carries. With
    [~certify:true] an online {!Sat.Drup} checker additionally replays
    every derivation as it is emitted and the final verdict is
    certified ([O_uncert] on failure), same discipline as the engine's
    certified mode. *)

val replay : t -> int array list -> (unit, string) result
(** [replay pc proof] rebuilds the canonical encoding with a fresh
    {!Sat.Drup} checker (no solving), RUP-checks every certificate
    clause in order, and demands the final database refute the miter
    under the selector assumption. [Ok] means the stored certificate
    proves this extraction equivalent — the paranoid-mode gate for
    serving a cache hit. *)

val entry_to_json : entry -> Obs.Json.t
val entry_of_json : Obs.Json.t -> (entry, string) result
(** Stable v1 codec for cache bodies. [entry_of_json] is total: any
    shape surprise is an [Error], never an exception. *)
