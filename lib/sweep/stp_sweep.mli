(** The paper's STP-enhanced SAT sweeper (Algorithm 2): SAT-guided
    two-round initial patterns plus exhaustive-window refinement of
    candidate equivalence classes in front of every solver query.
    Table II's right columns.

    [deadline] (absolute {!Obs.Clock} timestamp) or [timeout] (seconds
    from the call; ignored when [deadline] is given) budget the sweep —
    on exhaustion the engine degrades to structural translation and
    records [Stats.budget_exhausted]. [budget] hands the sweep an
    externally owned {!Obs.Budget} instead (a pipeline's shared budget
    or an {!Obs.Pool} lease's); its deadline, conflict and propagation
    caps all apply, and the engine charges its SAT work back to it. [retry_schedule] lists escalating
    conflict limits re-tried on undetermined pairs. [verify] routes the
    sweep through {!Selfcheck.run}, raising
    {!Engine.Verification_failed} unless the result provably matches
    the input. [sat_domains] (default 0 = inline) dispatches SAT
    queries to a pool of solver domains in waves of [sat_wave] — see
    {!Engine.config}. [certify] makes every solver answer carry a replayed
    certificate ({!Engine.config}); rejected certificates degrade their
    node instead of merging it. *)

val sweep :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?retry_schedule:int list ->
  ?window_max_leaves:int ->
  ?sim_domains:int ->
  ?sat_domains:int ->
  ?sat_wave:int ->
  ?deadline:float ->
  ?timeout:float ->
  ?budget:Obs.Budget.t ->
  ?verify:bool ->
  ?certify:bool ->
  ?cache:Engine.cache_ops ->
  ?cache_paranoid:bool ->
  Aig.Network.t ->
  Aig.Network.t * Stats.t

val config :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?retry_schedule:int list ->
  ?window_max_leaves:int ->
  ?sim_domains:int ->
  ?sat_domains:int ->
  ?sat_wave:int ->
  ?deadline:float ->
  ?timeout:float ->
  ?budget:Obs.Budget.t ->
  ?verify:bool ->
  ?certify:bool ->
  ?cache:Engine.cache_ops ->
  ?cache_paranoid:bool ->
  unit ->
  Engine.config
