(** The paper's STP-enhanced SAT sweeper (Algorithm 2): SAT-guided
    two-round initial patterns plus exhaustive-window refinement of
    candidate equivalence classes in front of every solver query.
    Table II's right columns. *)

val sweep :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?window_max_leaves:int ->
  ?sim_domains:int ->
  Aig.Network.t ->
  Aig.Network.t * Stats.t

val config :
  ?seed:int64 ->
  ?initial_words:int ->
  ?conflict_limit:int ->
  ?window_max_leaves:int ->
  ?sim_domains:int ->
  unit ->
  Engine.config
