module A = Aig.Network
module L = Aig.Lit
module Sg = Sim.Signature

type verdict =
  | Equivalent
  | Different of { po : int; counterexample : bool array }
  | Undetermined of int

(* Copy [src] into [dst] over existing PI literals; returns PO literals
   in [dst]. *)
let import dst src pi_lits =
  let map = Array.make (A.num_nodes src) (-1) in
  map.(0) <- L.false_;
  A.iter_nodes src (fun nd ->
      match A.kind src nd with
      | A.Const -> ()
      | A.Pi i -> map.(nd) <- pi_lits.(i)
      | A.And ->
        let tr l = L.xor_compl map.(L.node l) (L.is_compl l) in
        map.(nd) <- A.add_and dst (tr (A.fanin0 src nd)) (tr (A.fanin1 src nd)));
  Array.map
    (fun l -> L.xor_compl map.(L.node l) (L.is_compl l))
    (A.pos src)

let check ?(seed = 0xCECL) ?(sim_words = 16) ?conflict_limit
    ?(certify = false) net_a net_b =
  if A.num_pis net_a <> A.num_pis net_b || A.num_pos net_a <> A.num_pos net_b
  then Different { po = -1; counterexample = [||] }
  else begin
    let miter = A.create () in
    let pis = Array.init (A.num_pis net_a) (fun _ -> A.add_pi miter) in
    let outs_a = import miter net_a pis in
    let outs_b = import miter net_b pis in
    (* Random-simulation filter: any differing output bit is an instant
       counterexample. *)
    let pats =
      Sim.Patterns.random ~seed ~num_pis:(A.num_pis net_a)
        ~num_patterns:(32 * sim_words)
    in
    let np = Sim.Patterns.num_patterns pats in
    let tbl = Sim.Bitwise.simulate_aig miter pats in
    let lit_sig l = Sim.Bitwise.po_signature tbl ~num_patterns:np ~lit:l in
    let sim_diff = ref None in
    Array.iteri
      (fun o la ->
        if !sim_diff = None then begin
          let sa = lit_sig la and sb = lit_sig outs_b.(o) in
          if not (Sg.equal sa sb) then begin
            (* Find the witness pattern. *)
            let p = ref 0 in
            while Sg.get sa !p = Sg.get sb !p do
              incr p
            done;
            sim_diff := Some (o, Sim.Patterns.pattern pats !p)
          end
        end)
      outs_a;
    match !sim_diff with
    | Some (po, counterexample) -> Different { po; counterexample }
    | None ->
      (* Sweep the joint network first — fraig-style CEC. Internal
         equivalences between the two copies merge bottom-up, so the
         output queries below become trivial or at least local; a plain
         monolithic miter SAT call would be hopeless on e.g. two copies
         of a multiplier. Register both PO sets so the sweep keeps and
         translates them. *)
      Array.iter (fun l -> ignore (A.add_po miter l)) outs_a;
      Array.iter (fun l -> ignore (A.add_po miter l)) outs_b;
      let swept, _stats =
        Engine.run ~config:{ Engine.stp_config with Engine.certify } miter
      in
      let n = Array.length outs_a in
      let outs_a = Array.init n (fun o -> A.po swept o) in
      let outs_b = Array.init n (fun o -> A.po swept (n + o)) in
      let solver = Sat.Solver.create () in
      (* Certified CEC audits the final PO queries too: the checker sees
         the whole clause stream of this solver. *)
      let cert =
        if certify then begin
          let d = Sat.Drup.create () in
          Sat.Drup.attach d solver;
          Some d
        end
        else None
      in
      let env = Sat.Tseitin.create swept solver in
      let verdict = ref Equivalent in
      Array.iteri
        (fun o la ->
          if !verdict = Equivalent && la <> outs_b.(o) then
            match
              Sat.Tseitin.check_equiv ?conflict_limit ?certify:cert env la
                outs_b.(o)
            with
            | Sat.Tseitin.Equivalent -> ()
            | Sat.Tseitin.Counterexample ce ->
              verdict := Different { po = o; counterexample = ce }
            | Sat.Tseitin.Undetermined -> verdict := Undetermined o
            | Sat.Tseitin.Uncertified _ ->
              (* An unreplayable certificate proves nothing either way —
                 same standing as an exhausted budget. *)
              verdict := Undetermined o)
        outs_a;
      !verdict
  end
