(** The SAT-sweeping engine shared by both sweepers.

    One forward pass rebuilds the network: every old AND node is
    translated into a fresh network where structural hashing, simulation
    signatures (candidate equivalence classes up to complementation),
    exhaustive-window checks, and finally SAT queries decide whether the
    node merges onto an earlier one. Merges are applied only on proof
    (window exactness or UNSAT), so the result is always functionally
    equivalent to the input.

    The [&fraig]-style baseline and the paper's STP sweeper are the same
    engine under different configurations: the STP configuration adds
    SAT-guided initial patterns and the exhaustive <=16-leaf window
    refinement in front of the solver; the baseline relies on random
    initial patterns and counter-example resimulation alone. This also
    gives the ablation benches a single knob set to sweep. *)

exception Verification_failed of string
(** Raised by {!run} when [config.verify] is set and the swept network
    disagrees with the input on some PO — see also {!Selfcheck.run},
    which adds a full CEC pass. *)

type cache_found =
  | Cache_hit of Obs.Json.t  (** the stored entry body, still untrusted *)
  | Cache_miss
  | Cache_corrupt
      (** an entry existed but failed the store's integrity checks and
          was quarantined; counted into [Stats.cache_rejected] *)

type cache_ops = {
  cache_find : key:string -> cache_found;
  cache_store : key:string -> Obs.Json.t -> unit;
}
(** Interface to a cross-run equivalence cache (implemented by
    [Svc.Cache], which lives above this library — dependency-inverted
    so the engine never sees the disk). Keys are {!Cone_cert} canonical
    cone-pair digests; bodies are {!Cone_cert.entry_to_json} values.
    The engine treats everything returned by [cache_find] as untrusted
    input: equivalence certificates are replayed (certified/paranoid
    modes) and counterexamples re-evaluated on the AIG before being
    served, so a hostile store costs time, never soundness. *)

type config = {
  seed : int64;
  initial_words : int;
      (** random initial pattern words (32 patterns each) *)
  conflict_limit : int option;
      (** per-query budget; [None] reproduces the paper's disabled limit *)
  retry_schedule : int list;
      (** escalating conflict limits re-tried (budget permitting) on a
          pair whose first query came back undetermined; [[]] = single
          attempt. Each entry is one extra query with that limit. *)
  resim_batch : int;
      (** counter-examples accumulated before a batch resimulation *)
  max_compares : int;
      (** candidates SAT-checked per node before giving up — the engine's
          rendition of the paper's TFI bound [n = 1000] *)
  guided_init : bool;
  guided_queries : int;  (** query budget for guided initialization *)
  window_refine : bool;
  window_max_leaves : int;
  sim_domains : int;
      (** OCaml domains for bulk (re)simulation passes; [1] = sequential.
          The word-sharded parallel simulators are bit-identical to the
          sequential ones, so this is purely a throughput knob. *)
  par_threshold : int;
      (** minimum pattern count before the parallel path is taken — below
          it the fork-join overhead outweighs the sharded work *)
  sat_domains : int;
      (** [0] (default): SAT queries issue inline from the rebuild loop
          — the legacy sequential path, untouched. [>= 1]: queries
          dispatch to a pool of that many solver domains ({!Dispatch}),
          each owning an incremental solver (and, in certified mode, its
          own DRUP checker); the engine collects per-node candidate
          tasks in waves of [sat_wave], freezes the network while the
          pool drains them, then applies the results in task order as
          the single writer. Merges stay proof-gated, so the result is
          CEC-equivalent to the input for every domain count.
          [sat_domains = 1] exercises the dispatch machinery without
          concurrency. See DESIGN.md "Parallel dispatch". *)
  sat_wave : int;
      (** tasks collected per dispatch wave (default 128). Larger waves
          amortize synchronization but defer merges longer, leaving
          same-wave duplicates to later structural hashing; a wave at
          least the task count makes a dispatched sweep fully
          deterministic across domain counts. *)
  deadline : float option;
      (** absolute {!Obs.Clock} deadline for the whole sweep. Once it
          passes, the engine stops issuing SAT queries, finishes the
          in-flight merge atomically, translates the remaining nodes
          structurally, and records the event in
          [Stats.budget_exhausted]. The result is still functionally
          equivalent to the input — it just keeps more redundancy. *)
  budget : Obs.Budget.t option;
      (** an externally owned budget the sweep runs under instead of
          building one from [deadline] — a pipeline's shared budget or
          an {!Obs.Pool} lease's. The engine charges every SAT query's
          conflicts/propagations to it ({!Obs.Budget.charge}), so caps
          hold across passes and across the dispatch pool's domains, and
          a pool can reclaim unspent allowance at release; exhaustion
          degrades exactly as under [deadline]. Overshoot past a
          conflict/propagation cap is bounded by one query's conflict
          limit (charges are per-query). *)
  verify : bool;
      (** post-sweep self-check: cross-simulate input and result on
          fresh random patterns and raise {!Verification_failed} on any
          PO mismatch. Cheap relative to a sweep; the full SAT-backed
          check is {!Selfcheck.run}. *)
  certify : bool;
      (** certified mode: a {!Sat.Drup} checker replays the solver's
          proof stream, UNSAT-driven merges are accepted only after
          their refutation replays on the checker's own database, and
          counterexamples must satisfy the CNF and re-distinguish the
          two cones before they refine the classes. A rejected
          certificate degrades its node to structural translation (like
          budget exhaustion) and counts into
          [Stats.certificate_rejected]. See DESIGN.md "Trust
          boundary". *)
  cache : cache_ops option;
      (** cross-run equivalence cache. When armed, the inline path runs
          its SAT work through {!Cone_cert}: each Unknown pair is
          extracted into a canonical standalone cone, looked up by
          content key, and on a miss proven on a throwaway solver whose
          self-contained certificate (or counterexample) is stored
          back. Undetermined outcomes are never stored, so a warm sweep
          replays the cold run's verdicts — identical merges, CEC-equal
          results. Dispatch mode ([sat_domains >= 1]) is lookup-only:
          walk-heading equivalence hits merge like window merges,
          everything else goes to the solver pool and nothing is
          written. *)
  cache_paranoid : bool;
      (** replay stored DRUP certificates through a fresh {!Sat.Drup}
          before serving a hit even outside certified mode — the
          defense against a cache produced by a buggy or hostile
          writer, where the checksum (which only defends against torn
          or corrupted files) is clean but the proof is junk. *)
}

val fraig_config : config
(** Baseline: random init, no windows — [&fraig]'s recipe. *)

val stp_config : config
(** The paper's engine: guided init + exhaustive window refinement,
    window limit 16. *)

val run : ?config:config -> Aig.Network.t -> Aig.Network.t * Stats.t
(** Sweeps; the result network contains no two provably-equivalent nodes
    the engine could find, and is functionally equivalent to the input
    (same PIs/POs). Defaults to {!stp_config}. *)
