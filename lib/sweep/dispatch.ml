(* Parallel SAT dispatch: a pool of solver domains for the sweep
   engine's candidate queries.

   Each pool member owns one incremental [Sat.Solver] with its own
   [Sat.Tseitin] environment over the shared fresh network (and, in
   certified mode, its own [Sat.Drup] checker attached before the first
   clause). The engine runs in waves: it collects a batch of tasks (one
   per fresh node, each a pre-filtered candidate list), freezes the
   network, and calls {!run_wave}; the members drain the task queue,
   loading each task's cone CNF on demand into their own solver. The
   engine — the single writer — then applies the results in task order.

   The network is never mutated while workers run, so workers only ever
   read it; all worker-written state is confined to each task's own
   result slot. The shared [Obs.Budget] is the one cross-domain
   communication channel: its sticky atomic exhaustion lets any worker
   trip degradation for everyone. *)

module A = Aig.Network
module L = Aig.Lit

type cand = {
  c_rep : int;  (* earlier fresh node to compare against *)
  c_compl : bool;  (* complement relation per the frozen signatures *)
  c_window_eq : bool;
      (* the exhaustive window already proved this equality — the walk
         merges here without a solver query. Always the last candidate
         of its task: nothing after it is reachable. *)
}

type task = { t_node : int; t_cands : cand list }

type counts = {
  mutable n_unsat : int;
  mutable n_undet : int;
  mutable n_retries : int;
  mutable n_cert_unsat : int;
  mutable n_cert_rejected : int;
}

type outcome =
  | Merged of L.t * bool  (* proven target; [true] = window-equal, no SAT *)
  | Exhausted  (* candidate list exhausted (or certificate rejected) *)
  | Hard of cand  (* retry schedule exhausted on this candidate *)
  | Stopped  (* shared budget exhausted mid-walk *)

type result = {
  mutable r_outcome : outcome;
  mutable r_ces : (bool array * int * bool) list;
      (* counterexamples in reverse attempt order: (pattern, rep, compl) *)
  r_counts : counts;
}

type domain_ctx = {
  solver : Sat.Solver.t;
  env : Sat.Tseitin.env;
  cert : Sat.Drup.t option;
  (* Cumulative-counter snapshots at the last budget charge: each query
     charges only its delta, so the shared budget's conflict and
     propagation caps hold across the whole pool. *)
  mutable charged_conflicts : int;
  mutable charged_propagations : int;
  (* Per-domain scratch for single-pattern cone evaluation (the CE
     filter below) — epoch-stamped memo so repeated cone walks under
     the same assignment stay linear. *)
  mutable eval_val : int array;
  mutable eval_stamp : int array;
  mutable eval_epoch : int;
}

type t = {
  pool : Sutil.Par.Pool.t;
  net : A.t;
  ctxs : domain_ctx array;
  budget : Obs.Budget.t;
  conflict_limit : int option;
  retry_schedule : int list;
}

let create ~domains ~certify ~conflict_limit ~retry_schedule net budget =
  let domains = max 1 domains in
  let ctxs =
    Array.init domains (fun _ ->
        let solver = Sat.Solver.create () in
        (* Same learnt-DB sizing policy as the engine's inline solver:
           proportional to the largest per-query conflict budget. *)
        (match conflict_limit with
        | Some base ->
          let top = List.fold_left max base retry_schedule in
          Sat.Solver.set_max_learnts solver (max 2000 (4 * top))
        | None -> ());
        let cert =
          if certify then begin
            (* Per-domain proof stream: the checker must observe this
               solver's clauses from the first Tseitin clause on. *)
            let d = Sat.Drup.create () in
            Sat.Drup.attach d solver;
            Some d
          end
          else None
        in
        {
          solver;
          env = Sat.Tseitin.create net solver;
          cert;
          charged_conflicts = 0;
          charged_propagations = 0;
          eval_val = [||];
          eval_stamp = [||];
          eval_epoch = 0;
        })
  in
  {
    pool = Sutil.Par.Pool.create ~domains;
    net;
    ctxs;
    budget;
    conflict_limit;
    retry_schedule;
  }

let domains t = Array.length t.ctxs

let shutdown t = Sutil.Par.Pool.shutdown t.pool

(* Charge this domain's solver work since its last charge to the shared
   budget. Any domain's charge can trip the sticky conflict/propagation
   caps; the existing [Obs.Budget.check] calls in every walk then stop
   the whole pool. *)
let charge_budget t dc =
  let s = Sat.Solver.stats dc.solver in
  let conflicts = s.Sat.Solver.conflicts - dc.charged_conflicts in
  let propagations = s.Sat.Solver.propagations - dc.charged_propagations in
  dc.charged_conflicts <- s.Sat.Solver.conflicts;
  dc.charged_propagations <- s.Sat.Solver.propagations;
  ignore (Obs.Budget.charge ~conflicts ~propagations t.budget)

(* Evaluate both cones under a counterexample and report whether it
   tells [nd] and [r]-with-[compl] apart. This is the worker-local
   stand-in for the engine's mid-walk signature refinement: the
   signatures are frozen for the whole wave, so without it every node
   of a fat stale class would SAT-query every stale candidate and
   collect a counterexample per query — a quadratic blowup the
   sequential path never sees (its classes refine every resim batch).
   One cone walk per counterexample keeps the walk linear instead. *)
let ce_distinguishes t dc ce nd r compl =
  let n = A.num_nodes t.net in
  if Array.length dc.eval_stamp < n then begin
    let cap = max n (2 * Array.length dc.eval_stamp) in
    dc.eval_val <- Array.make cap 0;
    dc.eval_stamp <- Array.make cap 0;
    dc.eval_epoch <- 0
  end;
  dc.eval_epoch <- dc.eval_epoch + 1;
  let epoch = dc.eval_epoch in
  let rec eval_node nd =
    if dc.eval_stamp.(nd) = epoch then dc.eval_val.(nd)
    else begin
      let v =
        match A.kind t.net nd with
        | A.Const -> 0
        | A.Pi i -> if i < Array.length ce && ce.(i) then 1 else 0
        | A.And ->
          let side f =
            let v = eval_node (L.node f) in
            if L.is_compl f then 1 - v else v
          in
          side (A.fanin0 t.net nd) land side (A.fanin1 t.net nd)
      in
      dc.eval_stamp.(nd) <- epoch;
      dc.eval_val.(nd) <- v;
      v
    end
  in
  let a = eval_node nd in
  let b =
    let v = eval_node r in
    if compl then 1 - v else v
  in
  a <> b

(* Walk one task's candidate list on one domain: the same verdict logic
   as the engine's inline [try_merge], minus window checks (resolved at
   collect time) and stats/map writes (applied at merge time). *)
let solve_task t dc task res =
  let deadline = Obs.Budget.deadline t.budget in
  let rec walk = function
    | [] -> res.r_outcome <- Exhausted
    | c :: rest ->
      if Obs.Budget.check t.budget <> None then res.r_outcome <- Stopped
      else if c.c_window_eq then
        res.r_outcome <- Merged (L.of_node c.c_rep c.c_compl, true)
      else if
        (* A counterexample already collected in this walk refutes this
           candidate too — skip it without a query. Pure filter, like
           the engine's stale-signature skip; an equivalent pair can
           never be skipped (no counterexample distinguishes it), so
           merges are unaffected. *)
        List.exists
          (fun (ce, _, _) ->
            ce_distinguishes t dc ce task.t_node c.c_rep c.c_compl)
          res.r_ces
      then walk rest
      else begin
        let rec sat_attempt limit schedule =
          let answer =
            Sat.Tseitin.check_equiv ?conflict_limit:limit ?deadline
              ?certify:dc.cert dc.env
              (L.of_node task.t_node false)
              (L.of_node c.c_rep c.c_compl)
          in
          charge_budget t dc;
          match answer with
          | Sat.Tseitin.Equivalent ->
            res.r_counts.n_unsat <- res.r_counts.n_unsat + 1;
            if dc.cert <> None then
              res.r_counts.n_cert_unsat <- res.r_counts.n_cert_unsat + 1;
            res.r_outcome <- Merged (L.of_node c.c_rep c.c_compl, false)
          | Sat.Tseitin.Uncertified _ ->
            (* Degrade, never trust: the node keeps its structural
               translation, same as the inline engine. *)
            res.r_counts.n_cert_rejected <- res.r_counts.n_cert_rejected + 1;
            res.r_outcome <- Exhausted
          | Sat.Tseitin.Counterexample ce ->
            res.r_ces <- (ce, c.c_rep, c.c_compl) :: res.r_ces;
            walk rest
          | Sat.Tseitin.Undetermined -> (
            res.r_counts.n_undet <- res.r_counts.n_undet + 1;
            match schedule with
            | next :: later when Obs.Budget.check_now t.budget = None ->
              res.r_counts.n_retries <- res.r_counts.n_retries + 1;
              sat_attempt (Some next) later
            | _ :: _ -> res.r_outcome <- Stopped
            | [] ->
              if Obs.Budget.check_now t.budget <> None then
                res.r_outcome <- Stopped
              else res.r_outcome <- Hard c)
        in
        sat_attempt t.conflict_limit t.retry_schedule
      end
  in
  walk task.t_cands

let run_wave t tasks =
  let results =
    Array.map
      (fun _ ->
        {
          r_outcome = Exhausted;
          r_ces = [];
          r_counts =
            {
              n_unsat = 0;
              n_undet = 0;
              n_retries = 0;
              n_cert_unsat = 0;
              n_cert_rejected = 0;
            };
        })
      tasks
  in
  Sutil.Par.Pool.drain t.pool (Array.length tasks) (fun ~domain i ->
      solve_task t t.ctxs.(domain) tasks.(i) results.(i));
  results

(* ---- cube-and-conquer ---- *)

type cube_query = {
  q_node : int;
  q_rep : int;
  q_compl : bool;
  q_cube : (int * bool) list;  (* PI node -> forced value *)
}

type cube_answer = C_unsat | C_ce of bool array | C_undet | C_uncert

let run_cubes t ~conflict_limit queries =
  let answers = Array.make (Array.length queries) C_undet in
  let deadline = Obs.Budget.deadline t.budget in
  Sutil.Par.Pool.drain t.pool (Array.length queries) (fun ~domain i ->
      if Obs.Budget.check t.budget = None then begin
        let dc = t.ctxs.(domain) in
        let q = queries.(i) in
        let assume =
          List.map
            (fun (pi, v) ->
              Sat.Solver.lit_of (Sat.Tseitin.var_of_node dc.env pi) (not v))
            q.q_cube
        in
        let answer =
          Sat.Tseitin.check_equiv ?conflict_limit ?deadline ?certify:dc.cert
            ~assume dc.env
            (L.of_node q.q_node false)
            (L.of_node q.q_rep q.q_compl)
        in
        charge_budget t dc;
        answers.(i) <-
          (match answer with
          | Sat.Tseitin.Equivalent -> C_unsat
          | Sat.Tseitin.Counterexample ce -> C_ce ce
          | Sat.Tseitin.Undetermined -> C_undet
          | Sat.Tseitin.Uncertified _ -> C_uncert)
      end);
  answers

let solver_stats t =
  Array.fold_left
    (fun (acc : Sat.Solver.stats) dc ->
      let s = Sat.Solver.stats dc.solver in
      {
        Sat.Solver.decisions = acc.Sat.Solver.decisions + s.Sat.Solver.decisions;
        conflicts = acc.Sat.Solver.conflicts + s.Sat.Solver.conflicts;
        propagations =
          acc.Sat.Solver.propagations + s.Sat.Solver.propagations;
        learned = acc.Sat.Solver.learned + s.Sat.Solver.learned;
        solve_calls = acc.Sat.Solver.solve_calls + s.Sat.Solver.solve_calls;
        reductions = acc.Sat.Solver.reductions + s.Sat.Solver.reductions;
        gcs = acc.Sat.Solver.gcs + s.Sat.Solver.gcs;
      })
    {
      Sat.Solver.decisions = 0;
      conflicts = 0;
      propagations = 0;
      learned = 0;
      solve_calls = 0;
      reductions = 0;
      gcs = 0;
    }
    t.ctxs
