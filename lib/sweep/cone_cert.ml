module A = Aig.Network
module L = Aig.Lit
module Solver = Sat.Solver
module Drup = Sat.Drup
module Tseitin = Sat.Tseitin

type t = {
  pc_net : A.t;
  pc_key : string;
  pc_leaves : int array;
  pc_a : L.t;
  pc_b : L.t;
}

let extract net a b =
  let roots = [ L.node a; L.node b ] in
  let cone = Aig.Cone.tfi net roots in
  (* Source nodes are already strashed, so re-adding a cone in topological
     order folds nothing: the copy is structure-preserving and its node
     numbering is a pure function of the cone's shape. *)
  let pc_net = A.create () in
  let map = Array.make (A.num_nodes net) L.false_ in
  let leaves = ref [] in
  List.iter
    (fun n ->
      match A.kind net n with
      | A.Const -> ()
      | A.Pi i ->
        map.(n) <- A.add_pi pc_net;
        leaves := i :: !leaves
      | A.And ->
        let tr f = L.xor_compl map.(L.node f) (L.is_compl f) in
        map.(n) <- A.add_and pc_net (tr (A.fanin0 net n)) (tr (A.fanin1 net n)))
    cone;
  let tr l = L.xor_compl map.(L.node l) (L.is_compl l) in
  let pc_a = tr a and pc_b = tr b in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "v1 pi=%d;" (A.num_pis pc_net));
  A.iter_ands pc_net (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d;" (A.fanin0 pc_net n) (A.fanin1 pc_net n)));
  Buffer.add_string buf (Printf.sprintf "r=%d,%d" pc_a pc_b);
  {
    pc_net;
    pc_key = Digest.to_hex (Digest.string (Buffer.contents buf));
    pc_leaves = Array.of_list (List.rev !leaves);
    pc_a;
    pc_b;
  }

(* The encoding below is the deterministic heart of the scheme: both
   [solve] and [replay] build their clause databases through this one
   function, so the solver-variable numbering and the input-clause
   stream are identical on both sides and a recorded certificate means
   the same thing when replayed in another process. Mirrors
   [Tseitin.check_equiv]'s miter exactly (m <-> a xor b, s -> m). *)
let encode pc solver =
  let env = Tseitin.create pc.pc_net solver in
  let a = Tseitin.lit_of env pc.pc_a and b = Tseitin.lit_of env pc.pc_b in
  let m = Solver.lit (Solver.new_var solver) in
  let sl = Solver.lit (Solver.new_var solver) in
  Solver.add_clause solver [ Solver.neg m; a; b ];
  Solver.add_clause solver [ Solver.neg m; Solver.neg a; Solver.neg b ];
  Solver.add_clause solver [ m; Solver.neg a; b ];
  Solver.add_clause solver [ m; a; Solver.neg b ];
  Solver.add_clause solver [ Solver.neg sl; m ];
  (env, sl)

type entry = E_equiv of int array list | E_diff of bool array

type outcome =
  | O_equiv of int array list
  | O_diff of bool array
  | O_undet
  | O_uncert of string

type stats = { s_retries : int; s_solver : Solver.stats }

let solve ?(conflict_limits = []) ?deadline ~certify pc =
  let solver = Solver.create () in
  let checker = if certify then Some (Drup.create ()) else None in
  let learns = ref [] in
  Solver.set_proof_logger solver
    (Some
       (fun step ->
         (match step with
          | Solver.P_learn c -> learns := c :: !learns
          | Solver.P_input _ | Solver.P_delete _ -> ());
         match checker with Some ck -> Drup.feed ck step | None -> ()));
  let env, sl = encode pc solver in
  let assumptions = [ sl ] in
  let rec run retries = function
    | [] -> (Solver.Unknown, retries)
    | [ limit ] ->
      let r =
        if limit <= 0 then Solver.solve ?deadline ~assumptions solver
        else Solver.solve ~conflict_limit:limit ?deadline ~assumptions solver
      in
      (r, retries)
    | limit :: rest -> (
      match Solver.solve ~conflict_limit:limit ?deadline ~assumptions solver with
      | Solver.Unknown -> run (retries + 1) rest
      | r -> (r, retries))
  in
  let schedule = if conflict_limits = [] then [ 0 ] else conflict_limits in
  let result, retries = run 0 schedule in
  let cert () = List.rev !learns in
  let outcome =
    match result with
    | Solver.Unknown -> O_undet
    | Solver.Unsat -> (
      match checker with
      | None -> O_equiv (cert ())
      | Some ck -> (
        match Drup.certify_unsat ck ~assumptions with
        | Ok () -> O_equiv (cert ())
        | Error why -> O_uncert why))
    | Solver.Sat -> (
      let ce =
        Array.init (A.num_pis pc.pc_net) (fun i ->
            let n = A.pi_node pc.pc_net i in
            Tseitin.is_encoded env n
            && Solver.value solver (Solver.lit (Tseitin.var_of_node env n)))
      in
      match checker with
      | None -> O_diff ce
      | Some ck -> (
        match Drup.certify_model ck ~value:(Solver.value solver) with
        | Ok () -> O_diff ce
        | Error why -> O_uncert why))
  in
  (outcome, { s_retries = retries; s_solver = Solver.stats solver })

let replay pc proof =
  (* No solving: the encoding pass streams the input clauses into a
     fresh checker via the proof logger, then every certificate clause
     must be RUP against the database built so far. Deletions recorded
     by the producer are irrelevant — RUP is monotone in the database,
     so checking against the superset is sound (and the cones are small
     enough that the extra clauses cost nothing). *)
  let solver = Solver.create () in
  let checker = Drup.create () in
  Drup.attach checker solver;
  let _env, sl = encode pc solver in
  let rec go = function
    | [] -> Drup.certify_unsat checker ~assumptions:[ sl ]
    | c :: rest -> (
      match Drup.add_derived checker (Array.to_list c) with
      | Ok () -> go rest
      | Error why -> Error ("certificate clause rejected: " ^ why))
  in
  go proof

module J = Obs.Json

let entry_to_json = function
  | E_equiv proof ->
    J.Obj
      [
        ("v", J.Int 1);
        ("verdict", J.String "equiv");
        ( "proof",
          J.List
            (List.map
               (fun c -> J.List (Array.to_list (Array.map (fun l -> J.Int l) c)))
               proof) );
      ]
  | E_diff ce ->
    let b = Bytes.create (Array.length ce) in
    Array.iteri (fun i v -> Bytes.set b i (if v then '1' else '0')) ce;
    J.Obj
      [
        ("v", J.Int 1);
        ("verdict", J.String "diff");
        ("ce", J.String (Bytes.to_string b));
      ]

let entry_of_json j =
  match J.member "v" j with
  | Some (J.Int 1) -> (
    match J.member "verdict" j with
    | Some (J.String "equiv") -> (
      match J.member "proof" j with
      | Some (J.List clauses) -> (
        let ok = ref true in
        let proof =
          List.map
            (fun c ->
              match c with
              | J.List lits ->
                Array.of_list
                  (List.map
                     (function
                       | J.Int l when l >= 0 -> l
                       | _ ->
                         ok := false;
                         0)
                     lits)
              | _ ->
                ok := false;
                [||])
            clauses
        in
        match !ok with
        | true -> Ok (E_equiv proof)
        | false -> Error "malformed proof clause")
      | _ -> Error "equiv entry without proof")
    | Some (J.String "diff") -> (
      match J.member "ce" j with
      | Some (J.String bits)
        when String.for_all (fun c -> c = '0' || c = '1') bits ->
        Ok (E_diff (Array.init (String.length bits) (fun i -> bits.[i] = '1')))
      | _ -> Error "diff entry without valid ce")
    | _ -> Error "unknown verdict")
  | _ -> Error "unsupported entry version"
