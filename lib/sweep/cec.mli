(** Combinational equivalence checking (the paper validates every sweep
    with ABC's [&cec]; tests here do the same with this module).

    Builds a joint miter network over shared PIs, filters with random
    simulation, then discharges each output pair with the SAT solver. *)

type verdict =
  | Equivalent
  | Different of { po : int; counterexample : bool array }
  | Undetermined of int  (** first output whose query hit the budget *)

val check :
  ?seed:int64 ->
  ?sim_words:int ->
  ?conflict_limit:int ->
  ?certify:bool ->
  Aig.Network.t ->
  Aig.Network.t ->
  verdict
(** Both networks must agree on PI and PO counts; otherwise [Different]
    with [po = -1] and an empty counterexample is returned. [certify]
    runs both the internal sweep and the final output queries under a
    {!Sat.Drup} proof checker; an unreplayable certificate downgrades
    the affected output to [Undetermined]. *)
